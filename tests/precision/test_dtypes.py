"""Storage-spec primitives: word sizes, containers, quantizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.precision import dtypes


class TestSpecs:
    def test_word_bytes(self):
        assert dtypes.word_bytes("fp64") == 8.0
        assert dtypes.word_bytes("fp32") == 4.0
        assert dtypes.word_bytes("bf16") == 2.0
        assert dtypes.word_bytes("dd") == 16.0

    def test_container_dtypes(self):
        assert dtypes.container_dtype("fp64") == np.float64
        assert dtypes.container_dtype("fp32") == np.float32
        assert dtypes.container_dtype("bf16") == np.float32

    def test_eps_ordering(self):
        assert (dtypes.eps("dd") < dtypes.eps("fp64")
                < dtypes.eps("fp32") < dtypes.eps("bf16"))

    def test_unknown_specs_raise(self):
        with pytest.raises(ValueError):
            dtypes.word_bytes("fp8")
        with pytest.raises(ValueError):
            dtypes.container_dtype("dd")  # dd has no single container
        with pytest.raises(ValueError):
            dtypes.validate_storage("dd")  # not a storage format
        with pytest.raises(ValueError):
            dtypes.quantize(np.ones(3), "fp16")


class TestQuantize:
    def test_fp64_identity_no_copy(self):
        a = np.random.default_rng(0).standard_normal(16)
        out = dtypes.quantize(a, "fp64")
        assert out is a  # asarray fast path: same object

    def test_fp32_is_round_to_nearest(self):
        a = np.array([1.0 + 2.0 ** -30])
        out = dtypes.quantize(a, "fp32")
        assert out.dtype == np.float32
        assert out[0] == np.float32(1.0)

    def test_input_never_mutated(self):
        a = np.full(8, 1.0 + 2.0 ** -20)
        b = a.copy()
        dtypes.quantize(a, "bf16")
        dtypes.quantize(a, "fp32")
        np.testing.assert_array_equal(a, b)


class TestRoundBf16:
    def test_values_on_bf16_grid(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal(1000)
        out = dtypes.round_bf16(a)
        bits = out.view(np.uint32)
        assert np.all(bits & np.uint32(0xFFFF) == 0)

    def test_exact_values_pass_through(self):
        # powers of two and small integers are exactly representable
        a = np.array([0.0, 1.0, -2.0, 0.5, 256.0, -1024.0])
        np.testing.assert_array_equal(dtypes.round_bf16(a),
                                      a.astype(np.float32))

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 sits exactly between bf16 neighbours 1.0 and 1 + 2^-7;
        # ties go to the even significand (1.0).
        a = np.array([1.0 + 2.0 ** -8])
        assert dtypes.round_bf16(a)[0] == np.float32(1.0)
        # 1 + 3*2^-8 sits between 1 + 2^-7 and 1 + 2^-6; even is 1 + 2^-6
        a = np.array([1.0 + 3.0 * 2.0 ** -8])
        assert dtypes.round_bf16(a)[0] == np.float32(1.0 + 2.0 ** -6)

    def test_relative_error_bounded(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(10_000) * 10.0 ** rng.integers(
            -20, 20, size=10_000)
        out = dtypes.round_bf16(a).astype(np.float64)
        rel = np.abs(out - a) / np.abs(a)
        assert np.max(rel) <= 2.0 ** -8

    def test_overflow_to_inf_and_nan_preserved(self):
        a = np.array([3.5e38, -3.5e38, np.inf, -np.inf, np.nan])
        out = dtypes.round_bf16(a)
        assert np.isposinf(out[0]) and np.isneginf(out[1])
        assert np.isposinf(out[2]) and np.isneginf(out[3])
        assert np.isnan(out[4])

    def test_negative_nan_payload_no_wraparound(self):
        # a sign=1 NaN with a full payload must stay NaN (the rounding
        # add would wrap the uint32 without the guard)
        bits = np.array([0xFFFFFFFF], dtype=np.uint32)
        a = bits.view(np.float32)
        assert np.isnan(dtypes.round_bf16(a)[0])
