"""PrecisionPolicy registry and resolution."""

from __future__ import annotations

import pytest

from repro.precision import POLICIES, PrecisionPolicy, resolve_policy
from repro.precision.policy import list_policies


class TestPolicy:
    def test_registry_covers_core_policies(self):
        assert {"fp64", "fp32", "bf16", "fp32_dd_gram",
                "fp64_dd_gram"} <= set(POLICIES)

    def test_default_is_fp64(self):
        p = resolve_policy(None)
        assert p.is_default
        assert (p.storage, p.accumulate, p.gram) == ("fp64", "fp64", "fp64")

    def test_resolve_by_name_normalizes(self):
        assert resolve_policy("FP32-dd-GRAM") is POLICIES["fp32_dd_gram"]

    def test_resolve_instance_passthrough(self):
        p = PrecisionPolicy("custom", storage="fp32", gram="dd")
        assert resolve_policy(p) is p

    def test_word_bytes_and_eps(self):
        assert resolve_policy("fp32").storage_word_bytes == 4.0
        assert resolve_policy("bf16").storage_word_bytes == 2.0
        assert resolve_policy("fp32").storage_eps > \
            resolve_policy("fp64").storage_eps

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionPolicy("bad", storage="dd")
        with pytest.raises(ValueError):
            PrecisionPolicy("bad", accumulate="bf16")
        with pytest.raises(ValueError):
            PrecisionPolicy("bad", gram="bf16")
        with pytest.raises(ValueError):
            resolve_policy("fp8")

    def test_list_policies_sorted(self):
        names = list_policies()
        assert names == sorted(names)
        assert "fp64" in names

    def test_frozen(self):
        with pytest.raises(AttributeError):
            resolve_policy("fp64").storage = "fp32"
