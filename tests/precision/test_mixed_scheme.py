"""Mixed-precision orthogonalization: the dd-Gram panel pass and the
mixed-precision two-stage scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CholeskyBreakdownError, ConfigurationError
from repro.ortho import (
    BlockDriver,
    MixedPrecisionTwoStageScheme,
    NumpyBackend,
    get_scheme,
    mixed_precision_panel,
    orthogonality_error,
)
from repro.utils.rng import default_rng, random_with_condition


class TestMixedPrecisionPanel:
    def _contract(self, gram, ortho_floor=1e-13):
        """V_old = Q P + V_new R, V_new orthonormal (the pass contract)."""
        rng = default_rng(1)
        nb = NumpyBackend()
        basis = rng.standard_normal((500, 10))
        q0 = np.linalg.qr(basis[:, :6])[0]
        basis[:, :6] = q0
        v_old = basis[:, 6:].copy()
        p, r = mixed_precision_panel(nb, basis, 6, 10, gram=gram)
        recon = q0 @ p + basis[:, 6:] @ r
        np.testing.assert_allclose(recon, v_old, atol=1e-12)
        assert orthogonality_error(basis[:, 6:]) < ortho_floor

    def test_contract_dd(self):
        self._contract("dd")

    def test_contract_fp32(self):
        # exact factorization, but orthonormality only to the fp32 Gram
        self._contract("fp32", ortho_floor=1e-6)

    def test_fp64_delegates_to_classical(self):
        self._contract("fp64")

    def test_empty_prefix_is_dd_cholqr(self):
        rng = default_rng(2)
        nb = NumpyBackend()
        v = random_with_condition(2000, 5, 1e12, rng)
        work = v.copy()
        p, r = mixed_precision_panel(nb, work, 0, 5, gram="dd")
        assert p is None
        # plain fp64 CholQR breaks at kappa 1e12; the dd Gram does not
        with pytest.raises(CholeskyBreakdownError):
            mixed_precision_panel(nb, v.copy(), 0, 5, gram="fp64")
        np.testing.assert_allclose(work @ r, v, atol=1e-10)

    def test_fp32_gram_breaks_early(self):
        """The degraded control: fp32 Gram dies at kappa well below the
        fp64 cliff."""
        rng = default_rng(3)
        v = random_with_condition(2000, 5, 1e6, rng)
        nb = NumpyBackend()
        with pytest.raises(CholeskyBreakdownError):
            mixed_precision_panel(nb, v.copy(), 0, 5, gram="fp32")
        mixed_precision_panel(nb, v.copy(), 0, 5, gram="fp64")  # fine

    def test_unknown_gram_raises(self):
        nb = NumpyBackend()
        with pytest.raises(ConfigurationError):
            mixed_precision_panel(nb, np.eye(8), 0, 4, gram="fp8")


class TestMixedTwoStageScheme:
    KAPPA_PAST_CLIFF = 1e9

    def test_registry_entry(self):
        assert get_scheme("mixed-two-stage") is MixedPrecisionTwoStageScheme
        assert get_scheme("MIXED_TWO_STAGE") is MixedPrecisionTwoStageScheme

    def test_matches_classical_on_benign_input(self):
        rng = default_rng(4)
        v = random_with_condition(1500, 20, 1e3, rng)
        mixed = BlockDriver(
            MixedPrecisionTwoStageScheme(big_step=20), 5).run(v)
        classical = BlockDriver(
            get_scheme("two-stage")(big_step=20), 5).run(v)
        assert orthogonality_error(mixed.q) < 1e-14
        np.testing.assert_allclose(mixed.q @ mixed.r, classical.q @ classical.r,
                                   atol=1e-12)

    def test_survives_past_classical_cliff(self):
        """At kappa 1e9 the classical scheme (even with shift recovery)
        breaks down; the dd-Gram scheme stays O(eps)-orthogonal."""
        rng = default_rng(5)
        v = random_with_condition(3000, 30, self.KAPPA_PAST_CLIFF, rng)
        with pytest.raises(CholeskyBreakdownError):
            BlockDriver(get_scheme("two-stage")(
                big_step=30, breakdown="shift"), 5).run(v)
        res = BlockDriver(MixedPrecisionTwoStageScheme(
            big_step=30, breakdown="shift"), 5).run(v)
        assert orthogonality_error(res.q) < 1e-13
        rep = np.linalg.norm(res.q @ res.r - v) / np.linalg.norm(v)
        assert rep < 1e-12

    def test_stage_selection(self):
        """gram applies only to the selected stages; big_panel-only still
        runs classical stage-1 passes."""
        rng = default_rng(6)
        v = random_with_condition(1000, 12, 1e2, rng)
        scheme = MixedPrecisionTwoStageScheme(
            big_step=12, stages=("big_panel",))
        res = BlockDriver(scheme, 4).run(v)
        assert orthogonality_error(res.q) < 1e-14

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixedPrecisionTwoStageScheme(big_step=10, gram="fp16")
        with pytest.raises(ConfigurationError):
            MixedPrecisionTwoStageScheme(big_step=10, stages=("third",))
