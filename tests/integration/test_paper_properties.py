"""End-to-end checks of the paper's headline structural claims.

These run the *live* solvers (not the analytic estimator) and verify the
synchronization algebra, the convergence equivalences, and the stability
claims the paper's abstract and Section V promise.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.krylov.gmres import gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import convection_diffusion_2d, laplace2d
from repro.matrices.synthetic import glued_matrix
from repro.ortho.analysis import orthogonality_error
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu, summit

#: Live end-to-end solves; CI's quick lane deselects them with -m "not slow".
pytestmark = pytest.mark.slow


def one_cycle(scheme, nx=16, ranks=6, m=20, s=5):
    sim = Simulation(laplace2d(nx), ranks=ranks, machine=summit())
    b = sim.ones_solution_rhs()
    res = sstep_gmres(sim, b, s=s, restart=m, tol=1e-30, maxiter=m,
                      scheme=scheme)
    return res


class TestSynchronizationAlgebra:
    """Sync counts per cycle match the paper's closed forms (live run)."""

    def test_bcgs2_five_per_panel(self):
        res = one_cycle(BCGS2Scheme())
        panels = 20 // 5
        # 5 per panel after the first (2 for CholQR2-only panel 1)
        # + 1 initial residual norm
        assert res.sync_count == 5 * (panels - 1) + 2 + 1

    def test_pip2_two_per_panel(self):
        res = one_cycle(BCGSPIP2Scheme())
        panels = 20 // 5
        assert res.sync_count == 2 * panels + 1

    def test_two_stage_one_per_panel_plus_big(self):
        res = one_cycle(TwoStageScheme(big_step=20))
        panels = 20 // 5
        assert res.sync_count == panels + 1 + 1

    def test_standard_three_per_iteration(self):
        sim = Simulation(laplace2d(16), ranks=6, machine=summit())
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=20, tol=1e-30, maxiter=20)
        assert res.sync_count == 3 * 20 + 1


class TestSolverEquivalences:
    def test_all_solvers_same_solution(self):
        a = convection_diffusion_2d(10)
        xs = []
        for kind in ("standard", "bcgs2", "pip2", "two"):
            sim = Simulation(a, ranks=4, machine=generic_cpu())
            b = sim.ones_solution_rhs()
            if kind == "standard":
                res = gmres(sim, b, restart=20, tol=1e-10, maxiter=4000)
            else:
                scheme = {"bcgs2": BCGS2Scheme(), "pip2": BCGSPIP2Scheme(),
                          "two": TwoStageScheme(20)}[kind]
                res = sstep_gmres(sim, b, s=5, restart=20, tol=1e-10,
                                  maxiter=4000, scheme=scheme)
            assert res.converged, kind
            xs.append(res.x)
        for x in xs[1:]:
            np.testing.assert_allclose(x, xs[0], atol=1e-7)

    def test_matches_scipy_solution(self):
        a = laplace2d(12)
        sim = Simulation(a, ranks=4, machine=generic_cpu())
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-10, maxiter=4000,
                          scheme=TwoStageScheme(30))
        x_ref = spla.spsolve(a.tocsc(), b)
        np.testing.assert_allclose(res.x, x_ref, atol=1e-6)

    def test_true_vs_estimated_residual_agree(self):
        a = laplace2d(16)
        sim = Simulation(a, ranks=4, machine=generic_cpu())
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          scheme=BCGSPIP2Scheme())
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        # the solver's reported residual comes from the explicit restart
        # recomputation, so it must match the truth tightly
        assert true_rel == pytest.approx(res.relative_residual, rel=1e-6)


class TestStabilityHeadlines:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_two_stage_O_eps_on_random_glued(self, seed):
        """Property test of Theorem V.1's conclusion across random draws."""
        g = glued_matrix(800, 5, 8, panel_cond=1e6, growth=2.0,
                         rng=np.random.default_rng(seed))
        out = BlockDriver(TwoStageScheme(big_step=20), 5).run(g.matrix)
        assert orthogonality_error(out.q) < 1e-12

    def test_two_stage_survives_where_conditioning_grows(self):
        """Paper Fig. 8: prefix kappa crosses 1e9, error stays O(eps)."""
        g = glued_matrix(3000, 5, 12, panel_cond=1e7, growth=2.0,
                         rng=np.random.default_rng(88))
        from repro.ortho.analysis import condition_number
        assert condition_number(g.matrix) > 1e9
        out = BlockDriver(TwoStageScheme(big_step=60), 5).run(g.matrix)
        assert orthogonality_error(out.q) < 1e-12


class TestOrthoTimeOrderingLive:
    def test_full_ordering_on_simulated_summit(self):
        """The abstract's performance ordering out of live (not analytic)
        simulation at 2 Summit nodes."""
        a = laplace2d(24)
        times = {}
        for key in ("standard", "bcgs2", "pip2", "two"):
            sim = Simulation(a, ranks=12, machine=summit())
            b = sim.ones_solution_rhs()
            if key == "standard":
                res = gmres(sim, b, restart=30, tol=1e-30, maxiter=30)
            else:
                scheme = {"bcgs2": BCGS2Scheme(), "pip2": BCGSPIP2Scheme(),
                          "two": TwoStageScheme(30)}[key]
                res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-30,
                                  maxiter=30, scheme=scheme)
            times[key] = res.ortho_time
        assert (times["standard"] > times["bcgs2"] > times["pip2"]
                > times["two"])
