"""Cross-backend equivalence: backend="mp" must reproduce backend="sim"
bit-for-bit — solutions, histories, and the modeled twin's accounting —
across engines, precisions, MPK modes and degenerate solves."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

ENGINES = ("loop", "batched")


def _solve_both(a, b, *, engine="batched", ranks=4, scheme_factory=None,
                **solver_kwargs):
    """Run the identical solve on both backends; return (sim, mp) info."""
    out = {}
    for backend in ("sim", "mp"):
        scheme = (scheme_factory() if scheme_factory is not None
                  else TwoStageScheme(solver_kwargs.get("restart", 12)))
        with Simulation(a, ranks=ranks, machine=generic_cpu(),
                        engine=engine, backend=backend) as sim:
            res = sstep_gmres(sim, b, scheme=scheme, **solver_kwargs)
            modeled = (sim.comm.modeled if backend == "mp"
                       else sim.tracer)
            out[backend] = {
                "res": res,
                "clock": modeled.clock,
                "by_kernel": dict(modeled.by_kernel),
                "counts": dict(modeled.counts),
            }
    return out["sim"], out["mp"]


def _assert_equivalent(sim_out, mp_out):
    a, b = sim_out["res"], mp_out["res"]
    assert a.x.tobytes() == b.x.tobytes(), "solution bytes differ"
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert a.restarts == b.restarts
    assert a.relative_residual == b.relative_residual
    np.testing.assert_array_equal(*a.history.as_arrays()[1:],
                                  *b.history.as_arrays()[1:])
    # the mp modeled twin carries the sim prediction exactly
    assert mp_out["clock"] == sim_out["clock"]
    assert mp_out["by_kernel"] == sim_out["by_kernel"]
    assert mp_out["counts"] == sim_out["counts"]


class TestSolveEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_stage_fp64(self, engine):
        a = laplace2d(16)
        sim_out, mp_out = _solve_both(
            a, np.ones(a.shape[0]), engine=engine,
            s=3, restart=12, tol=1e-8, options=SolverOptions())
        assert sim_out["res"].converged
        _assert_equivalent(sim_out, mp_out)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fp32_storage(self, engine):
        """Quantized shards follow the same container-dtype compute path
        on the workers as in the simulator."""
        a = laplace2d(16)
        sim_out, mp_out = _solve_both(
            a, np.ones(a.shape[0]), engine=engine,
            s=3, restart=12, tol=1e-5, maxiter=2000,
            options=SolverOptions(precision="fp32"))
        _assert_equivalent(sim_out, mp_out)

    @pytest.mark.parametrize("mpk_mode", ["standard", "ca", "ca_overlap"])
    def test_mpk_modes(self, mpk_mode):
        """Both MPK communication patterns execute identically on real
        ranks — including the CA ghost-zone kernel's driver-side loops
        over shared shards."""
        a = laplace2d(16)
        sim_out, mp_out = _solve_both(
            a, np.ones(a.shape[0]),
            s=3, restart=12, tol=1e-8,
            options=SolverOptions(mpk_mode=mpk_mode))
        assert sim_out["res"].converged
        _assert_equivalent(sim_out, mp_out)

    def test_s_equals_one_degenerate(self):
        a = laplace2d(10)
        sim_out, mp_out = _solve_both(
            a, np.ones(a.shape[0]),
            s=1, restart=10, tol=1e-8, maxiter=3000,
            scheme_factory=lambda: TwoStageScheme(10))
        assert sim_out["res"].converged
        _assert_equivalent(sim_out, mp_out)

    def test_happy_breakdown_mid_panel(self):
        """Minimal-polynomial-degree-4 operator: the Cholesky breakdown
        and cycle truncation happen identically on the executor."""
        n = 64
        diag = np.repeat([1.0, 2.0, 3.0, 4.0], n // 4)
        a = sp.diags(diag).tocsr()
        b = np.asarray(a @ np.ones(n)).ravel()
        sim_out, mp_out = _solve_both(
            a, b, s=2, restart=8, tol=1e-10, maxiter=200,
            scheme_factory=lambda: TwoStageScheme(8))
        assert sim_out["res"].converged
        _assert_equivalent(sim_out, mp_out)


class TestOverlappedPipelined:
    def test_pipelined_comm_overlap_equivalent(self):
        """The posted-reduction path maps onto genuinely asynchronous
        worker-side progress on mp, with the modeled twin still carrying
        the sim prediction bit-for-bit."""
        from repro.krylov.pipelined import pipelined_gmres
        a = laplace2d(16)
        b = np.ones(a.shape[0])
        out = {}
        for backend in ("sim", "mp"):
            with Simulation(a, ranks=4, machine=generic_cpu(),
                            backend=backend) as sim:
                res = pipelined_gmres(
                    sim, b, restart=12, tol=1e-8, maxiter=2000,
                    options=SolverOptions(comm_overlap=True))
                modeled = (sim.comm.modeled if backend == "mp"
                           else sim.tracer)
                out[backend] = {
                    "res": res,
                    "clock": modeled.clock,
                    "by_kernel": dict(modeled.by_kernel),
                    "counts": dict(modeled.counts),
                    "hidden": modeled.overlapped_seconds(
                        kernel="allreduce"),
                }
        assert out["sim"]["res"].converged
        _assert_equivalent(out["sim"], out["mp"])
        # the modeled overlap window is backend-independent too
        assert out["mp"]["hidden"] == out["sim"]["hidden"]
        assert out["sim"]["hidden"] > 0.0


class TestMeasuredSide:
    def test_mp_records_wall_clock_per_phase(self):
        """Beyond bit-identity: the measured tracer must actually have
        accumulated wall time in the phases the solve went through."""
        a = laplace2d(16)
        b = np.ones(a.shape[0])
        with Simulation(a, ranks=4, machine=generic_cpu(),
                        backend="mp") as sim:
            res = sstep_gmres(sim, b, s=3, restart=12, tol=1e-8,
                              scheme=TwoStageScheme(12))
            measured = dict(sim.tracer.by_phase)
            measured_kernels = dict(sim.tracer.by_kernel)
        assert res.converged
        for phase in ("spmv", "ortho"):
            assert measured.get(phase, 0.0) > 0.0
        # the worker-executed SpMV splits into halo + local compute
        assert any(k == "spmv_local" for _, k in measured_kernels)
        assert any(k == "halo" for _, k in measured_kernels)
        assert any(k == "allreduce" for _, k in measured_kernels)
