"""The docs/ site must track the code it documents.

Two structural guards: the experiment catalogue in docs/experiments.md
must list exactly the runner's registered subcommands (so adding an
experiment without documenting it — or documenting a renamed one — is
a tier-1 failure), and every relative link in the markdown pages must
resolve (same check CI runs standalone via scripts/docs_lint.py).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
PAGES = ("architecture.md", "cost-model.md", "solvers.md",
         "experiments.md", "observability.md")


class TestExperimentsCatalogue:
    def _documented_names(self) -> set[str]:
        text = (DOCS / "experiments.md").read_text()
        return set(re.findall(r"^### `([a-z0-9_]+)`", text, re.MULTILINE))

    def test_catalogue_matches_runner_registry(self):
        """docs/experiments.md has exactly one ### entry per registered
        subcommand, plus the synthetic ``all``."""
        from repro.experiments import runner
        documented = self._documented_names()
        registered = set(runner._DISPATCH) | {"all"}
        missing = registered - documented
        stale = documented - registered
        assert not missing, f"undocumented experiments: {sorted(missing)}"
        assert stale == set(), f"stale docs entries: {sorted(stale)}"

    def test_catalogue_is_nontrivial(self):
        """Every entry carries prose, not just a heading."""
        text = (DOCS / "experiments.md").read_text()
        names = re.findall(r"^### `([a-z0-9_]+)`", text, re.MULTILINE)
        blocks = re.split(r"^### `[a-z0-9_]+`$", text, flags=re.MULTILINE)
        assert len(blocks) == len(names) + 1
        for name, body in zip(names, blocks[1:]):
            assert len(body.strip()) > 40, f"empty docs entry for {name}"


class TestDocsSite:
    def test_pages_exist(self):
        for page in PAGES:
            assert (DOCS / page).is_file(), f"docs/{page} missing"

    def test_readme_links_every_page(self):
        readme = (REPO / "README.md").read_text()
        for page in PAGES:
            assert f"docs/{page}" in readme, (
                f"README.md does not link docs/{page}")

    def test_docs_lint_passes(self):
        """The standalone CI linter agrees the links are alive."""
        proc = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "docs_lint.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
