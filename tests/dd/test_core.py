"""Double-double arithmetic: error-free transformations and dd ops."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd.core import (
    DDArray,
    dd_add,
    dd_add_double,
    dd_div,
    dd_from_double,
    dd_mul,
    dd_mul_double,
    dd_neg,
    dd_sqrt,
    dd_sub,
    dd_sum,
    dd_to_double,
    quick_two_sum,
    two_prod,
    two_sum,
)

# Error-free transformations require products/sums to stay in the normal
# range (Dekker's analysis assumes no underflow/overflow), so the test
# domain excludes subnormals — matching the library's documented domain.
def _normal_range(lo, hi):
    return st.floats(allow_nan=False, allow_infinity=False,
                     min_value=lo, max_value=hi).filter(
        lambda x: x == 0.0 or abs(x) > 1e-100)


finite = _normal_range(-1e120, 1e120)
small = _normal_range(-1e6, 1e6)


class TestErrorFreeTransforms:
    @given(finite, finite)
    def test_two_sum_exact(self, a, b):
        s, e = two_sum(a, b)
        assert s == a + b  # s is the rounded sum
        # exactness: a + b == s + e in rational arithmetic
        assert Fraction(a) + Fraction(b) == Fraction(float(s)) + Fraction(float(e))

    @given(finite, finite)
    def test_quick_two_sum_exact_when_ordered(self, a, b):
        hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
        s, e = quick_two_sum(hi, lo)
        assert Fraction(hi) + Fraction(lo) == Fraction(float(s)) + Fraction(float(e))

    @given(small, small)
    def test_two_prod_exact(self, a, b):
        p, e = two_prod(a, b)
        assert p == a * b
        assert Fraction(a) * Fraction(b) == Fraction(float(p)) + Fraction(float(e))

    def test_two_sum_catastrophic_cancellation(self):
        a, b = 1.0, 1e-30
        s, e = two_sum(a, b)
        assert s == 1.0
        assert e == 1e-30  # the tiny addend is fully recovered

    def test_vectorized(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1e-20, -2e-20, 3e-20])
        s, e = two_sum(a, b)
        assert s.shape == (3,)
        np.testing.assert_array_equal(s, a)
        np.testing.assert_array_equal(e, b)


class TestDDArithmetic:
    def test_add_recovers_small_terms(self):
        # sum 1 + 1e-25 + (-1) in dd: exact result 1e-25
        x = dd_from_double(1.0)
        x = dd_add_double(x, 1e-25)
        x = dd_add(x, dd_from_double(-1.0))
        assert dd_to_double(x) == pytest.approx(1e-25, rel=1e-30)

    @given(small, small)
    def test_add_matches_fraction(self, a, b):
        z = dd_add(dd_from_double(a), dd_from_double(b))
        exact = Fraction(a) + Fraction(b)
        got = Fraction(float(z[0])) + Fraction(float(z[1]))
        assert got == exact  # double+double is exactly representable in dd

    @given(small, small)
    def test_mul_high_accuracy(self, a, b):
        z = dd_mul(dd_from_double(a), dd_from_double(b))
        exact = Fraction(a) * Fraction(b)
        got = Fraction(float(z[0])) + Fraction(float(z[1]))
        assert got == exact  # product of doubles is exactly a dd

    @given(small, small.filter(lambda x: abs(x) > 1e-3))
    def test_div_roundtrip(self, a, b):
        q = dd_div(dd_from_double(a), dd_from_double(b))
        back = dd_mul(q, dd_from_double(b))
        assert dd_to_double(back) == pytest.approx(a, rel=1e-28, abs=1e-28)

    @given(st.floats(min_value=1e-6, max_value=1e12))
    def test_sqrt_squares_back(self, a):
        r = dd_sqrt(dd_from_double(a))
        sq = dd_mul(r, r)
        assert dd_to_double(sq) == pytest.approx(a, rel=1e-28)

    def test_sqrt_negative_raises(self):
        with pytest.raises(ValueError):
            dd_sqrt(dd_from_double(-1.0))

    def test_sqrt_zero(self):
        r = dd_sqrt(dd_from_double(0.0))
        assert dd_to_double(r) == 0.0

    def test_sub_and_neg(self):
        a = dd_from_double(3.5)
        b = dd_from_double(1.25)
        assert dd_to_double(dd_sub(a, b)) == 2.25
        assert dd_to_double(dd_neg(a)) == -3.5

    def test_mul_double(self):
        z = dd_mul_double(dd_from_double(1.0 / 3.0), 3.0)
        assert dd_to_double(z) == pytest.approx(1.0, abs=1e-16)


class TestDDSum:
    def test_exactness_on_cancelling_series(self):
        # naive float64 sum of this series loses the 1e-20 entirely
        vals = np.array([1e20, 1.0, -1e20, 1e-20])
        hi, lo = dd_sum(vals)
        total = Fraction(float(hi)) + Fraction(float(lo))
        assert total == Fraction(1.0) + Fraction(1e-20)

    def test_matches_numpy_for_benign_input(self, rng):
        vals = rng.standard_normal(1000)
        hi, lo = dd_sum(vals)
        assert float(hi + lo) == pytest.approx(float(np.sum(vals)), rel=1e-12)

    def test_axis_handling(self, rng):
        vals = rng.standard_normal((64, 3))
        hi, lo = dd_sum(vals, axis=0)
        assert hi.shape == (3,)
        np.testing.assert_allclose(hi + lo, vals.sum(axis=0), rtol=1e-13)

    def test_empty(self):
        hi, lo = dd_sum(np.zeros((0, 2)))
        assert hi.shape == (2,)
        assert np.all(hi == 0) and np.all(lo == 0)

    @given(st.integers(min_value=1, max_value=257))
    @settings(max_examples=20)
    def test_sizes(self, n):
        vals = np.arange(1, n + 1, dtype=np.float64)
        hi, lo = dd_sum(vals)
        assert float(hi) == n * (n + 1) / 2.0


class TestDDArrayWrapper:
    def test_operator_roundtrip(self):
        a = DDArray.from_double(np.array([1.0, 2.0]))
        b = DDArray.from_double(np.array([0.5, 0.25]))
        c = (a + b) * b - a / a
        expected = (np.array([1.5, 2.25]) * np.array([0.5, 0.25])) - 1.0
        np.testing.assert_allclose(c.to_double(), expected, rtol=1e-15)

    def test_sum_and_getitem(self):
        a = DDArray.from_double(np.arange(10.0))
        assert a.sum().to_double() == 45.0
        assert a[3].to_double() == 3.0

    def test_sqrt(self):
        a = DDArray.from_double(np.array([4.0, 9.0]))
        np.testing.assert_allclose(a.sqrt().to_double(), [2.0, 3.0])
