"""dd Gram/Cholesky kernels for the mixed-precision CholQR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd.core import dd_to_double
from repro.dd.linalg import cholesky_dd, dot_dd, gram_dd, matmul_dd
from repro.exceptions import CholeskyBreakdownError, ShapeError


class TestDotDD:
    def test_matches_exact_integers(self):
        x = np.arange(1.0, 101.0)
        hi, lo = dot_dd(x, x)
        assert float(hi) == float(np.sum(np.arange(1, 101) ** 2))

    def test_recovers_cancellation(self):
        x = np.array([1e10, 1.0, -1e10])
        y = np.array([1e10, 1.0, 1e10])
        # naive: 1e20 + 1 - 1e20 loses the 1; dd keeps it
        hi, lo = dot_dd(x, y)
        assert dd_to_double((hi, lo)) == 1.0

    def test_columns(self, rng):
        x = rng.standard_normal((50, 3))
        hi, lo = dot_dd(x, x)
        np.testing.assert_allclose(hi + lo, np.einsum("ij,ij->j", x, x),
                                   rtol=1e-14)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            dot_dd(np.zeros(3), np.zeros(4))


class TestGramDD:
    def test_matches_exact_small_ints(self):
        v = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        hi, lo = gram_dd(v)
        np.testing.assert_array_equal(hi, v.T @ v)
        np.testing.assert_array_equal(lo, np.zeros((2, 2)))

    def test_accuracy_beats_double_on_illconditioned(self, rng):
        # Columns nearly parallel: Gram entries suffer cancellation when
        # the orthogonality error is computed; dd keeps ~32 digits.
        base = rng.standard_normal(20000)
        v = np.column_stack([base, base + 1e-9 * rng.standard_normal(20000)])
        hi, lo = gram_dd(v)
        # reference via float128-ish: use math.fsum per entry
        import math
        ref = np.array([[math.fsum(v[:, i] * v[:, j]) for j in range(2)]
                        for i in range(2)])
        np.testing.assert_allclose(hi + lo, ref, rtol=1e-15)

    def test_chunking_invariance(self, rng):
        v = rng.standard_normal((1000, 4))
        a = gram_dd(v, chunk=64)
        b = gram_dd(v, chunk=100000)
        # chunk boundaries change the summation tree but dd keeps ~32
        # digits, so both agree far beyond double precision
        np.testing.assert_allclose(a[0] + a[1], b[0] + b[1], rtol=1e-25)

    def test_symmetry(self, rng):
        v = rng.standard_normal((300, 5))
        hi, lo = gram_dd(v)
        np.testing.assert_array_equal(hi, hi.T)
        np.testing.assert_array_equal(lo, lo.T)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            gram_dd(np.zeros(5))


class TestMatmulDD:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((500, 3))
        b = rng.standard_normal((500, 4))
        hi, lo = matmul_dd(a, b)
        np.testing.assert_allclose(hi + lo, a.T @ b, rtol=1e-13, atol=1e-15)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            matmul_dd(np.zeros((5, 2)), np.zeros((6, 2)))


class TestCholeskyDD:
    def test_matches_numpy_on_well_conditioned(self, rng):
        v = rng.standard_normal((100, 5))
        g = v.T @ v
        r_dd = cholesky_dd(g)
        r_np = np.linalg.cholesky(g).T
        np.testing.assert_allclose(r_dd, r_np, rtol=1e-12)

    def test_upper_triangular_positive_diag(self, rng):
        v = rng.standard_normal((50, 4))
        r = cholesky_dd(v.T @ v)
        assert np.allclose(r, np.triu(r))
        assert np.all(np.diag(r) > 0)

    def test_breakdown_on_indefinite(self):
        g = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(CholeskyBreakdownError) as exc:
            cholesky_dd(g)
        assert exc.value.panel_index is not None

    def test_succeeds_where_double_fails(self):
        # Gram of nearly-parallel columns: kappa^2 ~ 1e18 defeats double
        # Cholesky, but the dd Gram (passed via hi/lo) keeps definiteness.
        eps_col = 1e-9
        g_exact_hi = np.array([[1.0, 1.0], [1.0, 1.0]])
        g_exact_lo = np.array([[0.0, 0.0], [0.0, eps_col ** 2]])
        # dd Cholesky on (hi, lo) sees the tiny positive curvature
        r = cholesky_dd(g_exact_hi, g_exact_lo)
        assert r[1, 1] > 0
        recon = r.T @ r
        assert recon[1, 1] - 1.0 == pytest.approx(eps_col ** 2, rel=1e-3)
