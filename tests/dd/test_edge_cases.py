"""Double-double edge cases: property tests against np.longdouble and
the dd-Gram CholQR at extreme condition numbers.

``np.longdouble`` on x86 Linux is the 80-bit extended format (64-bit
significand): strictly *less* precise than a dd pair (~106 bits), so a
dd primitive agreeing with the longdouble reference to ~1 longdouble
ulp is evidence the dd error-free transformations are right — any
implementation bug (a missed Dekker split, a mis-ordered quick_two_sum)
loses tens of bits at once.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd.core import (
    dd_add,
    dd_div,
    dd_from_double,
    dd_mul,
    dd_sqrt,
    dd_sum,
    dd_to_double,
    two_prod,
    two_sum,
)
from repro.dd.linalg import cholesky_dd, gram_dd
from repro.exceptions import CholeskyBreakdownError
from repro.ortho import MixedPrecisionCholQR, NumpyBackend, get_intra_qr
from repro.ortho.analysis import orthogonality_error
from repro.utils.rng import default_rng, random_with_condition

#: Longdouble significand precision (64 bits on x86) — the comparison
#: tolerance floor.  On platforms where longdouble == double the
#: reference carries no extra information and the tests still pass with
#: the looser double bound.
LD_EPS = float(np.finfo(np.longdouble).eps)

#: Finite, well-scaled doubles: away from the Dekker-split overflow
#: (~2^996) and the two_prod underflow (~1e-150) documented in
#: repro.dd.core.
finite = st.floats(min_value=-1e120, max_value=1e120,
                   allow_nan=False, allow_infinity=False)
nonzero = finite.filter(lambda x: abs(x) > 1e-120)

#: Magnitudes whose pairwise products stay clear of the subnormal range
#: (dd error terms of a ~1e-150 product underflow, per the module docs).
well_scaled = st.floats(min_value=-1e60, max_value=1e60,
                        allow_nan=False, allow_infinity=False
                        ).filter(lambda x: abs(x) > 1e-70)


def _as_ld(x) -> np.longdouble:
    hi, lo = x
    return np.longdouble(hi) + np.longdouble(lo)


def _close_ld(got, want: np.longdouble, rtol: float = 4.0,
              scale: float | None = None) -> bool:
    """Agreement to ``rtol`` longdouble ulps of ``scale``.

    ``scale`` defaults to ``|want|`` but MUST be the largest operand
    magnitude when the computation cancels: the longdouble *reference*
    itself carries ``LD_EPS * operands`` rounding, and dd (106 bits) is
    the more accurate side of the comparison.
    """
    if scale is None:
        scale = float(abs(want)) or 1.0
    return abs(float(np.longdouble(got) - want)) <= rtol * LD_EPS * scale


class TestPrimitivesAgainstLongdouble:
    @given(finite, finite)
    @settings(max_examples=200)
    def test_two_sum_exact(self, a, b):
        s, e = two_sum(a, b)
        # the transformation is error-free: s + e == a + b exactly in
        # any precision that can represent both (longdouble can, since
        # s and e are doubles)
        assert np.longdouble(s) + np.longdouble(e) == \
            np.longdouble(a) + np.longdouble(b)

    @given(nonzero, nonzero)
    @settings(max_examples=200)
    def test_two_prod_exact(self, a, b):
        # operands within the documented two_prod range (the error term
        # of a product of ~1e-210 values underflows in double, which the
        # module docstring explicitly excludes)
        p, e = two_prod(a, b)
        if np.isfinite(p) and np.isfinite(e):
            assert np.longdouble(p) + np.longdouble(e) == \
                np.longdouble(a) * np.longdouble(b)

    @given(finite, finite, finite, finite)
    @settings(max_examples=200)
    def test_dd_add_matches_longdouble(self, a, b, c, d):
        x = dd_add(dd_from_double(a), dd_from_double(b))
        y = dd_add(dd_from_double(c), dd_from_double(d))
        z = dd_add(x, y)
        want = (np.longdouble(a) + np.longdouble(b)
                + np.longdouble(c) + np.longdouble(d))
        scale = max(abs(a), abs(b), abs(c), abs(d), float(abs(want)), 1.0)
        assert _close_ld(_as_ld(z), want, rtol=8.0, scale=scale)

    @given(well_scaled, well_scaled)
    @settings(max_examples=200)
    def test_dd_mul_matches_longdouble(self, a, b):
        z = dd_mul(dd_from_double(a), dd_from_double(b))
        assert _close_ld(_as_ld(z), np.longdouble(a) * np.longdouble(b))

    @given(nonzero, nonzero)
    @settings(max_examples=200)
    def test_dd_div_matches_longdouble(self, a, b):
        z = dd_div(dd_from_double(a), dd_from_double(b))
        assert _close_ld(_as_ld(z), np.longdouble(a) / np.longdouble(b))

    @given(st.floats(min_value=1e-100, max_value=1e100, allow_nan=False,
                     allow_infinity=False))
    @settings(max_examples=200)
    def test_dd_sqrt_matches_longdouble(self, a):
        z = dd_sqrt(dd_from_double(a))
        assert _close_ld(_as_ld(z), np.sqrt(np.longdouble(a)))

    @given(st.lists(st.floats(min_value=-1e80, max_value=1e80,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_dd_sum_matches_longdouble(self, values):
        arr = np.asarray(values, dtype=np.float64)
        z = dd_sum(arr)
        want = np.sum(arr.astype(np.longdouble))
        scale = float(np.max(np.abs(arr))) * len(values) or 1.0
        assert abs(float(_as_ld(z) - want)) <= 8.0 * LD_EPS * scale


class TestKnownHardCases:
    def test_dd_sqrt_negative_raises(self):
        with pytest.raises(ValueError):
            dd_sqrt(dd_from_double(-1.0))

    def test_dd_sqrt_zero(self):
        hi, lo = dd_sqrt(dd_from_double(0.0))
        assert hi == 0.0 and lo == 0.0

    def test_dd_sqrt_vector_rejects_any_negative(self):
        with pytest.raises(ValueError):
            dd_sqrt(dd_from_double(np.array([1.0, -1e-300])))

    def test_catastrophic_cancellation_sum(self):
        # fp64 loses the 1.0 entirely; dd keeps it
        arr = np.array([1e16, 1.0, -1e16])
        assert float(np.sum(arr)) == 0.0
        assert dd_to_double(dd_sum(arr)) == 1.0

    def test_cancellation_chain(self):
        # alternating large/small pairs: exact total = n_small
        big = np.array([1e15, -1e15] * 64)
        small = np.full(64, 2.0 ** -30)
        arr = np.concatenate([big, small])
        assert dd_to_double(dd_sum(arr)) == pytest.approx(
            64 * 2.0 ** -30, rel=1e-30)

    def test_dd_add_opposite_rounding_halves(self):
        # (a + b) where b = -a + ulp-level remainder
        a = dd_from_double(1.0)
        b = dd_from_double(-(1.0 - 2.0 ** -53))
        z = dd_add(a, b)
        assert dd_to_double(z) == 2.0 ** -53

    def test_dd_sum_empty_axis(self):
        hi, lo = dd_sum(np.zeros((0, 3)), axis=0)
        assert hi.shape == (3,)
        np.testing.assert_array_equal(hi, 0.0)


class TestDDGramCholQRExtreme:
    """dd-Gram CholQR on panels where plain fp64 CholQR breaks outright."""

    def test_kappa_1e15_panel(self):
        rng = default_rng(9)
        v = random_with_condition(4000, 6, 1e15, rng)
        nb = NumpyBackend()
        # plain CholQR: Gram cond ~ kappa^2 = 1e30 >> 1/eps — breakdown
        with pytest.raises(CholeskyBreakdownError):
            get_intra_qr("cholqr")().factor(nb, v.copy())
        # dd Gram + dd Cholesky: factorizes and reorthogonalizes to O(eps)
        q = v.copy()
        r = MixedPrecisionCholQR().factor(nb, q)
        assert orthogonality_error(q) < 1e-12
        rep = np.linalg.norm(q @ r - v) / np.linalg.norm(v)
        assert rep < 1e-10

    def test_gram_dd_is_exact_to_dd_eps(self):
        rng = default_rng(10)
        v = random_with_condition(1000, 5, 1e12, rng)
        g_hi, g_lo = gram_dd(v)
        want = (v.astype(np.longdouble).T @ v.astype(np.longdouble))
        got = (g_hi.astype(np.longdouble) + g_lo.astype(np.longdouble))
        scale = float(np.max(np.abs(want)))
        assert float(np.max(np.abs(got - want))) <= 8.0 * LD_EPS * scale

    def test_cholesky_dd_succeeds_where_fp64_fails(self):
        rng = default_rng(9)
        v = random_with_condition(2000, 5, 1e9, rng)
        g_hi, g_lo = gram_dd(v)
        with pytest.raises(np.linalg.LinAlgError):
            np.linalg.cholesky(g_hi)  # fp64-rounded Gram is indefinite
        r = cholesky_dd(g_hi, g_lo)
        # R reproduces the dd Gram to fp64 accuracy
        np.testing.assert_allclose(r.T @ r, g_hi, rtol=1e-13, atol=0)