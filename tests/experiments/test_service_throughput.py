"""Smoke-size assertions of the service-throughput experiment."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifacts import load_artifact
from repro.experiments import service_throughput

QUICK = dict(nx=12, ranks=4, s=4, restart=12)


@pytest.fixture(scope="module")
def outputs():
    return service_throughput.run(**QUICK)


class TestTable:
    def test_one_row_per_machine_and_width(self, outputs):
        table, _ = outputs
        machines = [m for m, _ in service_throughput.MACHINES]
        widths = [str(w) for w in service_throughput.WIDTHS]
        assert table.column(0) == [m for m in machines
                                   for _ in widths]
        assert table.column(1) == widths * len(machines)

    def test_speedup_gate_on_latency_machine(self, outputs):
        """The CI-gated claim: width-8 >= 3x width-1 solves/sec on
        summit_lat16x — pinned from the artifact so a silent assert
        removal inside run() cannot pass."""
        _, artifact = outputs
        w = max(service_throughput.WIDTHS)
        top = artifact.record(f"service[summit_lat16x,w{w}]")
        assert top.extra["speedup"] >= 3.0

    def test_throughput_monotone_below_knee(self, outputs):
        _, artifact = outputs
        for machine, _ in service_throughput.MACHINES:
            rates = [artifact.record(f"service[{machine},w{w}]")
                     .extra["solves_per_sec"]
                     for w in service_throughput.WIDTHS]
            assert all(b > a for a, b in zip(rates, rates[1:]))
            knee = artifact.record(
                f"service[{machine},w1]").extra["knee_width"]
            assert knee > max(service_throughput.WIDTHS)

    def test_counts_and_bytes_invariants(self, outputs):
        _, artifact = outputs
        for machine, _ in service_throughput.MACHINES:
            recs = [artifact.record(f"service[{machine},w{w}]")
                    for w in service_throughput.WIDTHS]
            counts = [r.extra["counts_per_batch"] for r in recs]
            assert all(c == counts[0] for c in counts)
            assert counts[0]["allreduce"] > 0
            assert counts[0]["halo"] > 0
            totals = [r.extra["total_bytes"] for r in recs]
            assert all(t == totals[0] for t in totals)
            assert all(r.extra["bit_identical"] for r in recs)

    def test_indivisible_widths_rejected(self):
        with pytest.raises(AssertionError, match="divide"):
            service_throughput.run(**{**QUICK, "widths": (1, 3, 8)})


class TestArtifacts:
    def test_bench_artifact_round_trips(self, outputs, tmp_path):
        _, artifact = outputs
        path = artifact.write(tmp_path / "BENCH_service.json")
        loaded = load_artifact(path)
        assert loaded.names() == artifact.names()
        rec = loaded.record("service[summit,w1]")
        assert rec.extra["width"] == 1
        assert rec.extra["machine"] == "summit"

    def test_matches_committed_baseline_names(self, outputs):
        """The committed benchmarks/BENCH_service.json baseline must
        gate exactly the records the quick run produces."""
        _, artifact = outputs
        with open("benchmarks/BENCH_service.json") as fh:
            baseline = json.load(fh)
        assert {b["name"] for b in baseline["benchmarks"]} \
            == set(artifact.names())


def test_cli_quick(tmp_path, capsys):
    service_throughput.main(["--quick", "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert "service_throughput" in out
    assert (tmp_path / "BENCH_service.json").exists()
