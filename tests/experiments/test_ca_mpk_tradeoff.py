"""Smoke-size assertions of the CA-MPK trade-off experiment's claims."""

from __future__ import annotations

import pytest

from repro.experiments import ca_mpk_tradeoff
from repro.parallel.machine import generic_cpu


@pytest.fixture(scope="module")
def table():
    return ca_mpk_tradeoff.run(nx=20, ranks=8)


def _speedup(table, row: int) -> float:
    return float(table.cell(row, 3).rstrip("x"))


class TestTradeoffTable:
    def test_covers_all_regimes(self, table):
        labels = table.column(0)
        assert labels == [name for name, _ in ca_mpk_tradeoff.REGIMES]

    def test_halo_counts(self, table):
        # s=5, m=30 -> 6 panels; + nothing else (basis generation only)
        for row in range(len(table.rows)):
            assert table.cell(row, 4) == 30
            assert table.cell(row, 5) == 6

    def test_ca_wins_in_latency_dominated_regime(self, table):
        """The acceptance claim: modeled speedup > 1 where latency
        dominates, growing with the latency scale."""
        by_label = {table.cell(r, 0): r for r in range(len(table.rows))}
        s4 = _speedup(table, by_label["summit_lat4x"])
        s16 = _speedup(table, by_label["summit_lat16x"])
        assert s4 > 1.0
        assert s16 > s4

    def test_block_jacobi_composition_hurts_ca(self):
        """Block-rounded ghost closures inflate redundant work — the
        composition problem that keeps Trilinos on the standard MPK."""
        none = ca_mpk_tradeoff.generate_basis(
            generic_cpu(), "ca", nx=20, ranks=8, s=5, restart=30)
        bj = ca_mpk_tradeoff.generate_basis(
            generic_cpu(), "ca", nx=20, ranks=8, s=5, restart=30,
            precond_name="block_jacobi")
        assert bj["redundant_frac"] > none["redundant_frac"]

def test_cli_quick(capsys):
    ca_mpk_tradeoff.main(["--quick"])
    out = capsys.readouterr().out
    assert "ca_mpk_tradeoff" in out
    assert "summit_lat16x" in out
