"""Smoke-size acceptance run of the rgs_convergence experiment.

The solver-level claim of the randomized-GMRES subsystem: on a Krylov
basis with condition number >= 1e12 the sketched solve path converges
to 1e-8 where classical s-step GMRES with the two-stage CholQR scheme
stagnates or fails outright.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import rgs_convergence


class TestAcceptanceCase:
    def test_sketched_converges_where_classical_fails(self):
        case = rgs_convergence.run_case(30.0, 16, 32, n=250, tol=1e-8,
                                        maxiter=800)
        # the basis really is past the classical cliff
        assert case["basis_cond"] >= 1e12
        # classical two-stage CholQR stagnates or fails ...
        assert not case["classical"].converged
        assert case["classical_status"] in ("diverged", "stagnated",
                                            "breakdown")
        # ... while the sketched solve drives the residual to tol,
        # verified against the *true* residual, not the estimate
        skt = case["sketched"]
        assert skt.converged
        assert skt.relative_residual <= 1e-8
        a = rgs_convergence.logspec_operator(250, 30.0)
        b = np.asarray(a @ np.ones(250)).ravel()
        true_rel = np.linalg.norm(b - a @ skt.x) / np.linalg.norm(b)
        assert true_rel <= 1e-8
        # and the sketched diagnostics were recorded
        assert skt.diagnostics["solve_mode"] == "sketched"

    def test_table_shape(self):
        table = rgs_convergence.run(n=250, configs=((30.0, 16, 32),),
                                    maxiter=800)
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row[7] == "converged"  # sketched status column
        assert table.notes


class TestHelpers:
    def test_krylov_panel_cond_monotone_in_s(self):
        a = rgs_convergence.logspec_operator(200, 50.0)
        b = np.asarray(a @ np.ones(200)).ravel()
        c4 = rgs_convergence.krylov_panel_cond(a, b, 4)
        c8 = rgs_convergence.krylov_panel_cond(a, b, 8)
        assert c8 > c4 > 1.0

    def test_status_classification(self):
        class R:
            converged = False
            stalled = False
            relative_residual = np.inf
        assert rgs_convergence._status(R(), 1e-8) == "diverged"
        R.relative_residual = 1e-3
        assert rgs_convergence._status(R(), 1e-8) == "stagnated"
        R.stalled = True
        assert rgs_convergence._status(R(), 1e-8) == "breakdown"
        R.converged, R.stalled, R.relative_residual = True, False, 1e-9
        assert rgs_convergence._status(R(), 1e-8) == "converged"
