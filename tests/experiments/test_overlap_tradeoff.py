"""Smoke-size assertions of the overlap-window trade-off experiment."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifacts import load_artifact
from repro.experiments import overlap_tradeoff

QUICK = dict(nx=32, ranks=8, s=5, restart=15, pipe_nx=32, pipe_restart=10,
             multipliers=(1.0, 2.0, 4.0), bw_inter=1.0e6)


@pytest.fixture(scope="module")
def outputs():
    return overlap_tradeoff.run(**QUICK)


class TestTable:
    def test_one_row_per_consumer_and_multiplier(self, outputs):
        table, _, _ = outputs
        assert table.column(0) == ["mpk_pa2", "pipelined"] * 3

    def test_exposure_strictly_shrinks_with_latency(self, outputs):
        """The acceptance claim — also asserted inside run(), but pin it
        from the artifact so a silent assert removal cannot pass."""
        _, artifact, _ = outputs
        fracs = [rec.extra["exposed_frac"] for rec in artifact.benchmarks
                 if rec.extra["consumer"] == "mpk_pa2"]
        assert len(fracs) == 3
        assert all(b < a for a, b in zip(fracs, fracs[1:]))
        assert fracs[0] > 0.0  # something was actually exposed at L=1

    def test_hidden_seconds_positive_everywhere(self, outputs):
        _, artifact, _ = outputs
        for rec in artifact.benchmarks:
            assert rec.extra["hidden_seconds"] > 0.0
            assert rec.extra["bit_identical"] is True

    def test_monotonicity_violation_raises(self):
        """A single multiplier repeated twice cannot strictly decrease."""
        with pytest.raises(AssertionError, match="strict"):
            overlap_tradeoff.run(**{**QUICK, "multipliers": (1.0, 1.0)})


class TestArtifacts:
    def test_bench_artifact_round_trips(self, outputs, tmp_path):
        _, artifact, _ = outputs
        path = artifact.write(tmp_path / "BENCH_overlap.json")
        loaded = load_artifact(path)
        assert loaded.names() == artifact.names()
        rec = loaded.record("overlap_tradeoff[mpk_pa2,lat1x]")
        assert rec.extra["latency_multiplier"] == 1.0
        assert "overlapped" in rec.extra["totals"]

    def test_trace_doc_has_overlap_spans(self, outputs):
        _, _, trace_doc = outputs
        cats = {ev.get("cat") for ev in trace_doc["traceEvents"]
                if ev.get("ph") == "X"}
        assert "post" in cats
        assert "comm_overlap" in cats
        exposed = [ev for ev in trace_doc["traceEvents"]
                   if ev.get("ph") == "X"
                   and "overlapped_seconds" in ev.get("args", {})]
        assert exposed  # the wait charges carry the hidden annotation

    def test_trace_doc_is_json_serializable(self, outputs):
        _, _, trace_doc = outputs
        assert json.loads(json.dumps(trace_doc)) == trace_doc


def test_cli_quick(tmp_path, capsys):
    overlap_tradeoff.main(["--quick", "--out", str(tmp_path)])
    out = capsys.readouterr().out
    assert "overlap_tradeoff" in out
    assert (tmp_path / "BENCH_overlap.json").exists()
    assert (tmp_path / "trace_overlap.json").exists()
