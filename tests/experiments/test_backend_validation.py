"""Smoke-size assertions of the predicted-vs-measured validation."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifacts import SCHEMA, load_artifact
from repro.experiments import backend_validation
from repro.obs import DEFAULT_DRIFT_BOUND, load_spans


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("traces")


@pytest.fixture(scope="module")
def outcome(trace_dir):
    return backend_validation.run(nx=16, s=3, restart=9, repeats=1,
                                  trace_dir=trace_dir)


class TestTable:
    def test_two_rows_per_scheme(self, outcome):
        table, _ = outcome
        labels = [(table.cell(r, 0), table.cell(r, 1))
                  for r in range(len(table.rows))]
        assert labels == [(name, timeline)
                          for name in backend_validation.SCHEMES
                          for timeline in ("modeled", "measured")]

    def test_phase_shares_rendered(self, outcome):
        table, _ = outcome
        for r in range(len(table.rows)):
            for c in range(2, 6):
                assert table.cell(r, c).endswith("%")


class TestArtifact:
    def test_schema_and_records(self, outcome):
        _, art = outcome
        assert art.schema == SCHEMA
        assert art.name == "measured"
        assert art.names() == [f"backend_validation[{s}]"
                               for s in backend_validation.SCHEMES]

    def test_extras_carry_both_timelines(self, outcome):
        _, art = outcome
        for rec in art.benchmarks:
            assert rec.extra["bit_identical"] is True
            assert rec.extra["converged"]
            for timeline in ("modeled", "measured"):
                bd = rec.extra[timeline]
                assert set(backend_validation.PHASE_BUCKETS) < set(bd)
                assert bd["total"] > 0.0
            # phases cover (nearly) the whole timeline on both sides
            modeled = rec.extra["modeled"]
            covered = sum(modeled[k]
                          for k in backend_validation.PHASE_BUCKETS)
            assert covered <= modeled["total"] * 1.0000001
            assert covered >= modeled["total"] * 0.5

    def test_drift_section_within_gate(self, outcome):
        """The ISSUE's acceptance gate: every scheme's drift section is
        present in the artifact and under the configured bound."""
        _, art = outcome
        for rec in art.benchmarks:
            drift = rec.extra["drift"]
            assert drift["max_share_drift"] < DEFAULT_DRIFT_BOUND
            assert drift["spans_paired"] > 0
            assert drift["span_mismatches"] == 0
            assert drift["measured_total"] > 0.0
            gated = {p["phase"]: p["share_drift"] for p in drift["phases"]}
            assert max(gated.values()) == drift["max_share_drift"]

    def test_extras_embed_machine_readable_totals(self, outcome):
        _, art = outcome
        for rec in art.benchmarks:
            for key in ("modeled_totals", "measured_totals"):
                doc = rec.extra[key]
                assert doc["clock"] > 0.0
                assert any(k.endswith("/allreduce") for k in doc["counts"])

    def test_round_trips_through_loader(self, outcome, tmp_path):
        _, art = outcome
        path = art.write(tmp_path / "BENCH_measured.json")
        loaded = load_artifact(path)
        assert loaded.names() == art.names()
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA


class TestTraceExport:
    def test_trace_file_per_scheme(self, outcome, trace_dir):
        for name in backend_validation.SCHEMES:
            assert (trace_dir / f"trace_{name}.json").exists()

    def test_trace_holds_both_streams_and_rank_lanes(self, outcome,
                                                     trace_dir):
        spans = load_spans(trace_dir / "trace_two-stage.json")
        streams = {s.stream for s in spans}
        assert streams == {"modeled", "measured"}
        ranks = {s.rank for s in spans if s.rank is not None}
        assert ranks == {0, 1, 2, 3}  # the mp run's per-worker SpMV lanes
        # driver kernel charges exist on both streams for pairing
        for stream in streams:
            assert any(s.cat == "kernel" and s.rank is None
                       for s in spans if s.stream == stream)

    def test_trace_is_valid_chrome_document(self, outcome, trace_dir):
        doc = json.loads((trace_dir / "trace_two-stage.json").read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert phs == {"M", "X"}
        assert all(e["dur"] >= 0.0 for e in doc["traceEvents"]
                   if e["ph"] == "X")


def test_drift_gate_is_armed():
    """run() must actually enforce the bound: an absurdly tight one
    trips the assertion with the drift summary in the message."""
    with pytest.raises(AssertionError, match="share drift|drift"):
        backend_validation.run(nx=12, ranks=4, s=3, restart=9, repeats=1,
                               schemes=("two-stage",), drift_bound=1e-12)


def test_bit_identity_assertion_is_armed(monkeypatch):
    """run_scheme must actually compare the backends: poison the sim
    result and expect the assertion to fire."""
    real = backend_validation.sstep_gmres
    calls = {"n": 0}

    def poisoned(sim, b, **kwargs):
        res = real(sim, b, **kwargs)
        calls["n"] += 1
        if calls["n"] == 1:  # the backend="sim" reference run
            res.x = res.x + 1.0e-3
        return res

    monkeypatch.setattr(backend_validation, "sstep_gmres", poisoned)
    with pytest.raises(AssertionError, match="bit-identical|diverged"):
        backend_validation.run_scheme(
            "two-stage", nx=12, ranks=4, s=3, restart=9,
            tol=1e-8, maxiter=500, repeats=1)
