"""Smoke-size assertions of the predicted-vs-measured validation."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifacts import SCHEMA, load_artifact
from repro.experiments import backend_validation


@pytest.fixture(scope="module")
def outcome():
    return backend_validation.run(nx=16, s=3, restart=9, repeats=1)


class TestTable:
    def test_two_rows_per_scheme(self, outcome):
        table, _ = outcome
        labels = [(table.cell(r, 0), table.cell(r, 1))
                  for r in range(len(table.rows))]
        assert labels == [(name, timeline)
                          for name in backend_validation.SCHEMES
                          for timeline in ("modeled", "measured")]

    def test_phase_shares_rendered(self, outcome):
        table, _ = outcome
        for r in range(len(table.rows)):
            for c in range(2, 6):
                assert table.cell(r, c).endswith("%")


class TestArtifact:
    def test_schema_and_records(self, outcome):
        _, art = outcome
        assert art.schema == SCHEMA
        assert art.name == "measured"
        assert art.names() == [f"backend_validation[{s}]"
                               for s in backend_validation.SCHEMES]

    def test_extras_carry_both_timelines(self, outcome):
        _, art = outcome
        for rec in art.benchmarks:
            assert rec.extra["bit_identical"] is True
            assert rec.extra["converged"]
            for timeline in ("modeled", "measured"):
                bd = rec.extra[timeline]
                assert set(backend_validation.PHASE_BUCKETS) < set(bd)
                assert bd["total"] > 0.0
            # phases cover (nearly) the whole timeline on both sides
            modeled = rec.extra["modeled"]
            covered = sum(modeled[k]
                          for k in backend_validation.PHASE_BUCKETS)
            assert covered <= modeled["total"] * 1.0000001
            assert covered >= modeled["total"] * 0.5

    def test_round_trips_through_loader(self, outcome, tmp_path):
        _, art = outcome
        path = art.write(tmp_path / "BENCH_measured.json")
        loaded = load_artifact(path)
        assert loaded.names() == art.names()
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA


def test_bit_identity_assertion_is_armed(monkeypatch):
    """run_scheme must actually compare the backends: poison the sim
    result and expect the assertion to fire."""
    real = backend_validation.sstep_gmres
    calls = {"n": 0}

    def poisoned(sim, b, **kwargs):
        res = real(sim, b, **kwargs)
        calls["n"] += 1
        if calls["n"] == 1:  # the backend="sim" reference run
            res.x = res.x + 1.0e-3
        return res

    monkeypatch.setattr(backend_validation, "sstep_gmres", poisoned)
    with pytest.raises(AssertionError, match="bit-identical|diverged"):
        backend_validation.run_scheme(
            "two-stage", nx=12, ranks=4, s=3, restart=9,
            tol=1e-8, maxiter=500, repeats=1)
