"""Experiment modules: structure and qualitative claims at tiny scale."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import fig6, fig7, fig8, fig9, fig10_12, fig13
from repro.experiments import sketch_stability
from repro.experiments import table2, table3, table4, ablations
from repro.experiments.common import ExperimentTable, fmt, resolve_machine, speedup


class TestCommon:
    def test_table_render_and_access(self):
        t = ExperimentTable("x", "title", headers=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        t.add_note("hello")
        out = t.render()
        assert "[x] title" in out and "hello" in out
        assert t.cell(0, 1) == 2
        assert t.column(0) == [1, 3]

    def test_resolve_machine(self):
        assert resolve_machine("summit").ranks_per_node == 6
        m = resolve_machine("vortex")
        assert resolve_machine(m) is m
        with pytest.raises(ConfigurationError):
            resolve_machine("cray-1")

    def test_fmt_and_speedup(self):
        assert fmt(0) == "0"
        assert fmt(123456) == "1.235e+05"
        assert fmt(1.5) == "1.5"
        assert speedup(10.0, 5.0) == "2.0x"
        assert speedup(10.0, 0.0) == "-"

    def test_to_csv_roundtrip(self, tmp_path):
        import csv
        t = ExperimentTable("x", "title", headers=["a", "b"])
        t.add_row(1, "two")
        t.add_note("a note")
        path = tmp_path / "out.csv"
        t.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# [x] title")
        assert lines[1] == "# note: a note"
        rows = list(csv.reader(lines[2:]))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "two"]


class TestNumericsFigures:
    def test_fig6_quick(self):
        t = fig6.run(n=2000, seeds=2, kappas=[1e2, 1e4])
        assert len(t.rows) == 2
        assert float(t.rows[0][2]) < float(t.rows[1][2])

    def test_fig7_quick(self):
        t = fig7.run(n=2000, seeds=2, kappas=[1e2, 1e4])
        assert float(t.rows[0][3]) < 1e-13  # err2 O(eps)

    def test_fig8_quick(self):
        t = fig8.run(n=3000, m=30, bs=15, s=5)
        assert len(t.rows) == 6  # one per panel
        assert "O(eps)" in t.notes[0] or "final" in t.notes[0]

    def test_fig9_quick(self):
        t = fig9.run(run_n=1500, m=20, s=5, bs=20,
                     matrices=["offshore", "Ga41As41H72"])
        rows = {r[0]: r for r in t.rows}
        assert rows["offshore"][1] == "moderate"
        assert rows["Ga41As41H72"][1] == "hard"


class TestSketchStability:
    def test_quick_sweep_shows_the_cliff(self):
        """Smoke-size variant of the acceptance claim: at kappa = 1e15
        the classical two-stage scheme breaks down or stagnates while
        the sketched variant converges to O(eps) orthogonality."""
        t = sketch_stability.run(n=800, k=20, kappas=[1e4, 1e15])
        rows = {r[0]: r for r in t.rows}
        benign, extreme = rows["1.000e+04"], rows["1.000e+15"]
        # both fine in the classical regime
        assert benign[2] == "ok" and benign[4] == "ok"
        # the cliff: classical fails, sketched converges
        assert extreme[2] in ("breakdown", "stagnated")
        assert extreme[4] == "ok"
        assert float(extreme[3]) < 1e-8

    def test_runner_dispatch(self, capsys):
        from repro.experiments.runner import main
        assert main(["sketch", "--n", "600", "--k", "10"]) == 0
        assert "sketched" in capsys.readouterr().out


class TestPerformanceTables:
    def test_table2_structure(self):
        t = table2.run()
        assert [r[0] for r in t.rows] == table2.CONFIGS
        ortho = [float(r[3]) for r in t.rows]
        assert ortho == sorted(ortho, reverse=True)

    def test_table2_measured_iterations_tiny(self):
        iters = table2.measured_iterations(nx=32, m=30, s=5, tol=1e-4,
                                           maxiter=4000)
        assert iters["two_stage_bs5"] % 5 == 0

    def test_table3_speedup_cells(self):
        t = table3.run(node_counts=[1, 4])
        assert len(t.rows) == 8
        gm = [r for r in t.rows if r[1] == "gmres"][0]
        assert gm[6] == "1.0x"

    def test_fig10_12_fractions_sum(self):
        t = fig10_12.run("fig11", node_counts=[1, 32])
        for row in t.rows:
            dot, upd, other, total = (float(row[i]) for i in (1, 2, 3, 4))
            # cells are 3-significant-digit strings; compare accordingly
            assert dot + upd + other == pytest.approx(total, rel=1e-2)

    def test_table4_all_matrices(self):
        t = table4.run(matrices=["ecology2", "ML_Geer"])
        assert len(t.rows) == 8

    def test_fig13_ordering(self):
        t = fig13.run(node_counts=[8])
        ortho = {r[1]: float(r[3]) for r in t.rows}
        assert (ortho["gmres"] > ortho["bcgs2"] > ortho["pip2"]
                > ortho["two_stage"])


class TestAblations:
    def test_a1(self):
        t = ablations.run_sync_vs_reuse(nodes=4)
        assert len(t.rows) == 2

    def test_a3_quick(self):
        t = ablations.run_basis_conditioning(nx=12, s_values=[2, 4])
        assert len(t.rows) == 2
        assert float(t.rows[0][1]) < float(t.rows[1][1])

    def test_a4_quick(self):
        t = ablations.run_step_size_cliff(n=2000, m=30)
        assert any(r[0] == 5 for r in t.rows)


class TestRunner:
    def test_dispatch_help(self, capsys):
        from repro.experiments.runner import main
        assert main([]) == 0
        assert "table3" in capsys.readouterr().out

    def test_dispatch_unknown(self, capsys):
        from repro.experiments.runner import main
        assert main(["bogus"]) == 2

    def test_dispatch_table3(self, capsys):
        from repro.experiments.runner import main
        assert main(["table3", "--nodes", "1"]) == 0
        assert "Strong scaling" in capsys.readouterr().out
