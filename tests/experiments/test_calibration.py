"""Calibration experiment: real quick fit plus gate-arming checks."""

from __future__ import annotations

import json

import pytest

from repro.bench.artifacts import SCHEMA, load_artifact
from repro.experiments import calibration
from repro.obs.calibrate import calibrate
from repro.obs.drift import DEFAULT_DRIFT_BOUND, DriftReport, PhaseDrift
from repro.obs.metrics import MetricsRegistry
from repro.parallel.machine import generic_cpu
from repro.parallel.tracing import Tracer


def test_bound_is_tighter_than_uncalibrated_gate():
    assert calibration.CALIBRATED_DRIFT_BOUND < DEFAULT_DRIFT_BOUND


class TestMaxFiniteRelError:
    def _report(self, errors):
        phases = tuple(
            PhaseDrift(phase=f"p{i}", modeled_seconds=1.0,
                       measured_seconds=1.0, modeled_share=0.5,
                       measured_share=0.5, rel_error=e, share_drift=0.1)
            for i, e in enumerate(errors))
        return DriftReport(phases=phases, modeled_total=1.0,
                           measured_total=1.0, scale=1.0)

    def test_ignores_inf_and_nan(self):
        rep = self._report([0.2, float("inf"), float("nan"), 0.7])
        assert calibration._max_finite_rel_error(rep) == 0.7

    def test_empty_report_is_zero(self):
        assert calibration._max_finite_rel_error(DriftReport()) == 0.0


def _fake_outcome(uncal_err, cal_err, uncal_drift, cal_drift):
    """A run_scheme() result with controlled drift numbers."""
    def report(err, drift):
        phase = PhaseDrift(phase="ortho", modeled_seconds=1.0,
                           measured_seconds=1.0, modeled_share=0.5,
                           measured_share=0.5 + drift, rel_error=err,
                           share_drift=drift)
        return DriftReport(phases=(phase,), modeled_total=1.0,
                           measured_total=1.0, scale=1.0)

    t = Tracer()
    t.add("dot", 1.0)
    totals = t.snapshot()
    reg = MetricsRegistry(generic_cpu(), 4)
    reg.observe("ortho", "dot", 1.0, 1, None, False)
    return {
        "scheme": "two-stage",
        "fit": calibrate([], base=generic_cpu()),
        "uncalibrated": report(uncal_err, uncal_drift),
        "calibrated": report(cal_err, cal_drift),
        "measured_totals": totals,
        "uncal_totals": totals,
        "cal_totals": totals,
        "measured_summary": {"n_spans": 0, "streams": {}},
        "metrics_snapshot": reg.snapshot(),
        "uncal_breakdown": {"total": 1.0},
        "cal_breakdown": {"total": 1.0},
        "measured_breakdown": {"total": 1.0},
    }


class TestGateIsArmed:
    """run() must enforce all three assertions, not just report."""

    def _patched(self, monkeypatch, **kw):
        monkeypatch.setattr(calibration, "run_scheme",
                            lambda *a, **k: _fake_outcome(**kw))
        return calibration.run(schemes=("two-stage",))

    def test_passes_when_strictly_better_and_bounded(self, monkeypatch):
        table, art, prom = self._patched(
            monkeypatch, uncal_err=1.0, cal_err=0.4,
            uncal_drift=0.4, cal_drift=0.1)
        assert len(table.rows) == 2
        assert art.names() == ["calibration[two-stage]"]
        assert "repro_kernel_seconds_total" in prom

    def test_rel_error_regression_trips(self, monkeypatch):
        with pytest.raises(AssertionError, match="relative error"):
            self._patched(monkeypatch, uncal_err=0.5, cal_err=0.5,
                          uncal_drift=0.4, cal_drift=0.1)

    def test_share_drift_regression_trips(self, monkeypatch):
        with pytest.raises(AssertionError, match="share drift"):
            self._patched(monkeypatch, uncal_err=1.0, cal_err=0.4,
                          uncal_drift=0.1, cal_drift=0.1)

    def test_tightened_bound_trips(self, monkeypatch):
        with pytest.raises(AssertionError, match="tightened bound"):
            self._patched(monkeypatch, uncal_err=1.0, cal_err=0.4,
                          uncal_drift=0.9, cal_drift=0.6)


@pytest.fixture(scope="module")
def outcome():
    """One real mp-run calibration at the nightly --quick size."""
    return calibration.run(nx=24, ranks=4, s=5, restart=12,
                           schemes=("two-stage",))


class TestRealRun:
    def test_calibrated_strictly_beats_uncalibrated(self, outcome):
        _, art, _ = outcome
        (rec,) = art.benchmarks
        assert (rec.extra["calibrated_max_rel_error"]
                < rec.extra["uncalibrated_max_rel_error"])
        assert (rec.extra["calibrated_drift"]["max_share_drift"]
                < rec.extra["uncalibrated_drift"]["max_share_drift"])
        assert (rec.extra["calibrated_drift"]["max_share_drift"]
                < calibration.CALIBRATED_DRIFT_BOUND)

    def test_fit_used_real_pairs(self, outcome):
        _, art, _ = outcome
        (rec,) = art.benchmarks
        fit = rec.extra["fit"]
        assert fit["n_net_pairs"] > 0 and fit["n_kernel_pairs"] > 0
        assert fit["machine"].endswith("-calibrated")
        # two-stage charges no driver-side collectives (the TSQR tree
        # ablation does); the exclusion path is unit-tested in
        # tests/obs/test_calibrate.py
        assert fit["n_driver_excluded"] == 0
        assert fit["span_mismatches"] == 0

    def test_artifact_round_trips(self, outcome, tmp_path):
        _, art, prom = outcome
        path = art.write(tmp_path / "BENCH_calibration.json")
        loaded = load_artifact(path)
        assert loaded.names() == art.names()
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        rec = doc["benchmarks"][0]
        assert rec["extra"]["metrics"]["totals"]["flops"] > 0.0
        assert rec["extra"]["measured_trace_summary"]["n_spans"] > 0

    def test_prometheus_snapshot_is_exposition_text(self, outcome):
        _, _, prom = outcome
        assert "# TYPE repro_kernel_seconds_total counter" in prom
        assert 'repro_net_bytes_total{kind="allreduce"}' in prom
        assert prom.endswith("\n")

    def test_table_rows_pair_models(self, outcome):
        table, _, _ = outcome
        labels = [(table.cell(r, 0), table.cell(r, 1))
                  for r in range(len(table.rows))]
        assert labels == [("two-stage", "uncalibrated"),
                          ("two-stage", "calibrated")]
