"""Smoke-size assertions of the precision_stability experiment claims."""

from __future__ import annotations

import numpy as np

from repro.experiments import precision_stability as ps
from repro.krylov.ir import gmres_ir
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.registry import get_scheme
from repro.parallel.machine import generic_cpu
from repro.utils.rng import default_rng, random_with_condition


class TestOrthoSweep:
    def test_dd_gram_survives_past_fp64_cliff(self):
        rng = default_rng(11)
        v = random_with_condition(800, 18, 1e9, rng)
        classical = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, breakdown="shift",
                                          gram="fp64"), v, 6)
        mixed = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, breakdown="shift",
                                          gram="dd"), v, 6)
        assert classical["status"] == "breakdown"
        assert mixed["status"] == "ok"
        assert mixed["error"] < 1e-13

    def test_fp32_storage_floors_error(self):
        rng = default_rng(12)
        v = random_with_condition(800, 18, 1e2, rng)
        res64 = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, gram="fp64"), v, 6,
            storage="fp64")
        res32 = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, gram="fp64"), v, 6,
            storage="fp32")
        assert res64["error"] < 1e-14
        assert 1e-14 < res32["error"] < 1e-5

    def test_fp32_storage_charges_less(self):
        rng = default_rng(13)
        v = random_with_condition(20_000, 18, 1e2, rng)
        t64 = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, gram="fp64"), v, 6,
            storage="fp64")["ortho_seconds"]
        t32 = ps.drive_distributed(
            get_scheme("mixed-two-stage")(big_step=18, gram="fp64"), v, 6,
            storage="fp32")["ortho_seconds"]
        assert t32 < t64

    def test_table_renders(self):
        table = ps.run_ortho(n=400, k=12, s=4, kappas=(1e2, 1e9))
        text = table.render()
        assert "dd-gram" in text
        assert "kappa" in text


class TestIRAcceptance:
    def test_fp32_ir_reaches_fp64_level_backward_error(self):
        """THE acceptance criterion: GMRES-IR with fp32 storage converges
        to fp64-level backward error on the experiment matrices."""
        a = laplace2d(20)
        sim64 = Simulation(a, ranks=4, machine=generic_cpu())
        b = sim64.ones_solution_rhs()
        fp64 = sstep_gmres(sim64, b, s=5, restart=30, tol=1e-12,
                           maxiter=20_000)
        ir32 = gmres_ir(Simulation(a, ranks=4, machine=generic_cpu()), b,
                        precision="fp32", tol=1e-12, s=5, restart=30)
        be64 = np.linalg.norm(b - a @ fp64.x) / np.linalg.norm(b)
        be32 = np.linalg.norm(b - a @ ir32.x) / np.linalg.norm(b)
        assert ir32.converged
        assert be32 < max(10.0 * be64, 1e-11)

    def test_ir_table_renders(self):
        table = ps.run_ir(nx=12, maxiter=1200)
        text = table.render()
        assert "GMRES-IR" in text
        assert "true rel res" in text
