"""The analytic estimator must match the live simulator per cycle."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.estimator import CycleCostEstimator, PrecondShape, ProblemShape
from repro.krylov.gmres import gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import summit


NX = 24
M = 20
S = 5


def live_cycle_times(scheme=None, solver="sstep"):
    """Run exactly one restart cycle live; return phase seconds."""
    sim = Simulation(laplace2d(NX), ranks=6, machine=summit())
    b = sim.ones_solution_rhs()
    if solver == "sstep":
        res = sstep_gmres(sim, b, s=S, restart=M, tol=1e-30, maxiter=M,
                          scheme=scheme)
    else:
        res = gmres(sim, b, restart=M, tol=1e-30, maxiter=M)
    assert res.iterations == M
    times = dict(res.times)
    return times


def estimator():
    return CycleCostEstimator(summit(), ranks=6,
                              shape=ProblemShape.stencil2d(NX, stencil=5),
                              m=M, s=S)


REL = 0.02  # estimator must be within 2% of the live simulator


class TestEstimatorMatchesLiveRun:
    def test_standard_gmres(self):
        live = live_cycle_times(solver="standard")
        est = estimator().phase_seconds(estimator().standard_gmres_cycle())
        for phase in ("spmv", "ortho", "total"):
            assert est[phase] == pytest.approx(live[phase], rel=REL), phase

    def test_bcgs2(self):
        live = live_cycle_times(BCGS2Scheme())
        est = estimator().phase_seconds(estimator().sstep_cycle("bcgs2"))
        for phase in ("spmv", "ortho", "total"):
            assert est[phase] == pytest.approx(live[phase], rel=REL), phase

    def test_pip2(self):
        live = live_cycle_times(BCGSPIP2Scheme())
        est = estimator().phase_seconds(estimator().sstep_cycle("pip2"))
        for phase in ("spmv", "ortho", "total"):
            assert est[phase] == pytest.approx(live[phase], rel=REL), phase

    @pytest.mark.parametrize("bs", [5, 10, 20])
    def test_two_stage(self, bs):
        live = live_cycle_times(TwoStageScheme(big_step=bs))
        est = estimator().phase_seconds(
            estimator().sstep_cycle("two_stage", bs=bs))
        for phase in ("spmv", "ortho", "total"):
            assert est[phase] == pytest.approx(live[phase], rel=REL), phase


class TestEstimatorStructure:
    def test_ortho_ordering_at_scale(self):
        """At 32 Summit nodes the paper's ordering must hold:
        CGS2 > BCGS2 > PIP2 > two-stage(bs=m)."""
        est = CycleCostEstimator(summit(), ranks=192,
                                 shape=ProblemShape.stencil2d(2000, 9),
                                 m=60, s=5)
        cgs2 = est.phase_seconds(est.standard_gmres_cycle())["ortho"]
        bcgs2 = est.phase_seconds(est.sstep_cycle("bcgs2"))["ortho"]
        pip2 = est.phase_seconds(est.sstep_cycle("pip2"))["ortho"]
        two = est.phase_seconds(est.sstep_cycle("two_stage", bs=60))["ortho"]
        assert cgs2 > bcgs2 > pip2 > two

    def test_two_stage_bs_monotone(self):
        est = CycleCostEstimator(summit(), ranks=4,
                                 shape=ProblemShape.stencil2d(2000, 5),
                                 m=60, s=5)
        times = [est.phase_seconds(est.sstep_cycle("two_stage", bs=bs))["ortho"]
                 for bs in (5, 20, 40, 60)]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_sync_counts_per_cycle(self):
        est = estimator()
        m_over_s = M // S
        # standard GMRES: 3 reduces/iter + residual norm
        t = est.standard_gmres_cycle()
        assert t.sync_count() == 3 * M + 1
        # pip2: 2 per panel + residual norm
        t = est.sstep_cycle("pip2")
        assert t.sync_count() == 2 * m_over_s + 1
        # bcgs2: 5 per panel after the first (CholQR2 only = 2 for
        # panel 1) + norm
        t = est.sstep_cycle("bcgs2")
        assert t.sync_count() == 5 * (m_over_s - 1) + 2 + 1
        # two-stage bs=m: 1 per panel + 1 big + norm
        t = est.sstep_cycle("two_stage", bs=M)
        assert t.sync_count() == m_over_s + 1 + 1

    def test_precond_adds_phase(self):
        est = CycleCostEstimator(summit(), ranks=6,
                                 shape=ProblemShape.stencil2d(NX, 5),
                                 m=M, s=S, precond=PrecondShape())
        out = est.phase_seconds(est.sstep_cycle("pip2"))
        assert out["precond"] > 0

    def test_errors(self):
        est = estimator()
        with pytest.raises(ConfigurationError):
            est.sstep_cycle("two_stage")
        with pytest.raises(ConfigurationError):
            est.sstep_cycle("nope")
        with pytest.raises(ConfigurationError):
            CycleCostEstimator(summit(), 2, ProblemShape.stencil2d(10), 3, 5)

    def test_irregular_shape_halo_capped(self):
        sh = ProblemShape.irregular(1000, 50.0, ranks=2)
        assert sh.halo_cols <= 500
