"""Sanity checks of the CI pipeline configuration itself.

Equivalent-of-actionlint guard: the workflow must stay parseable, every
job must have steps, and the commands CI runs must reference files that
exist — so a rename cannot silently turn CI green-by-vacuity.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"


class TestWorkflow:
    def test_workflow_exists(self):
        assert WORKFLOW.is_file()

    def test_workflow_structure(self):
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        jobs = doc["jobs"]
        assert {"lint", "tier1", "bench-smoke"} <= set(jobs)
        for name, spec in jobs.items():
            assert spec.get("steps"), f"job {name} has no steps"
            for step in spec["steps"]:
                assert "uses" in step or "run" in step, (name, step)
        # tier-1 command matches ROADMAP.md's verify line
        runs = "\n".join(step.get("run", "")
                         for step in jobs["tier1"]["steps"])
        assert "PYTHONPATH=src python -m pytest -x -q" in runs

    def test_referenced_files_exist(self):
        text = WORKFLOW.read_text()
        for ref in ("scripts/compare_bench.py",
                    "benchmarks/bench_kernels.py",
                    "benchmarks/BENCH_kernels.json",
                    "benchmarks/bench_sketch_kernels.py",
                    "benchmarks/BENCH_sketch.json"):
            assert ref in text, f"{ref} not exercised by CI"
            assert (REPO / ref).exists(), f"{ref} missing from repo"


class TestCommittedBaseline:
    def test_baseline_artifact_loads(self):
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_kernels.json")
        assert art.name == "kernels"

    def test_baseline_records_batched_speedup(self):
        """The committed artifact proves the acceptance claim: >=1.5x on
        block_dot and block_axpy at >=16 simulated ranks."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_kernels.json")
        for name in ("test_block_dot", "test_block_axpy"):
            assert art.speedup(f"{name}[loop]", f"{name}[batched]") >= 1.5
            assert art.record(f"{name}[batched]").extra["ranks"] >= 16

    def test_sketch_baseline_artifact(self):
        """The committed sketch baseline covers every operator family
        under both engines, with engine-identical modeled costs."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_sketch.json")
        assert art.name == "sketch"
        for family in ("sparse", "gaussian", "srht"):
            loop = art.record(f"test_sketch_apply[{family}-loop]")
            batched = art.record(f"test_sketch_apply[{family}-batched]")
            assert loop.extra["modeled_seconds"] == \
                batched.extra["modeled_seconds"]


class TestPyproject:
    def test_markers_registered(self):
        tomllib = pytest.importorskip("tomllib")
        doc = tomllib.loads((REPO / "pyproject.toml").read_text())
        markers = doc["tool"]["pytest"]["ini_options"]["markers"]
        names = {m.split(":")[0] for m in markers}
        assert {"slow", "bench"} <= names

    def test_ruff_configured(self):
        tomllib = pytest.importorskip("tomllib")
        doc = tomllib.loads((REPO / "pyproject.toml").read_text())
        assert "ruff" in doc["tool"]
