"""Sanity checks of the CI pipeline configuration itself.

Equivalent-of-actionlint guard: the workflow must stay parseable, every
job must have steps, and the commands CI runs must reference files that
exist — so a rename cannot silently turn CI green-by-vacuity.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"


class TestWorkflow:
    def test_workflow_exists(self):
        assert WORKFLOW.is_file()

    def test_workflow_structure(self):
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        jobs = doc["jobs"]
        assert {"lint", "tier1", "bench-smoke", "nightly"} <= set(jobs)
        for name, spec in jobs.items():
            assert spec.get("steps"), f"job {name} has no steps"
            for step in spec["steps"]:
                assert "uses" in step or "run" in step, (name, step)
        # tier-1 command matches ROADMAP.md's verify line
        runs = "\n".join(step.get("run", "")
                         for step in jobs["tier1"]["steps"])
        assert "PYTHONPATH=src python -m pytest -x -q" in runs

    def test_tier1_engine_matrix(self):
        """Both kernel engines are first-class tier-1 matrix legs (not a
        bolt-on second pytest step)."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        tier1 = doc["jobs"]["tier1"]
        matrix = tier1["strategy"]["matrix"]
        assert set(matrix["engine"]) == {"batched", "loop"}
        assert len(matrix["python-version"]) >= 3
        runs = "\n".join(step.get("run", "") for step in tier1["steps"])
        assert "REPRO_ENGINE=${{ matrix.engine }}" in runs
        # exactly one pytest invocation: the engine axis replaced the
        # old second step
        assert runs.count("python -m pytest") == 1

    def test_tier1_mp_smoke_step(self):
        """The real-process backend smoke is a separate non-pytest step
        under a hard timeout, so a deadlocked worker kills the step
        instead of hanging the whole test job."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        tier1 = doc["jobs"]["tier1"]
        smoke = [step for step in tier1["steps"]
                 if "mp_smoke" in step.get("run", "")]
        assert smoke, "tier-1 has no MpComm smoke step"
        run = smoke[0]["run"]
        assert "timeout" in run
        assert "pytest" not in run
        assert "scripts/mp_smoke.py" in run

    def test_tier1_docs_lint_step(self):
        """The docs linter runs as a standalone non-pytest tier-1 step
        (the engine-matrix contract keeps a single pytest invocation per
        leg; dead-link checking needs no test session anyway)."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        tier1 = doc["jobs"]["tier1"]
        lint = [step for step in tier1["steps"]
                if "docs_lint" in step.get("run", "")]
        assert lint, "tier-1 has no docs lint step"
        run = lint[0]["run"]
        assert "pytest" not in run
        assert "scripts/docs_lint.py" in run

    def test_setup_python_uses_pip_cache(self):
        """Every setup-python step caches pip to keep matrix wall-clock
        flat."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        seen = 0
        for name, spec in doc["jobs"].items():
            for step in spec["steps"]:
                if "setup-python" in str(step.get("uses", "")):
                    seen += 1
                    assert step["with"].get("cache") == "pip", (
                        f"job {name}: setup-python step without pip cache")
        assert seen >= 4

    def test_nightly_job(self):
        """The scheduled nightly runs the full suite including slow
        tests plus the experiment smokes, and uploads their artifacts."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        # a schedule trigger exists (yaml parses the 'on' key as True)
        triggers = doc.get("on") or doc.get(True)
        assert "schedule" in triggers
        assert triggers["schedule"][0]["cron"].split()[:2] != ["0", "0"]
        nightly = doc["jobs"]["nightly"]
        assert "schedule" in nightly["if"]
        assert set(nightly["strategy"]["matrix"]["engine"]) == {"batched",
                                                               "loop"}
        runs = "\n".join(step.get("run", "") for step in nightly["steps"])
        assert "slow" in runs
        assert "sketch_stability" in runs
        assert "rgs_convergence" in runs
        assert "precision_stability" in runs
        assert "ca_mpk_tradeoff" in runs
        # the overlap-window trade-off smoke drops BENCH_overlap.json
        # and trace_overlap.json into the uploaded dir
        overlap_step = next((s.get("run", "") for s in nightly["steps"]
                             if "overlap_tradeoff" in s.get("run", "")),
                            "")
        assert overlap_step, "nightly has no overlap_tradeoff smoke"
        assert "--quick" in overlap_step
        assert "--out experiment-out" in overlap_step
        # the service-throughput smoke re-asserts the batching claims
        # nightly and drops BENCH_service.json into the uploaded dir
        assert "service_throughput --quick" in runs, (
            "nightly has no service_throughput smoke")
        assert "tee experiment-out/service_throughput.txt" in runs
        # predicted-vs-measured validation runs nightly under a hard
        # timeout and drops BENCH_measured.json into the uploaded dir
        assert "backend_validation" in runs
        assert "timeout" in runs
        assert "--out experiment-out" in runs
        uploads = [step for step in nightly["steps"]
                   if "upload-artifact" in str(step.get("uses", ""))]
        assert uploads and uploads[0]["with"]["path"] == "experiment-out/"
        # nightly-only jobs must not run the PR matrix twice
        assert doc["jobs"]["tier1"]["if"] == "github.event_name != 'schedule'"

    def test_nightly_trace_summarize_smoke(self):
        """The Chrome traces backend_validation writes into the uploaded
        artifact dir must stay loadable by the repro-trace CLI."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        steps = doc["jobs"]["nightly"]["steps"]
        smoke = [s for s in steps if "repro.obs.cli" in s.get("run", "")]
        assert smoke, "nightly has no repro-trace summarize smoke step"
        run = smoke[0]["run"]
        assert "summarize" in run and "diff" in run
        assert "experiment-out/trace_" in run
        # trace smoke runs after the step that produces the traces
        runs = [s.get("run", "") for s in steps]
        assert (runs.index(run)
                > runs.index(next(r for r in runs
                                  if "backend_validation" in r)))

    def test_nightly_calibration_step(self):
        """The LogGP calibration experiment runs nightly under a hard
        timeout and drops BENCH_calibration.json plus the Prometheus
        metrics snapshot into the uploaded experiment-out/ directory."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        steps = doc["jobs"]["nightly"]["steps"]
        cal = [s for s in steps
               if "repro.experiments.calibration" in s.get("run", "")]
        assert cal, "nightly has no calibration step"
        run = cal[0]["run"]
        assert "--quick" in run
        assert "--out experiment-out" in run
        assert "timeout" in run
        # runs after the backend validation it mirrors, before upload
        runs = [s.get("run", "") for s in steps]
        assert (runs.index(run)
                > runs.index(next(r for r in runs
                                  if "backend_validation" in r)))
        uploads = [i for i, s in enumerate(steps)
                   if "upload-artifact" in str(s.get("uses", ""))]
        assert steps.index(cal[0]) < uploads[0]

    def test_bench_smoke_span_overhead_gate(self):
        """bench-smoke asserts the disabled span path stays free and
        charge-identical, protecting the committed baselines."""
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        runs = "\n".join(step.get("run", "")
                         for step in doc["jobs"]["bench-smoke"]["steps"])
        assert "scripts/span_overhead_check.py" in runs

    def test_bench_smoke_gates_all_baselines(self):
        yaml = pytest.importorskip("yaml")
        doc = yaml.safe_load(WORKFLOW.read_text())
        runs = "\n".join(step.get("run", "")
                         for step in doc["jobs"]["bench-smoke"]["steps"])
        for artifact in ("BENCH_kernels", "BENCH_sketch", "BENCH_gmres",
                         "BENCH_precision", "BENCH_mpk", "BENCH_service"):
            assert (f"benchmarks/{artifact}.json" in runs
                    and f"bench-out/{artifact}.json" in runs), (
                f"{artifact} not gated against its committed baseline")
        assert "--threshold 3.0" in runs

    def test_referenced_files_exist(self):
        text = WORKFLOW.read_text()
        for ref in ("scripts/compare_bench.py",
                    "scripts/mp_smoke.py",
                    "scripts/span_overhead_check.py",
                    "scripts/docs_lint.py",
                    "benchmarks/bench_kernels.py",
                    "benchmarks/BENCH_kernels.json",
                    "benchmarks/bench_sketch_kernels.py",
                    "benchmarks/BENCH_sketch.json",
                    "benchmarks/bench_sstep_gmres.py",
                    "benchmarks/BENCH_gmres.json",
                    "benchmarks/bench_precision_kernels.py",
                    "benchmarks/BENCH_precision.json",
                    "benchmarks/bench_mpk.py",
                    "benchmarks/BENCH_mpk.json",
                    "benchmarks/BENCH_service.json",
                    "src/repro/experiments/sketch_stability.py",
                    "src/repro/experiments/rgs_convergence.py",
                    "src/repro/experiments/precision_stability.py",
                    "src/repro/experiments/ca_mpk_tradeoff.py",
                    "src/repro/experiments/overlap_tradeoff.py",
                    "src/repro/experiments/backend_validation.py",
                    "src/repro/experiments/calibration.py",
                    "src/repro/experiments/service_throughput.py"):
            path = ref
            if ref.startswith("src/repro/experiments/"):
                # referenced as a module invocation in the nightly job
                module = ref.removeprefix("src/repro/experiments/")
                assert module.removesuffix(".py") in text, (
                    f"{ref} not exercised by CI")
            else:
                assert ref in text, f"{ref} not exercised by CI"
            assert (REPO / path).exists(), f"{ref} missing from repo"


class TestCommittedBaseline:
    def test_baseline_artifact_loads(self):
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_kernels.json")
        assert art.name == "kernels"

    def test_baseline_records_batched_speedup(self):
        """The committed artifact proves the acceptance claim: >=1.5x on
        block_dot and block_axpy at >=16 simulated ranks."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_kernels.json")
        for name in ("test_block_dot", "test_block_axpy"):
            assert art.speedup(f"{name}[loop]", f"{name}[batched]") >= 1.5
            assert art.record(f"{name}[batched]").extra["ranks"] >= 16

    def test_sketch_baseline_artifact(self):
        """The committed sketch baseline covers every operator family
        under both engines, with engine-identical modeled costs."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_sketch.json")
        assert art.name == "sketch"
        for family in ("sparse", "gaussian", "srht"):
            loop = art.record(f"test_sketch_apply[{family}-loop]")
            batched = art.record(f"test_sketch_apply[{family}-batched]")
            assert loop.extra["modeled_seconds"] == \
                batched.extra["modeled_seconds"]

    def test_precision_baseline_artifact(self):
        """The committed precision baseline proves the storage-precision
        claim: fp32 panels are charged roughly half the fp64 bytes, with
        engine-identical modeled costs."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_precision.json")
        assert art.name == "precision"
        for kernel in ("test_block_dot", "test_block_update"):
            for engine in ("loop", "batched"):
                m64 = art.record(f"{kernel}[fp64-{engine}]").extra[
                    "modeled_seconds"]
                m32 = art.record(f"{kernel}[fp32-{engine}]").extra[
                    "modeled_seconds"]
                assert m32 < 0.65 * m64, (kernel, engine)
            assert art.record(f"{kernel}[fp64-loop]").extra[
                "modeled_seconds"] == art.record(
                f"{kernel}[fp64-batched]").extra["modeled_seconds"]
        ir = art.record("test_gmres_ir_fp32")
        assert ir.extra["refinements"] >= 1
        assert ir.extra["iterations"] > 0

    def test_fp64_charged_costs_match_committed_sketch_baseline(self):
        """Regression net for the word-size parameterization: recomputing
        a committed benchmark's modeled seconds with today's cost model
        must reproduce the recorded fp64 value to ~1 ulp (a wrong word
        size would be off by 2x; the tolerance only absorbs last-digit
        noise from the environment the artifact was recorded on)."""
        import math

        import numpy as np

        from repro.bench.artifacts import load_artifact
        from repro.distla.multivector import DistMultiVector
        from repro.parallel.communicator import SimComm
        from repro.parallel.machine import generic_cpu
        from repro.parallel.partition import Partition
        from repro.parallel.tracing import Tracer
        from repro.sketch import make_operator, sketch_multivector, \
            sketch_rows

        art = load_artifact(REPO / "benchmarks" / "BENCH_sketch.json")
        n, ranks, k = 8_192, 64, 30  # bench_sketch_kernels.py constants
        comm = SimComm(generic_cpu(), ranks, Tracer())
        part = Partition(n, ranks)
        basis = DistMultiVector.from_global(
            np.random.default_rng(0).standard_normal((n, k)), part, comm)
        for family in ("sparse", "gaussian", "srht"):
            m = sketch_rows(k, n, family=family)
            op = make_operator(family, n, m, seed=0xC0FFEE)
            before = comm.tracer.clock
            sketch_multivector(basis, op)
            modeled = comm.tracer.clock - before
            rec = art.record(f"test_sketch_apply[{family}-batched]")
            assert math.isclose(modeled, rec.extra["modeled_seconds"],
                                rel_tol=1e-12), family

    def test_mpk_baseline_artifact(self):
        """The committed MPK baseline proves the CA acceptance claims:
        1 halo exchange per panel (vs s per panel standard), modeled
        speedup > 1 in a latency-dominated regime, engine-identical
        modeled seconds."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_mpk.json")
        assert art.name == "mpk"
        for mode, halos in (("standard", 30), ("ca", 6)):
            loop = art.record(f"test_mpk_basis[{mode}-loop]")
            batched = art.record(f"test_mpk_basis[{mode}-batched]")
            assert loop.extra["halo_count"] == halos
            assert loop.extra["modeled_seconds"] == \
                batched.extra["modeled_seconds"]
        lat = art.record("test_mpk_ca_latency_speedup")
        assert lat.extra["modeled_speedup_lat16x"] > 1.0
        assert lat.extra["halo_ca"] < lat.extra["halo_standard"]

    def test_gmres_baseline_artifact(self):
        """The committed end-to-end solver baseline covers the classical
        pipeline under both engines plus the randomized solve path, with
        engine-identical modeled solver seconds."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_gmres.json")
        assert art.name == "gmres"
        loop = art.record("test_solve_two_stage[loop]")
        batched = art.record("test_solve_two_stage[batched]")
        assert loop.extra["modeled_seconds"] == \
            batched.extra["modeled_seconds"]
        assert loop.extra["iterations"] == batched.extra["iterations"]
        rgs = art.record("test_solve_rgs_sketched")
        assert rgs.extra["iterations"] > 0
        assert art.record("test_solve_bcgs_pip2").extra["sync_count"] > 0

    def test_service_baseline_artifact(self):
        """The committed service baseline proves the batching acceptance
        claim: width-8 >= 3x width-1 solves/sec on the latency-dominated
        machine, per-dispatch collective counts width-invariant, and
        every width bit-identical to independent solves."""
        from repro.bench.artifacts import load_artifact
        art = load_artifact(REPO / "benchmarks" / "BENCH_service.json")
        assert art.name == "service"
        assert art.record(
            "service[summit_lat16x,w8]").extra["speedup"] >= 3.0
        for machine in ("summit", "summit_lat16x"):
            recs = [art.record(f"service[{machine},w{w}]")
                    for w in (1, 2, 4, 8)]
            counts = [r.extra["counts_per_batch"] for r in recs]
            assert all(c == counts[0] for c in counts)
            assert all(r.extra["bit_identical"] for r in recs)


class TestPyproject:
    def test_markers_registered(self):
        tomllib = pytest.importorskip("tomllib")
        doc = tomllib.loads((REPO / "pyproject.toml").read_text())
        markers = doc["tool"]["pytest"]["ini_options"]["markers"]
        names = {m.split(":")[0] for m in markers}
        assert {"slow", "bench"} <= names

    def test_ruff_configured(self):
        tomllib = pytest.importorskip("tomllib")
        doc = tomllib.loads((REPO / "pyproject.toml").read_text())
        assert "ruff" in doc["tool"]
