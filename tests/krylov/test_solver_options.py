"""SolverOptions: validation, the deprecated-kwarg shim, and wiring."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.krylov.options import (
    DEFAULT_RESKETCH_THRESHOLD,
    MPK_SOLVER_MODES,
    SOLVE_MODES,
    SolverOptions,
)
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu


def make_sim():
    return Simulation(laplace2d(12), ranks=4, machine=generic_cpu())


def solve(sim, **kwargs):
    b = np.ones(sim.n)
    return sstep_gmres(sim, b, s=3, restart=9, tol=1e-8,
                       scheme=TwoStageScheme(9), **kwargs)


class TestDataclass:
    def test_defaults(self):
        opts = SolverOptions()
        assert opts.solve_mode == "classical"
        assert opts.mpk_mode == "standard"
        assert opts.precision is None
        assert opts.resketch_threshold == DEFAULT_RESKETCH_THRESHOLD

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SolverOptions().solve_mode = "sketched"

    def test_invalid_solve_mode(self):
        with pytest.raises(ConfigurationError, match="solve_mode"):
            SolverOptions(solve_mode="quantum")

    def test_invalid_mpk_mode(self):
        with pytest.raises(ConfigurationError, match="mpk_mode"):
            SolverOptions(mpk_mode="telepathy")

    def test_replace_revalidates(self):
        opts = SolverOptions().replace(solve_mode="sketched")
        assert opts.solve_mode == "sketched"
        with pytest.raises(ConfigurationError):
            opts.replace(mpk_mode="nope")

    def test_mode_constants(self):
        assert SOLVE_MODES == ("classical", "sketched", "adaptive")
        assert MPK_SOLVER_MODES == ("standard", "ca", "ca_overlap", "auto")

    def test_constants_reexported_from_solver_module(self):
        import importlib
        mod = importlib.import_module("repro.krylov.sstep_gmres")
        assert mod.SOLVE_MODES is SOLVE_MODES
        assert mod.MPK_SOLVER_MODES is MPK_SOLVER_MODES
        assert mod.DEFAULT_RESKETCH_THRESHOLD == DEFAULT_RESKETCH_THRESHOLD

    def test_top_level_exports(self):
        assert repro.SolverOptions is SolverOptions
        assert "SolverOptions" in repro.__all__
        assert "make_comm" in repro.__all__
        assert repro.make_comm is repro.parallel.make_comm


class TestOptionsPath:
    def test_options_drive_the_solve(self):
        sim = make_sim()
        res = solve(sim, options=SolverOptions(solve_mode="sketched",
                                               sketch_seed=11))
        assert res.converged
        assert res.diagnostics["solve_mode"] == "sketched"

    def test_none_options_means_defaults(self):
        sim = make_sim()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation noise
            res = solve(sim)
        assert res.converged
        assert "solve_mode" not in res.diagnostics


class TestDeprecatedKwargShim:
    def test_legacy_kwargs_warn_but_work(self):
        sim = make_sim()
        with pytest.warns(DeprecationWarning, match="SolverOptions"):
            res = solve(sim, solve_mode="sketched", sketch_seed=11)
        assert res.converged
        assert res.diagnostics["solve_mode"] == "sketched"

    def test_legacy_and_options_give_identical_results(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            res_legacy = solve(make_sim(), solve_mode="sketched",
                               sketch_seed=11)
        res_opts = solve(make_sim(),
                         options=SolverOptions(solve_mode="sketched",
                                               sketch_seed=11))
        assert res_legacy.x.tobytes() == res_opts.x.tobytes()
        assert res_legacy.iterations == res_opts.iterations

    def test_mixing_options_and_legacy_raises(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError, match="not both"):
            solve(sim, options=SolverOptions(), mpk_mode="ca")

    def test_unknown_kwarg_is_type_error(self):
        sim = make_sim()
        with pytest.raises(TypeError, match="unexpected keyword"):
            solve(sim, solver_mode="sketched")  # typo'd name

    def test_legacy_validation_still_configuration_error(self):
        sim = make_sim()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError, match="solve_mode"):
                solve(sim, solve_mode="quantum")


class TestDownstreamWiring:
    def test_gmres_ir_builds_options_without_warning(self):
        from repro.krylov.ir import gmres_ir
        sim = make_sim()
        b = np.ones(sim.n)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = gmres_ir(sim, b, s=3, restart=9, tol=1e-10,
                           mpk_mode="standard")  # loose knob, no warning
        assert res.converged

    def test_gmres_ir_options_base(self):
        from repro.krylov.ir import gmres_ir
        sim = make_sim()
        b = np.ones(sim.n)
        res = gmres_ir(sim, b, s=3, restart=9, tol=1e-10,
                       options=SolverOptions(solve_mode="sketched",
                                             precision="fp16"))
        # gmres_ir's precision contract overrides the options field
        assert res.converged
        assert res.diagnostics["precision"] == "fp32"

    def test_gmres_ir_rejects_options_plus_knobs(self):
        from repro.krylov.ir import gmres_ir
        sim = make_sim()
        with pytest.raises(ConfigurationError, match="options"):
            gmres_ir(sim, np.ones(sim.n), options=SolverOptions(),
                     mpk_mode="ca")

    def test_adaptive_forwards_options(self):
        from repro.krylov.adaptive import adaptive_sstep_gmres
        sim = make_sim()
        res = adaptive_sstep_gmres(
            sim, np.ones(sim.n), s_max=3, restart=9, tol=1e-8,
            options=SolverOptions(solve_mode="sketched", sketch_seed=5))
        assert res.converged
        assert res.diagnostics["solve_mode"] == "sketched"
