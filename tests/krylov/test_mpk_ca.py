"""Communication-avoiding MPK: bit-identity, communication profile,
preconditioner composition, degenerate paths."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro import config
from repro.exceptions import ConfigurationError
from repro.krylov.basis import ChebyshevBasis, MonomialBasis, NewtonBasis
from repro.krylov.mpk import MPK_MODES, MatrixPowersKernel, \
    PreconditionedOperator
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.polynomial import ChebyshevPreconditioner

ENGINES = ["loop", "batched"]


def make_basis(sim, k, rng, storage="fp64"):
    basis = sim.zeros(k, storage=storage)
    v0 = rng.standard_normal(sim.n)
    v0 /= np.linalg.norm(v0)
    basis.view_cols(0).assign_from(sim.vector_from(v0, storage=storage))
    return basis


def generate(mode, engine, *, nx=12, ranks=4, poly=None, precond_factory=None,
             panels=((1, 6), (6, 9)), storage="fp64", seed=3):
    with config.engine_scope(engine):
        sim = Simulation(laplace2d(nx), ranks=ranks, machine=generic_cpu(),
                         engine=engine)
        pc = (precond_factory().setup(sim.matrix)
              if precond_factory is not None else None)
        op = PreconditionedOperator(sim.matrix, pc)
        mpk = MatrixPowersKernel(op, poly, mode=mode)
        basis = make_basis(sim, max(hi for _, hi in panels),
                           np.random.default_rng(seed), storage=storage)
        for lo, hi in panels:
            mpk.extend(basis, lo, hi)
        return basis.to_global(), sim.tracer


POLYS = {
    "monomial": MonomialBasis,
    "newton": lambda: NewtonBasis(np.array([0.4, 1.3, 2.9, 4.1, 5.5])),
    "chebyshev": lambda: ChebyshevBasis(0.1, 8.0),
}


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("poly", sorted(POLYS))
    def test_ca_matches_standard(self, engine, poly):
        std, _ = generate("standard", engine, poly=POLYS[poly]())
        ca, _ = generate("ca", engine, poly=POLYS[poly]())
        np.testing.assert_array_equal(std, ca)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("pc", [JacobiPreconditioner,
                                    BlockJacobiPreconditioner])
    def test_ca_matches_standard_preconditioned(self, engine, pc):
        std, _ = generate("standard", engine, precond_factory=pc)
        ca, _ = generate("ca", engine, precond_factory=pc)
        np.testing.assert_array_equal(std, ca)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_matches_standard_three_term_preconditioned(self, engine):
        """Chebyshev recurrence (gamma != 0) reaches back across the
        panel boundary — the prev vector rides in the same exchange."""
        std, _ = generate("standard", engine,
                          poly=ChebyshevBasis(0.1, 8.0),
                          precond_factory=BlockJacobiPreconditioner)
        ca, _ = generate("ca", engine, poly=ChebyshevBasis(0.1, 8.0),
                         precond_factory=BlockJacobiPreconditioner)
        np.testing.assert_array_equal(std, ca)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_matches_standard_fp32_storage(self, engine):
        std, _ = generate("standard", engine, storage="fp32")
        ca, _ = generate("ca", engine, storage="fp32")
        np.testing.assert_array_equal(std, ca)

    def test_engines_bit_identical_in_ca_mode(self):
        loop, _ = generate("ca", "loop", poly=POLYS["newton"]())
        batched, _ = generate("ca", "batched", poly=POLYS["newton"]())
        np.testing.assert_array_equal(loop, batched)


class TestCommunicationProfile:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_one_exchange_per_panel(self, engine):
        _, tr_std = generate("standard", engine)
        _, tr_ca = generate("ca", engine)
        # two panels of 5 + 3 steps: standard pays one halo per step
        assert tr_std.kernel_count("spmv", "halo") == 8
        assert tr_ca.kernel_count("spmv", "halo") == 2

    def test_same_spmv_call_count(self):
        _, tr_std = generate("standard", "loop")
        _, tr_ca = generate("ca", "loop")
        assert (tr_std.kernel_count("spmv", "spmv_local")
                == tr_ca.kernel_count("spmv", "spmv_local") == 8)

    def test_ca_charges_redundant_work(self):
        """CA's local SpMV seconds exceed standard's (ghost rings are
        recomputed) while its halo seconds shrink."""
        _, tr_std = generate("standard", "loop", nx=16, ranks=8)
        _, tr_ca = generate("ca", "loop", nx=16, ranks=8)
        assert (tr_ca.kernel_seconds("spmv", "spmv_local")
                > tr_std.kernel_seconds("spmv", "spmv_local"))
        assert (tr_ca.kernel_seconds("spmv", "halo")
                < tr_std.kernel_seconds("spmv", "halo"))

    def test_s1_panels_degenerate_to_standard_costs(self):
        """With s=1 panels the depth-1 closure IS the standard halo, so
        beyond the one-time plan analysis CA charges exactly the
        standard kernel's modeled time."""
        panels = tuple((k, k + 1) for k in range(1, 7))
        _, tr_std = generate("standard", "loop", panels=panels)
        _, tr_ca = generate("ca", "loop", panels=panels)
        assert tr_std.kernel_count("spmv", "halo") == 6
        assert tr_ca.kernel_count("spmv", "halo") == 6
        plan_setup = tr_ca.kernel_seconds("spmv", "ghost_plan")
        assert plan_setup > 0.0  # charged once, on the cache miss
        assert tr_ca.kernel_count("spmv", "ghost_plan") == 1
        assert (tr_ca.clock - plan_setup
                == pytest.approx(tr_std.clock, rel=1e-12))


class TestDegeneratePaths:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("ranks", [1, 3])
    def test_ghost_level_zero_block_diagonal(self, engine, ranks):
        """No inter-rank coupling: empty ghost regions, zero-byte
        exchange, still bit-identical under both engines."""
        blocks = [sp.diags([2.0] * 4) + sp.diags([1.0] * 3, 1)
                  for _ in range(3)]
        a = sp.block_diag(blocks).tocsr()
        with config.engine_scope(engine):
            res = {}
            for mode in MPK_MODES:
                sim = Simulation(a, ranks=ranks, machine=generic_cpu(),
                                 engine=engine)
                basis = make_basis(sim, 5, np.random.default_rng(0))
                mpk = MatrixPowersKernel(
                    PreconditionedOperator(sim.matrix), mode=mode)
                mpk.extend(basis, 1, 5)
                res[mode] = (basis.to_global(),
                             sim.tracer.kernel_seconds("spmv", "halo"))
            np.testing.assert_array_equal(res["standard"][0], res["ca"][0])
            assert res["ca"][1] == 0.0  # nothing to exchange

    @pytest.mark.parametrize("engine", ENGINES)
    def test_single_step_panel(self, engine):
        std, _ = generate("standard", engine, panels=((1, 2),))
        ca, _ = generate("ca", engine, panels=((1, 2),))
        np.testing.assert_array_equal(std, ca)

    def test_empty_panel_is_noop(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        basis = make_basis(sim, 4, np.random.default_rng(0))
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix),
                                 mode="ca")
        before = sim.tracer.clock
        mpk.extend(basis, 2, 2)
        assert sim.tracer.clock == before


class TestOverlappedCA:
    """PA2 (``"ca_overlap"``): same numerics as ``"ca"``, the deep-ring
    exchange posted behind the first owned-rows SpMV."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("poly", sorted(POLYS))
    def test_bit_identical_to_ca(self, engine, poly):
        ca, _ = generate("ca", engine, poly=POLYS[poly]())
        ov, _ = generate("ca_overlap", engine, poly=POLYS[poly]())
        np.testing.assert_array_equal(ca, ov)

    def test_two_halo_charges_per_panel(self):
        """The split exchange: one eager depth-1 charge plus one waited
        ring per panel (the blocking CA kernel pays one per panel)."""
        _, tr_ca = generate("ca", "loop", nx=16, ranks=8)
        _, tr_ov = generate("ca_overlap", "loop", nx=16, ranks=8)
        assert tr_ca.kernel_count("spmv", "halo") == 2
        assert tr_ov.kernel_count("spmv", "halo") == 4

    def test_ring_latency_partially_hidden(self):
        """ca_overlap reports hidden halo seconds; blocking ca none.
        The hidden part is bounded by what was actually posted."""
        _, tr_ca = generate("ca", "loop", nx=16, ranks=8)
        _, tr_ov = generate("ca_overlap", "loop", nx=16, ranks=8)
        assert tr_ca.overlapped_seconds(kernel="halo") == 0.0
        hidden = tr_ov.overlapped_seconds(kernel="halo")
        assert hidden > 0.0
        # exposed + hidden = the full cost of the two-message split,
        # which is at least the blocking single-message exchange
        assert (tr_ov.kernel_seconds("spmv", "halo") + hidden
                >= tr_ca.kernel_seconds("spmv", "halo"))

    def test_split_spmv_adds_only_launch_overhead(self):
        """Splitting step 1 into owned + ring charges the same flops and
        streams; the extra cost per panel is one more kernel launch (the
        per-call latency/fixed-overhead terms), never more work."""
        m = generic_cpu()
        _, tr_ca = generate("ca", "loop", nx=16, ranks=8)
        _, tr_ov = generate("ca_overlap", "loop", nx=16, ranks=8)
        ca_s = tr_ca.kernel_seconds("spmv", "spmv_local")
        ov_s = tr_ov.kernel_seconds("spmv", "spmv_local")
        assert ov_s >= ca_s
        per_panel = m.kernel_latency + m.spmv_fixed_overhead
        assert ov_s - ca_s <= 2 * per_panel + 0.05 * ca_s

    def test_s1_panels_have_no_ring_to_post(self):
        """Depth-1 panels: the eager shell IS the whole closure, so the
        posted exchange vanishes and charges match blocking ca exactly."""
        panels = tuple((k, k + 1) for k in range(1, 7))
        _, tr_ca = generate("ca", "loop", panels=panels)
        _, tr_ov = generate("ca_overlap", "loop", panels=panels)
        assert (tr_ov.kernel_count("spmv", "halo")
                == tr_ca.kernel_count("spmv", "halo") == 6)
        assert tr_ov.overlapped_seconds(kernel="halo") == 0.0
        assert tr_ov.clock == tr_ca.clock

    @pytest.mark.parametrize("pc", [JacobiPreconditioner,
                                    BlockJacobiPreconditioner])
    def test_any_preconditioner_rejected(self, pc):
        """PA2 is stricter than PA1: even closure-compatible
        preconditioners have no well-defined owned/ring cost split."""
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        op = PreconditionedOperator(sim.matrix, pc().setup(sim.matrix))
        assert op.supports_ca  # fine for plain ca ...
        with pytest.raises(ConfigurationError, match="ca_overlap|PA2"):
            MatrixPowersKernel(op, mode="ca_overlap")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sstep_gmres_solve_identical(self, engine):
        results = {}
        for mode in ("ca", "ca_overlap"):
            sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu(),
                             engine=engine)
            results[mode] = sstep_gmres(sim, sim.ones_solution_rhs(), s=5,
                                        restart=20, tol=1e-8, maxiter=2000,
                                        options=SolverOptions(mpk_mode=mode))
        ca, ov = results["ca"], results["ca_overlap"]
        assert ov.converged
        assert ov.diagnostics["mpk_mode"] == "ca_overlap"
        np.testing.assert_array_equal(ca.x, ov.x)
        assert ca.iterations == ov.iterations
        assert ca.history.residuals == ov.history.residuals

    def test_auto_stays_on_ca_when_ring_pokes_out(self):
        """``"auto"`` escalates to overlap only when the cost model
        predicts the deep ring hides entirely; on generic_cpu the SpMV
        window is tiny (no launch/sync latency, huge stream rate) so
        the predictor keeps plain ca."""
        sim = Simulation(laplace2d(12), ranks=4, machine=generic_cpu())
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=4, restart=12,
                          tol=1e-8, maxiter=600,
                          options=SolverOptions(mpk_mode="auto"))
        assert res.diagnostics["mpk_mode"] == "ca"

    def test_auto_overlap_tradeoff_across_machines(self):
        """The auto escalation is a machine-dependent tradeoff: on stock
        Summit the first owned-rows SpMV (big fixed launch overhead)
        swallows the deep ring, so ``auto`` picks ``ca_overlap``; with
        network/device latency scaled 16x the ring's fixed cost outgrows
        that window and ``auto`` drops back to plain ``ca``."""
        from repro.parallel.machine import summit

        def run(machine):
            sim = Simulation(laplace2d(16), ranks=4, machine=machine)
            return sstep_gmres(sim, sim.ones_solution_rhs(), s=5,
                               restart=20, tol=1e-8, maxiter=2000,
                               options=SolverOptions(mpk_mode="auto"))

        stock = summit()
        lat16 = stock.with_overrides(
            name="summit_lat16x",
            net_latency_inter=stock.net_latency_inter * 16.0,
            device_sync_latency=stock.device_sync_latency * 16.0)
        res_stock = run(stock)
        res_lat16 = run(lat16)
        assert res_stock.diagnostics["mpk_mode"] == "ca_overlap"
        assert res_lat16.diagnostics["mpk_mode"] == "ca"
        # the escalation changes charges only, never values
        np.testing.assert_array_equal(res_stock.x, res_lat16.x)


class TestComposition:
    def test_general_preconditioner_rejected(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        pc = ChebyshevPreconditioner(degree=2).setup(sim.matrix)
        op = PreconditionedOperator(sim.matrix, pc)
        assert not op.supports_ca
        with pytest.raises(ConfigurationError, match="compose"):
            MatrixPowersKernel(op, mode="ca")

    def test_unknown_mode_rejected(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        with pytest.raises(ConfigurationError):
            MatrixPowersKernel(PreconditionedOperator(sim.matrix),
                               mode="avoidant")

    def test_ghost_expand_follows_preconditioner(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        assert PreconditionedOperator(sim.matrix).ghost_expand == "pointwise"
        jac = PreconditionedOperator(
            sim.matrix, JacobiPreconditioner().setup(sim.matrix))
        assert jac.ghost_expand == "pointwise"
        bj = PreconditionedOperator(
            sim.matrix, BlockJacobiPreconditioner().setup(sim.matrix))
        assert bj.ghost_expand == "block"


class TestSolverIntegration:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_sstep_gmres_ca_converges_identically(self, engine):
        results = {}
        for mode in MPK_MODES:
            sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu(),
                             engine=engine)
            results[mode] = sstep_gmres(sim, sim.ones_solution_rhs(), s=5,
                                        restart=20, tol=1e-8, maxiter=2000,
                                        options=SolverOptions(mpk_mode=mode))
        std, ca = results["standard"], results["ca"]
        assert ca.converged
        assert ca.diagnostics["mpk_mode"] == "ca"
        np.testing.assert_array_equal(std.x, ca.x)
        assert std.iterations == ca.iterations

    def test_auto_mode_falls_back_for_general_preconditioner(self):
        sim = Simulation(laplace2d(12), ranks=4, machine=generic_cpu())
        pc = ChebyshevPreconditioner(degree=2)
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=4, restart=12,
                          tol=1e-8, maxiter=600, precond=pc,
                          options=SolverOptions(mpk_mode="auto"))
        assert res.diagnostics["mpk_mode"] == "standard"
        assert res.converged

    def test_auto_mode_selects_ca_for_local_preconditioner(self):
        sim = Simulation(laplace2d(12), ranks=4, machine=generic_cpu())
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=4, restart=12,
                          tol=1e-8, maxiter=600,
                          precond=JacobiPreconditioner(),
                          options=SolverOptions(mpk_mode="auto"))
        assert res.diagnostics["mpk_mode"] == "ca"
        assert res.converged

    def test_ca_mode_raises_for_general_preconditioner(self):
        sim = Simulation(laplace2d(12), ranks=4, machine=generic_cpu())
        with pytest.raises(ConfigurationError, match="compose"):
            sstep_gmres(sim, sim.ones_solution_rhs(), s=4, restart=12,
                        precond=ChebyshevPreconditioner(degree=2),
                        options=SolverOptions(mpk_mode="ca"))

    def test_unknown_mpk_mode_rejected(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        with pytest.raises(ConfigurationError):
            sstep_gmres(sim, np.ones(sim.n),
                        options=SolverOptions(mpk_mode="always"))


class TestScratchInvalidation:
    def test_scratch_rebinds_on_comm_change(self):
        """A stale scratch bound to another simulation's communicator
        must not leak charges into the wrong tracer."""
        pc = JacobiPreconditioner()
        sim1 = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        op = PreconditionedOperator(sim1.matrix,
                                    pc.setup(sim1.matrix))
        x1 = sim1.vector_from(np.ones(sim1.n))
        out1 = sim1.zeros(1)
        op.apply(x1, out1)
        scratch1 = op._scratch
        assert scratch1.comm is sim1.comm
        # same partition shape, different simulation/communicator
        sim2 = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        op.matrix = sim2.matrix
        op.precond = JacobiPreconditioner().setup(sim2.matrix)
        x2 = sim2.vector_from(np.ones(sim2.n))
        out2 = sim2.zeros(1)
        op.apply(x2, out2)
        assert op._scratch is not scratch1
        assert op._scratch.comm is sim2.comm

    def test_scratch_rebinds_on_storage_change(self):
        sim = Simulation(laplace2d(8), ranks=4, machine=generic_cpu())
        op = PreconditionedOperator(
            sim.matrix, JacobiPreconditioner().setup(sim.matrix))
        x64 = sim.vector_from(np.ones(sim.n))
        op.apply(x64, sim.zeros(1))
        s64 = op._scratch
        assert s64.storage == "fp64"
        x32 = sim.vector_from(np.ones(sim.n), storage="fp32")
        op.apply(x32, sim.zeros(1, storage="fp32"))
        assert op._scratch is not s64
        assert op._scratch.storage == "fp32"
        # fp64 again -> rebuilds once more
        op.apply(x64, sim.zeros(1))
        assert op._scratch.storage == "fp64"
