"""Matrix powers kernel: recurrences, phases, preconditioner plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.basis import ChebyshevBasis, MonomialBasis, NewtonBasis
from repro.krylov.mpk import MatrixPowersKernel, PreconditionedOperator
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu
from repro.precond.jacobi import JacobiPreconditioner


@pytest.fixture
def sim() -> Simulation:
    return Simulation(laplace2d(10), ranks=4, machine=generic_cpu())


def start_basis(sim, k, rng):
    basis = sim.zeros(k)
    v0 = rng.standard_normal(sim.n)
    v0 /= np.linalg.norm(v0)
    basis.view_cols(0).assign_from(sim.vector_from(v0))
    return basis, v0


class TestMonomialChain:
    def test_generates_powers(self, sim, rng):
        basis, v0 = start_basis(sim, 5, rng)
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix))
        mpk.extend(basis, 1, 5)
        a = sim.matrix.to_scipy()
        expect = v0
        for k in range(1, 5):
            expect = a @ expect
            np.testing.assert_allclose(basis.to_global()[:, k], expect,
                                       rtol=1e-12)

    def test_change_of_basis_identity(self, sim, rng):
        """A V_{1:c} = V_{1:c+1} T for the generated chain."""
        basis, _ = start_basis(sim, 6, rng)
        poly = MonomialBasis()
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix), poly)
        mpk.extend(basis, 1, 6)
        v = basis.to_global()
        a = sim.matrix.to_scipy()
        t = poly.change_of_basis(5)
        np.testing.assert_allclose(a @ v[:, :5], v @ t, rtol=1e-11, atol=1e-12)

    def test_requires_start_column(self, sim, rng):
        basis, _ = start_basis(sim, 4, rng)
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix))
        with pytest.raises(ConfigurationError):
            mpk.extend(basis, 0, 4)


class TestPolynomialBases:
    def test_newton_recurrence_identity(self, sim, rng):
        basis, _ = start_basis(sim, 6, rng)
        poly = NewtonBasis(shifts=np.array([0.5, 1.5, 2.5, 3.5, 4.5]))
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix), poly)
        mpk.extend(basis, 1, 6)
        v = basis.to_global()
        a = sim.matrix.to_scipy()
        t = poly.change_of_basis(5)
        np.testing.assert_allclose(a @ v[:, :5], v @ t, rtol=1e-10, atol=1e-11)

    def test_chebyshev_recurrence_identity(self, sim, rng):
        basis, _ = start_basis(sim, 6, rng)
        poly = ChebyshevBasis(0.1, 8.0)
        mpk = MatrixPowersKernel(PreconditionedOperator(sim.matrix), poly)
        mpk.extend(basis, 1, 6)
        v = basis.to_global()
        a = sim.matrix.to_scipy()
        t = poly.change_of_basis(5)
        np.testing.assert_allclose(a @ v[:, :5], v @ t, rtol=1e-10, atol=1e-11)

    def test_chebyshev_bounds_growth(self, sim, rng):
        """Chebyshev-scaled vectors grow far slower than monomial ones."""
        basis_m, _ = start_basis(sim, 9, rng)
        MatrixPowersKernel(PreconditionedOperator(sim.matrix),
                           MonomialBasis()).extend(basis_m, 1, 9)
        basis_c, _ = start_basis(sim, 9, rng)
        MatrixPowersKernel(PreconditionedOperator(sim.matrix),
                           ChebyshevBasis(0.05, 8.0)).extend(basis_c, 1, 9)
        norm_m = np.linalg.norm(basis_m.to_global()[:, 8])
        norm_c = np.linalg.norm(basis_c.to_global()[:, 8])
        assert norm_c < norm_m / 10


class TestPreconditionedOperator:
    def test_right_preconditioning(self, sim, rng):
        pc = JacobiPreconditioner().setup(sim.matrix)
        op = PreconditionedOperator(sim.matrix, pc)
        x = rng.standard_normal(sim.n)
        dx = sim.vector_from(x)
        out = sim.zeros(1)
        op.apply(dx, out)
        a = sim.matrix.to_scipy()
        expected = a @ (x / a.diagonal())
        np.testing.assert_allclose(out.to_global()[:, 0], expected,
                                   rtol=1e-12)

    def test_phase_attribution(self, sim, rng):
        pc = JacobiPreconditioner().setup(sim.matrix)
        op = PreconditionedOperator(sim.matrix, pc)
        dx = sim.vector_from(rng.standard_normal(sim.n))
        out = sim.zeros(1)
        op.apply(dx, out)
        assert sim.tracer.phase_seconds("precond") > 0
        assert sim.tracer.phase_seconds("spmv") > 0

    def test_apply_inverse_precond_identity(self, sim, rng):
        op = PreconditionedOperator(sim.matrix)
        x = sim.vector_from(rng.standard_normal(sim.n))
        out = sim.zeros(1)
        op.apply_inverse_precond(x, out)
        np.testing.assert_array_equal(out.to_global(), x.to_global())
        assert not op.is_preconditioned
