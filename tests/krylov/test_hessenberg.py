"""Hessenberg recovery H = R T R^{-1} and the small least squares."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NumericalError, ShapeError
from repro.krylov.basis import MonomialBasis
from repro.krylov.hessenberg import (
    assemble_hessenberg,
    assemble_hessenberg_mixed,
    least_squares_residual,
)


def arnoldi_reference(a, v0, c):
    """Plain Arnoldi: returns Q (n x c+1) and H (c+1 x c)."""
    n = a.shape[0]
    q = np.zeros((n, c + 1))
    h = np.zeros((c + 1, c))
    q[:, 0] = v0 / np.linalg.norm(v0)
    for j in range(c):
        w = a @ q[:, j]
        for i in range(j + 1):
            h[i, j] = q[:, i] @ w
            w -= h[i, j] * q[:, i]
        h[j + 1, j] = np.linalg.norm(w)
        q[:, j + 1] = w / h[j + 1, j]
    return q, h


class TestAssembleHessenberg:
    def test_recovers_arnoldi_h(self, rng):
        """Build V = monomial Krylov chain, Q R = V by dense QR, then
        H = R T R^{-1} must equal the Arnoldi Hessenberg of A."""
        n, c = 40, 6
        a = rng.standard_normal((n, n))
        v0 = rng.standard_normal(n)
        v0 /= np.linalg.norm(v0)
        v = np.zeros((n, c + 1))
        v[:, 0] = v0
        for k in range(c):
            v[:, k + 1] = a @ v[:, k]
        q, r_fact = np.linalg.qr(v)
        signs = np.sign(np.diag(r_fact))
        q, r_fact = q * signs, r_fact * signs[:, None]
        t = MonomialBasis().change_of_basis(c)
        h = assemble_hessenberg(r_fact, t, c)
        q_ref, h_ref = arnoldi_reference(a, v0, c)
        # both Hessenbergs represent A on the same Krylov space; compare
        # via the Arnoldi relation directly
        np.testing.assert_allclose(a @ q[:, :c], q @ h, rtol=1e-8, atol=1e-8)

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            assemble_hessenberg(np.eye(3), np.zeros((4, 3)), 3)

    def test_singular_r_raises(self):
        r = np.eye(4)
        r[2, 2] = 0.0
        t = MonomialBasis().change_of_basis(3)
        with pytest.raises(NumericalError):
            assemble_hessenberg(r, t, 3)


class TestAssembleMixed:
    def test_reduces_to_plain_when_w_equals_r(self, rng):
        c = 5
        r = np.triu(rng.standard_normal((c + 2, c + 2))) + 3 * np.eye(c + 2)
        t = MonomialBasis().change_of_basis(c)
        h_plain = assemble_hessenberg(r, t, c)
        h_mixed = assemble_hessenberg_mixed(r, r[:, :c + 1], MonomialBasis(), c)
        np.testing.assert_allclose(h_plain, h_mixed, rtol=1e-12)

    def test_singular_w_raises(self, rng):
        c = 4
        r = np.eye(c + 1)
        w = np.eye(c + 1)
        w[1, 1] = 0.0
        with pytest.raises(NumericalError):
            assemble_hessenberg_mixed(r, w, MonomialBasis(), c)


class TestLeastSquares:
    def test_matches_lstsq(self, rng):
        h = rng.standard_normal((7, 6))
        h = np.triu(h, -1)  # Hessenberg shape
        y, res = least_squares_residual(h, 2.5)
        rhs = np.zeros(7)
        rhs[0] = 2.5
        y_ref = np.linalg.lstsq(h, rhs, rcond=None)[0]
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)
        assert res == pytest.approx(np.linalg.norm(rhs - h @ y_ref), abs=1e-12)

    def test_custom_rhs(self, rng):
        h = np.triu(rng.standard_normal((4, 3)), -1)
        rhs = rng.standard_normal(4)
        y, res = least_squares_residual(h, 0.0, rhs=rhs)
        y_ref = np.linalg.lstsq(h, rhs, rcond=None)[0]
        np.testing.assert_allclose(y, y_ref, rtol=1e-9, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            least_squares_residual(np.zeros((3, 3)), 1.0)
        with pytest.raises(ShapeError):
            least_squares_residual(np.zeros((4, 3)), 1.0, rhs=np.zeros(3))

    def test_exact_solve_zero_residual(self, rng):
        # consistent system: rhs in range(H)
        h = np.triu(rng.standard_normal((5, 4)), -1) + np.vstack(
            [np.eye(4), np.zeros((1, 4))])
        y_true = rng.standard_normal(4)
        rhs = h @ y_true
        y, res = least_squares_residual(h, 0.0, rhs=rhs)
        np.testing.assert_allclose(y, y_true, rtol=1e-10)
        assert res < 1e-12
