"""Multi-RHS block s-step GMRES: value identity, per-request exits,
charge fusion.

The contract under test (ISSUE: batched multi-tenant solve path): every
member of a width-``b`` batch is bit-identical to the corresponding
independent :func:`sstep_gmres` call — at width 1 this extends to the
modeled times and sync counts — while the batch's per-cycle collective
*count* profile is width-independent and only the payload bytes grow.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, ShapeError
from repro.krylov.basis import MonomialBasis
from repro.krylov.block import block_sstep_gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu, summit

ENGINES = ["loop", "batched"]

S, RESTART, TOL = 4, 12, 1e-8


def fresh_sim(engine=None, machine=None, nx=12, ranks=4):
    return Simulation(laplace2d(nx), ranks=ranks,
                      machine=machine or generic_cpu(), engine=engine)


def scalar_solve(b, engine=None, machine=None, nx=12, **kw):
    kw.setdefault("s", S)
    kw.setdefault("restart", RESTART)
    kw.setdefault("tol", TOL)
    return sstep_gmres(fresh_sim(engine, machine, nx), b, **kw)


def rhs_columns(n, width, seed=0):
    rng = np.random.default_rng(seed)
    cols = rng.standard_normal((n, width))
    return cols / np.linalg.norm(cols, axis=0)


def assert_member_matches(res, ref):
    """Member result == independent scalar solve, bit for bit."""
    np.testing.assert_array_equal(res.x, ref.x)
    assert res.converged == ref.converged
    assert res.iterations == ref.iterations
    assert res.restarts == ref.restarts
    assert res.history.residuals == ref.history.residuals
    assert res.relative_residual == ref.relative_residual
    assert res.stalled == ref.stalled


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_width1_matches_scalar_exactly(self, engine):
        """Width 1 is the degenerate case: identical values AND
        identical modeled charges (times, sync counts)."""
        sim = fresh_sim(engine)
        b = rhs_columns(sim.n, 1)[:, 0]
        res = block_sstep_gmres(sim, b, s=S, restart=RESTART, tol=TOL)[0]
        ref = scalar_solve(b, engine)
        assert res.converged
        assert_member_matches(res, ref)
        assert res.sync_count == ref.sync_count
        assert res.times["total"] == ref.times["total"]
        assert res.solver == "block_sstep_gmres"
        assert res.diagnostics["batch_width"] == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_s1_width1_degenerate(self, engine):
        """The ``s=1, block=1`` case the issue names explicitly."""
        sim = fresh_sim(engine)
        b = rhs_columns(sim.n, 1)[:, 0]
        res = block_sstep_gmres(sim, b, s=1, restart=8, tol=TOL)[0]
        ref = scalar_solve(b, engine, s=1, restart=8)
        assert_member_matches(res, ref)
        assert res.times["total"] == ref.times["total"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_multiwidth_matches_independent_solves(self, engine):
        width = 4
        sim = fresh_sim(engine)
        cols = rhs_columns(sim.n, width)
        results = block_sstep_gmres(sim, cols, s=S, restart=RESTART,
                                    tol=TOL)
        assert len(results) == width
        for j, res in enumerate(results):
            assert_member_matches(res, scalar_solve(cols[:, j], engine))
            assert res.diagnostics["batch_index"] == j
            assert res.diagnostics["batch_width"] == width
            assert res.diagnostics["exit_cycle"] == res.restarts

    def test_rhs_as_sequence_and_shared_x0(self):
        sim = fresh_sim()
        cols = rhs_columns(sim.n, 2)
        x0 = np.full(sim.n, 0.1)
        res = block_sstep_gmres(sim, [cols[:, 0], cols[:, 1]], x0,
                                s=S, restart=RESTART, tol=TOL)
        for j in range(2):
            ref = scalar_solve(cols[:, j], x0=x0)
            assert_member_matches(res[j], ref)


class TestPerRequestExits:
    def test_zero_rhs_column_converges_at_iteration_zero(self):
        """A zero RHS member exits before any cycle; survivors keep
        fusing and match their independent solves."""
        sim = fresh_sim()
        cols = rhs_columns(sim.n, 3)
        cols[:, 1] = 0.0
        res = block_sstep_gmres(sim, cols, s=S, restart=RESTART, tol=TOL)
        zero = res[1]
        assert zero.converged and zero.iterations == 0 and zero.restarts == 0
        assert zero.relative_residual == 0.0
        np.testing.assert_array_equal(zero.x, np.zeros(sim.n))
        for j in (0, 2):
            assert_member_matches(res[j], scalar_solve(cols[:, j]))

    def test_all_converged_at_cycle_zero(self):
        sim = fresh_sim()
        res = block_sstep_gmres(sim, np.zeros((sim.n, 3)),
                                s=S, restart=RESTART, tol=TOL)
        assert all(r.converged and r.iterations == 0 and r.restarts == 0
                   for r in res)

    def test_breakdown_in_one_column_only(self):
        """Member 0's Krylov space is 2-dimensional (diagonal operator,
        two-component RHS) — its s=4 panel is rank-deficient at the
        first cycle and the solver takes its breakdown/stall exit.
        That early exit must reproduce the scalar solver's behaviour
        bit for bit AND leave the surviving member untouched."""
        n = 64
        a = sp.diags(np.arange(1.0, n + 1.0)).tocsr()
        deficient = np.zeros(n)
        deficient[0], deficient[1] = 1.0, 2.0
        healthy = rhs_columns(n, 1, seed=3)[:, 0]
        sim = Simulation(a, ranks=4, machine=generic_cpu())
        res = block_sstep_gmres(sim, np.stack([deficient, healthy], axis=1),
                                s=S, restart=RESTART, tol=TOL, maxiter=200)
        refs = [sstep_gmres(Simulation(a, ranks=4, machine=generic_cpu()),
                            b, s=S, restart=RESTART, tol=TOL, maxiter=200)
                for b in (deficient, healthy)]
        # the deficient member exits on the scalar solver's own terms...
        assert res[0].restarts < res[1].restarts
        assert_member_matches(res[0], refs[0])
        # ... and the healthy member never notices
        assert res[1].converged
        assert_member_matches(res[1], refs[1])

    def test_per_request_tol(self):
        sim = fresh_sim()
        b = rhs_columns(sim.n, 1)[:, 0]
        loose, tight = 1e-3, 1e-10
        res = block_sstep_gmres(sim, np.stack([b, b], axis=1),
                                s=S, restart=RESTART, tol=[loose, tight])
        assert res[0].iterations < res[1].iterations
        assert_member_matches(res[0], scalar_solve(b, tol=loose))
        assert_member_matches(res[1], scalar_solve(b, tol=tight))

    def test_per_request_maxiter(self):
        sim = fresh_sim()
        b = rhs_columns(sim.n, 1)[:, 0]
        res = block_sstep_gmres(sim, np.stack([b, b], axis=1),
                                s=S, restart=RESTART, tol=1e-30,
                                maxiter=[RESTART, 3 * RESTART])
        assert res[0].restarts == 1 and res[1].restarts == 3
        assert_member_matches(
            res[0], scalar_solve(b, tol=1e-30, maxiter=RESTART))


class TestChargeFusion:
    def fixed_cycle(self, width, machine):
        sim = fresh_sim(machine=machine, nx=12)
        cols = rhs_columns(sim.n, width)
        snap = sim.tracer.snapshot()
        block_sstep_gmres(sim, cols, s=S, restart=RESTART, tol=1e-30,
                          maxiter=RESTART)
        elapsed = sim.tracer.since(snap).clock
        return sim.tracer.collective_counts(payload_bytes=True), elapsed

    def test_collective_counts_width_independent(self):
        machine = summit()
        base, t1 = self.fixed_cycle(1, machine)
        for width in (2, 4):
            counts, _ = self.fixed_cycle(width, machine)
            assert {k: v["count"] for k, v in counts.items()} \
                == {k: v["count"] for k, v in base.items()}
            # payload bytes scale exactly with the width
            assert {k: v["bytes"] for k, v in counts.items()} \
                == {k: v["bytes"] * width for k, v in base.items()}

    def test_batched_cycle_is_cheaper_than_serial(self):
        machine = summit()
        _, t1 = self.fixed_cycle(1, machine)
        _, t4 = self.fixed_cycle(4, machine)
        # 4 fused solves must cost far less than 4 serial ones — on a
        # latency-dominated machine nearly all of the cycle is shared
        assert t4 < 2.0 * t1


class TestValidation:
    def test_empty_rhs_rejected(self):
        with pytest.raises(ShapeError, match="at least one"):
            block_sstep_gmres(fresh_sim(), [])

    def test_wrong_length_rhs_rejected(self):
        with pytest.raises(ShapeError):
            block_sstep_gmres(fresh_sim(), np.ones(7))

    def test_per_request_length_mismatch_rejected(self):
        sim = fresh_sim()
        with pytest.raises(ConfigurationError, match="tol"):
            block_sstep_gmres(sim, rhs_columns(sim.n, 3), tol=[1e-8, 1e-8],
                              s=S, restart=RESTART)

    def test_basis_instance_rejected_for_width_gt1(self):
        sim = fresh_sim()
        with pytest.raises(ConfigurationError, match="stateful"):
            block_sstep_gmres(sim, rhs_columns(sim.n, 2),
                              basis=MonomialBasis(), s=S, restart=RESTART)

    def test_bad_x0_shape_rejected(self):
        sim = fresh_sim()
        with pytest.raises(ShapeError, match="x0"):
            block_sstep_gmres(sim, rhs_columns(sim.n, 2),
                              np.ones((sim.n, 3)), s=S, restart=RESTART)
