"""Simulation bundle and result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.krylov.result import ConvergenceHistory, SolveResult
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu, vortex
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer


class TestSimulation:
    def test_default_machine_is_summit(self):
        sim = Simulation(laplace2d(6), ranks=2)
        assert sim.machine.name == "summit"

    def test_shared_tracer(self):
        tr = Tracer()
        sim = Simulation(laplace2d(6), ranks=2, machine=generic_cpu(),
                         tracer=tr)
        assert sim.tracer is tr
        sim.matrix.matvec(sim.vector_from(np.ones(36)))
        assert tr.clock > 0

    def test_explicit_partition(self):
        part = Partition(36, 3)
        sim = Simulation(laplace2d(6), ranks=3, machine=generic_cpu(),
                         partition=part)
        assert sim.partition is part

    def test_partition_mismatch(self):
        with pytest.raises(ShapeError):
            Simulation(laplace2d(6), ranks=3, partition=Partition(36, 4))

    def test_ones_solution_rhs(self):
        sim = Simulation(laplace2d(5), ranks=2, machine=vortex())
        b = sim.ones_solution_rhs()
        np.testing.assert_allclose(b, laplace2d(5) @ np.ones(25))

    def test_vector_helpers(self):
        sim = Simulation(laplace2d(5), ranks=2, machine=generic_cpu())
        v = sim.vector_from(np.arange(25.0))
        assert v.shape == (25, 1)
        z = sim.zeros(3)
        assert z.shape == (25, 3)
        assert "Simulation" in repr(sim)


class TestConvergenceHistory:
    def test_record_and_arrays(self):
        h = ConvergenceHistory()
        h.record(0, 1.0)
        h.record(5, 0.1)
        its, res = h.as_arrays()
        np.testing.assert_array_equal(its, [0, 5])
        np.testing.assert_allclose(res, [1.0, 0.1])
        assert len(h) == 2


class TestSolveResult:
    def test_derived_metrics(self):
        r = SolveResult(x=np.ones(3), converged=True, iterations=10,
                        restarts=2, relative_residual=1e-7,
                        history=ConvergenceHistory(),
                        times={"total": 2.0, "ortho": 1.0, "spmv": 0.5,
                               "precond": 0.25},
                        solver="s", scheme="t")
        assert r.total_time == 2.0
        assert r.ortho_time == 1.0
        assert r.spmv_time == 0.75  # spmv + precond
        assert r.time_per_iteration() == 0.2
        assert "converged" in r.summary()

    def test_zero_iteration_guard(self):
        r = SolveResult(x=np.ones(1), converged=True, iterations=0,
                        restarts=0, relative_residual=0.0,
                        history=ConvergenceHistory(), times={"total": 1.0})
        assert r.time_per_iteration() == 1.0
