"""Sketch-space least squares + the sstep_gmres solve_mode switch."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, ShapeError
from repro.krylov.hessenberg import (
    least_squares_residual,
    sketched_least_squares,
)
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.randomized import RBCGSScheme, SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

ENGINES = ["loop", "batched"]


def make_sim(a, ranks=4, engine=None):
    return Simulation(a, ranks=ranks, machine=generic_cpu(), engine=engine)


def random_hessenberg(rng, c):
    h = np.triu(rng.standard_normal((c + 1, c)), -1)
    return h


class TestSketchedLeastSquares:
    def test_orthonormal_sketch_matches_classical(self, rng):
        """With an orthonormal sketched basis the sketch-space solve is
        the classical coordinate solve."""
        c = 8
        h = random_hessenberg(rng, c)
        rhs = rng.standard_normal(c + 1)
        sq, _ = np.linalg.qr(rng.standard_normal((4 * (c + 1), c + 1)))
        y_ref, r_ref = least_squares_residual(h, 1.0, rhs=rhs)
        y, resid, info = sketched_least_squares(sq, h, rhs)
        np.testing.assert_allclose(y, y_ref, rtol=1e-10, atol=1e-12)
        assert resid == pytest.approx(r_ref, rel=1e-10, abs=1e-14)
        assert info["basis_condition"] == pytest.approx(1.0, rel=1e-10)
        assert info["embedding_rows"] == 4 * (c + 1)
        assert not info["rank_deficient"]

    def test_minimizes_embedded_residual_on_skewed_basis(self, rng):
        """On a non-orthogonal basis the sketch-space minimizer beats the
        coordinate minimizer in the *embedded* (true-residual) metric."""
        c = 6
        h = random_hessenberg(rng, c)
        rhs = rng.standard_normal(c + 1)
        # a deliberately skewed "basis sketch": SV with cond ~ 1e6
        sq = (np.linalg.qr(rng.standard_normal((40, c + 1)))[0]
              * np.logspace(0, -6, c + 1)[np.newaxis, :])
        y, resid, info = sketched_least_squares(sq, h, rhs)
        y_dense = np.linalg.lstsq(sq @ h, sq @ rhs, rcond=None)[0]
        np.testing.assert_allclose(y, y_dense, rtol=1e-6, atol=1e-9)
        assert resid == pytest.approx(
            float(np.linalg.norm(sq @ rhs - (sq @ h) @ y)), rel=1e-8,
            abs=1e-12)
        y_cls, _ = least_squares_residual(h, 1.0, rhs=rhs)
        cls_embedded = float(np.linalg.norm(sq @ (rhs - h @ y_cls)))
        assert resid <= cls_embedded + 1e-12
        assert info["basis_condition"] == pytest.approx(1e6, rel=1e-3)

    def test_rank_deficient_sketch_falls_back(self, rng):
        c = 4
        h = random_hessenberg(rng, c)
        sq = rng.standard_normal((20, c + 1))
        sq[:, -1] = 0.0  # exactly dependent sketched column
        y, resid, info = sketched_least_squares(sq, h, np.ones(c + 1))
        assert info["rank_deficient"]
        assert np.isinf(info["basis_condition"])
        assert np.all(np.isfinite(y)) and np.isfinite(resid)

    def test_shape_errors(self, rng):
        h = random_hessenberg(rng, 4)
        good = rng.standard_normal((20, 5))
        with pytest.raises(ShapeError):  # not a Hessenberg shape
            sketched_least_squares(good, np.zeros((4, 4)), np.ones(4))
        with pytest.raises(ShapeError):  # sketch misses basis columns
            sketched_least_squares(good[:, :4], h, np.ones(5))
        with pytest.raises(ShapeError):  # fewer sketch rows than columns
            sketched_least_squares(good[:4], h, np.ones(5))
        with pytest.raises(ShapeError):  # rhs length mismatch
            sketched_least_squares(good, h, np.ones(4))


class TestSolveModeSwitch:
    def test_unknown_mode_rejected(self):
        sim = make_sim(laplace2d(8))
        with pytest.raises(ConfigurationError):
            sstep_gmres(sim, np.ones(sim.n),
                        options=SolverOptions(solve_mode="randomised"))

    def test_classical_mode_has_no_diagnostics(self):
        sim = make_sim(laplace2d(8))
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=3, restart=9)
        assert res.diagnostics == {}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sketched_with_classical_scheme(self, engine):
        """A deterministic scheme has no basis sketch; the solver
        maintains one itself and still converges."""
        sim = make_sim(laplace2d(16), engine=engine)
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=20, tol=1e-8, maxiter=3000,
                          scheme=TwoStageScheme(big_step=20),
                          options=SolverOptions(solve_mode="sketched"))
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)
        d = res.diagnostics
        assert d["solve_mode"] == "sketched"
        assert d["basis_condition_max"] >= 1.0
        # residual gap bounded by the embedding distortion, not eps
        assert d["residual_gap_max"] < 1e-2
        assert d["embedding_rows"] > 21

    @pytest.mark.parametrize("make_scheme", [
        lambda: RBCGSScheme(),
        lambda: SketchedTwoStageScheme(big_step=10, fused=True),
    ], ids=["rbcgs", "fused-sketched-two-stage"])
    def test_sketched_reuses_scheme_sketch(self, make_scheme):
        """Randomized schemes expose their basis sketch; over one fixed
        restart cycle the sketched solve must charge exactly as many
        collectives as the classical mode (ZERO extra sketches)."""
        a = laplace2d(16)
        results = {}
        for mode in ("classical", "sketched"):
            sim = make_sim(a)
            # tol unreachable + maxiter == restart: exactly one full
            # cycle runs in both modes, so collectives are comparable.
            res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=20,
                              tol=1e-30, maxiter=20, scheme=make_scheme(),
                              options=SolverOptions(solve_mode=mode))
            results[mode] = res
        assert (results["sketched"].sync_count
                == results["classical"].sync_count)

    def test_solver_sketch_costs_one_collective_per_checkpoint(self):
        """Without a scheme sketch the solver sketches newly-finalized
        columns itself: one extra allreduce per checkpoint."""
        a = laplace2d(16)
        results = {}
        for mode in ("classical", "sketched"):
            sim = make_sim(a)
            res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=20,
                              tol=1e-30, maxiter=20,
                              scheme=TwoStageScheme(big_step=10),
                              options=SolverOptions(solve_mode=mode))
            results[mode] = res
        checkpoints = len(results["sketched"].history) - 1  # minus iter 0
        assert (results["sketched"].sync_count
                == results["classical"].sync_count + checkpoints)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_rgs_converges(self, engine):
        sim = make_sim(laplace2d(16), engine=engine)
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=20, tol=1e-8, maxiter=3000,
                          scheme=SketchedTwoStageScheme(big_step=20,
                                                        fused=True),
                          options=SolverOptions(solve_mode="sketched"))
        assert res.converged
        a = sim.matrix.to_scipy()
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        assert true_rel <= 1e-7

    def test_engines_bit_identical(self):
        """The full sketched solve is bit-reproducible across engines."""
        a = laplace2d(14)
        xs = {}
        for engine in ENGINES:
            sim = make_sim(a, engine=engine)
            res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=20,
                              tol=1e-8, maxiter=2000,
                              scheme=SketchedTwoStageScheme(big_step=20,
                                                            fused=True),
                              options=SolverOptions(solve_mode="sketched"))
            xs[engine] = (res.x, res.iterations, res.relative_residual)
        np.testing.assert_array_equal(xs["loop"][0], xs["batched"][0])
        assert xs["loop"][1:] == xs["batched"][1:]


class TestEdgeCases:
    """Hessenberg-recovery edge cases, both solve modes, both engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("solve_mode", ["classical", "sketched"])
    def test_zero_rhs(self, engine, solve_mode):
        sim = make_sim(laplace2d(8), engine=engine)
        res = sstep_gmres(sim, np.zeros(sim.n), s=3, restart=9,
                          options=SolverOptions(solve_mode=solve_mode))
        assert res.converged and res.iterations == 0

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("solve_mode", ["classical", "sketched"])
    def test_s_equals_one_degenerate_cycle(self, engine, solve_mode):
        """s=1: every panel is a single column (the first block two);
        the mixed Hessenberg recovery degenerates to standard Arnoldi
        bookkeeping and must still converge."""
        sim = make_sim(laplace2d(10), engine=engine)
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=1, restart=12, tol=1e-8, maxiter=3000,
                          options=SolverOptions(solve_mode=solve_mode))
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("solve_mode", ["classical", "sketched"])
    def test_happy_breakdown_mid_panel(self, engine, solve_mode):
        """An operator with minimal polynomial degree 4 closes the
        Krylov space mid-cycle: the second panel's Cholesky breaks down,
        the solver truncates at the last sound checkpoint, and the
        restart loop still drives the residual to tol."""
        n = 64
        diag = np.repeat([1.0, 2.0, 3.0, 4.0], n // 4)
        a = sp.diags(diag).tocsr()
        sim = make_sim(a, engine=engine)
        b = np.asarray(a @ np.ones(n)).ravel()
        res = sstep_gmres(sim, b, s=2, restart=8, tol=1e-10, maxiter=200,
                          options=SolverOptions(solve_mode=solve_mode))
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-8)
        # the space closed at dimension 4: no cycle ran to full restart
        assert res.iterations < 8 * res.restarts + 8

    def test_total_breakdown_still_stalls(self):
        """A = I closes the space immediately in every cycle; the solver
        must stop with stalled=True in sketched mode too (no checkpoint
        is ever produced)."""
        a = sp.identity(32, format="csr") * 2.0
        sim = make_sim(a)
        b = np.ones(32) * 2.0
        res = sstep_gmres(sim, b, s=3, restart=9, tol=1e-20, maxiter=100,
                          options=SolverOptions(solve_mode="sketched"))
        assert not res.converged
        assert res.stalled


class TestAutomaticResketch:
    """The leave-one-out monitor redraws the embedding mid-solve."""

    def test_healthy_embedding_never_resketches(self):
        sim = make_sim(laplace2d(16))
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=20,
                          tol=1e-8, maxiter=3000,
                          scheme=TwoStageScheme(big_step=20),
                          options=SolverOptions(solve_mode="sketched"))
        assert res.converged
        assert res.diagnostics["resketch_count"] == 0

    def test_threshold_crossing_redraws_operator(self):
        """With the threshold below any achievable distortion, every
        cycle's checkpoint arms a redraw; the solve keeps converging on
        the freshly drawn embeddings and reports the count."""
        sim = make_sim(laplace2d(16))
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=10,
                          tol=1e-8, maxiter=3000,
                          scheme=TwoStageScheme(big_step=10),
                          options=SolverOptions(solve_mode="sketched",
                                                resketch_threshold=-1.0))
        assert res.converged
        assert res.diagnostics["resketch_count"] >= 1
        # at most one redraw per restart cycle, however many checkpoints
        assert res.diagnostics["resketch_count"] <= res.restarts

    def test_resketch_overrides_scheme_sketch(self):
        """After a redraw the solver cannot keep reusing the scheme's
        basis sketch (it cannot redraw the scheme's operators), so it
        maintains its own — and still converges with the fused scheme."""
        sim = make_sim(laplace2d(16))
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=10,
                          tol=1e-8, maxiter=3000,
                          scheme=SketchedTwoStageScheme(big_step=10,
                                                        fused=True),
                          options=SolverOptions(solve_mode="sketched",
                                                resketch_threshold=-1.0))
        assert res.converged
        assert res.diagnostics["resketch_count"] >= 1

    def test_disabled_threshold_matches_default_on_healthy_solve(self):
        """None disables the trigger; on a healthy solve the default
        threshold never fires either, so results are bit-identical."""
        def solve(threshold):
            sim = make_sim(laplace2d(12))
            return sstep_gmres(sim, sim.ones_solution_rhs(), s=4,
                               restart=12, tol=1e-8, maxiter=2000,
                               scheme=TwoStageScheme(big_step=12),
                               options=SolverOptions(
                                   solve_mode="sketched",
                                   resketch_threshold=threshold))
        from repro.krylov.sstep_gmres import DEFAULT_RESKETCH_THRESHOLD
        a = solve(None)
        b = solve(DEFAULT_RESKETCH_THRESHOLD)
        np.testing.assert_array_equal(a.x, b.x)
        assert a.iterations == b.iterations
        assert a.diagnostics["resketch_count"] == 0
        assert b.diagnostics["resketch_count"] == 0
