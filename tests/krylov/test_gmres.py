"""Standard GMRES(m) baseline."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.krylov.gmres import gmres
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import convection_diffusion_2d, laplace2d
from repro.parallel.machine import generic_cpu
from repro.precond.jacobi import JacobiPreconditioner


def make_sim(a, ranks=4):
    return Simulation(a, ranks=ranks, machine=generic_cpu())


class TestConvergence:
    def test_spd_laplacian(self):
        sim = make_sim(laplace2d(16))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=30, tol=1e-10, maxiter=3000)
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-6)

    def test_nonsymmetric(self):
        sim = make_sim(convection_diffusion_2d(14))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=25, tol=1e-9, maxiter=3000)
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)

    def test_residual_matches_true_residual(self):
        sim = make_sim(laplace2d(12))
        a = sim.matrix.to_scipy()
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=20, tol=1e-8, maxiter=2000)
        true_rel = (np.linalg.norm(b - a @ res.x)
                    / np.linalg.norm(b))
        assert true_rel <= 2e-8

    def test_zero_rhs_immediate(self):
        sim = make_sim(laplace2d(8))
        res = gmres(sim, np.zeros(sim.n), restart=10, tol=1e-8)
        assert res.converged
        assert res.iterations == 0

    def test_x0_respected(self):
        sim = make_sim(laplace2d(10))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, x0=np.ones(sim.n), restart=10, tol=1e-8)
        assert res.converged
        assert res.iterations == 0  # x0 is already the solution

    def test_maxiter_cap(self):
        sim = make_sim(laplace2d(20))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=10, tol=1e-14, maxiter=25)
        assert not res.converged
        assert res.iterations <= 25

    def test_history_monotone_within_cycle(self):
        sim = make_sim(laplace2d(12))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=30, tol=1e-8, maxiter=500)
        _, r = res.history.as_arrays()
        # GMRES residual estimates are nonincreasing within a cycle
        assert np.all(np.diff(r[: min(len(r), 30)]) <= 1e-12)

    def test_mgs_variant(self):
        sim = make_sim(laplace2d(10))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=15, tol=1e-8, variant="mgs")
        assert res.converged

    def test_unknown_variant(self):
        sim = make_sim(laplace2d(8))
        with pytest.raises(ConfigurationError):
            gmres(sim, np.ones(sim.n), variant="qr-of-doom")


class TestPreconditioned:
    def test_jacobi_reduces_iterations(self):
        a = laplace2d(14) + 5.0 * sp.eye(14 * 14)
        sim1 = make_sim(a)
        sim2 = make_sim(a)
        b = sim1.ones_solution_rhs()
        plain = gmres(sim1, b, restart=20, tol=1e-8, maxiter=2000)
        pc = gmres(sim2, b, restart=20, tol=1e-8, maxiter=2000,
                   precond=JacobiPreconditioner())
        assert pc.converged
        np.testing.assert_allclose(pc.x, 1.0, atol=1e-5)
        assert pc.iterations <= plain.iterations

    def test_unpreconditioned_residual_norm_reported(self):
        sim = make_sim(laplace2d(10))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=15, tol=1e-8,
                    precond=JacobiPreconditioner())
        a = sim.matrix.to_scipy()
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        assert true_rel <= 2e-8


class TestAccounting:
    def test_times_and_syncs_populated(self):
        sim = make_sim(laplace2d(10))
        b = sim.ones_solution_rhs()
        res = gmres(sim, b, restart=15, tol=1e-8)
        assert res.times["total"] > 0
        assert res.ortho_time > 0
        assert res.spmv_time > 0
        assert res.sync_count >= 3 * res.iterations  # CGS2: 3 per iter
        assert "dot" in res.ortho_breakdown

    def test_summary_text(self):
        sim = make_sim(laplace2d(8))
        res = gmres(sim, sim.ones_solution_rhs(), restart=10, tol=1e-6)
        assert "gmres" in res.summary()
        assert res.time_per_iteration() > 0
