"""Adaptive step-size driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.adaptive import adaptive_sstep_gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu


def make_sim():
    return Simulation(laplace2d(40), ranks=4, machine=generic_cpu())


class TestAdaptive:
    def test_large_s_stalls_without_adaptation(self):
        """s = 15 on this Laplacian: panel kappa ~ 1e16, basis breaks."""
        sim = make_sim()
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=15, restart=30, tol=1e-8, maxiter=8000)
        assert not res.converged
        assert res.stalled

    def test_adaptation_recovers(self):
        sim = make_sim()
        b = sim.ones_solution_rhs()
        res = adaptive_sstep_gmres(sim, b, s_max=15, restart=30, tol=1e-8,
                                   maxiter=12_000)
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-4)
        # trajectory recorded: started at 15, shrank at least once
        assert "[s=15->" in res.scheme

    def test_no_shrink_when_stable(self):
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu())
        b = sim.ones_solution_rhs()
        res = adaptive_sstep_gmres(sim, b, s_max=5, restart=30, tol=1e-8,
                                   maxiter=8000)
        assert res.converged
        assert res.scheme.endswith("[s=5]")

    def test_two_stage_factory(self):
        from repro.ortho.two_stage import TwoStageScheme
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu())
        b = sim.ones_solution_rhs()
        res = adaptive_sstep_gmres(
            sim, b, s_max=10, restart=30, tol=1e-8, maxiter=8000,
            scheme_factory=lambda: TwoStageScheme(big_step=30))
        assert res.converged
        assert res.solver == "adaptive_sstep_gmres"

    def test_history_merged_monotone_iterations(self):
        sim = make_sim()
        b = sim.ones_solution_rhs()
        res = adaptive_sstep_gmres(sim, b, s_max=15, restart=30, tol=1e-8,
                                   maxiter=12_000)
        its, _ = res.history.as_arrays()
        assert np.all(np.diff(its) >= 0)

    def test_bad_bounds(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            adaptive_sstep_gmres(sim, np.ones(sim.n), s_max=2, s_min=5)
