"""Krylov basis polynomials and change-of-basis matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.basis import (
    ChebyshevBasis,
    MonomialBasis,
    NewtonBasis,
    leja_order,
)


class TestMonomial:
    def test_coefficients(self):
        assert MonomialBasis().coefficients(3) == (0.0, 1.0, 0.0)

    def test_change_of_basis_is_shift(self):
        t = MonomialBasis().change_of_basis(4)
        expected = np.zeros((5, 4))
        expected[1:, :] = np.eye(4)
        np.testing.assert_array_equal(t, expected)


class TestNewton:
    def test_default_is_monomial(self):
        nb = NewtonBasis()
        assert nb.coefficients(0) == (0.0, 1.0, 0.0)

    def test_shifts_appear_on_diagonal(self):
        nb = NewtonBasis(shifts=np.array([2.0, 3.0]))
        t = nb.change_of_basis(4)
        assert t[0, 0] == 2.0
        assert t[1, 1] == 3.0
        assert t[2, 2] == 2.0  # cyclic reuse
        assert t[1, 0] == 1.0

    def test_new_cycle_harvests_ritz_values(self):
        h = np.diag([1.0, 2.0, 3.0])
        h = np.vstack([h, np.zeros((1, 3))])
        nb = NewtonBasis()
        nb.new_cycle(h)
        assert sorted(nb.shifts) == [1.0, 2.0, 3.0]

    def test_new_cycle_none_is_noop(self):
        nb = NewtonBasis()
        nb.new_cycle(None)
        assert len(nb.shifts) == 0


class TestChebyshev:
    def test_interval_validation(self):
        with pytest.raises(ConfigurationError):
            ChebyshevBasis(2.0, 1.0)

    def test_three_term_relation_encoded(self):
        cb = ChebyshevBasis(1.0, 9.0)
        t = cb.change_of_basis(3)
        assert t[0, 0] == 5.0       # center
        assert t[1, 0] == 4.0       # delta (first step two-term)
        assert t[1, 1] == 5.0
        assert t[2, 1] == 2.0       # delta/2
        assert t[0, 1] == 2.0       # gamma = delta/2


class TestLejaOrder:
    def test_first_point_has_max_modulus(self):
        pts = np.array([1.0, -5.0, 2.0, 0.5])
        out = leja_order(pts)
        assert out[0] == -5.0

    def test_permutation(self, rng):
        pts = rng.standard_normal(10)
        out = leja_order(pts)
        assert sorted(out) == pytest.approx(sorted(pts))

    def test_spreads_consecutive_points(self):
        pts = np.linspace(0, 1, 8)
        out = leja_order(pts)
        # consecutive Leja points should not be adjacent grid points
        gaps = np.abs(np.diff(out))
        assert gaps[0] > np.diff(pts)[0]

    def test_empty(self):
        assert leja_order(np.array([])).size == 0
