"""GMRES-IR: low-precision inner solves, fp64 refinement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.ir import gmres_ir
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu

NX = 20
A = laplace2d(NX)


def _sim():
    return Simulation(A, ranks=4, machine=generic_cpu())


def _true_res(x, b):
    return float(np.linalg.norm(b - A @ x) / np.linalg.norm(b))


class TestGMRESIRFp32:
    def test_reaches_fp64_level_backward_error(self):
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="fp32", tol=1e-12, s=5, restart=30)
        assert res.converged
        assert res.solver == "gmres-ir"
        assert _true_res(res.x, b) < 1e-11
        assert res.diagnostics["refinements"] >= 1
        assert res.diagnostics["precision"] == "fp32"
        assert res.diagnostics["storage"] == "fp32"

    def test_beats_single_low_precision_cycle(self):
        """One inner solve alone stops at inner_tol; refinement continues
        past it."""
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="fp32", tol=1e-12, s=5, restart=30,
                       inner_tol=1e-3)
        assert res.converged
        assert res.relative_residual < 1e-12
        inner = res.diagnostics["inner_solves"]
        assert len(inner) == res.diagnostics["refinements"]
        assert all(s["applied"] for s in inner)

    def test_outer_history_is_monotone_contraction(self):
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="fp32", tol=1e-12, s=5, restart=30)
        r = np.asarray(res.history.residuals)
        assert r[0] == 1.0
        assert np.all(np.diff(r) < 0)

    def test_costs_accumulate_on_shared_tracer(self):
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="fp32", tol=1e-10, s=5, restart=30)
        assert res.total_time > 0
        assert res.ortho_time > 0
        assert res.sync_count > 0
        assert res.times["total"] == pytest.approx(sim.tracer.clock)


class TestGMRESIRBf16:
    def test_direct_bf16_fails_ir_succeeds(self):
        """Direct bf16 cannot even reach 1e-8; IR sails past it (the
        bf16-IR floor on this operator sits near eps_bf16^2 * kappa)."""
        sim = _sim()
        b = sim.ones_solution_rhs()
        direct = sstep_gmres(_sim(), b, s=5, restart=30, tol=1e-8,
                             maxiter=1500,
                             options=SolverOptions(precision="bf16"))
        assert not direct.converged
        res = gmres_ir(sim, b, precision="bf16", tol=1e-8, s=5, restart=30,
                       max_refinements=30)
        assert res.converged
        assert _true_res(res.x, b) < 1e-7

    def test_inner_tol_respects_storage_eps(self):
        """The default inner tolerance must be achievable in storage
        precision (for bf16 that means ~0.125, not 1e-4)."""
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="bf16", tol=1e-8, s=5, restart=30,
                       max_refinements=30)
        tols = [s["inner_tol"] for s in res.diagnostics["inner_solves"]]
        assert min(tols) >= 32.0 * 2.0 ** -8

    def test_trigger_never_tightens(self):
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="bf16", tol=1e-8, s=5, restart=30,
                       max_refinements=30)
        tols = [s["inner_tol"] for s in res.diagnostics["inner_solves"]]
        assert all(b_ >= a for a, b_ in zip(tols, tols[1:]))
        assert res.diagnostics["inner_tol_final"] <= 0.25


class TestGMRESIRConfig:
    def test_invalid_max_refinements(self):
        with pytest.raises(ConfigurationError):
            gmres_ir(_sim(), np.ones(NX * NX), max_refinements=0)

    def test_fp64_policy_converges_in_one_refinement(self):
        """With fp64 inner storage and a tight inner tol, IR is just a
        wrapped direct solve."""
        sim = _sim()
        b = sim.ones_solution_rhs()
        res = gmres_ir(sim, b, precision="fp64", tol=1e-8, s=5, restart=30,
                       inner_tol=1e-9)
        assert res.converged
        assert res.diagnostics["refinements"] == 1

    def test_x0_respected(self):
        sim = _sim()
        b = sim.ones_solution_rhs()
        x_star = np.ones(NX * NX)
        res = gmres_ir(sim, b, x0=x_star, precision="fp32", tol=1e-10)
        assert res.converged
        assert res.diagnostics["refinements"] == 0
        np.testing.assert_allclose(res.x, x_star)
