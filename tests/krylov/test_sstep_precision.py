"""``sstep_gmres(precision=...)``: policy-driven basis storage."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.krylov.options import OPTION_FIELD_NAMES, SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu
from repro.precision import PrecisionPolicy
from repro.precision.kernels import MixedPrecisionTwoStageScheme

NX = 20
A = laplace2d(NX)


def _solve(engine=None, **kw):
    sim = Simulation(A, ranks=4, machine=generic_cpu(), engine=engine)
    b = sim.ones_solution_rhs()
    opts = SolverOptions(**{k: kw.pop(k) for k in tuple(kw)
                            if k in OPTION_FIELD_NAMES})
    return sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                       options=opts, **kw)


class TestPrecisionArgument:
    def test_fp32_converges_with_diagnostics(self):
        res = _solve(precision="fp32")
        assert res.converged
        assert res.diagnostics["precision"] == "fp32"
        assert res.diagnostics["storage"] == "fp32"

    def test_default_policy_leaves_diagnostics_empty(self):
        res = _solve()
        assert "precision" not in res.diagnostics

    def test_policy_instance_accepted(self):
        p = PrecisionPolicy("custom32", storage="fp32")
        res = _solve(precision=p)
        assert res.converged
        assert res.diagnostics["precision"] == "custom32"

    def test_unknown_policy_name_raises(self):
        with pytest.raises(ValueError):
            _solve(precision="fp128")

    def test_dd_gram_policy_selects_mixed_scheme(self):
        res = _solve(precision="fp32_dd_gram")
        assert res.converged
        assert res.scheme == MixedPrecisionTwoStageScheme.name

    def test_explicit_scheme_wins_over_policy_gram(self):
        from repro.ortho.two_stage import TwoStageScheme
        res = _solve(precision="fp32_dd_gram",
                     scheme=TwoStageScheme(big_step=30))
        assert res.scheme == "two-stage"

    def test_engines_bit_identical_per_precision(self):
        for precision in (None, "fp32", "bf16"):
            loop = _solve(engine="loop", precision=precision)
            batched = _solve(engine="batched", precision=precision)
            np.testing.assert_array_equal(loop.x, batched.x)
            assert loop.iterations == batched.iterations
            assert loop.total_time == batched.total_time

    def test_fp32_charges_fewer_ortho_seconds_per_iteration(self):
        """The bytes term of every panel kernel halves.  Iteration counts
        may differ (quantization perturbs convergence), so compare the
        charged ortho cost per iteration; the bandwidth-bound halving
        claim itself is pinned in tests/distla/test_precision_engine.py."""
        r64 = _solve()
        r32 = _solve(precision="fp32")
        assert (r32.ortho_time / r32.iterations
                < r64.ortho_time / r64.iterations)

    def test_fp32_with_sketched_solve_mode(self):
        res = _solve(precision="fp32", solve_mode="sketched")
        assert res.converged
        assert res.diagnostics["solve_mode"] == "sketched"
        assert res.diagnostics["precision"] == "fp32"

    def test_fp32_with_sketched_two_stage_scheme(self):
        """The randomized schemes run unchanged over low-precision
        storage (the 'fp32 sketched schemes' configuration)."""
        from repro.ortho.randomized import SketchedTwoStageScheme
        res = _solve(precision="fp32",
                     scheme=SketchedTwoStageScheme(big_step=30, fused=True),
                     solve_mode="sketched")
        assert res.converged


class TestBasisStorage:
    def test_basis_allocated_at_policy_storage(self):
        sim = Simulation(A, ranks=4, machine=generic_cpu())
        mv = sim.zeros(3, storage="bf16")
        assert mv.storage == "bf16"
        assert mv.np_dtype == np.float32
        assert mv.word_bytes == 2.0

    def test_engine_scope_does_not_leak(self):
        with config.engine_scope("loop"):
            res = _solve(precision="fp32")
        assert res.converged
