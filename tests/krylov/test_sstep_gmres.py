"""s-step GMRES with every block-orthogonalization scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.basis import NewtonBasis
from repro.krylov.gmres import gmres
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import _panel_bounds, sstep_gmres
from repro.matrices.stencil import convection_diffusion_2d, laplace2d
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu
from repro.precond.block_jacobi import BlockJacobiPreconditioner


def make_sim(a, ranks=4):
    return Simulation(a, ranks=ranks, machine=generic_cpu())


ALL_SCHEMES = [
    lambda: BCGS2Scheme(),
    lambda: BCGSPIP2Scheme(),
    lambda: TwoStageScheme(big_step=30),
    lambda: TwoStageScheme(big_step=10),
]


class TestPanelBounds:
    def test_first_panel_includes_start(self):
        assert _panel_bounds(5, 31) == [(0, 6), (6, 11), (11, 16), (16, 21),
                                        (21, 26), (26, 31)]

    def test_clipping(self):
        assert _panel_bounds(4, 7) == [(0, 5), (5, 7)]


class TestConvergence:
    @pytest.mark.parametrize("scheme_factory", ALL_SCHEMES)
    def test_laplace(self, scheme_factory):
        sim = make_sim(laplace2d(16))
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          scheme=scheme_factory())
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-4)
        a = sim.matrix.to_scipy()
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        assert true_rel <= 1e-7

    @pytest.mark.parametrize("scheme_factory", ALL_SCHEMES)
    def test_nonsymmetric(self, scheme_factory):
        sim = make_sim(convection_diffusion_2d(12))
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=4, restart=20, tol=1e-8, maxiter=4000,
                          scheme=scheme_factory())
        assert res.converged

    def test_iteration_quantization(self):
        """One-stage schemes stop on panel boundaries, two-stage on big
        panel boundaries — the paper's Table III iteration pattern."""
        a = laplace2d(20)
        sim1, sim2 = make_sim(a), make_sim(a)
        b = sim1.ones_solution_rhs()
        one = sstep_gmres(sim1, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          scheme=BCGSPIP2Scheme())
        two = sstep_gmres(sim2, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          scheme=TwoStageScheme(big_step=30))
        assert one.iterations % 5 == 0
        assert two.iterations % 30 == 0
        assert two.iterations >= one.iterations

    def test_two_stage_bs_s_equals_pip2(self):
        a = laplace2d(14)
        sim1, sim2 = make_sim(a), make_sim(a)
        b = sim1.ones_solution_rhs()
        pip = sstep_gmres(sim1, b, s=5, restart=30, tol=1e-8, maxiter=3000,
                          scheme=BCGSPIP2Scheme())
        ts = sstep_gmres(sim2, b, s=5, restart=30, tol=1e-8, maxiter=3000,
                         scheme=TwoStageScheme(big_step=5))
        assert pip.iterations == ts.iterations
        np.testing.assert_allclose(pip.x, ts.x, rtol=1e-12, atol=1e-12)

    def test_matches_standard_gmres_trajectory(self):
        """In exact arithmetic s-step GMRES == GMRES; check the residual
        at the first common checkpoint agrees to rounding."""
        a = laplace2d(14)
        sim1, sim2 = make_sim(a), make_sim(a)
        b = sim1.ones_solution_rhs()
        std = gmres(sim1, b, restart=30, tol=1e-30, maxiter=30)
        sst = sstep_gmres(sim2, b, s=5, restart=30, tol=1e-30, maxiter=30)
        it_std, r_std = std.history.as_arrays()
        it_sst, r_sst = sst.history.as_arrays()
        # compare at iteration 30 (end of first cycle for both)
        r1 = r_std[it_std == 30][-1]
        r2 = r_sst[it_sst == 30][-1]
        assert r2 == pytest.approx(r1, rel=1e-6)

    def test_zero_rhs(self):
        sim = make_sim(laplace2d(8))
        res = sstep_gmres(sim, np.zeros(sim.n), s=3, restart=9)
        assert res.converged and res.iterations == 0

    def test_restart_smaller_than_s_rejected(self):
        sim = make_sim(laplace2d(8))
        with pytest.raises(ConfigurationError):
            sstep_gmres(sim, np.ones(sim.n), s=10, restart=5)

    def test_unknown_basis_rejected(self):
        sim = make_sim(laplace2d(8))
        with pytest.raises(ConfigurationError):
            sstep_gmres(sim, np.ones(sim.n), basis="legendre")

    def test_maxiter_cap(self):
        sim = make_sim(laplace2d(20))
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=20, tol=1e-14, maxiter=40)
        assert not res.converged
        assert res.iterations <= 40


class TestBases:
    def test_newton_basis_converges(self):
        sim = make_sim(laplace2d(14))
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=3000,
                          basis="newton")
        assert res.converged

    def test_newton_instance(self):
        sim = make_sim(laplace2d(12))
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=4, restart=20, tol=1e-8, maxiter=3000,
                          basis=NewtonBasis())
        assert res.converged


class TestPreconditioned:
    def test_block_jacobi_gs(self):
        # large enough that one restart cycle cannot converge, so the
        # preconditioner's iteration win is visible through the panel
        # quantization
        a = laplace2d(28)
        sim, plain_sim = make_sim(a), make_sim(a)
        b = sim.ones_solution_rhs()
        plain = sstep_gmres(plain_sim, b, s=5, restart=20, tol=1e-8,
                            maxiter=6000)
        pc = sstep_gmres(sim, b, s=5, restart=20, tol=1e-8, maxiter=6000,
                         precond=BlockJacobiPreconditioner())
        assert pc.converged
        assert pc.iterations < plain.iterations
        true_rel = np.linalg.norm(b - a @ pc.x) / np.linalg.norm(b)
        assert true_rel <= 1e-7


class TestAccounting:
    def test_sync_counts_ordered_by_scheme(self):
        """BCGS2 (5/panel) > PIP2 (2/panel) > two-stage (1 + s/bs)."""
        a = laplace2d(16)
        counts = {}
        for name, factory in [("bcgs2", lambda: BCGS2Scheme()),
                              ("pip2", lambda: BCGSPIP2Scheme()),
                              ("two", lambda: TwoStageScheme(big_step=30))]:
            sim = make_sim(a)
            b = sim.ones_solution_rhs()
            res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8,
                              maxiter=2000, scheme=factory())
            counts[name] = res.sync_count / max(res.iterations, 1)
        assert counts["bcgs2"] > counts["pip2"] > counts["two"]

    def test_ortho_time_ordered_by_scheme(self):
        a = laplace2d(16)
        times = {}
        for name, factory in [("bcgs2", lambda: BCGS2Scheme()),
                              ("pip2", lambda: BCGSPIP2Scheme()),
                              ("two", lambda: TwoStageScheme(big_step=30))]:
            sim = Simulation(a, ranks=12)  # summit machine: latency matters
            b = sim.ones_solution_rhs()
            res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8,
                              maxiter=2000, scheme=factory())
            times[name] = res.ortho_time / max(res.iterations, 1)
        assert times["bcgs2"] > times["pip2"] > times["two"]
