"""Adaptive solve-mode switching off the PR-3 solver diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import SOLVE_MODES, sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu


def _laplace_sim():
    return Simulation(laplace2d(20), ranks=4, machine=generic_cpu())


class TestAdaptiveMode:
    def test_adaptive_is_a_registered_mode(self):
        assert SOLVE_MODES == ("classical", "sketched", "adaptive")
        with pytest.raises(ConfigurationError):
            sstep_gmres(_laplace_sim(), np.ones(400),
                        options=SolverOptions(solve_mode="auto"))

    def test_well_conditioned_switches_down_to_classical(self):
        """Healthy diagnostics => the solver drops the sketch collectives
        and finishes in classical mode."""
        sim = _laplace_sim()
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          options=SolverOptions(solve_mode="adaptive"))
        assert res.converged
        d = res.diagnostics
        assert d["solve_mode"] == "adaptive"
        assert d["final_mode"] == "classical"
        assert d["mode_switches"] >= 1
        assert d["basis_condition_max"] < 1e3

    def test_ill_conditioned_stays_sketched(self):
        """A basis whose condition estimate exceeds the threshold must
        never drop to the classical coordinate solve."""
        a = sp.diags(np.logspace(0.0, np.log10(50.0), 400)).tocsr()
        b = np.asarray(a @ np.ones(400)).ravel()
        with np.errstate(all="ignore"):
            res = sstep_gmres(
                Simulation(a, ranks=4, machine=generic_cpu()), b, s=14,
                restart=28, tol=1e-8, maxiter=1500,
                scheme=TwoStageScheme(big_step=28, breakdown="shift"),
                options=SolverOptions(solve_mode="adaptive"))
        assert res.converged
        assert res.diagnostics["final_mode"] == "sketched"
        assert res.diagnostics["mode_switches"] == 0
        assert res.diagnostics["basis_condition_max"] > 1e6

    def test_threshold_knobs(self):
        """An impossible condition threshold pins the solver in sketched
        mode even on a benign problem."""
        sim = _laplace_sim()
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          options=SolverOptions(solve_mode="adaptive",
                                                adaptive_cond_threshold=0.0))
        assert res.converged
        assert res.diagnostics["final_mode"] == "sketched"
        assert res.diagnostics["mode_switches"] == 0

    def test_adaptive_matches_fixed_modes_solution(self):
        sim = _laplace_sim()
        b = sim.ones_solution_rhs()
        adaptive = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8,
                               maxiter=4000,
                               options=SolverOptions(solve_mode="adaptive"))
        classical = sstep_gmres(_laplace_sim(), b, s=5, restart=30, tol=1e-8,
                                maxiter=4000)
        np.testing.assert_allclose(adaptive.x, classical.x, atol=1e-6)


class TestEmbeddingQualityDiagnostic:
    def test_sketched_solve_surfaces_leave_one_out(self):
        sim = _laplace_sim()
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000,
                          options=SolverOptions(solve_mode="sketched"))
        d = res.diagnostics
        assert "embedding_distortion_max" in d
        assert np.isfinite(d["embedding_distortion_max"])
        assert d["embedding_distortion_max"] > 0.0

    def test_classical_solve_has_no_embedding_diag(self):
        sim = _laplace_sim()
        b = sim.ones_solution_rhs()
        res = sstep_gmres(sim, b, s=5, restart=30, tol=1e-8, maxiter=4000)
        assert "embedding_distortion_max" not in res.diagnostics
