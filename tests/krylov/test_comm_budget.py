"""Tracer-based communication-budget regression tests.

Every synchronization the solver charges per restart cycle is frozen
here — halo exchanges split by MPK mode, allreduces split by
orthogonalization scheme — as BOTH a message count and a payload byte
budget (``Tracer.collective_counts(payload_bytes=True)``).  The counts
are structural, not tuned:

* halo exchanges: 1 (explicit residual check) + one per basis column
  for the standard MPK, + one per s-panel for the CA MPK, or + two per
  s-panel for the overlapped CA MPK (eager shell + posted ring);
* allreduces: 1 (residual norm) + the scheme's per-panel collectives
  (two-stage: one fused stage-1 reduce per panel + one stage-2 pass at
  the cycle end; BCGS-PIP2: two fused reduces per panel — the paper's
  "two global reduces per block"; fused sketched two-stage: ONE
  collective per stage pass, the RGS contract; RBCGS: three per panel —
  sketch, projection, normalization).

The byte budgets are exact for the fixed problem below (laplace2d(16)
on 4 ranks): payloads come from the charge sites' message descriptors,
so they are deterministic and engine-independent.  If an intentional
algorithm change shifts a budget, update the number here *in the same
commit* and say why in its message.
"""

from __future__ import annotations

import pytest

from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import _panel_bounds, sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.randomized import RBCGSScheme, SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

S = 5
RESTART = 30
PANELS = len(_panel_bounds(S, RESTART + 1))  # 6 panels per cycle
ENGINES = ["loop", "batched"]

# Frozen payload budgets (bytes) for laplace2d(16) on 4 ranks.  The
# depth-1 halo moves two 16-wide ghost rows of float64 per exchange;
# the residual-norm allreduce carries one scalar.  Scheme totals are
# the summed Gram/sketch message descriptors over one restart cycle.
HALO_EXCHANGE_BYTES = 2 * 16 * 8       # 256 B per depth-1 exchange
CA_HALO_BYTES = 7_168                  # deep-ghost total, any CA mode
RESIDUAL_NORM_BYTES = 8                # one scalar reduce
TWO_STAGE_ORTHO_BYTES = 12_176
BCGS_PIP2_ORTHO_BYTES = 8_976
FUSED_SKETCHED_ORTHO_BYTES = 80_576
RBCGS_ORTHO_BYTES = 86_352


def run_one_cycle(scheme_factory, engine, **option_kw):
    """Exactly one restart cycle: tol unreachable, maxiter = restart.

    Returns (total, ortho-phase) ``collective_counts`` docs, each
    ``{kind: {"count": n, "bytes": b}}``.
    """
    sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu(),
                     engine=engine)
    res = sstep_gmres(sim, sim.ones_solution_rhs(), s=S, restart=RESTART,
                      tol=1e-30, maxiter=RESTART, scheme=scheme_factory(),
                      options=SolverOptions(**option_kw))
    assert res.restarts == 1
    total = sim.tracer.collective_counts(payload_bytes=True)
    ortho = sim.tracer.collective_counts("ortho", payload_bytes=True)
    # no solver path broadcasts inside a cycle
    assert total["bcast"] == {"count": 0, "bytes": 0.0}
    return total, ortho


class TestHaloBudget:
    """1 residual matvec + (columns | panels) MPK exchanges per cycle."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_standard_mpk_pays_one_exchange_per_column(self, engine):
        total, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine)
        assert total["halo"]["count"] == 1 + RESTART
        assert total["halo"]["bytes"] == (1 + RESTART) * HALO_EXCHANGE_BYTES

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_mpk_pays_one_exchange_per_panel(self, engine):
        total, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine, mpk_mode="ca")
        assert total["halo"]["count"] == 1 + PANELS
        assert total["halo"]["bytes"] == CA_HALO_BYTES

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_overlap_pays_two_exchanges_per_panel(self, engine):
        """PA2 splits each panel's exchange in two messages — the eager
        depth-1 shell plus the posted (waited) deep ring — but moves
        exactly the same ghost volume as the blocking CA MPK."""
        total, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine,
            mpk_mode="ca_overlap")
        assert total["halo"]["count"] == 1 + 2 * PANELS
        assert total["halo"]["bytes"] == CA_HALO_BYTES

    def test_ca_overlap_hides_ring_time(self):
        """The posted ring must actually report hidden halo seconds;
        blocking modes report none."""
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu())
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=S, restart=RESTART,
                          tol=1e-30, maxiter=RESTART,
                          scheme=TwoStageScheme(big_step=RESTART),
                          options=SolverOptions(mpk_mode="ca_overlap"))
        assert res.restarts == 1
        assert sim.tracer.overlapped_seconds(kernel="halo") > 0.0
        assert sim.tracer.overlapped_seconds(kernel="allreduce") == 0.0

    @pytest.mark.parametrize("mode", ["ca", "ca_overlap"])
    def test_mpk_mode_does_not_change_allreduce_budget(self, mode):
        """CA trades halo latency only — global reductions are the
        ortho schemes' business: neither their count nor their payload
        may move."""
        std_total, std_ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop")
        ca_total, ca_ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop", mpk_mode=mode)
        assert ca_total["allreduce"] == std_total["allreduce"]
        assert ca_ortho["allreduce"] == std_ortho["allreduce"]


class TestAllreduceBudget:
    """Per-cycle global-reduction budgets per orthogonalization scheme."""

    @staticmethod
    def _check(total, ortho, *, count, ortho_bytes):
        assert ortho["allreduce"]["count"] == count
        assert total["allreduce"]["count"] == count + 1
        assert ortho["allreduce"]["bytes"] == ortho_bytes
        assert (total["allreduce"]["bytes"] - ortho["allreduce"]["bytes"]
                == RESIDUAL_NORM_BYTES)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_stage(self, engine):
        total, ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine)
        # one fused stage-1 reduce per panel + one stage-2 pass at the
        # cycle end + the residual-norm reduce
        self._check(total, ortho, count=PANELS + 1,
                    ortho_bytes=TWO_STAGE_ORTHO_BYTES)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bcgs_pip2(self, engine):
        total, ortho = run_one_cycle(BCGSPIP2Scheme, engine)
        # the paper's one-stage baseline: 2 fused reduces per panel
        self._check(total, ortho, count=2 * PANELS,
                    ortho_bytes=BCGS_PIP2_ORTHO_BYTES)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_sketched_two_stage(self, engine):
        total, ortho = run_one_cycle(
            lambda: SketchedTwoStageScheme(big_step=RESTART, fused=True),
            engine, solve_mode="sketched")
        # the RGS contract: ONE collective per stage pass (6 panel
        # passes + 1 cycle-end pass), and the sketched solve path reuses
        # the scheme's basis sketch at zero extra collectives
        self._check(total, ortho, count=PANELS + 1,
                    ortho_bytes=FUSED_SKETCHED_ORTHO_BYTES)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rbcgs(self, engine):
        total, ortho = run_one_cycle(RBCGSScheme, engine)
        # sketch + projection + normalization reduces per panel
        self._check(total, ortho, count=3 * PANELS,
                    ortho_bytes=RBCGS_ORTHO_BYTES)

    def test_two_stage_beats_one_stage_budget(self):
        """The paper's core claim in count form: fewer synchronizations,
        even though the fused stage-1 messages are individually fatter."""
        _, two = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop")
        _, one = run_one_cycle(BCGSPIP2Scheme, "loop")
        assert two["allreduce"]["count"] < one["allreduce"]["count"]
        assert two["allreduce"]["bytes"] > one["allreduce"]["bytes"]


class TestBlockSolverBudget:
    """The batched multi-RHS solver's frozen per-cycle budgets.

    The contract: a width-``w`` batch keeps the scalar solver's
    collective *count* budget exactly (the whole point of fusing the
    members' charges) while every payload budget scales exactly ``w``
    fold — messages concatenate, they are never re-scheduled.
    """

    @staticmethod
    def run_block_cycle(width, engine, scheme_factory, **option_kw):
        import numpy as np

        from repro.krylov.block import block_sstep_gmres
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu(),
                         engine=engine)
        rng = np.random.default_rng(0)
        cols = rng.standard_normal((sim.n, width))
        results = block_sstep_gmres(
            sim, cols, s=S, restart=RESTART, tol=1e-30, maxiter=RESTART,
            scheme_factory=scheme_factory,
            options=SolverOptions(**option_kw))
        assert all(r.restarts == 1 for r in results)
        total = sim.tracer.collective_counts(payload_bytes=True)
        assert total["bcast"] == {"count": 0, "bytes": 0.0}
        return total

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("width", [2, 4])
    def test_two_stage_counts_frozen_bytes_scale(self, width, engine):
        total = self.run_block_cycle(
            width, engine, lambda: TwoStageScheme(big_step=RESTART))
        # scalar budgets verbatim: counts must NOT grow with the width
        assert total["allreduce"]["count"] == PANELS + 1 + 1
        assert total["halo"]["count"] == 1 + RESTART
        # payloads are exactly width x the scalar budgets
        assert total["allreduce"]["bytes"] == width * (
            TWO_STAGE_ORTHO_BYTES + RESIDUAL_NORM_BYTES)
        assert total["halo"]["bytes"] == width * (
            (1 + RESTART) * HALO_EXCHANGE_BYTES)

    @pytest.mark.parametrize("width", [2, 4])
    def test_bcgs_pip2_ca_counts_frozen_bytes_scale(self, width):
        total = self.run_block_cycle(
            width, "loop", BCGSPIP2Scheme, mpk_mode="ca")
        assert total["allreduce"]["count"] == 2 * PANELS + 1
        assert total["halo"]["count"] == 1 + PANELS
        assert total["allreduce"]["bytes"] == width * (
            BCGS_PIP2_ORTHO_BYTES + RESIDUAL_NORM_BYTES)
        assert total["halo"]["bytes"] == width * CA_HALO_BYTES

    def test_width_independence_across_widths(self):
        """Same count doc at every width; bytes in exact proportion."""
        docs = {w: self.run_block_cycle(
            w, "loop", lambda: TwoStageScheme(big_step=RESTART))
            for w in (1, 2, 4)}
        base = docs[1]
        for w in (2, 4):
            assert {k: v["count"] for k, v in docs[w].items()} \
                == {k: v["count"] for k, v in base.items()}
            assert {k: v["bytes"] for k, v in docs[w].items()} \
                == {k: v["bytes"] * w for k, v in base.items()}
