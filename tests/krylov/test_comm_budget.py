"""Tracer-based communication-budget regression tests.

Every synchronization the solver charges per restart cycle is frozen
here — halo exchanges split by MPK mode, allreduces split by
orthogonalization scheme — so a future refactor cannot silently add
latency-bound communication.  The counts are structural, not tuned:

* halo exchanges: 1 (explicit residual check) + one per basis column
  for the standard MPK, + one per s-panel for the CA MPK, or + two per
  s-panel for the overlapped CA MPK (eager shell + posted ring);
* allreduces: 1 (residual norm) + the scheme's per-panel collectives
  (two-stage: one fused stage-1 reduce per panel + one stage-2 pass at
  the cycle end; BCGS-PIP2: two fused reduces per panel — the paper's
  "two global reduces per block"; fused sketched two-stage: ONE
  collective per stage pass, the RGS contract; RBCGS: three per panel —
  sketch, projection, normalization).

If an intentional algorithm change shifts a budget, update the number
here *in the same commit* and say why in its message.
"""

from __future__ import annotations

import pytest

from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import _panel_bounds, sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.randomized import RBCGSScheme, SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu

S = 5
RESTART = 30
PANELS = len(_panel_bounds(S, RESTART + 1))  # 6 panels per cycle
ENGINES = ["loop", "batched"]


def run_one_cycle(scheme_factory, engine, **option_kw):
    """Exactly one restart cycle: tol unreachable, maxiter = restart."""
    sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu(),
                     engine=engine)
    res = sstep_gmres(sim, sim.ones_solution_rhs(), s=S, restart=RESTART,
                      tol=1e-30, maxiter=RESTART, scheme=scheme_factory(),
                      options=SolverOptions(**option_kw))
    assert res.restarts == 1
    total = sim.tracer.collective_counts()
    ortho = sim.tracer.collective_counts("ortho")
    return total["halo"], total["allreduce"], ortho["allreduce"]


class TestHaloBudget:
    """1 residual matvec + (columns | panels) MPK exchanges per cycle."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_standard_mpk_pays_one_exchange_per_column(self, engine):
        halo, _, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine)
        assert halo == 1 + RESTART

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_mpk_pays_one_exchange_per_panel(self, engine):
        halo, _, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine, mpk_mode="ca")
        assert halo == 1 + PANELS

    @pytest.mark.parametrize("engine", ENGINES)
    def test_ca_overlap_pays_two_exchanges_per_panel(self, engine):
        """PA2 splits each panel's exchange in two messages: the eager
        depth-1 shell plus the posted (waited) deep ring."""
        halo, _, _ = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine,
            mpk_mode="ca_overlap")
        assert halo == 1 + 2 * PANELS

    def test_ca_overlap_hides_ring_time(self):
        """The posted ring must actually report hidden halo seconds;
        blocking modes report none."""
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu())
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=S, restart=RESTART,
                          tol=1e-30, maxiter=RESTART,
                          scheme=TwoStageScheme(big_step=RESTART),
                          options=SolverOptions(mpk_mode="ca_overlap"))
        assert res.restarts == 1
        assert sim.tracer.overlapped_seconds(kernel="halo") > 0.0
        assert sim.tracer.overlapped_seconds(kernel="allreduce") == 0.0

    @pytest.mark.parametrize("mode", ["ca", "ca_overlap"])
    def test_mpk_mode_does_not_change_allreduce_budget(self, mode):
        """CA trades halo latency only — global reductions are the
        ortho schemes' business and must not move."""
        _, std_all, std_ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop")
        _, ca_all, ca_ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop", mpk_mode=mode)
        assert ca_all == std_all
        assert ca_ortho == std_ortho


class TestAllreduceBudget:
    """Per-cycle global-reduction budgets per orthogonalization scheme."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_two_stage(self, engine):
        _, total, ortho = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), engine)
        # one fused stage-1 reduce per panel + one stage-2 pass at the
        # cycle end + the residual-norm reduce
        assert ortho == PANELS + 1
        assert total == ortho + 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bcgs_pip2(self, engine):
        _, total, ortho = run_one_cycle(BCGSPIP2Scheme, engine)
        # the paper's one-stage baseline: 2 fused reduces per panel
        assert ortho == 2 * PANELS
        assert total == ortho + 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_sketched_two_stage(self, engine):
        _, total, ortho = run_one_cycle(
            lambda: SketchedTwoStageScheme(big_step=RESTART, fused=True),
            engine, solve_mode="sketched")
        # the RGS contract: ONE collective per stage pass (6 panel
        # passes + 1 cycle-end pass), and the sketched solve path reuses
        # the scheme's basis sketch at zero extra collectives
        assert ortho == PANELS + 1
        assert total == ortho + 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rbcgs(self, engine):
        _, total, ortho = run_one_cycle(RBCGSScheme, engine)
        # sketch + projection + normalization reduces per panel
        assert ortho == 3 * PANELS
        assert total == ortho + 1

    def test_two_stage_beats_one_stage_budget(self):
        """The paper's core claim in count form."""
        _, _, two = run_one_cycle(
            lambda: TwoStageScheme(big_step=RESTART), "loop")
        _, _, one = run_one_cycle(BCGSPIP2Scheme, "loop")
        assert two < one
