"""Pipelined GMRES with DCGS-2 (ref. [25] family)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.krylov.gmres import gmres
from repro.krylov.options import SolverOptions
from repro.krylov.pipelined import pipelined_gmres
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import convection_diffusion_2d, laplace2d
from repro.ortho.low_sync import DCGS2Orthogonalizer
from repro.parallel.machine import generic_cpu, summit
from repro.precond.jacobi import JacobiPreconditioner


def make_sim(a, ranks=4, machine=None):
    return Simulation(a, ranks=ranks,
                      machine=machine if machine else generic_cpu())


class TestConvergence:
    def test_spd(self):
        sim = make_sim(laplace2d(16))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=30, tol=1e-9, maxiter=4000)
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)
        a = sim.matrix.to_scipy()
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        assert true_rel <= 2e-9

    def test_nonsymmetric(self):
        sim = make_sim(convection_diffusion_2d(12))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=25, tol=1e-8, maxiter=4000)
        assert res.converged

    def test_matches_standard_gmres_solution(self):
        a = laplace2d(14)
        sim1, sim2 = make_sim(a), make_sim(a)
        b = sim1.ones_solution_rhs()
        std = gmres(sim1, b, restart=25, tol=1e-10, maxiter=4000)
        pipe = pipelined_gmres(sim2, b, restart=25, tol=1e-10, maxiter=4000)
        np.testing.assert_allclose(pipe.x, std.x, atol=1e-7)

    def test_zero_rhs(self):
        sim = make_sim(laplace2d(8))
        res = pipelined_gmres(sim, np.zeros(sim.n), restart=10)
        assert res.converged and res.iterations == 0

    def test_preconditioned(self):
        sim = make_sim(laplace2d(14))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=25, tol=1e-8, maxiter=4000,
                              precond=JacobiPreconditioner())
        assert res.converged

    def test_maxiter_cap(self):
        sim = make_sim(laplace2d(20))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=20, tol=1e-14, maxiter=30)
        assert not res.converged
        assert res.iterations <= 30


class TestSynchronization:
    def test_one_reduce_per_iteration(self):
        sim = make_sim(laplace2d(16), ranks=6, machine=summit())
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=20, tol=1e-30, maxiter=20)
        # per cycle: 1 residual norm + start + 20 pushes + flush = 23
        assert res.iterations == 20
        assert res.sync_count == 23

    def test_overlap_off_budget_unchanged(self):
        """``comm_overlap`` defaults off: passing explicit default
        options must not move the frozen sync budget above."""
        sim = make_sim(laplace2d(16), ranks=6, machine=summit())
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=20, tol=1e-30, maxiter=20,
                              options=SolverOptions())
        assert res.sync_count == 23

    def test_fewer_syncs_and_less_ortho_than_cgs2(self):
        a = laplace2d(20)
        sim1 = make_sim(a, ranks=12, machine=summit())
        sim2 = make_sim(a, ranks=12, machine=summit())
        b = sim1.ones_solution_rhs()
        std = gmres(sim1, b, restart=30, tol=1e-30, maxiter=30)
        pipe = pipelined_gmres(sim2, b, restart=30, tol=1e-30, maxiter=30)
        assert pipe.sync_count < std.sync_count / 2
        assert pipe.ortho_time < std.ortho_time


class TestCommOverlap:
    """``SolverOptions(comm_overlap=True)``: the settle-side half of each
    fused reduction is posted before the operator application."""

    def run_pair(self, a, *, restart=20, tol=1e-9, maxiter=4000, ranks=4,
                 machine=None):
        res = {}
        for overlap in (False, True):
            sim = make_sim(a, ranks=ranks, machine=machine)
            b = sim.ones_solution_rhs()
            res[overlap] = (pipelined_gmres(
                sim, b, restart=restart, tol=tol, maxiter=maxiter,
                options=SolverOptions(comm_overlap=overlap)), sim)
        return res[False], res[True]

    def test_bit_identical_solve(self):
        """Per-pair reduction trees are independent, so splitting the
        fused message cannot change a single bit of the solve."""
        (off, _), (on, _) = self.run_pair(laplace2d(16))
        assert on.converged
        assert on.x.tobytes() == off.x.tobytes()
        assert on.iterations == off.iterations
        assert on.history.residuals == off.history.residuals

    def test_bit_identical_nonsymmetric(self):
        (off, _), (on, _) = self.run_pair(convection_diffusion_2d(12),
                                          restart=25, tol=1e-8)
        assert on.converged
        assert on.x.tobytes() == off.x.tobytes()

    def test_splits_one_reduce_into_two(self):
        """Each overlapped push trades the single 4-pair message for a
        posted 2-pair + a blocking 2-pair one; push(1) and flush are not
        postable, the residual norm and start are untouched."""
        (off, _), (on, _) = self.run_pair(
            laplace2d(16), restart=20, tol=1e-30, maxiter=20,
            ranks=6, machine=summit())
        assert off.sync_count == 23
        # pushes 2..20 split in two; push(1), flush, start, residual don't
        assert on.sync_count == 23 + 19

    def test_reports_hidden_allreduce_time(self):
        (_, sim_off), (_, sim_on) = self.run_pair(
            laplace2d(16), restart=20, tol=1e-30, maxiter=20,
            ranks=6, machine=summit())
        assert sim_off.tracer.overlapped_seconds(kernel="allreduce") == 0.0
        assert sim_on.tracer.overlapped_seconds(kernel="allreduce") > 0.0


class TestPostPushContract:
    """Order/state errors of the DCGS2 posted-partial protocol."""

    def setup_ortho(self, k=6):
        sim = make_sim(laplace2d(8))
        basis = sim.zeros(k)
        rng = np.random.default_rng(0)
        v0 = rng.standard_normal(sim.n)
        basis.view_cols(0).assign_from(sim.vector_from(v0))
        ortho = DCGS2Orthogonalizer()
        ortho.start(sim.backend, basis)
        return sim, basis, ortho

    def fill(self, sim, basis, j):
        rng = np.random.default_rng(j)
        basis.view_cols(j).assign_from(
            sim.vector_from(rng.standard_normal(sim.n)))

    def test_push_one_not_postable(self):
        _, _, ortho = self.setup_ortho()
        assert ortho.post_push(1) is False  # nothing settled yet

    def test_post_then_push_consumes_handle(self):
        sim, basis, ortho = self.setup_ortho()
        self.fill(sim, basis, 1)
        ortho.push(1)
        assert ortho.post_push(2) is True
        self.fill(sim, basis, 2)
        ortho.push(2)
        assert ortho._posted is None  # consumed, not leaked

    def test_double_post_raises(self):
        sim, basis, ortho = self.setup_ortho()
        self.fill(sim, basis, 1)
        ortho.push(1)
        ortho.post_push(2)
        with pytest.raises(ConfigurationError, match="already posted"):
            ortho.post_push(2)

    def test_out_of_order_post_raises(self):
        sim, basis, ortho = self.setup_ortho()
        self.fill(sim, basis, 1)
        ortho.push(1)
        with pytest.raises(ConfigurationError, match="out of order"):
            ortho.post_push(5)

    def test_post_before_start_raises(self):
        ortho = DCGS2Orthogonalizer()
        with pytest.raises(ConfigurationError, match="start"):
            ortho.post_push(1)

    def test_flush_consumes_stray_posted_handle(self):
        """An aborted push leaves a posted partial; flush settles the
        same pairs from it — values identical to the unposted flush."""
        sim1, basis1, o1 = self.setup_ortho()
        sim2, basis2, o2 = self.setup_ortho()
        for o, sim, basis in ((o1, sim1, basis1), (o2, sim2, basis2)):
            self.fill(sim, basis, 1)
            o.push(1)
        o1.post_push(2)  # ... then the iteration aborts before push(2)
        r1 = o1.flush()
        r2 = o2.flush()
        np.testing.assert_array_equal(r1, r2)

    def test_posted_push_values_bit_identical(self):
        sim1, basis1, o1 = self.setup_ortho()
        sim2, basis2, o2 = self.setup_ortho()
        settled1, settled2 = [], []
        for j in range(1, 5):
            self.fill(sim1, basis1, j)
            self.fill(sim2, basis2, j)
            o1.post_push(j)
            r = o1.push(j)
            settled1.append(None if r is None else r.copy())
            r = o2.push(j)
            settled2.append(None if r is None else r.copy())
        settled1.append(o1.flush())
        settled2.append(o2.flush())
        for a, b in zip(settled1, settled2):
            if a is None:
                assert b is None
            else:
                np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(basis1.to_global(),
                                      basis2.to_global())
