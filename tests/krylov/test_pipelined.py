"""Pipelined GMRES with DCGS-2 (ref. [25] family)."""

from __future__ import annotations

import numpy as np

from repro.krylov.gmres import gmres
from repro.krylov.pipelined import pipelined_gmres
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import convection_diffusion_2d, laplace2d
from repro.parallel.machine import generic_cpu, summit
from repro.precond.jacobi import JacobiPreconditioner


def make_sim(a, ranks=4, machine=None):
    return Simulation(a, ranks=ranks,
                      machine=machine if machine else generic_cpu())


class TestConvergence:
    def test_spd(self):
        sim = make_sim(laplace2d(16))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=30, tol=1e-9, maxiter=4000)
        assert res.converged
        np.testing.assert_allclose(res.x, 1.0, atol=1e-5)
        a = sim.matrix.to_scipy()
        true_rel = np.linalg.norm(b - a @ res.x) / np.linalg.norm(b)
        assert true_rel <= 2e-9

    def test_nonsymmetric(self):
        sim = make_sim(convection_diffusion_2d(12))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=25, tol=1e-8, maxiter=4000)
        assert res.converged

    def test_matches_standard_gmres_solution(self):
        a = laplace2d(14)
        sim1, sim2 = make_sim(a), make_sim(a)
        b = sim1.ones_solution_rhs()
        std = gmres(sim1, b, restart=25, tol=1e-10, maxiter=4000)
        pipe = pipelined_gmres(sim2, b, restart=25, tol=1e-10, maxiter=4000)
        np.testing.assert_allclose(pipe.x, std.x, atol=1e-7)

    def test_zero_rhs(self):
        sim = make_sim(laplace2d(8))
        res = pipelined_gmres(sim, np.zeros(sim.n), restart=10)
        assert res.converged and res.iterations == 0

    def test_preconditioned(self):
        sim = make_sim(laplace2d(14))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=25, tol=1e-8, maxiter=4000,
                              precond=JacobiPreconditioner())
        assert res.converged

    def test_maxiter_cap(self):
        sim = make_sim(laplace2d(20))
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=20, tol=1e-14, maxiter=30)
        assert not res.converged
        assert res.iterations <= 30


class TestSynchronization:
    def test_one_reduce_per_iteration(self):
        sim = make_sim(laplace2d(16), ranks=6, machine=summit())
        b = sim.ones_solution_rhs()
        res = pipelined_gmres(sim, b, restart=20, tol=1e-30, maxiter=20)
        # per cycle: 1 residual norm + start + 20 pushes + flush = 23
        assert res.iterations == 20
        assert res.sync_count == 23

    def test_fewer_syncs_and_less_ortho_than_cgs2(self):
        a = laplace2d(20)
        sim1 = make_sim(a, ranks=12, machine=summit())
        sim2 = make_sim(a, ranks=12, machine=summit())
        b = sim1.ones_solution_rhs()
        std = gmres(sim1, b, restart=30, tol=1e-30, maxiter=30)
        pipe = pipelined_gmres(sim2, b, restart=30, tol=1e-30, maxiter=30)
        assert pipe.sync_count < std.sync_count / 2
        assert pipe.ortho_time < std.ortho_time
