"""RCM ordering: bandwidth/halo reduction and permutation validity."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices.ordering import bandwidth, halo_volume, permute, rcm_ordering
from repro.matrices.stencil import laplace2d


def scrambled(a: sp.csr_matrix, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(a.shape[0])
    return permute(a, perm)


class TestRCM:
    def test_permutation_valid(self):
        a = laplace2d(8)
        perm = rcm_ordering(a)
        assert sorted(perm) == list(range(64))

    def test_reduces_bandwidth_of_scrambled_stencil(self):
        a = scrambled(laplace2d(12), seed=3)
        before = bandwidth(a)
        after = bandwidth(permute(a, rcm_ordering(a)))
        assert after < before / 3

    def test_reduces_halo_volume(self):
        a = scrambled(laplace2d(16), seed=4)
        before = halo_volume(a, ranks=8)
        after = halo_volume(permute(a, rcm_ordering(a)), ranks=8)
        assert after < before / 2

    def test_idempotent_quality(self):
        # applying RCM to an already-RCM matrix should not blow it up
        a = permute(laplace2d(10), rcm_ordering(laplace2d(10)))
        again = bandwidth(permute(a, rcm_ordering(a)))
        assert again <= bandwidth(a) * 1.5

    def test_disconnected_components(self):
        a = sp.block_diag([laplace2d(4), laplace2d(5)]).tocsr()
        perm = rcm_ordering(a)
        assert sorted(perm) == list(range(16 + 25))

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_random_graph_permutation_valid(self, n):
        a = sp.random(n, n, density=0.3, random_state=n) + sp.eye(n)
        perm = rcm_ordering(a.tocsr())
        assert sorted(perm) == list(range(n))

    def test_spmv_preserved_under_permutation(self, rng):
        a = laplace2d(8)
        perm = rcm_ordering(a)
        ap = permute(a, perm)
        x = rng.standard_normal(64)
        y = a @ x
        yp = ap @ x[perm]
        np.testing.assert_allclose(yp, y[perm], rtol=1e-13)

    def test_bandwidth_helpers(self):
        assert bandwidth(sp.eye(5, format="csr")) == 0
        assert bandwidth(sp.csr_matrix((5, 5))) == 0

    def test_solver_benefits_from_ordering(self):
        """End-to-end: RCM reduces modeled halo time on a scrambled matrix."""
        from repro.krylov.simulation import Simulation
        from repro.parallel.machine import summit
        a = scrambled(laplace2d(16), seed=9)
        sims = {}
        for label, mat in [("scrambled", a),
                           ("rcm", permute(a, rcm_ordering(a)))]:
            sim = Simulation(mat, ranks=12, machine=summit())
            x = sim.vector_from(np.ones(sim.n))
            sim.matrix.matvec(x)
            sims[label] = sim.tracer.kernel_seconds("other", "halo")
        assert sims["rcm"] < sims["scrambled"]
