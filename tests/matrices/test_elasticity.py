"""3-D elasticity generator."""

from __future__ import annotations

import scipy.sparse.linalg as spla

from repro.matrices.elasticity import elasticity3d


class TestElasticity3D:
    def test_shape_is_three_dofs_per_node(self):
        a = elasticity3d(4)
        assert a.shape == (3 * 64, 3 * 64)

    def test_symmetric(self):
        a = elasticity3d(3)
        assert abs(a - a.T).max() < 1e-14

    def test_positive_definite(self):
        a = elasticity3d(3)
        lmin = spla.eigsh(a.astype(float), k=1, which="SA",
                          return_eigenvectors=False)[0]
        assert lmin > 0

    def test_components_coupled(self):
        # the grad-div term must produce nonzeros between displacement
        # components (off-diagonal blocks)
        a = elasticity3d(3).tocsr()
        n = 27
        block_xy = a[:n, n:2 * n]
        assert block_xy.nnz > 0

    def test_lame_zero_coupling_vanishes(self):
        # with lam = -mu the grad-div coefficient is zero -> block diagonal
        a = elasticity3d(3, lam=-1.0, mu=1.0).tocsr()
        n = 27
        assert a[:n, n:2 * n].nnz == 0

    def test_rectangular_grid(self):
        a = elasticity3d(2, 3, 4)
        assert a.shape == (3 * 24, 3 * 24)
