"""Synthetic conditioning-controlled matrices (Section VI inputs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.matrices.synthetic import GluedMatrix, glued_matrix, logscaled_matrix


class TestLogscaled:
    @pytest.mark.parametrize("cond", [1e2, 1e6, 1e10])
    def test_condition_prescribed_exactly(self, cond, rng):
        v = logscaled_matrix(500, 5, cond, rng)
        s = np.linalg.svd(v, compute_uv=False)
        # computed sigma_min carries a relative error ~ eps * kappa
        tol = max(1e-8, 100 * cond * np.finfo(float).eps)
        assert s[0] / s[-1] == pytest.approx(cond, rel=tol)

    def test_shape(self, rng):
        assert logscaled_matrix(100, 7, 10.0, rng).shape == (100, 7)

    def test_reproducible_with_seed(self):
        a = logscaled_matrix(50, 3, 100.0, np.random.default_rng(5))
        b = logscaled_matrix(50, 3, 100.0, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestGlued:
    def test_panel_conditions(self, rng):
        g = glued_matrix(400, 5, 6, panel_cond=1e4, growth=2.0, rng=rng)
        for j in range(6):
            s = np.linalg.svd(g.panel(j), compute_uv=False)
            assert s[0] / s[-1] == pytest.approx(1e4, rel=1e-6)

    def test_prefix_condition_growth(self, rng):
        g = glued_matrix(400, 5, 6, panel_cond=1e3, growth=2.0, rng=rng)
        for j in range(6):
            s = np.linalg.svd(g.prefix(j), compute_uv=False)
            kappa = s[0] / s[-1]
            assert kappa == pytest.approx(g.expected_prefix_cond(j), rel=1e-6)

    def test_growth_one_keeps_global_cond(self, rng):
        g = glued_matrix(300, 4, 5, panel_cond=1e5, growth=1.0, rng=rng)
        s = np.linalg.svd(g.matrix, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e5, rel=1e-6)

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_shapes(self, width, panels):
        g = glued_matrix(200, width, panels, panel_cond=10.0,
                         rng=np.random.default_rng(0))
        assert g.matrix.shape == (200, width * panels)
        assert isinstance(g, GluedMatrix)

    def test_too_many_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            glued_matrix(10, 5, 4, panel_cond=10.0)

    def test_bad_growth_rejected(self):
        with pytest.raises(ConfigurationError):
            glued_matrix(100, 2, 2, panel_cond=10.0, growth=0.5)

    def test_panel_index_bounds(self, rng):
        g = glued_matrix(100, 2, 3, panel_cond=10.0, rng=rng)
        with pytest.raises(ConfigurationError):
            g.panel(3)
