"""Model-problem generators."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.exceptions import ConfigurationError
from repro.matrices.stencil import convection_diffusion_2d, laplace2d, laplace3d


class TestLaplace2D:
    def test_shape_and_symmetry(self):
        a = laplace2d(10)
        assert a.shape == (100, 100)
        assert (a != a.T).nnz == 0

    def test_interior_row_structure_5pt(self):
        a = laplace2d(5).tocsr()
        mid = 12  # center of 5x5 grid
        row = a[mid].toarray().ravel()
        assert row[mid] == 4.0
        assert np.sum(row == -1.0) == 4

    def test_positive_definite(self):
        a = laplace2d(8)
        lmin = spla.eigsh(a.astype(float), k=1, which="SA",
                          return_eigenvectors=False)[0]
        assert lmin > 0

    def test_known_extreme_eigenvalue(self):
        # lambda_min = 4 sin^2(pi/(2(n+1))) * 2 for the 2D 5-point stencil
        n = 9
        a = laplace2d(n)
        h = np.pi / (2 * (n + 1))
        expected = 2 * 4 * np.sin(h) ** 2
        lmin = spla.eigsh(a.astype(float), k=1, which="SA",
                          return_eigenvectors=False)[0]
        assert lmin == pytest.approx(expected, rel=1e-8)

    def test_9pt_structure(self):
        a = laplace2d(5, stencil=9).tocsr()
        mid = 12
        row = a[mid].toarray().ravel()
        # compact 9-point: 8 off-diagonal neighbours
        assert np.count_nonzero(row) == 9
        assert (a != a.T).nnz == 0

    def test_9pt_positive_definite(self):
        a = laplace2d(8, stencil=9)
        lmin = spla.eigsh(a.astype(float), k=1, which="SA",
                          return_eigenvectors=False)[0]
        assert lmin > 0

    def test_rectangular(self):
        a = laplace2d(4, 6)
        assert a.shape == (24, 24)

    def test_bad_stencil(self):
        with pytest.raises(ConfigurationError):
            laplace2d(4, stencil=7)


class TestLaplace3D:
    def test_shape_and_nnz_per_row(self):
        a = laplace3d(10)
        assert a.shape == (1000, 1000)
        # paper Table IV: nnz/n = 6.9 for n = 100^3; boundary effect is
        # stronger at 10^3 but the interior stencil is 7-wide
        assert 6.0 < a.nnz / a.shape[0] <= 7.0

    def test_symmetric_positive_definite(self):
        a = laplace3d(4)
        assert (a != a.T).nnz == 0
        lmin = spla.eigsh(a.astype(float), k=1, which="SA",
                          return_eigenvectors=False)[0]
        assert lmin > 0

    def test_interior_row(self):
        a = laplace3d(5).tocsr()
        mid = 2 * 25 + 2 * 5 + 2
        row = a[mid].toarray().ravel()
        assert row[mid] == 6.0
        assert np.sum(row == -1.0) == 6


class TestConvectionDiffusion:
    def test_nonsymmetric(self):
        a = convection_diffusion_2d(8)
        assert (a != a.T).nnz > 0

    def test_row_sums_nonnegative(self):
        # upwinding keeps the operator an M-matrix-like discretization
        a = convection_diffusion_2d(8)
        assert np.all(np.asarray(a.sum(axis=1)).ravel() > -1e-10)

    def test_negative_wind_branch(self):
        a = convection_diffusion_2d(8, wind=(-1.0, -0.5))
        assert (a != a.T).nnz > 0

    def test_solvable(self):
        a = convection_diffusion_2d(10)
        x = spla.spsolve(a.tocsc(), np.ones(100))
        assert np.all(np.isfinite(x))
