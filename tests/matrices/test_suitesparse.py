"""SuiteSparse surrogate registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.matrices.suitesparse import (
    banded_random,
    build_surrogate,
    list_surrogates,
    scale_columns_rows,
    surrogate,
)


class TestRegistry:
    def test_table4_members_present(self):
        names = list_surrogates()
        for name in ["atmosmodl", "dielFilterV2real", "ecology2",
                     "ML_Geer", "thermal2"]:
            assert name in names

    def test_fig9_members_present(self):
        names = list_surrogates()
        for name in ["HTC_336_4438", "Ga41As41H72"]:
            assert name in names

    def test_paper_dimensions_recorded(self):
        spec = surrogate("ecology2")
        assert spec.paper_n == 999_999
        assert spec.paper_nnz_per_row == 5.0
        assert spec.paper_nnz == pytest.approx(999_999 * 5.0)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            surrogate("not_a_matrix")

    def test_fig9_dimension_window(self):
        # the paper: "dimension between 200,000 and 300,000" (we keep two
        # members just outside as documented representatives)
        for name in ["HTC_336_4438", "Ga41As41H72", "offshore", "stomach",
                     "torso3"]:
            spec = surrogate(name)
            assert 140_000 <= spec.paper_n <= 330_000


class TestBuilders:
    @pytest.mark.parametrize("name", ["ecology2", "atmosmodl",
                                      "dielFilterV2real"])
    def test_surrogate_matches_nnz_density(self, name):
        spec = surrogate(name)
        a = spec.build(run_n=4000, rng=np.random.default_rng(1))
        assert a.shape == (4000, 4000)
        got = a.nnz / a.shape[0]
        assert got == pytest.approx(spec.paper_nnz_per_row, rel=0.35)

    def test_spd_surrogate_is_spd(self):
        a = surrogate("ecology2").build(run_n=500,
                                        rng=np.random.default_rng(2))
        sym_err = abs(a - a.T).max()
        assert sym_err < 1e-12
        eigs = np.linalg.eigvalsh(a.toarray())
        assert eigs.min() > 0

    def test_nonsym_surrogate_is_nonsym(self):
        a = surrogate("atmosmodl").build(run_n=500,
                                         rng=np.random.default_rng(3))
        assert abs(a - a.T).max() > 0

    def test_indef_surrogate_is_indefinite(self):
        a = surrogate("dielFilterV2real").build(
            run_n=500, rng=np.random.default_rng(4))
        eigs = np.linalg.eigvalsh(a.toarray())
        assert eigs.min() < 0 < eigs.max()

    def test_hard_surrogate_wide_dynamic_range(self):
        a = surrogate("Ga41As41H72").build(run_n=500,
                                           rng=np.random.default_rng(5))
        vals = np.abs(a.data[a.data != 0])
        assert vals.max() / vals.min() > 1e6

    def test_banded_random_bad_definite(self):
        with pytest.raises(ConfigurationError):
            banded_random(100, 5, symmetric=True, definite="bogus")


class TestPaperScaling:
    def test_scale_columns_rows_unit_rows(self):
        a = surrogate("ecology2").build(run_n=300,
                                        rng=np.random.default_rng(6))
        scaled = scale_columns_rows(a)
        row_max = np.abs(scaled).max(axis=1).toarray().ravel()
        np.testing.assert_allclose(row_max, 1.0, rtol=1e-12)

    def test_scaling_breaks_symmetry(self):
        # "hence, all the resulting matrices are non-symmetric"
        a = surrogate("thermal2").build(run_n=300,
                                        rng=np.random.default_rng(7))
        scaled = scale_columns_rows(a)
        assert abs(scaled - scaled.T).max() > 0

    def test_build_surrogate_entry_point(self):
        a = build_surrogate("ecology2", run_n=200,
                            rng=np.random.default_rng(8))
        assert a.shape == (200, 200)
