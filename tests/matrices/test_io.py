"""MatrixMarket I/O round-trips."""

from __future__ import annotations

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.matrices.io import read_matrix_market, write_matrix_market


class TestRoundtrip:
    def test_general(self, rng, tmp_path):
        a = sp.random(20, 20, density=0.2, random_state=3, format="csr")
        path = tmp_path / "a.mtx"
        write_matrix_market(a, path)
        b = read_matrix_market(path)
        assert (abs(a - b) > 1e-15).nnz == 0

    def test_exact_values(self, tmp_path):
        a = sp.csr_matrix(np.array([[1.5, 0.0], [-2.25e-300, 3.0]]))
        path = tmp_path / "b.mtx"
        write_matrix_market(a, path)
        b = read_matrix_market(path)
        np.testing.assert_array_equal(a.toarray(), b.toarray())

    def test_symmetric_storage_expanded(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
% comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.0
"""
        a = read_matrix_market(io.StringIO(text))
        dense = a.toarray()
        assert dense[0, 1] == -1.0 and dense[1, 0] == -1.0
        assert dense[0, 0] == 2.0

    def test_comments_preserved_on_write(self, tmp_path):
        a = sp.eye(3, format="csr")
        path = tmp_path / "c.mtx"
        write_matrix_market(a, path, comment="hello\nworld")
        content = path.read_text()
        assert "% hello" in content and "% world" in content


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(ConfigurationError):
            read_matrix_market(io.StringIO("%%NotMatrixMarket foo\n1 1 0\n"))

    def test_unsupported_storage(self):
        with pytest.raises(ConfigurationError):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"))

    def test_bad_size_line(self):
        with pytest.raises(ConfigurationError):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix coordinate real general\n1 1\n"))

    def test_truncated_entries(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ConfigurationError):
            read_matrix_market(io.StringIO(text))
