"""Loop-vs-batched engine equivalence: results, costs, fallbacks.

The batched engine must be a pure execution-strategy change: on every
partition shape (uniform and ragged) it has to produce results matching
the loop engine at FP64 tolerance — bitwise for elementwise kernels and
the reduction tree — and charge *identical* modeled costs, so that paper
artifacts regenerated under either engine are the same numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla import blas
from repro.distla.engine import BatchedEngine, LoopEngine, get_engine, resolve
from repro.distla.multivector import DistMultiVector
from repro.ortho.backend import DistBackend
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer

N_UNIFORM = 96   # divisible by 8 -> uniform partition, stacked storage
N_RAGGED = 101   # prime-ish -> ragged partition, loop fallback
RANKS = 8
KQ, KV = 6, 3


def make_comm():
    return SimComm(generic_cpu(), RANKS, Tracer())


def apply_ops(engine: str, n: int):
    """Run one of every costed BLAS op; return (results, tracer)."""
    part = Partition(n, RANKS)
    comm = make_comm()
    rng = np.random.default_rng(7)
    q = DistMultiVector.from_global(rng.standard_normal((n, KQ)), part, comm)
    v = DistMultiVector.from_global(rng.standard_normal((n, KV)), part, comm)
    out = DistMultiVector.zeros(part, comm, KV)
    small = DistMultiVector.zeros(part, comm, 1)
    r_proj = rng.standard_normal((KQ, KV))
    r_tri = np.triu(rng.standard_normal((KV, KV))) + 3.0 * np.eye(KV)
    coeffs = rng.standard_normal((KV, 1))
    with config.engine_scope(engine):
        results = [
            blas.block_dot(q, v),
            *blas.block_dot_multi([(q, v), (v, v)]),
            blas.column_norms(q),
        ]
        blas.block_update(v, q, r_proj)
        blas.trsm_inplace(v, r_tri)
        blas.scale_columns(v, np.array([2.0, -1.0, 0.5]))
        blas.lincomb(out, [(2.0, v), (-1.0, v)])
        blas.copy_into(out, v)
        blas.matvec_small(v, coeffs, small)
        results += [v.to_global(), out.to_global(), small.to_global()]
    return results, comm.tracer


@pytest.mark.parametrize("n", [N_UNIFORM, N_RAGGED],
                         ids=["uniform", "ragged"])
class TestEngineEquivalence:
    def test_results_match(self, n):
        loop, _ = apply_ops("loop", n)
        batched, _ = apply_ops("batched", n)
        for got, want in zip(batched, loop):
            np.testing.assert_allclose(got, want, rtol=1e-13, atol=1e-15)

    def test_charged_costs_identical(self, n):
        _, t_loop = apply_ops("loop", n)
        _, t_batched = apply_ops("batched", n)
        assert t_batched.clock == t_loop.clock
        assert dict(t_batched.by_kernel) == dict(t_loop.by_kernel)
        assert dict(t_batched.counts) == dict(t_loop.counts)

    def test_reduction_tree_bitwise(self, n):
        """Tree-sum folds identically whether vectorized or per-rank."""
        part = Partition(n, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(11)
        x = DistMultiVector.from_global(rng.standard_normal((n, KQ)),
                                        part, comm)
        with config.engine_scope("loop"):
            ref = blas.block_dot(x, x)
        with config.engine_scope("batched"):
            got = blas.block_dot(x, x)
        np.testing.assert_array_equal(got, ref)


class TestStackedStorage:
    def test_uniform_constructors_stack(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        mv = DistMultiVector.zeros(part, comm, KV)
        assert mv.stack is not None
        assert mv.stack.shape == (RANKS, N_UNIFORM // RANKS, KV)

    def test_ragged_has_no_stack(self):
        part = Partition(N_RAGGED, RANKS)
        comm = make_comm()
        assert DistMultiVector.zeros(part, comm, KV).stack is None

    def test_shards_alias_stack(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        mv = DistMultiVector.zeros(part, comm, KV)
        mv.shards[3][0, 1] = 42.0
        assert mv.stack[3, 0, 1] == 42.0
        mv.stack[5, 1, 2] = -1.0
        assert mv.shards[5][1, 2] == -1.0

    def test_column_views_keep_stack(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        mv = DistMultiVector.zeros(part, comm, KV)
        view = mv.view_cols(slice(1, 3))
        assert view.stack is not None
        view.stack[...] = 3.0
        assert float(mv.shards[0][0, 1]) == 3.0
        assert float(mv.shards[0][0, 0]) == 0.0

    def test_caller_supplied_shards_fall_back(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        shards = [np.zeros((part.local_count(r), KV)) for r in range(RANKS)]
        mv = DistMultiVector(part, comm, shards)
        assert mv.stack is None
        # batched engine must still work (loop fallback), with equal costs
        with config.engine_scope("batched"):
            blas.scale_columns(mv, np.ones(KV))
        assert comm.tracer.clock > 0

    def test_mixed_stacked_unstacked_operands(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(3)
        arr = rng.standard_normal((N_UNIFORM, KV))
        stacked = DistMultiVector.from_global(arr, part, comm)
        unstacked = DistMultiVector(
            part, comm, [np.array(arr[part.local_slice(r)], copy=True)
                         for r in range(RANKS)])
        with config.engine_scope("batched"):
            got = blas.block_dot(stacked, unstacked)
        np.testing.assert_allclose(got, arr.T @ arr, rtol=1e-13)


@pytest.mark.parametrize("ranks", [3, 8])
@pytest.mark.parametrize("n", [N_UNIFORM, N_RAGGED],
                         ids=["uniform", "ragged"])
class TestSketchDotEngineEquivalence:
    """DistBackend.sketch_dot is an execution-strategy-free operation:
    loop and batched engines must produce bit-identical sketches and
    charge identical modeled costs on every partition shape."""

    M_ROWS = 24

    def run_sketch(self, engine, n, ranks):
        part = Partition(n, ranks)
        comm = SimComm(generic_cpu(), ranks, Tracer())
        rng = np.random.default_rng(23)
        v = DistMultiVector.from_global(rng.standard_normal((n, KV)),
                                        part, comm)
        out = DistBackend(comm, engine=engine).sketch_dot(
            v, self.M_ROWS, seed=42)
        return out, comm.tracer

    def test_bit_identical(self, n, ranks):
        loop, _ = self.run_sketch("loop", n, ranks)
        batched, _ = self.run_sketch("batched", n, ranks)
        np.testing.assert_array_equal(batched, loop)

    def test_charged_costs_identical(self, n, ranks):
        _, t_loop = self.run_sketch("loop", n, ranks)
        _, t_batched = self.run_sketch("batched", n, ranks)
        assert t_batched.clock == t_loop.clock
        assert dict(t_batched.by_kernel) == dict(t_loop.by_kernel)
        assert dict(t_batched.counts) == dict(t_loop.counts)

    def test_one_synchronization(self, n, ranks):
        _, tracer = self.run_sketch("batched", n, ranks)
        assert tracer.sync_count() == 1


class TestEngineSelection:
    def test_config_roundtrip(self):
        prev = config.set_engine("loop")
        try:
            assert config.get_engine() == "loop"
            assert isinstance(resolve(None, None), LoopEngine)
        finally:
            config.set_engine(prev)

    def test_set_engine_returns_raw_pin(self, monkeypatch):
        """set_engine round-trips the *pin*, not the resolved default, so
        restore does not freeze the process against REPRO_ENGINE."""
        monkeypatch.setattr(config, "_active_engine", None)
        prev = config.set_engine("loop")
        assert prev is None
        config.set_engine(prev)  # restore -> unpinned again
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        assert config.get_engine() == "loop"

    def test_engine_scope_restores(self):
        before = config.get_engine()
        with config.engine_scope("loop"):
            assert config.get_engine() == "loop"
        assert config.get_engine() == before

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            config.set_engine("warp-drive")
        with pytest.raises(ValueError):
            get_engine("warp-drive")

    def test_binding_typo_fails_at_construction(self):
        with pytest.raises(ValueError, match="bacthed"):
            SimComm(generic_cpu(), RANKS, Tracer(), engine="bacthed")
        with pytest.raises(ValueError, match="bacthed"):
            DistBackend(make_comm(), engine="bacthed")

    def test_env_var_reread_when_unpinned(self, monkeypatch):
        monkeypatch.setattr(config, "_active_engine", None)
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        assert config.get_engine() == "loop"
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert config.get_engine() == "batched"

    def test_comm_binding_wins_over_config(self):
        comm = SimComm(generic_cpu(), RANKS, Tracer(), engine="loop")
        with config.engine_scope("batched"):
            assert isinstance(resolve(None, comm), LoopEngine)

    def test_explicit_argument_wins_over_comm(self):
        comm = SimComm(generic_cpu(), RANKS, Tracer(), engine="loop")
        assert isinstance(resolve("batched", comm), BatchedEngine)

    def test_dist_backend_threads_engine(self):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(5)
        x = DistMultiVector.from_global(
            rng.standard_normal((N_UNIFORM, KQ)), part, comm)
        ref = x.to_global().T @ x.to_global()
        for engine in ("loop", "batched"):
            backend = DistBackend(comm, engine=engine)
            np.testing.assert_allclose(backend.dot(x, x), ref, rtol=1e-13)

    def test_stream_cutoff_preserves_results(self):
        """Above the cache cutoff the batched engine falls back per-rank;
        results must not depend on where the cutoff sits."""
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(9)
        v = DistMultiVector.from_global(
            rng.standard_normal((N_UNIFORM, KV)), part, comm)
        out = DistMultiVector.zeros(part, comm, KV)
        eng = BatchedEngine()
        tiny = BatchedEngine()
        tiny.stream_elems_max = 0  # force the loop fallback
        blas.lincomb(out, [(1.0, v), (0.5, v)], engine=eng)
        ref = out.to_global().copy()
        blas.lincomb(out, [(1.0, v), (0.5, v)], engine=tiny)
        np.testing.assert_array_equal(out.to_global(), ref)
