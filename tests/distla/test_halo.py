"""The halo subsystem: multi-level ghost-zone closures (GhostPlan)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distla.halo import EXPAND_MODES, GhostPlan, HaloPlan
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ConfigurationError
from repro.matrices.stencil import laplace2d
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition


def tridiag(n: int) -> sp.csr_matrix:
    """1-D Laplacian: each closure level grows by exactly one row per
    side, which makes every level set predictable by hand."""
    return sp.diags([-np.ones(n - 1), 2 * np.ones(n), -np.ones(n - 1)],
                    [-1, 0, 1]).tocsr()


class TestGhostPlanClosure:
    def test_levels_grow_by_one_ring(self):
        n, ranks, depth = 16, 4, 3
        part = Partition(n, ranks)
        plan = GhostPlan.analyze(tridiag(n), part, depth)
        # rank 1 owns rows 4..7; level l reaches l rows past each edge
        for lvl in range(depth + 1):
            expect = np.arange(4 - lvl, 8 + lvl)
            np.testing.assert_array_equal(plan.levels[1][lvl], expect)
        # edge rank 0 grows only rightward
        np.testing.assert_array_equal(plan.levels[0][depth],
                                      np.arange(0, 4 + depth))

    def test_levels_are_nested(self):
        part = Partition(400, 8)
        plan = GhostPlan.analyze(laplace2d(20), part, 4)
        for per_rank in plan.levels:
            for shallow, deep in zip(per_rank, per_rank[1:]):
                assert np.isin(shallow, deep).all()

    def test_ghost_rows_and_peer_counts(self):
        n, ranks = 16, 4
        part = Partition(n, ranks)
        plan = GhostPlan.analyze(tridiag(n), part, 2)
        # rank 1 needs rows {2, 3} from rank 0 and {8, 9} from rank 2
        np.testing.assert_array_equal(plan.ghost_rows[1], [2, 3, 8, 9])
        assert plan.recv_counts_by_peer[1] == {0: 2, 2: 2}
        # edge ranks have one neighbour only
        assert plan.recv_counts_by_peer[0] == {1: 2}

    def test_depth_one_matches_halo_plan(self):
        """The depth-1 ghost closure is exactly the standard halo."""
        a = laplace2d(12)
        part = Partition(a.shape[0], 6)
        blocks = [a[part.local_slice(r), :].tocsr() for r in range(6)]
        halo = HaloPlan.analyze(blocks, part)
        plan = GhostPlan.analyze(a, part, 1)
        assert plan.recv_counts_by_peer == halo.recv_counts_by_peer
        np.testing.assert_array_equal(plan.ghost_counts(), halo.halo_counts)

    def test_level_blocks_are_row_submatrices(self):
        a = laplace2d(10)
        part = Partition(100, 4)
        plan = GhostPlan.analyze(a, part, 2)
        for rank in range(4):
            for lvl in range(2):
                rows = plan.levels[rank][lvl]
                block = plan.level_blocks[rank][lvl]
                assert block.shape == (rows.size, 100)
                np.testing.assert_array_equal(block.toarray(),
                                              a[rows, :].toarray())
                assert plan.level_nnz[rank, lvl] == block.nnz
                assert plan.level_rows[rank, lvl] == rows.size

    def test_block_expand_rounds_to_owner_blocks(self):
        n, ranks = 16, 4
        part = Partition(n, ranks)
        plan = GhostPlan.analyze(tridiag(n), part, 1, expand="block")
        # one hop from rank 1's rows touches ranks 0 and 2 -> their whole
        # blocks join the closure
        np.testing.assert_array_equal(plan.levels[1][1], np.arange(0, 12))
        assert plan.recv_counts_by_peer[1] == {0: 4, 2: 4}
        np.testing.assert_array_equal(plan.level_ranks[1][1], [0, 1, 2])

    def test_block_diagonal_matrix_has_empty_ghosts(self):
        """Ghost-level-0 degenerate case: no inter-rank coupling."""
        part = Partition(12, 3)
        a = sp.block_diag([tridiag(4)] * 3).tocsr()
        plan = GhostPlan.analyze(a, part, 3)
        assert all(g.size == 0 for g in plan.ghost_rows)
        assert all(not by_peer for by_peer in plan.recv_counts_by_peer)
        np.testing.assert_array_equal(plan.ghost_counts(), 0)

    def test_single_rank_has_empty_ghosts(self):
        part = Partition(9, 1)
        plan = GhostPlan.analyze(tridiag(9), part, 4)
        assert plan.ghost_rows[0].size == 0
        assert plan.recv_counts_by_peer == [{}]


class TestGhostPlanPayloads:
    def test_recv_bytes_scales_with_word_size(self):
        part = Partition(16, 4)
        plan = GhostPlan.analyze(tridiag(16), part, 2)
        b64 = plan.recv_bytes(8.0)
        b32 = plan.recv_bytes(4.0)
        for d64, d32 in zip(b64, b32):
            assert set(d64) == set(d32)
            for peer in d64:
                assert d32[peer] == pytest.approx(d64[peer] / 2.0)

    def test_recv_bytes_scales_with_vector_count(self):
        part = Partition(16, 4)
        plan = GhostPlan.analyze(tridiag(16), part, 2)
        one = plan.recv_bytes(8.0, n_vectors=1)
        two = plan.recv_bytes(8.0, n_vectors=2)
        for d1, d2 in zip(one, two):
            for peer in d1:
                assert d2[peer] == pytest.approx(2.0 * d1[peer])

    def test_halo_plan_legacy_accessor_is_fp64(self):
        a = laplace2d(8)
        part = Partition(64, 4)
        blocks = [a[part.local_slice(r), :].tocsr() for r in range(4)]
        halo = HaloPlan.analyze(blocks, part)
        legacy = halo.recv_bytes_by_peer
        for by_peer, counts in zip(legacy, halo.recv_counts_by_peer):
            for peer, nbytes in by_peer.items():
                assert nbytes == counts[peer] * 8.0


class TestGhostPlanValidation:
    def test_rejects_negative_depth(self):
        with pytest.raises(ConfigurationError):
            GhostPlan.analyze(tridiag(8), Partition(8, 2), -1)

    def test_rejects_unknown_expand(self):
        assert "pointwise" in EXPAND_MODES
        with pytest.raises(ConfigurationError):
            GhostPlan.analyze(tridiag(8), Partition(8, 2), 1,
                              expand="diagonal")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            GhostPlan.analyze(tridiag(8), Partition(9, 3), 1)

    def test_depth_zero_is_owned_rows_only(self):
        part = Partition(8, 2)
        plan = GhostPlan.analyze(tridiag(8), part, 0)
        assert plan.ghost_rows[0].size == 0
        assert plan.level_blocks == [[], []]
        np.testing.assert_array_equal(plan.levels[0][0], np.arange(4))


class TestDistSparseMatrixGhostPlans:
    def test_plans_are_cached_per_depth_and_expand(self):
        comm = SimComm(generic_cpu(), 4)
        a = DistSparseMatrix(laplace2d(8), Partition(64, 4), comm)
        p1 = a.ghost_plan(3)
        p2 = a.ghost_plan(3)
        assert p1 is p2
        p3 = a.ghost_plan(3, expand="block")
        assert p3 is not p1 and p3.expand == "block"
        assert a.ghost_plan(2) is not p1
