"""DistMultiVector: scatter/gather, views, conformality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError
from repro.parallel.partition import Partition


@pytest.fixture
def part() -> Partition:
    return Partition(37, 4)  # deliberately non-divisible


class TestRoundtrip:
    def test_from_global_to_global(self, part, comm4, rng):
        arr = rng.standard_normal((37, 3))
        mv = DistMultiVector.from_global(arr, part, comm4)
        np.testing.assert_array_equal(mv.to_global(), arr)

    def test_1d_promoted(self, part, comm4):
        mv = DistMultiVector.from_global(np.ones(37), part, comm4)
        assert mv.shape == (37, 1)

    def test_zeros(self, part, comm4):
        mv = DistMultiVector.zeros(part, comm4, 5)
        assert mv.shape == (37, 5)
        assert np.all(mv.to_global() == 0)

    def test_wrong_length_rejected(self, part, comm4):
        with pytest.raises(ShapeError):
            DistMultiVector.from_global(np.ones(36), part, comm4)


class TestViews:
    def test_view_aliases_storage(self, part, comm4, rng):
        arr = rng.standard_normal((37, 4))
        mv = DistMultiVector.from_global(arr, part, comm4)
        view = mv.view_cols(slice(1, 3))
        view.shards[0][...] = 0.0
        assert np.all(mv.shards[0][:, 1:3] == 0.0)

    def test_int_view_is_single_column(self, part, comm4):
        mv = DistMultiVector.zeros(part, comm4, 4)
        assert mv.view_cols(2).n_cols == 1

    def test_copy_is_independent(self, part, comm4, rng):
        mv = DistMultiVector.from_global(rng.standard_normal((37, 2)),
                                         part, comm4)
        cp = mv.copy()
        cp.shards[0][...] = 99.0
        assert not np.any(mv.shards[0] == 99.0)

    def test_assign_and_fill(self, part, comm4, rng):
        a = DistMultiVector.from_global(rng.standard_normal((37, 2)),
                                        part, comm4)
        b = DistMultiVector.zeros(part, comm4, 2)
        b.assign_from(a)
        np.testing.assert_array_equal(b.to_global(), a.to_global())
        b.fill(7.0)
        assert np.all(b.to_global() == 7.0)

    def test_conformality_checks(self, part, comm4):
        a = DistMultiVector.zeros(part, comm4, 2)
        b = DistMultiVector.zeros(part, comm4, 3)
        with pytest.raises(ShapeError):
            a.assign_from(b)

    def test_shard_shape_validation(self, part, comm4):
        shards = [np.zeros((part.local_count(r), 2)) for r in range(4)]
        shards[2] = np.zeros((1, 2))
        with pytest.raises(ShapeError):
            DistMultiVector(part, comm4, shards)
