"""Distributed sparse matrix: SpMV equivalence and halo analysis."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ShapeError
from repro.matrices.stencil import laplace2d
from repro.parallel.partition import Partition


class TestMatvec:
    def test_matches_scipy(self, comm4, rng):
        a = laplace2d(10)
        part = Partition(a.shape[0], 4)
        da = DistSparseMatrix(a, part, comm4)
        x = rng.standard_normal(a.shape[0])
        dx = DistMultiVector.from_global(x, part, comm4)
        y = da.matvec(dx)
        np.testing.assert_allclose(y.to_global()[:, 0], a @ x, rtol=1e-13)

    def test_out_parameter_reused(self, comm4, rng):
        a = laplace2d(8)
        part = Partition(a.shape[0], 4)
        da = DistSparseMatrix(a, part, comm4)
        x = DistMultiVector.from_global(rng.standard_normal(a.shape[0]),
                                        part, comm4)
        out = DistMultiVector.zeros(part, comm4, 1)
        res = da.matvec(x, out=out)
        assert res is out

    def test_multicolumn_rejected(self, comm4):
        a = laplace2d(8)
        part = Partition(a.shape[0], 4)
        da = DistSparseMatrix(a, part, comm4)
        x = DistMultiVector.zeros(part, comm4, 2)
        with pytest.raises(ShapeError):
            da.matvec(x)

    def test_charges_halo_and_local(self, comm4, rng):
        a = laplace2d(10)
        part = Partition(a.shape[0], 4)
        da = DistSparseMatrix(a, part, comm4)
        x = DistMultiVector.from_global(rng.standard_normal(a.shape[0]),
                                        part, comm4)
        with comm4.tracer.phase("spmv"):
            da.matvec(x)
        assert comm4.tracer.kernel_seconds("spmv", "halo") > 0
        assert comm4.tracer.kernel_seconds("spmv", "spmv_local") > 0


class TestHaloPlan:
    def test_block_diagonal_has_no_halo(self, comm4):
        blocks = [sp.random(10, 10, density=0.5, random_state=1) + sp.eye(10)
                  for _ in range(4)]
        a = sp.block_diag(blocks).tocsr()
        part = Partition(40, 4)
        da = DistSparseMatrix(a, part, comm4)
        assert all(not peers for peers in da.halo.recv_bytes_by_peer)
        assert np.all(da.halo.halo_counts == 0)

    def test_tridiagonal_touches_neighbours_only(self, comm4):
        n = 40
        a = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)],
                     [-1, 0, 1]).tocsr()
        part = Partition(n, 4)
        da = DistSparseMatrix(a, part, comm4)
        for rank, peers in enumerate(da.halo.recv_bytes_by_peer):
            for peer in peers:
                assert abs(peer - rank) == 1
        # interior ranks see exactly two external entries (one per side)
        assert da.halo.halo_counts[1] == 2

    def test_laplace2d_halo_is_one_grid_row(self, comm4):
        nx = 12
        a = laplace2d(nx)
        part = Partition(nx * nx, 4)
        da = DistSparseMatrix(a, part, comm4)
        # interior ranks need one grid row from each side
        assert da.halo.halo_counts[1] == 2 * nx

    def test_diagonal_and_shape(self, comm4):
        a = laplace2d(6)
        part = Partition(36, 4)
        da = DistSparseMatrix(a, part, comm4)
        np.testing.assert_array_equal(da.diagonal(), a.diagonal())
        assert da.shape == (36, 36)
        assert da.nnz == a.nnz

    def test_to_scipy_roundtrip(self, comm4):
        a = laplace2d(6)
        da = DistSparseMatrix(a, Partition(36, 4), comm4)
        assert (da.to_scipy() != a).nnz == 0

    def test_rectangular_rejected(self, comm4):
        with pytest.raises(ShapeError):
            DistSparseMatrix(sp.random(5, 6), Partition(5, 4), comm4)

    def test_partition_mismatch_rejected(self, comm4):
        with pytest.raises(ShapeError):
            DistSparseMatrix(laplace2d(6), Partition(35, 4), comm4)
