"""Low-precision storage through the costed BLAS layer.

The precision contract of :mod:`repro.distla.engine`: per storage dtype
the loop and batched engines are bit-identical and charge identical
modeled costs; reductions accumulate in fp64 over low-precision shards;
writes land on the storage grid; and charged bytes scale with the
storage word size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla import blas
from repro.distla.multivector import DistMultiVector
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer

N_UNIFORM = 96
N_RAGGED = 101
RANKS = 8
KQ, KV = 6, 3

STORAGES = ("fp64", "fp32", "bf16")


def make_comm():
    return SimComm(generic_cpu(), RANKS, Tracer())


def apply_ops(engine: str, n: int, storage: str, accumulate: str = "fp64"):
    """One of every costed BLAS op over ``storage`` operands."""
    part = Partition(n, RANKS)
    comm = make_comm()
    rng = np.random.default_rng(7)
    q = DistMultiVector.from_global(rng.standard_normal((n, KQ)), part, comm,
                                    storage=storage, accumulate=accumulate)
    v = DistMultiVector.from_global(rng.standard_normal((n, KV)), part, comm,
                                    storage=storage, accumulate=accumulate)
    out = DistMultiVector.zeros(part, comm, KV, storage=storage)
    small = DistMultiVector.zeros(part, comm, 1)
    r_proj = rng.standard_normal((KQ, KV))
    r_tri = np.triu(rng.standard_normal((KV, KV))) + 3.0 * np.eye(KV)
    with config.engine_scope(engine):
        results = [
            blas.block_dot(q, v),
            *blas.block_dot_multi([(q, v), (v, v)]),
            blas.column_norms(q),
        ]
        blas.block_update(v, q, r_proj)
        blas.trsm_inplace(v, r_tri)
        blas.scale_columns(v, np.array([2.0, -1.0, 0.5]))
        blas.lincomb(out, [(2.0, v), (-1.0, v)])
        blas.copy_into(out, v)
        blas.matvec_small(v, rng.standard_normal((KV, 1)), small)
        results += [v.to_global(), out.to_global(), small.to_global()]
    return results, comm.tracer


@pytest.mark.parametrize("n", [N_UNIFORM, N_RAGGED],
                         ids=["uniform", "ragged"])
@pytest.mark.parametrize("storage", STORAGES)
class TestEngineEquivalencePerStorage:
    def test_results_bit_identical(self, n, storage):
        loop, _ = apply_ops("loop", n, storage)
        batched, _ = apply_ops("batched", n, storage)
        for got, want in zip(batched, loop):
            np.testing.assert_array_equal(got, want)

    def test_charged_costs_identical(self, n, storage):
        _, t_loop = apply_ops("loop", n, storage)
        _, t_batched = apply_ops("batched", n, storage)
        assert t_batched.clock == t_loop.clock
        assert dict(t_batched.by_kernel) == dict(t_loop.by_kernel)
        assert dict(t_batched.counts) == dict(t_loop.counts)


@pytest.mark.parametrize("engine", ["loop", "batched"])
class TestPrecisionSemantics:
    def test_reductions_are_fp64(self, engine):
        """Partial Gram results come back float64 whatever the storage."""
        results, _ = apply_ops(engine, N_UNIFORM, "fp32")
        for arr in results[:4]:
            assert arr.dtype == np.float64

    def test_fp64_accumulate_over_fp32_storage(self, engine):
        """The fp64-accumulate dot of fp32 shards equals the fp64 dot of
        the quantized data — not an fp32-accumulated one."""
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(3)
        a = rng.standard_normal((N_UNIFORM, KQ))
        b = rng.standard_normal((N_UNIFORM, KV))
        q32 = DistMultiVector.from_global(a, part, comm, storage="fp32")
        v32 = DistMultiVector.from_global(b, part, comm, storage="fp32")
        q_ref = DistMultiVector.from_global(
            a.astype(np.float32).astype(np.float64), part, comm)
        v_ref = DistMultiVector.from_global(
            b.astype(np.float32).astype(np.float64), part, comm)
        with config.engine_scope(engine):
            got = blas.block_dot(q32, v32)
            want = blas.block_dot(q_ref, v_ref)
        np.testing.assert_array_equal(got, want)

    def test_native_fp32_accumulation_opt_in(self, engine):
        """accumulate="fp32" skips the upcast: partials differ from the
        fp64-accumulated result (and stay deterministic per engine)."""
        loop_native, _ = apply_ops("loop", N_UNIFORM, "fp32",
                                   accumulate="fp32")
        batched_native, _ = apply_ops("batched", N_UNIFORM, "fp32",
                                      accumulate="fp32")
        np.testing.assert_array_equal(loop_native[0], batched_native[0])
        fp64_acc, _ = apply_ops(engine, N_UNIFORM, "fp32")
        assert not np.array_equal(loop_native[0], fp64_acc[0])

    def test_writes_land_on_bf16_grid(self, engine):
        results, _ = apply_ops(engine, N_UNIFORM, "bf16")
        v_out = results[4]
        assert v_out.dtype == np.float32
        bits = np.ascontiguousarray(v_out).view(np.uint32)
        assert np.all(bits & np.uint32(0xFFFF) == 0)

    def test_cross_precision_copy_quantizes(self, engine):
        part = Partition(N_UNIFORM, RANKS)
        comm = make_comm()
        src = DistMultiVector.from_global(
            np.full((N_UNIFORM, 2), 1.0 + 2.0 ** -20), part, comm)
        dst = DistMultiVector.zeros(part, comm, 2, storage="fp32")
        with config.engine_scope(engine):
            blas.copy_into(dst, src)
        np.testing.assert_array_equal(dst.to_global(),
                                      np.float32(1.0 + 2.0 ** -20))


class TestChargedBytesScaleWithStorage:
    """The acceptance claim: fp32 panels charged at half the fp64 bytes."""

    N_BIG = 80_000  # bandwidth-bound local shards (10k rows per rank)

    def _ortho_pass_cost(self, storage):
        part = Partition(self.N_BIG, RANKS)
        comm = make_comm()
        rng = np.random.default_rng(5)
        q = DistMultiVector.from_global(
            rng.standard_normal((self.N_BIG, KQ)), part, comm,
            storage=storage)
        v = DistMultiVector.from_global(
            rng.standard_normal((self.N_BIG, KV)), part, comm,
            storage=storage)
        p = blas.block_dot(q, v)
        blas.block_update(v, q, p)
        return comm.tracer.clock

    def test_fp32_half_fp64(self):
        t64 = self._ortho_pass_cost("fp64")
        t32 = self._ortho_pass_cost("fp32")
        # local kernels halve; the (fp64) allreduce payload does not —
        # the ratio lands between 0.5 and ~0.65 in this regime
        assert t32 < 0.65 * t64
        assert t32 > 0.4 * t64

    def test_bf16_quarter_fp64(self):
        t64 = self._ortho_pass_cost("fp64")
        t16 = self._ortho_pass_cost("bf16")
        assert t16 < 0.45 * t64

    def test_word_size_in_cost_model(self):
        from repro.parallel.costmodel import CostModel
        cost = CostModel(generic_cpu())
        # pure bytes-term scaling at a shape that stays bandwidth-bound
        # at BOTH word sizes (narrow panel: low arithmetic intensity)
        m, k, n = 100_000, 6, 3
        lat = generic_cpu().kernel_latency
        t64 = cost.gemm(m, k, n) - lat
        t32 = cost.gemm(m, k, n, word_bytes=4.0) - lat
        assert t32 == pytest.approx(0.5 * t64, rel=1e-12)

    def test_fp64_default_matches_legacy_formula(self):
        """word_bytes defaulting keeps historical fp64 charges exact."""
        from repro.parallel.costmodel import CostModel
        machine = generic_cpu()
        cost = CostModel(machine)
        m, k, n = 12_345, 7, 4
        flops = 2.0 * m * k * n
        bytes_moved = 8 * (m * k + k * n + m * n)
        eff = cost.gemm_efficiency(min(k, n))
        expected = machine.kernel_latency + max(
            flops / machine.peak_flops,
            bytes_moved / (machine.mem_bandwidth * eff))
        assert cost.gemm(m, k, n) == expected
