"""Costed block BLAS: numerical equality with NumPy + cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distla import blas
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError
from repro.parallel.partition import Partition


@pytest.fixture
def part() -> Partition:
    return Partition(101, 4)


def make(arr, part, comm):
    return DistMultiVector.from_global(arr, part, comm)


class TestBlockDot:
    def test_matches_numpy(self, part, comm4, rng):
        x = rng.standard_normal((101, 3))
        y = rng.standard_normal((101, 2))
        out = blas.block_dot(make(x, part, comm4), make(y, part, comm4))
        np.testing.assert_allclose(out, x.T @ y, rtol=1e-13)

    def test_one_sync(self, part, comm4, rng):
        x = make(rng.standard_normal((101, 3)), part, comm4)
        blas.block_dot(x, x)
        assert comm4.tracer.sync_count() == 1

    def test_multi_fuses_syncs(self, part, comm4, rng):
        q = make(rng.standard_normal((101, 5)), part, comm4)
        v = make(rng.standard_normal((101, 2)), part, comm4)
        p, g = blas.block_dot_multi([(q, v), (v, v)])
        assert comm4.tracer.sync_count() == 1
        np.testing.assert_allclose(p, q.to_global().T @ v.to_global(),
                                   rtol=1e-13)
        np.testing.assert_allclose(g, v.to_global().T @ v.to_global(),
                                   rtol=1e-13)

    def test_dd_dist_matches_sequential(self, part, comm4, rng):
        from repro.dd.linalg import matmul_dd
        x = rng.standard_normal((101, 2))
        y = rng.standard_normal((101, 3))
        hi, lo = blas.dot_dd_dist(make(x, part, comm4), make(y, part, comm4))
        ref_hi, ref_lo = matmul_dd(x, y)
        np.testing.assert_allclose(hi + lo, ref_hi + ref_lo, rtol=1e-25)


class TestNormsUpdatesScaling:
    def test_column_norms(self, part, comm4, rng):
        x = rng.standard_normal((101, 4))
        got = blas.column_norms(make(x, part, comm4))
        np.testing.assert_allclose(got, np.linalg.norm(x, axis=0), rtol=1e-13)

    def test_block_update(self, part, comm4, rng):
        v = rng.standard_normal((101, 2))
        q = rng.standard_normal((101, 3))
        r = rng.standard_normal((3, 2))
        dv = make(v, part, comm4)
        blas.block_update(dv, make(q, part, comm4), r)
        np.testing.assert_allclose(dv.to_global(), v - q @ r, rtol=1e-13)

    def test_block_update_shape_check(self, part, comm4, rng):
        v = make(rng.standard_normal((101, 2)), part, comm4)
        q = make(rng.standard_normal((101, 3)), part, comm4)
        with pytest.raises(ShapeError):
            blas.block_update(v, q, np.zeros((2, 2)))

    def test_trsm(self, part, comm4, rng):
        v = rng.standard_normal((101, 3))
        r = np.triu(rng.standard_normal((3, 3))) + 3.0 * np.eye(3)
        dv = make(v, part, comm4)
        blas.trsm_inplace(dv, r)
        np.testing.assert_allclose(dv.to_global(), v @ np.linalg.inv(r),
                                   rtol=1e-11)

    def test_scale_columns(self, part, comm4, rng):
        v = rng.standard_normal((101, 3))
        dv = make(v, part, comm4)
        blas.scale_columns(dv, np.array([2.0, -1.0, 0.5]))
        np.testing.assert_allclose(dv.to_global(),
                                   v * np.array([2.0, -1.0, 0.5]), rtol=1e-15)

    def test_lincomb(self, part, comm4, rng):
        x = rng.standard_normal((101, 1))
        y = rng.standard_normal((101, 1))
        out = DistMultiVector.zeros(part, comm4, 1)
        blas.lincomb(out, [(2.0, make(x, part, comm4)),
                           (-3.0, make(y, part, comm4))])
        np.testing.assert_allclose(out.to_global(), 2 * x - 3 * y, rtol=1e-14)

    def test_lincomb_aliasing_safe(self, part, comm4, rng):
        x = rng.standard_normal((101, 1))
        dx = make(x, part, comm4)
        blas.lincomb(dx, [(1.0, dx), (1.0, dx)])
        np.testing.assert_allclose(dx.to_global(), 2 * x, rtol=1e-15)

    def test_matvec_small(self, part, comm4, rng):
        v = rng.standard_normal((101, 4))
        y = rng.standard_normal((4, 1))
        out = DistMultiVector.zeros(part, comm4, 1)
        blas.matvec_small(make(v, part, comm4), y, out)
        np.testing.assert_allclose(out.to_global(), v @ y, rtol=1e-13)

    def test_copy_into(self, part, comm4, rng):
        src = make(rng.standard_normal((101, 2)), part, comm4)
        dst = DistMultiVector.zeros(part, comm4, 2)
        blas.copy_into(dst, src)
        np.testing.assert_array_equal(dst.to_global(), src.to_global())
        assert comm4.tracer.clock > 0


class TestCostAccounting:
    def test_every_op_advances_clock(self, part, comm4, rng):
        x = make(rng.standard_normal((101, 2)), part, comm4)
        marks = [comm4.tracer.clock]
        blas.block_dot(x, x)
        marks.append(comm4.tracer.clock)
        blas.column_norms(x)
        marks.append(comm4.tracer.clock)
        blas.scale_columns(x, np.ones(2))
        marks.append(comm4.tracer.clock)
        assert all(b > a for a, b in zip(marks, marks[1:]))

    def test_dot_charged_to_dot_kernel(self, part, comm4, rng):
        x = make(rng.standard_normal((101, 2)), part, comm4)
        with comm4.tracer.phase("ortho"):
            blas.block_dot(x, x)
        assert comm4.tracer.kernel_seconds("ortho", "dot") > 0
        assert comm4.tracer.kernel_seconds("ortho", "allreduce") > 0
