"""Batched hot-kernel entry points: one charged pass, per-member values.

The tentpole contract for every ``*_batched`` wrapper (TSQR, block dot,
SpMV apply, sketch apply): results are bit-identical to per-member
calls, and the modeled charges fuse so a width-``b`` panel is ONE
charged pass — collective counts stay width-independent while payload
bytes accumulate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distla import blas
from repro.distla.multivector import DistMultiVector
from repro.distla.spmatrix import DistSparseMatrix
from repro.exceptions import ShapeError
from repro.matrices.stencil import laplace2d
from repro.ortho.backend import DistBackend, NumpyBackend
from repro.parallel.communicator import SimComm
from repro.parallel.machine import summit
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer
from repro.sketch import make_operator
from repro.sketch.distributed import (
    sketch_multivector,
    sketch_multivector_batched,
)

N, RANKS, WIDTH = 96, 4, 3


def fresh_comm():
    return SimComm(summit(), RANKS, Tracer())


def panels(comm, k=2, seed=0):
    part = Partition(N, RANKS)
    rng = np.random.default_rng(seed)
    return [DistMultiVector.from_global(rng.standard_normal((N, k)),
                                        part, comm)
            for _ in range(WIDTH)]


class TestTsqrBatched:
    def test_values_match_loop_and_counts_fuse(self):
        batched_comm, loop_comm = fresh_comm(), fresh_comm()
        rs = DistBackend(batched_comm).tsqr_batched(panels(batched_comm))
        refs = [DistBackend(loop_comm).tsqr(v) for v in panels(loop_comm)]
        for r, ref in zip(rs, refs):
            np.testing.assert_array_equal(r, ref)
        fused = batched_comm.tracer.collective_counts(payload_bytes=True)
        serial = loop_comm.tracer.collective_counts(payload_bytes=True)
        assert fused["allreduce"]["count"] * WIDTH \
            == serial["allreduce"]["count"]
        assert fused["allreduce"]["bytes"] == serial["allreduce"]["bytes"]
        assert batched_comm.tracer.clock < loop_comm.tracer.clock

    def test_numpy_backend_default_loops(self):
        rng = np.random.default_rng(1)
        vs = [rng.standard_normal((20, 3)) for _ in range(2)]
        grams = [v.T @ v for v in vs]
        rs = NumpyBackend().tsqr_batched(vs)  # overwrites vs with Q
        for r, gram in zip(rs, grams):
            np.testing.assert_allclose(r.T @ r, gram, rtol=1e-12)


class TestBlockDotBatched:
    def test_values_and_single_allreduce(self):
        comm = fresh_comm()
        vs = panels(comm)
        groups = [[(v, v)] for v in vs]
        out = blas.block_dot_batched(groups)
        for got, v in zip(out, vs):
            np.testing.assert_array_equal(
                got[0], blas.block_dot_multi([(v, v)])[0])
        # WIDTH members' reduces + WIDTH reference reduces, but only
        # 1 + WIDTH counted collectives: the batch fused its members
        assert comm.tracer.collective_counts()["allreduce"] == 1 + WIDTH

    def test_empty_members_allowed(self):
        comm = fresh_comm()
        v = panels(comm)[0]
        out = blas.block_dot_batched([[], [(v, v)], []])
        assert out[0] == [] and out[2] == []
        assert len(out[1]) == 1
        assert blas.block_dot_batched([]) == []

    def test_mixed_communicators_rejected(self):
        a, b = panels(fresh_comm())[0], panels(fresh_comm())[0]
        with pytest.raises(ShapeError, match="communicator"):
            blas.block_dot_batched([[(a, a)], [(b, b)]])


class TestMatvecBatched:
    def test_values_match_loop_and_halo_fuses(self):
        def setup():
            comm = fresh_comm()
            part = Partition(256, RANKS)
            mat = DistSparseMatrix(laplace2d(16), part, comm)
            rng = np.random.default_rng(2)
            xs = [DistMultiVector.from_global(
                rng.standard_normal((256, 1)), part, comm)
                for _ in range(WIDTH)]
            return comm, mat, xs

        comm_b, mat_b, xs_b = setup()
        outs = mat_b.matvec_batched(xs_b)
        comm_l, mat_l, xs_l = setup()
        refs = [mat_l.matvec(x) for x in xs_l]
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out.to_global(), ref.to_global())
        fused = comm_b.tracer.collective_counts(payload_bytes=True)
        serial = comm_l.tracer.collective_counts(payload_bytes=True)
        assert fused["halo"]["count"] == 1
        assert serial["halo"]["count"] == WIDTH
        assert fused["halo"]["bytes"] == serial["halo"]["bytes"]

    def test_outs_length_validated(self):
        comm = fresh_comm()
        part = Partition(256, RANKS)
        mat = DistSparseMatrix(laplace2d(16), part, comm)
        x = DistMultiVector.zeros(part, comm, 1)
        with pytest.raises(ShapeError, match="output"):
            mat.matvec_batched([x, x], outs=[None])


class TestSketchBatched:
    @pytest.mark.parametrize("family", ["sparse", "srht_fft"])
    def test_values_match_loop_and_counts_fuse(self, family):
        op = make_operator(family, N, 12, seed=5)
        comm_b = fresh_comm()
        outs = sketch_multivector_batched(panels(comm_b), op)
        comm_l = fresh_comm()
        refs = [sketch_multivector(v, op) for v in panels(comm_l)]
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)
        assert comm_b.tracer.collective_counts()["allreduce"] == 1
        assert comm_l.tracer.collective_counts()["allreduce"] == WIDTH

    def test_empty_and_mixed_comms(self):
        op = make_operator("sparse", N, 12, seed=5)
        assert sketch_multivector_batched([], op) == []
        a = panels(fresh_comm())[0]
        b = panels(fresh_comm())[0]
        with pytest.raises(ShapeError, match="communicator"):
            sketch_multivector_batched([a, b], op)
