"""Backend equivalence: NumPy vs distributed substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distla.multivector import DistMultiVector
from repro.ortho.backend import DistBackend, NumpyBackend
from repro.parallel.partition import Partition


@pytest.fixture
def backends(comm4):
    return NumpyBackend(), DistBackend(comm4), Partition(97, 4), comm4


def dist_of(arr, part, comm):
    return DistMultiVector.from_global(arr, part, comm)


class TestPrimitiveEquivalence:
    def test_dot(self, backends, rng):
        nb, db, part, comm = backends
        x = rng.standard_normal((97, 3))
        y = rng.standard_normal((97, 2))
        a = nb.dot(x, y)
        b = db.dot(dist_of(x, part, comm), dist_of(y, part, comm))
        np.testing.assert_allclose(a, b, rtol=1e-13)

    def test_fused_dots(self, backends, rng):
        nb, db, part, comm = backends
        x = rng.standard_normal((97, 3))
        seq = nb.fused_dots([(x, x)])
        dx = dist_of(x, part, comm)
        dist = db.fused_dots([(dx, dx)])
        np.testing.assert_allclose(seq[0], dist[0], rtol=1e-13)

    def test_update_trsm_scale(self, backends, rng):
        nb, db, part, comm = backends
        v = rng.standard_normal((97, 2))
        q = rng.standard_normal((97, 3))
        r = rng.standard_normal((3, 2))
        tri = np.triu(rng.standard_normal((2, 2))) + 2 * np.eye(2)
        v1 = v.copy()
        nb.update(v1, q, r)
        nb.trsm(v1, tri)
        nb.scale_cols(v1, np.array([2.0, 3.0]))
        dv = dist_of(v, part, comm)
        db.update(dv, dist_of(q, part, comm), r)
        db.trsm(dv, tri)
        db.scale_cols(dv, np.array([2.0, 3.0]))
        np.testing.assert_allclose(v1, dv.to_global(), rtol=1e-11)

    def test_norms(self, backends, rng):
        nb, db, part, comm = backends
        x = rng.standard_normal((97, 4))
        np.testing.assert_allclose(nb.norms(x),
                                   db.norms(dist_of(x, part, comm)),
                                   rtol=1e-13)

    def test_view_and_copy(self, backends, rng):
        nb, db, part, comm = backends
        x = rng.standard_normal((97, 4))
        dx = dist_of(x, part, comm)
        v_np = nb.view(x, slice(1, 3))
        v_db = db.view(dx, slice(1, 3))
        np.testing.assert_array_equal(v_np, v_db.to_global())
        assert db.n_cols(v_db) == 2
        assert db.n_rows_global(dx) == 97
        c = db.copy(dx)
        c.shards[0][...] = 0
        assert not np.allclose(dx.to_global(), c.to_global())

    def test_sketch_dot_bit_identical(self, backends, rng):
        nb, db, part, comm = backends
        x = rng.standard_normal((97, 3))
        s_np = nb.sketch_dot(x, 16, seed=42)
        s_db = db.sketch_dot(dist_of(x, part, comm), 16, seed=42)
        # same hash maps; only the reduction tree differs
        np.testing.assert_allclose(s_np, s_db, rtol=1e-13, atol=1e-15)


class TestFactorizations:
    def test_householder_numpy_reconstructs(self, rng):
        nb = NumpyBackend()
        v = rng.standard_normal((60, 5))
        q = v.copy()
        r = nb.householder_qr(q)
        np.testing.assert_allclose(q @ r, v, rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-13)
        assert np.all(np.diag(r) >= 0)

    def test_householder_dist_matches_numpy_quality(self, backends, rng):
        nb, db, part, comm = backends
        v = rng.standard_normal((97, 4))
        dv = dist_of(v, part, comm)
        r = db.householder_qr(dv)
        q = dv.to_global()
        np.testing.assert_allclose(q @ r, v, rtol=1e-11, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-12)
        assert np.all(np.diag(r) >= 0)
        assert np.allclose(r, np.triu(r))

    def test_householder_dist_charges_many_syncs(self, backends, rng):
        nb, db, part, comm = backends
        v = dist_of(rng.standard_normal((97, 4)), part, comm)
        before = comm.tracer.sync_count()
        db.householder_qr(v)
        # ~2 reductions per column in the factorization + 1 per column in
        # the explicit-Q rebuild: far more than CholQR's single reduce
        assert comm.tracer.sync_count() - before >= 2 * 4

    def test_tsqr_dist(self, backends, rng):
        nb, db, part, comm = backends
        v = rng.standard_normal((97, 5))
        dv = dist_of(v, part, comm)
        r = db.tsqr(dv)
        q = dv.to_global()
        np.testing.assert_allclose(q @ r, v, rtol=1e-11, atol=1e-12)
        np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-12)
        assert np.all(np.diag(r) >= 0)

    def test_tsqr_stable_on_illconditioned(self, comm4, rng):
        from repro.matrices.synthetic import logscaled_matrix
        db = DistBackend(comm4)
        part = Partition(500, 4)
        v = logscaled_matrix(500, 5, 1e12, rng)
        dv = dist_of(v, part, comm4)
        db.tsqr(dv)
        q = dv.to_global()
        # TSQR is unconditionally stable: O(eps) orthogonality regardless
        assert np.linalg.norm(np.eye(5) - q.T @ q, 2) < 1e-13

    def test_tsqr_numpy_fallback(self, rng):
        nb = NumpyBackend()
        v = rng.standard_normal((40, 3))
        q = v.copy()
        r = nb.tsqr(q)
        np.testing.assert_allclose(q @ r, v, rtol=1e-12)
