"""BCGS-PIP / BCGS-PIP2 (paper Fig. 4, Theorems IV.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import CholeskyBreakdownError
from repro.matrices.synthetic import glued_matrix, logscaled_matrix
from repro.ortho.analysis import (condition_number, orthogonality_error,
                                  representation_error)
from repro.ortho.backend import NumpyBackend
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, BCGSPIPScheme, bcgs_pip_panel
from repro.ortho.cholqr import CholQR2


@pytest.fixture
def nb():
    return NumpyBackend()


class TestSinglePass:
    def test_no_prefix_equals_cholqr(self, nb, rng):
        v = rng.standard_normal((100, 5))
        a = v.copy()
        p, r1 = bcgs_pip_panel(nb, a, 0, 0, 5)
        assert p is None
        b = v.copy()
        from repro.ortho.cholqr import CholQR
        r2 = CholQR().factor(nb, b)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(r1, r2)

    def test_pythagorean_identity_correctness(self, nb, rng):
        q, _ = np.linalg.qr(rng.standard_normal((200, 6)))
        w = rng.standard_normal((200, 3))
        basis = np.concatenate([q, w], axis=1)
        p, r_jj = bcgs_pip_panel(nb, basis, 6, 6, 9)
        # after the pass, panel orthonormal and orthogonal to prefix
        panel = basis[:, 6:9]
        assert orthogonality_error(panel) < 1e-10
        assert np.linalg.norm(q.T @ panel, 2) < 1e-10
        # factorization property: W = Q P + panel R
        np.testing.assert_allclose(q @ p + panel @ r_jj, w,
                                   rtol=1e-10, atol=1e-11)

    def test_single_reduce_distributed(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(200, 4)
        db = DistBackend(comm4)
        basis = DistMultiVector.from_global(rng.standard_normal((200, 9)),
                                            part, comm4)
        bcgs_pip_panel(db, basis, 0, 0, 5)
        before = comm4.tracer.sync_count()
        bcgs_pip_panel(db, basis, 5, 5, 9)
        assert comm4.tracer.sync_count() - before == 1  # THE single reduce

    def test_error_grows_with_kappa_squared(self, nb, rng):
        errs = []
        for cond in [1e2, 1e4]:
            v = logscaled_matrix(1000, 10, cond, rng)
            out = BlockDriver(BCGSPIPScheme(), panel_width=5).run(v)
            errs.append(orthogonality_error(out.q))
        assert errs[1] / errs[0] > 1e2  # the (6) bound shape

    def test_breakdown_policy_shift(self, nb, rng):
        v = logscaled_matrix(500, 5, 1e10, rng)  # beyond the PIP cliff
        with pytest.raises(CholeskyBreakdownError):
            BlockDriver(BCGSPIPScheme(breakdown="raise"),
                        panel_width=5).run(v)
        out = BlockDriver(BCGSPIPScheme(breakdown="shift"),
                          panel_width=5).run(v)
        assert np.isfinite(out.q).all()


class TestPIP2:
    def test_machine_precision_under_condition5(self, nb, rng):
        # Theorem IV.2: O(eps) when kappa([Q, V]) < ~eps^{-1/2}
        g = glued_matrix(800, 5, 8, panel_cond=1e6, growth=1.0, rng=rng)
        out = BlockDriver(BCGSPIP2Scheme(), panel_width=5).run(g.matrix)
        assert orthogonality_error(out.q) < 1000 * EPS
        assert representation_error(g.matrix, out.q, out.r) < 1e-12

    def test_accumulated_condition_O1(self, nb, rng):
        # (7): after BCGS-PIP the accumulated basis has kappa = O(1)
        g = glued_matrix(600, 5, 6, panel_cond=1e5, growth=1.0, rng=rng)
        out = BlockDriver(BCGSPIP2Scheme(), panel_width=5).run(g.matrix)
        assert condition_number(out.q) < 1.0 + 1e-10

    def test_equals_cholqr2_for_first_panel(self, nb, rng):
        # paper: "when there are no previous blocks, BCGS-PIP2 is CholQR2"
        v = rng.standard_normal((150, 5))
        a = v.copy()
        r_a = np.zeros((5, 5))
        scheme = BCGSPIP2Scheme()
        scheme.begin_cycle(nb, a, r_a)
        scheme.panel_arrived(0, 5)
        b = v.copy()
        r_b = CholQR2().factor(nb, b)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_allclose(np.triu(r_a), r_b, rtol=1e-15)

    def test_two_syncs_per_panel(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(200, 4)
        db = DistBackend(comm4)
        basis = DistMultiVector.from_global(rng.standard_normal((200, 10)),
                                            part, comm4)
        r = np.zeros((10, 10))
        scheme = BCGSPIP2Scheme()
        scheme.begin_cycle(db, basis, r)
        scheme.panel_arrived(0, 5)
        before = comm4.tracer.sync_count()
        scheme.panel_arrived(5, 10)
        assert comm4.tracer.sync_count() - before == 2

    def test_finality_every_panel(self, nb, rng):
        scheme = BCGSPIP2Scheme()
        basis = rng.standard_normal((100, 10))
        r = np.zeros((10, 10))
        scheme.begin_cycle(nb, basis, r)
        assert scheme.panel_arrived(0, 5) is True
        assert scheme.final_cols == 5

    def test_matches_bcgs2_error_level(self, nb, rng):
        v = logscaled_matrix(400, 20, 1e4, rng)
        from repro.ortho.bcgs import BCGS2Scheme
        q_pip = BlockDriver(BCGSPIP2Scheme(), panel_width=5).run(v).q
        q_b2 = BlockDriver(BCGS2Scheme(), panel_width=5).run(v).q
        assert orthogonality_error(q_pip) < 1000 * EPS
        assert orthogonality_error(q_b2) < 1000 * EPS
