"""The two-stage scheme (paper Section V, Fig. 5, Theorem V.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import ConfigurationError
from repro.matrices.synthetic import glued_matrix, logscaled_matrix
from repro.ortho.analysis import (condition_number, orthogonality_error,
                                  representation_error)
from repro.ortho.backend import NumpyBackend
from repro.ortho.base import BlockDriver, OrthoObserver, PanelInfo
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.ortho.two_stage import TwoStageScheme


@pytest.fixture
def nb():
    return NumpyBackend()


class RecordingObserver(OrthoObserver):
    def __init__(self):
        self.events: list[PanelInfo] = []

    def on_event(self, info, backend, basis):
        self.events.append(info)


class TestEquivalences:
    def test_bs_equals_s_reproduces_pip2_bitwise(self, nb, rng):
        """Paper: 'with bs = s ... the two-stage approach becomes the
        standard one-stage BCGS-PIP2'. Same op sequence -> same bits."""
        v = logscaled_matrix(300, 20, 1e5, rng)
        out_ts = BlockDriver(TwoStageScheme(big_step=5), panel_width=5).run(v)
        out_pip = BlockDriver(BCGSPIP2Scheme(), panel_width=5).run(v)
        np.testing.assert_array_equal(out_ts.q, out_pip.q)
        np.testing.assert_allclose(np.triu(out_ts.r), np.triu(out_pip.r),
                                   rtol=1e-15, atol=1e-18)

    def test_bs_equals_m_single_big_panel(self, nb, rng):
        v = logscaled_matrix(400, 20, 1e4, rng)
        out = BlockDriver(TwoStageScheme(big_step=20), panel_width=5).run(v)
        assert orthogonality_error(out.q) < 1000 * EPS
        assert representation_error(v, out.q, out.r) < 1e-12


class TestStability:
    @pytest.mark.parametrize("big_step", [10, 20, 30, 60])
    def test_glued_matrix_O_eps(self, nb, rng, big_step):
        # The Fig. 8 setting (scaled down): panels kappa 1e7, growth 2
        g = glued_matrix(2000, 5, 12, panel_cond=1e7, growth=2.0, rng=rng)
        out = BlockDriver(TwoStageScheme(big_step=big_step),
                          panel_width=5).run(g.matrix)
        assert orthogonality_error(out.q) < 1e4 * EPS
        assert representation_error(g.matrix, out.q, out.r) < 1e-11

    def test_preprocessed_big_panel_condition_O1(self, nb, rng):
        """Theorem V.1 / eq. (11): after stage 1 the accumulated big panel
        [Q_{1:l-1}, Qhat] has condition number O(1)."""
        g = glued_matrix(1500, 5, 12, panel_cond=1e6, growth=2.0, rng=rng)
        observed = []

        class CondObserver(OrthoObserver):
            def on_event(self, info, backend, basis):
                if info.stage == "first":
                    observed.append(
                        condition_number(basis[:, : info.hi]))

        BlockDriver(TwoStageScheme(big_step=30), panel_width=5).run(
            g.matrix, observer=CondObserver())
        assert max(observed) < 10.0

    def test_final_r_factorizes_v(self, nb, rng):
        v = logscaled_matrix(500, 30, 1e5, rng)
        out = BlockDriver(TwoStageScheme(big_step=15), panel_width=5).run(v)
        np.testing.assert_allclose(out.q @ np.triu(out.r), v,
                                   rtol=1e-9, atol=1e-10)


class TestMechanics:
    def test_finality_only_at_big_panels(self, nb, rng):
        scheme = TwoStageScheme(big_step=10)
        basis = rng.standard_normal((200, 20))
        r = np.zeros((20, 20))
        scheme.begin_cycle(nb, basis, r)
        assert scheme.panel_arrived(0, 5) is False
        assert scheme.final_cols == 0
        assert scheme.panel_arrived(5, 10) is True
        assert scheme.final_cols == 10
        assert scheme.panel_arrived(10, 15) is False
        assert scheme.finish_cycle() is True   # flush partial big panel
        assert scheme.final_cols == 15

    def test_observer_event_sequence(self, nb, rng):
        v = logscaled_matrix(200, 20, 1e3, rng)
        obs = RecordingObserver()
        BlockDriver(TwoStageScheme(big_step=10), panel_width=5).run(
            v, observer=obs)
        stages = [e.stage for e in obs.events]
        assert stages == ["first", "first", "big_panel",
                          "first", "first", "big_panel"]

    def test_w_factor_records_stage1_representation(self, nb, rng):
        """w[:, k] must satisfy: stage-1 content of column k equals
        Q_final @ w[:, k]."""
        v = logscaled_matrix(300, 10, 1e3, rng)
        scheme = TwoStageScheme(big_step=10)
        basis = v.copy()
        r = np.zeros((10, 10))
        w = np.zeros((10, 10))
        scheme.begin_cycle(nb, basis, r, w=w)
        scheme.panel_arrived(0, 5)
        qhat_snapshot = basis[:, :5].copy()  # stage-1 content
        scheme.panel_arrived(5, 10)          # triggers stage 2
        recon = basis @ w[:, :5]
        np.testing.assert_allclose(recon, qhat_snapshot, rtol=1e-10,
                                   atol=1e-12)

    def test_sync_pattern(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(300, 4)
        db = DistBackend(comm4)
        basis = DistMultiVector.from_global(
            rng.standard_normal((300, 20)), part, comm4)
        r = np.zeros((20, 20))
        scheme = TwoStageScheme(big_step=20)
        scheme.begin_cycle(db, basis, r)
        for lo in range(0, 20, 5):
            before = comm4.tracer.sync_count()
            scheme.panel_arrived(lo, lo + 5)
            after = comm4.tracer.sync_count()
            if lo < 15:
                assert after - before == 1      # stage 1 only
            else:
                assert after - before == 2      # stage 1 + big panel

    def test_invalid_big_step(self):
        with pytest.raises(ConfigurationError):
            TwoStageScheme(big_step=0)

    def test_empty_finish_is_noop(self, nb, rng):
        scheme = TwoStageScheme(big_step=5)
        basis = rng.standard_normal((100, 10))
        r = np.zeros((10, 10))
        scheme.begin_cycle(nb, basis, r)
        scheme.panel_arrived(0, 5)  # big panel complete at 5
        assert scheme.finish_cycle() is False
