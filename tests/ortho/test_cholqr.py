"""CholQR family: correctness, the eps^{-1/2} cliff, remedies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import CholeskyBreakdownError
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.cholqr import (
    CholQR,
    CholQR2,
    MixedPrecisionCholQR,
    ShiftedCholQR,
    cholesky_factor,
)


@pytest.fixture
def nb():
    return NumpyBackend()


def factor_and_check(kernel, v, nb):
    q = v.copy()
    r = kernel.factor(nb, q)
    return q, r


class TestCholeskyFactor:
    def test_matches_numpy(self, rng):
        v = rng.standard_normal((50, 4))
        g = v.T @ v
        r = cholesky_factor(g)
        np.testing.assert_allclose(r.T @ r, g, rtol=1e-12)
        assert np.allclose(r, np.triu(r))

    def test_breakdown_reports_eigenvalue(self):
        g = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(CholeskyBreakdownError) as exc:
            cholesky_factor(g, panel_index=7)
        assert exc.value.gram_diag_min == pytest.approx(-1.0)
        assert exc.value.panel_index == 7

    def test_shift_rescues(self):
        g = np.array([[1.0, 0.0], [0.0, -1e-8]])
        r = cholesky_factor(g, shift=1e-6)
        assert np.isfinite(r).all()


class TestCholQR:
    def test_factorization_property(self, nb, rng):
        v = rng.standard_normal((200, 6))
        q, r = factor_and_check(CholQR(), v, nb)
        np.testing.assert_allclose(q @ r, v, rtol=1e-11, atol=1e-12)
        assert np.all(np.diag(r) > 0)

    def test_error_grows_as_kappa_squared(self, nb, rng):
        # the bound (2): ||I - Q.T Q|| <= c1 kappa^2 (Fig. 6's slope)
        errs = []
        for cond in [1e2, 1e4, 1e6]:
            v = logscaled_matrix(1000, 5, cond, rng)
            q, _ = factor_and_check(CholQR(), v, nb)
            errs.append(orthogonality_error(q))
        # two decades of kappa -> ~4 decades of error
        assert errs[1] / errs[0] > 1e2
        assert errs[2] / errs[1] > 1e2

    def test_breaks_down_past_the_cliff(self, nb, rng):
        # condition (1) fails around kappa ~ eps^{-1/2} ~ 1e8
        v = logscaled_matrix(1000, 5, 1e9, rng)
        with pytest.raises(CholeskyBreakdownError):
            factor_and_check(CholQR(), v, nb)


class TestCholQR2:
    def test_machine_precision_orthogonality(self, nb, rng):
        # Theorem IV.1: O(eps) error when condition (1) holds
        for cond in [1e1, 1e4, 1e7]:
            v = logscaled_matrix(2000, 5, cond, rng)
            q, r = factor_and_check(CholQR2(), v, nb)
            assert orthogonality_error(q) < 100 * EPS
            np.testing.assert_allclose(q @ r, v, rtol=1e-10, atol=1e-11)

    def test_r_combines_passes(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e5, rng)
        q, r = factor_and_check(CholQR2(), v, nb)
        assert np.allclose(r, np.triu(r))
        np.testing.assert_allclose(q @ r, v, rtol=1e-9, atol=1e-10)


class TestShiftedCholQR:
    def test_survives_beyond_cholqr_cliff(self, nb, rng):
        v = logscaled_matrix(2000, 5, 1e10, rng)
        q, r = factor_and_check(ShiftedCholQR(), v, nb)
        assert orthogonality_error(q) < 1e-12
        np.testing.assert_allclose(q @ r, v, rtol=1e-6, atol=1e-8)

    def test_well_conditioned_same_as_cholqr2(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e3, rng)
        q, _ = factor_and_check(ShiftedCholQR(), v, nb)
        assert orthogonality_error(q) < 100 * EPS


class TestMixedPrecisionCholQR:
    def test_survives_beyond_cholqr_cliff(self, nb, rng):
        # ref [26]: dd Gram pushes breakdown to kappa ~ eps^{-1}
        v = logscaled_matrix(2000, 5, 1e11, rng)
        q, r = factor_and_check(MixedPrecisionCholQR(), v, nb)
        assert orthogonality_error(q) < 1e-10
        np.testing.assert_allclose(q @ r, v, rtol=1e-5, atol=1e-7)

    def test_reorth_off_single_pass(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e2, rng)
        q, _ = factor_and_check(MixedPrecisionCholQR(reorth=False), v, nb)
        # single pass: error ~ kappa^2 eps of the *rounded* factorization,
        # still small at kappa 1e2
        assert orthogonality_error(q) < 1e-10

    def test_double_cholesky_variant(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e6, rng)
        q, _ = factor_and_check(MixedPrecisionCholQR(factor_in_dd=False),
                                v, nb)
        assert orthogonality_error(q) < 1e-12


class TestDistributedEquivalence:
    def test_cholqr2_on_dist_backend(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(400, 4)
        v = logscaled_matrix(400, 5, 1e4, rng)
        dv = DistMultiVector.from_global(v, part, comm4)
        db = DistBackend(comm4)
        r = CholQR2().factor(db, dv)
        q = dv.to_global()
        assert orthogonality_error(q) < 100 * EPS
        np.testing.assert_allclose(q @ r, v, rtol=1e-9, atol=1e-10)

    def test_cholqr_sync_counts(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(400, 4)
        db = DistBackend(comm4)
        v = DistMultiVector.from_global(rng.standard_normal((400, 5)),
                                        part, comm4)
        before = comm4.tracer.sync_count()
        CholQR().factor(db, v)
        assert comm4.tracer.sync_count() - before == 1  # single reduce
        before = comm4.tracer.sync_count()
        CholQR2().factor(db, v)
        assert comm4.tracer.sync_count() - before == 2
