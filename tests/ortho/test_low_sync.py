"""DCGS-2 low-synchronization Gram-Schmidt (paper ref. [25])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import ConfigurationError, NumericalError
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import orthogonality_error, representation_error
from repro.ortho.backend import DistBackend, NumpyBackend
from repro.ortho.low_sync import DCGS2Orthogonalizer, dcgs2_factor


@pytest.fixture
def nb():
    return NumpyBackend()


class TestNumerics:
    def test_orthonormal_and_factorizes(self, nb, rng):
        v = rng.standard_normal((200, 10))
        q = v.copy()
        r = dcgs2_factor(nb, q)
        assert orthogonality_error(q) < 1000 * EPS
        assert np.allclose(r, np.triu(r))
        assert representation_error(v, q, r) < 1e-13

    def test_matches_cgs2_quality_on_moderate_conditioning(self, nb, rng):
        v = logscaled_matrix(500, 8, 1e6, rng)
        q = v.copy()
        dcgs2_factor(nb, q)
        assert orthogonality_error(q) < 1000 * EPS

    def test_diagonal_positive(self, nb, rng):
        v = rng.standard_normal((100, 6))
        r = dcgs2_factor(nb, v.copy())
        assert np.all(np.diag(r) > 0)

    def test_dependent_column_raises(self, nb, rng):
        v = rng.standard_normal((50, 3))
        v[:, 2] = v[:, 0] + v[:, 1]  # exactly dependent
        with pytest.raises(NumericalError):
            dcgs2_factor(nb, v.copy())

    def test_zero_seed_raises(self, nb):
        v = np.zeros((10, 2))
        with pytest.raises(NumericalError):
            dcgs2_factor(nb, v)


class TestProtocol:
    def test_push_out_of_order(self, nb, rng):
        v = rng.standard_normal((30, 4))
        ortho = DCGS2Orthogonalizer()
        ortho.start(nb, v)
        with pytest.raises(ConfigurationError):
            ortho.push(2)

    def test_push_before_start(self, nb, rng):
        with pytest.raises(ConfigurationError):
            DCGS2Orthogonalizer().push(1)

    def test_flush_without_pending(self, nb, rng):
        v = rng.standard_normal((30, 2))
        ortho = DCGS2Orthogonalizer()
        ortho.start(nb, v)
        with pytest.raises(ConfigurationError):
            ortho.flush()

    def test_first_push_returns_none(self, nb, rng):
        v = rng.standard_normal((30, 3))
        ortho = DCGS2Orthogonalizer()
        ortho.start(nb, v)
        assert ortho.push(1) is None


class TestSynchronization:
    def test_one_reduce_per_column(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.parallel.partition import Partition
        part = Partition(200, 4)
        k = 8
        basis = DistMultiVector.from_global(rng.standard_normal((200, k)),
                                            part, comm4)
        db = DistBackend(comm4)
        ortho = DCGS2Orthogonalizer()
        ortho.start(db, basis)
        syncs_after_start = comm4.tracer.sync_count()
        assert syncs_after_start == 1
        for j in range(1, k):
            before = comm4.tracer.sync_count()
            ortho.push(j)
            assert comm4.tracer.sync_count() - before == 1  # THE reduce
        ortho.flush()
        # total: k + 1 reductions for k columns (vs 3k for CGS2)
        assert comm4.tracer.sync_count() == k + 1

    def test_distributed_matches_numpy(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.parallel.partition import Partition
        part = Partition(150, 4)
        v = rng.standard_normal((150, 6))
        q_np = v.copy()
        r_np = dcgs2_factor(NumpyBackend(), q_np)
        dv = DistMultiVector.from_global(v, part, comm4)
        r_db = dcgs2_factor(DistBackend(comm4), dv)
        np.testing.assert_allclose(r_np, r_db, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(q_np, dv.to_global(), rtol=1e-10,
                                   atol=1e-12)
