"""Randomized (sketched) CholQR — the paper's future-work extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import ConfigurationError
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.sketched import SketchedCholQR


@pytest.fixture
def nb():
    return NumpyBackend()


class TestSketchedCholQR:
    def test_well_conditioned(self, nb, rng):
        v = logscaled_matrix(1000, 5, 1e2, rng)
        q = v.copy()
        r = SketchedCholQR().factor(nb, q)
        assert orthogonality_error(q) < 100 * EPS
        np.testing.assert_allclose(q @ r, v, rtol=1e-9, atol=1e-10)

    def test_survives_extreme_conditioning(self, nb, rng):
        # far beyond the CholQR cliff: the sketch preconditions first
        v = logscaled_matrix(2000, 5, 1e12, rng)
        q = v.copy()
        r = SketchedCholQR(oversample=8).factor(nb, q)
        assert orthogonality_error(q) < 1e-11

    def test_r_upper_triangular_positive(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e4, rng)
        q = v.copy()
        r = SketchedCholQR().factor(nb, q)
        assert np.allclose(r, np.triu(r))
        assert np.all(np.diag(r) > 0)

    def test_singular_input_raises(self, nb, rng):
        v = rng.standard_normal((200, 1)) @ np.ones((1, 4))  # rank 1
        with pytest.raises(ConfigurationError):
            SketchedCholQR().factor(nb, v.copy())

    def test_oversample_validation(self):
        with pytest.raises(ConfigurationError):
            SketchedCholQR(oversample=1)

    def test_distributed_backend(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(600, 4)
        v = logscaled_matrix(600, 5, 1e8, rng)
        dv = DistMultiVector.from_global(v, part, comm4)
        r = SketchedCholQR(seed=7).factor(DistBackend(comm4), dv)
        q = dv.to_global()
        assert orthogonality_error(q) < 1e-11
        np.testing.assert_allclose(q @ r, v, rtol=1e-5, atol=1e-8)

    def test_sync_count(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(600, 4)
        dv = DistMultiVector.from_global(rng.standard_normal((600, 5)),
                                         part, comm4)
        before = comm4.tracer.sync_count()
        SketchedCholQR(reorth=False).factor(DistBackend(comm4), dv)
        # sketch reduce + one CholQR reduce
        assert comm4.tracer.sync_count() - before == 2


class TestDeterministicSeeding:
    """Seeds derive from (cycle, panel) context, not hidden call state."""

    def test_repeated_factor_reproduces(self, nb, rng):
        v = logscaled_matrix(800, 5, 1e6, rng)
        kernel = SketchedCholQR()
        q1 = v.copy()
        r1 = kernel.factor(nb, q1)
        q2 = v.copy()
        r2 = kernel.factor(nb, q2)  # same instance, same default context
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(q1, q2)

    def test_context_varies_the_sketch(self, nb, rng):
        v = logscaled_matrix(800, 5, 1e6, rng)
        kernel = SketchedCholQR()
        r_base = kernel.factor(nb, v.copy())
        r_cycle = kernel.factor(nb, v.copy(), cycle=1)
        r_panel = kernel.factor(nb, v.copy(), panel=3)
        # all draws are valid factors but of distinct operators
        assert not np.array_equal(r_base, r_cycle)
        assert not np.array_equal(r_base, r_panel)
        assert not np.array_equal(r_cycle, r_panel)

    def test_two_instances_agree(self, nb, rng):
        v = logscaled_matrix(800, 5, 1e6, rng)
        r1 = SketchedCholQR().factor(nb, v.copy(), cycle=2, panel=5)
        r2 = SketchedCholQR().factor(nb, v.copy(), cycle=2, panel=5)
        np.testing.assert_array_equal(r1, r2)

    @pytest.mark.parametrize("family", ["gaussian", "srht"])
    def test_operator_family_selection(self, nb, rng, family):
        v = logscaled_matrix(1000, 5, 1e10, rng)
        q = v.copy()
        r = SketchedCholQR(operator=family).factor(nb, q)
        assert orthogonality_error(q) < 1e-11
        np.testing.assert_allclose(q @ r, v, rtol=1e-6, atol=1e-9)

    def test_bcgs2_threads_fresh_context_per_panel(self, rng):
        """Driven inside BCGS2, successive panels must receive distinct
        (cycle, panel) contexts — i.e. fresh sketch operators — not one
        reused embedding (which would be adaptively correlated with the
        panels it helped produce)."""
        from repro.ortho.base import BlockDriver
        from repro.ortho.bcgs import BCGS2Scheme

        calls = []

        class Recording(SketchedCholQR):
            def factor(self, backend, v, *, cycle=0, panel=0):
                calls.append((cycle, panel))
                return super().factor(backend, v, cycle=cycle, panel=panel)

        v = logscaled_matrix(800, 15, 1e4, rng)
        scheme = BCGS2Scheme(intra_first=Recording())
        res = BlockDriver(scheme, 5).run(v)
        assert orthogonality_error(res.q) < 1e-13
        assert [panel for _, panel in calls] == [0, 5, 10]
