"""Randomized (sketched) CholQR — the paper's future-work extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import ConfigurationError
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.sketched import SketchedCholQR


@pytest.fixture
def nb():
    return NumpyBackend()


class TestSketchedCholQR:
    def test_well_conditioned(self, nb, rng):
        v = logscaled_matrix(1000, 5, 1e2, rng)
        q = v.copy()
        r = SketchedCholQR().factor(nb, q)
        assert orthogonality_error(q) < 100 * EPS
        np.testing.assert_allclose(q @ r, v, rtol=1e-9, atol=1e-10)

    def test_survives_extreme_conditioning(self, nb, rng):
        # far beyond the CholQR cliff: the sketch preconditions first
        v = logscaled_matrix(2000, 5, 1e12, rng)
        q = v.copy()
        r = SketchedCholQR(oversample=8).factor(nb, q)
        assert orthogonality_error(q) < 1e-11

    def test_r_upper_triangular_positive(self, nb, rng):
        v = logscaled_matrix(500, 4, 1e4, rng)
        q = v.copy()
        r = SketchedCholQR().factor(nb, q)
        assert np.allclose(r, np.triu(r))
        assert np.all(np.diag(r) > 0)

    def test_singular_input_raises(self, nb, rng):
        v = rng.standard_normal((200, 1)) @ np.ones((1, 4))  # rank 1
        with pytest.raises(ConfigurationError):
            SketchedCholQR().factor(nb, v.copy())

    def test_oversample_validation(self):
        with pytest.raises(ConfigurationError):
            SketchedCholQR(oversample=1)

    def test_distributed_backend(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(600, 4)
        v = logscaled_matrix(600, 5, 1e8, rng)
        dv = DistMultiVector.from_global(v, part, comm4)
        r = SketchedCholQR(seed=7).factor(DistBackend(comm4), dv)
        q = dv.to_global()
        assert orthogonality_error(q) < 1e-11
        np.testing.assert_allclose(q @ r, v, rtol=1e-5, atol=1e-8)

    def test_sync_count(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(600, 4)
        dv = DistMultiVector.from_global(rng.standard_normal((600, 5)),
                                         part, comm4)
        before = comm4.tracer.sync_count()
        SketchedCholQR(reorth=False).factor(DistBackend(comm4), dv)
        # sketch reduce + one CholQR reduce
        assert comm4.tracer.sync_count() - before == 2
