"""Diagnostics helpers and stability-condition constants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.ortho.analysis import (
    c1_bound,
    cholqr_condition_limit,
    condition_number,
    gram_condition_ok,
    orthogonality_error,
    representation_error,
)
from repro.utils.rng import haar_orthonormal, random_with_condition


class TestOrthogonalityError:
    def test_exact_orthonormal(self, rng):
        q = haar_orthonormal(100, 5, rng)
        assert orthogonality_error(q) < 50 * EPS

    def test_scaled_column_detected(self, rng):
        q = haar_orthonormal(100, 5, rng)
        q[:, 0] *= 2.0
        assert orthogonality_error(q) == pytest.approx(3.0, rel=1e-10)


class TestConditionNumber:
    def test_prescribed(self, rng):
        v = random_with_condition(200, 4, 1e6, rng)
        assert condition_number(v) == pytest.approx(1e6, rel=1e-6)

    def test_rank_deficient_inf(self):
        v = np.zeros((10, 2))
        v[:, 0] = 1.0  # second column exactly zero => sigma_min == 0
        assert condition_number(v) == np.inf


class TestRepresentationError:
    def test_exact_factorization(self, rng):
        v = rng.standard_normal((50, 4))
        q, r = np.linalg.qr(v)
        assert representation_error(v, q, r) < 50 * EPS

    def test_zero_matrix(self):
        z = np.zeros((5, 2))
        assert representation_error(z, z, np.zeros((2, 2))) == 0.0


class TestStabilityConstants:
    def test_c1_formula(self):
        # eq. (3): c1 = 5 (n s + s (s+1)) eps
        assert c1_bound(1000, 5) == pytest.approx(
            5 * (1000 * 5 + 5 * 6) * EPS)

    def test_condition_limit_order_of_magnitude(self):
        # for n ~ 1e5, s = 5: limit ~ sqrt(0.5 / (25e5 * 5 * eps)) ~ 2e4
        lim = cholqr_condition_limit(100000, 5)
        assert 1e3 < lim < 1e7

    def test_gram_condition_ok(self, rng):
        good = random_with_condition(1000, 5, 1e2, rng)
        bad = random_with_condition(1000, 5, 1e12, rng)
        assert gram_condition_ok(good)
        assert not gram_condition_ok(bad)
