"""Randomized inter-block schemes: stability, determinism, solver use."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.config import EPS
from repro.distla.multivector import DistMultiVector
from repro.exceptions import CholeskyBreakdownError
from repro.matrices.stencil import laplace2d
from repro.matrices.synthetic import logscaled_matrix
from repro.ortho import (
    BlockDriver,
    NumpyBackend,
    RBCGSScheme,
    SketchedTwoStageScheme,
    TwoStageScheme,
)
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import DistBackend
from repro.parallel.partition import Partition


def drive(scheme, v, s=5):
    return BlockDriver(scheme, s).run(v)


class TestRBCGS:
    def test_well_conditioned_qr(self, rng):
        v = logscaled_matrix(2000, 20, 1e3, rng)
        res = drive(RBCGSScheme(), v)
        assert orthogonality_error(res.q) < 100 * EPS
        np.testing.assert_allclose(res.q @ res.r, v, rtol=1e-9, atol=1e-10)
        assert np.allclose(res.r, np.triu(res.r))

    @pytest.mark.parametrize("kappa", [1e12, 1e15])
    def test_survives_extreme_conditioning(self, rng, kappa):
        v = logscaled_matrix(3000, 20, kappa, rng)
        res = drive(RBCGSScheme(), v)
        assert orthogonality_error(res.q) < 1e-12

    @pytest.mark.parametrize("family", ["sparse", "gaussian", "srht"])
    def test_operator_families(self, rng, family):
        v = logscaled_matrix(1500, 10, 1e8, rng)
        res = drive(RBCGSScheme(operator=family), v)
        assert orthogonality_error(res.q) < 1e-12

    def test_no_reorth_still_bounded(self, rng):
        v = logscaled_matrix(2000, 20, 1e4, rng)
        res = drive(RBCGSScheme(reorth=False), v)
        # single projection pass: error grows like kappa * eps (classical
        # BCGS behaviour) but never breaks down
        assert orthogonality_error(res.q) < 1e-8

    def test_reuse_is_deterministic(self, rng):
        v = logscaled_matrix(1000, 20, 1e10, rng)
        scheme = RBCGSScheme()
        a = drive(scheme, v)
        b = drive(scheme, v)
        np.testing.assert_array_equal(a.r, b.r)
        np.testing.assert_array_equal(a.q, b.q)

    def test_cycles_draw_distinct_operators(self, rng):
        scheme = RBCGSScheme()
        nb = NumpyBackend()
        basis = rng.standard_normal((500, 10))
        r = np.zeros((10, 10))
        scheme.begin_cycle(nb, basis.copy(), r, cycle=0)
        op0 = scheme._op
        scheme.begin_cycle(nb, basis.copy(), r, cycle=1)
        assert not np.array_equal(op0.matrix(), scheme._op.matrix())


class TestSketchedTwoStage:
    def test_matches_two_stage_contract(self, rng):
        """Same finality granularity and a valid QR on benign input."""
        v = logscaled_matrix(2000, 30, 1e4, rng)
        scheme = SketchedTwoStageScheme(big_step=15)
        assert scheme.finality == "big_panel"
        res = drive(scheme, v)
        assert orthogonality_error(res.q) < 100 * EPS
        np.testing.assert_allclose(res.q @ res.r, v, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("kappa", [1e12, 1e15])
    def test_converges_where_classical_breaks(self, rng, kappa):
        """The subsystem's acceptance claim: at kappa up to 1e15 the
        classical two-stage scheme breaks down (even with shifted
        recovery) while the sketched variant stays at O(eps)."""
        v = logscaled_matrix(3000, 30, kappa, rng)
        with pytest.raises(CholeskyBreakdownError):
            drive(TwoStageScheme(big_step=30, breakdown="shift"), v)
        res = drive(SketchedTwoStageScheme(big_step=30), v)
        assert orthogonality_error(res.q) < 1e-12
        rep = np.linalg.norm(res.q @ res.r - v) / np.linalg.norm(v)
        assert rep < 1e-10

    def test_reuse_is_deterministic(self, rng):
        v = logscaled_matrix(1000, 20, 1e10, rng)
        scheme = SketchedTwoStageScheme(big_step=20)
        a = drive(scheme, v)
        b = drive(scheme, v)
        np.testing.assert_array_equal(a.r, b.r)

    def test_partial_big_panel_flush(self, rng):
        """finish_cycle must flush a partly-filled big panel like the
        parent scheme."""
        v = logscaled_matrix(1500, 25, 1e6, rng)
        scheme = SketchedTwoStageScheme(big_step=20)
        res = drive(scheme, v)  # 25 cols: one big panel + 5-col flush
        assert scheme.final_cols == 25
        assert orthogonality_error(res.q) < 1e-13


class TestFusedSketchedTwoStage:
    """The single-collective (RGS-style) stage pass, fused=True."""

    def test_whitened_full_rank_basis(self, rng):
        """The fused pass trades l2 orthogonality for communication: it
        guarantees an exact factorization and a *numerically full-rank*
        whitened basis (condition knocked down orders of magnitude from
        the input, far from 1/eps), which is all the sketch-space solve
        needs.  The O(eps)-orthogonal variant is the unfused path."""
        v = logscaled_matrix(2000, 20, 1e12, rng)
        scheme = SketchedTwoStageScheme(big_step=10, fused=True)
        res = drive(scheme, v)
        rep = np.linalg.norm(res.q @ res.r - v) / np.linalg.norm(v)
        assert rep < 1e-12
        assert np.linalg.cond(res.q) < 1e12 / 10.0
        assert np.allclose(res.r, np.triu(res.r))
        assert scheme.basis_sketch.shape == (scheme._op.m_rows, 20)
        # on benign input the whitening is essentially exact
        v2 = logscaled_matrix(2000, 20, 1e2, rng)
        res2 = drive(SketchedTwoStageScheme(big_step=10, fused=True), v2)
        assert np.linalg.cond(res2.q) < 10.0

    def test_one_collective_per_stage_pass(self, comm4, rng):
        """Acceptance: exactly one allreduce-equivalent collective per
        stage pass (stage-1 per panel + one per big panel), with
        identical charged costs and bit-identical results across the
        loop and batched engines."""
        n, k, s, bs = 600, 20, 5, 10
        v = logscaled_matrix(n, k, 1e10, rng)
        part = Partition(n, 4)
        outputs = {}
        for engine in ("loop", "batched"):
            with config.engine_scope(engine):
                from repro.parallel.communicator import SimComm
                from repro.parallel.machine import generic_cpu
                from repro.parallel.tracing import Tracer
                tracer = Tracer()
                comm = SimComm(generic_cpu(), 4, tracer, engine=engine)
                dv = DistMultiVector.from_global(v, part, comm)
                scheme = SketchedTwoStageScheme(big_step=bs, fused=True)
                r = np.zeros((k, k))
                scheme.begin_cycle(DistBackend(comm, engine=engine), dv, r)
                snap = tracer.snapshot()
                for lo in range(0, k, s):
                    scheme.panel_arrived(lo, lo + s)
                scheme.finish_cycle()
                totals = tracer.since(snap)
                allreduces = sum(
                    c for (_, kern), c in totals.counts.items()
                    if kern == "allreduce")
                outputs[engine] = (dv.to_global(), r.copy(), allreduces,
                                  totals.clock)
        stage_passes = k // s + k // bs  # 4 stage-1 + 2 big-panel
        assert outputs["loop"][2] == stage_passes
        assert outputs["batched"][2] == stage_passes
        assert outputs["loop"][3] == outputs["batched"][3]
        np.testing.assert_array_equal(outputs["loop"][0],
                                      outputs["batched"][0])
        np.testing.assert_array_equal(outputs["loop"][1],
                                      outputs["batched"][1])

    def test_fewer_syncs_than_unfused(self, rng):
        """fused=True must charge 3x fewer collectives than the unfused
        sketched scheme on the NumPy-free distributed path."""
        from repro.parallel.communicator import SimComm
        from repro.parallel.machine import generic_cpu
        from repro.parallel.tracing import Tracer
        n, k = 400, 20
        v = logscaled_matrix(n, k, 1e8, rng)
        part = Partition(n, 4)
        counts = {}
        for fused in (False, True):
            tracer = Tracer()
            comm = SimComm(generic_cpu(), 4, tracer)
            dv = DistMultiVector.from_global(v, part, comm)
            scheme = SketchedTwoStageScheme(big_step=10, fused=fused)
            r = np.zeros((k, k))
            scheme.begin_cycle(DistBackend(comm), dv, r)
            for lo in range(0, k, 5):
                scheme.panel_arrived(lo, lo + 5)
            scheme.finish_cycle()
            counts[fused] = sum(c for (_, kern), c in tracer.counts.items()
                                if kern == "allreduce")
        # fused: 1 per stage pass (4 stage-1 + 2 big-panel); unfused: 3
        # per pass except the two prefix-free lo=0 passes (2 each)
        assert counts[True] == 6
        assert counts[False] == 16

    def test_reuse_is_deterministic(self, rng):
        v = logscaled_matrix(1000, 20, 1e10, rng)
        scheme = SketchedTwoStageScheme(big_step=20, fused=True)
        a = drive(scheme, v)
        b = drive(scheme, v)
        np.testing.assert_array_equal(a.r, b.r)
        np.testing.assert_array_equal(a.q, b.q)

    def test_survives_extreme_conditioning(self, rng):
        """At kappa=1e15 the whitened basis stays numerically full rank
        and the factorization stays exact — the RGS contract."""
        v = logscaled_matrix(3000, 20, 1e15, rng)
        res = drive(SketchedTwoStageScheme(big_step=20, fused=True), v)
        rep = np.linalg.norm(res.q @ res.r - v) / np.linalg.norm(v)
        assert rep < 1e-10
        sv = np.linalg.svd(res.q, compute_uv=False)
        assert sv[-1] > 0.0 and np.linalg.cond(res.q) < 0.1 / EPS


class TestDistributedEquivalence:
    @pytest.mark.parametrize("make_scheme", [
        lambda: RBCGSScheme(),
        lambda: SketchedTwoStageScheme(big_step=10),
    ], ids=["rbcgs", "sketched-two-stage"])
    def test_numpy_vs_dist_and_loop_vs_batched(self, comm4, rng,
                                               make_scheme):
        n, k = 600, 10
        v = logscaled_matrix(n, k, 1e8, rng)
        ref = drive(make_scheme(), v)
        part = Partition(n, 4)
        outputs = {}
        for engine in ("loop", "batched"):
            with config.engine_scope(engine):
                dv = DistMultiVector.from_global(v, part, comm4)
                scheme = make_scheme()
                r = np.zeros((k, k))
                scheme.begin_cycle(DistBackend(comm4, engine=engine), dv, r)
                for lo in range(0, k, 5):
                    scheme.panel_arrived(lo, lo + 5)
                scheme.finish_cycle()
                outputs[engine] = (dv.to_global(), r.copy())
        # engines agree bitwise on the full scheme output
        np.testing.assert_array_equal(outputs["loop"][0],
                                      outputs["batched"][0])
        np.testing.assert_array_equal(outputs["loop"][1],
                                      outputs["batched"][1])
        # and the distributed run matches the NumPy substrate's quality
        q, r = outputs["loop"]
        assert orthogonality_error(q) < 1e-12
        np.testing.assert_allclose(r, ref.r, rtol=1e-6, atol=1e-9)


class TestInSStepGMRES:
    @pytest.mark.parametrize("make_scheme", [
        lambda: RBCGSScheme(),
        lambda: SketchedTwoStageScheme(big_step=10),
    ], ids=["rbcgs", "sketched-two-stage"])
    def test_solver_converges(self, make_scheme):
        from repro.krylov.simulation import Simulation
        from repro.krylov.sstep_gmres import sstep_gmres
        from repro.parallel.machine import generic_cpu
        sim = Simulation(laplace2d(16), ranks=4, machine=generic_cpu())
        res = sstep_gmres(sim, sim.ones_solution_rhs(), s=5, restart=20,
                          tol=1e-8, scheme=make_scheme())
        assert res.converged
        np.testing.assert_allclose(res.x, np.ones(sim.n), rtol=1e-6,
                                   atol=1e-6)
