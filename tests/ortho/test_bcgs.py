"""BCGS / BCGS2 inter-block orthogonalization (paper Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import ConfigurationError
from repro.matrices.synthetic import glued_matrix, logscaled_matrix
from repro.ortho.analysis import orthogonality_error, representation_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs import BCGS2Scheme, bcgs_project
from repro.ortho.cholqr import CholQR2
from repro.ortho.hhqr import HouseholderQR


@pytest.fixture
def nb():
    return NumpyBackend()


class TestBCGSProject:
    def test_projects_out_prefix(self, nb, rng):
        q, _ = np.linalg.qr(rng.standard_normal((100, 6)))
        v = rng.standard_normal((100, 3))
        r = bcgs_project(nb, q, v)
        assert np.linalg.norm(q.T @ v, 2) < 1e-12
        assert r.shape == (6, 3)


class TestBCGS2Scheme:
    @pytest.mark.parametrize("intra", [CholQR2(), HouseholderQR()])
    def test_full_matrix_orthogonalized(self, nb, rng, intra):
        v = logscaled_matrix(300, 20, 1e5, rng)
        driver = BlockDriver(BCGS2Scheme(intra_first=intra), panel_width=5)
        out = driver.run(v)
        assert orthogonality_error(out.q) < 100 * EPS
        assert representation_error(v, out.q, out.r) < 1e-13

    def test_glued_matrix_stability(self, nb, rng):
        g = glued_matrix(500, 5, 8, panel_cond=1e6, growth=1.0, rng=rng)
        out = BlockDriver(BCGS2Scheme(), panel_width=5).run(g.matrix)
        assert orthogonality_error(out.q) < 1000 * EPS

    def test_r_upper_triangular(self, nb, rng):
        v = logscaled_matrix(200, 12, 1e3, rng)
        out = BlockDriver(BCGS2Scheme(), panel_width=4).run(v)
        np.testing.assert_allclose(out.r, np.triu(out.r), atol=1e-14)

    def test_out_of_order_panel_rejected(self, nb, rng):
        scheme = BCGS2Scheme()
        basis = rng.standard_normal((50, 8))
        r = np.zeros((8, 8))
        scheme.begin_cycle(nb, basis, r)
        scheme.panel_arrived(0, 4)
        with pytest.raises(ConfigurationError):
            scheme.panel_arrived(6, 8)

    def test_five_syncs_per_panel_distributed(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(200, 4)
        v = logscaled_matrix(200, 10, 1e3, rng)
        dv = DistMultiVector.from_global(v, part, comm4)
        db = DistBackend(comm4)
        scheme = BCGS2Scheme()
        r = np.zeros((10, 10))
        scheme.begin_cycle(db, dv, r)
        scheme.panel_arrived(0, 5)        # first panel: CholQR2 only
        before = comm4.tracer.sync_count()
        scheme.panel_arrived(5, 10)       # full BCGS2: 5 reduces
        assert comm4.tracer.sync_count() - before == 5

    def test_driver_result_counts(self, nb, rng):
        v = rng.standard_normal((100, 9))
        out = BlockDriver(BCGS2Scheme(), panel_width=3).run(v)
        assert out.panels == 3

    def test_driver_rejects_misaligned(self, nb, rng):
        v = rng.standard_normal((60, 7))
        with pytest.raises(ConfigurationError):
            BlockDriver(BCGS2Scheme(), panel_width=3).run(v)
