"""Cross-scheme property tests: invariants every orthogonalizer shares.

For any well-conditioned input and any panel decomposition, every scheme
must produce (a) an orthonormal Q, (b) an upper-triangular R with
positive diagonal, (c) Q R = V.  Hypothesis drives random shapes, panel
widths, and conditioning through all five schemes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices.synthetic import logscaled_matrix
from repro.ortho.analysis import orthogonality_error, representation_error
from repro.ortho.base import BlockDriver
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, BCGSPIPScheme
from repro.ortho.hhqr import HouseholderQR
from repro.ortho.two_stage import TwoStageScheme

SCHEME_FACTORIES = {
    "bcgs2-cholqr2": lambda width, total: BCGS2Scheme(),
    "bcgs2-hhqr": lambda width, total: BCGS2Scheme(intra_first=HouseholderQR()),
    "pip2": lambda width, total: BCGSPIP2Scheme(),
    "two-stage-half": lambda width, total: TwoStageScheme(
        big_step=max(width, total // 2)),
    "two-stage-full": lambda width, total: TwoStageScheme(big_step=total),
}


@pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
class TestInvariants:
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_qr_invariants(self, name, data):
        width = data.draw(st.sampled_from([2, 3, 5]), label="panel width")
        panels = data.draw(st.integers(min_value=1, max_value=5),
                           label="panel count")
        log_cond = data.draw(st.integers(min_value=0, max_value=6),
                             label="log10 kappa")
        seed = data.draw(st.integers(min_value=0, max_value=2 ** 20),
                         label="seed")
        total = width * panels
        n = max(50, 8 * total)
        v = logscaled_matrix(n, total, 10.0 ** log_cond,
                             np.random.default_rng(seed))
        scheme = SCHEME_FACTORIES[name](width, total)
        out = BlockDriver(scheme, width).run(v)
        r = np.triu(out.r)
        assert orthogonality_error(out.q) < 5e-12
        assert representation_error(v, out.q, r) < 5e-11
        assert np.allclose(out.r, r, atol=1e-12)       # upper triangular
        assert np.all(np.diag(r) > 0)                   # positive diagonal

    def test_single_pass_pip_weaker_but_consistent(self, name, rng):
        """The one-pass scheme factorizes exactly even when its
        orthogonality degrades — R must always reproduce V."""
        if name != "pip2":
            pytest.skip("single comparison, run once")
        v = logscaled_matrix(400, 12, 1e6, rng)
        out = BlockDriver(BCGSPIPScheme(), 4).run(v)
        assert representation_error(v, out.q, np.triu(out.r)) < 1e-11
        # degraded but bounded by the (6) law
        assert 1e-13 < orthogonality_error(out.q) < 1e-2


class TestSchemeAgreement:
    @given(seed=st.integers(min_value=0, max_value=2 ** 20))
    @settings(max_examples=6, deadline=None)
    def test_all_schemes_same_r_up_to_rounding(self, seed):
        """On well-conditioned input every scheme computes the SAME
        mathematical QR factorization (uniqueness with positive diag)."""
        v = logscaled_matrix(300, 10, 1e3, np.random.default_rng(seed))
        rs = []
        for name, factory in SCHEME_FACTORIES.items():
            out = BlockDriver(factory(5, 10), 5).run(v)
            rs.append(np.triu(out.r))
        for r in rs[1:]:
            np.testing.assert_allclose(r, rs[0], rtol=1e-8, atol=1e-10)
