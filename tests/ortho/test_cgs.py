"""Column-wise CGS2 / MGS appends (standard GMRES building block)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EPS
from repro.exceptions import NumericalError
from repro.ortho.backend import NumpyBackend
from repro.ortho.cgs import cgs2_append, mgs_append, normalize_column


@pytest.fixture
def nb():
    return NumpyBackend()


def build_basis(nb, append, n=80, k=8, rng=None):
    rng = rng or np.random.default_rng(3)
    basis = np.zeros((n, k))
    raw = rng.standard_normal((n, k))
    basis[:, 0] = raw[:, 0]
    coeffs = [append(nb, basis, 0)]
    for j in range(1, k):
        basis[:, j] = raw[:, j]
        coeffs.append(append(nb, basis, j))
    return basis, coeffs, raw


class TestCGS2:
    def test_orthonormal(self, nb):
        basis, _, _ = build_basis(nb, cgs2_append)
        err = np.linalg.norm(np.eye(8) - basis.T @ basis, 2)
        assert err < 100 * EPS

    def test_coefficients_reconstruct(self, nb):
        basis, coeffs, raw = build_basis(nb, cgs2_append)
        # column j of raw = sum_i h[i] q_i with h from the append
        for j in range(1, 8):
            h = coeffs[j]
            recon = basis[:, : j + 1] @ h
            np.testing.assert_allclose(recon, raw[:, j], rtol=1e-10,
                                       atol=1e-12)

    def test_first_column_norm_returned(self, nb, rng):
        basis = rng.standard_normal((50, 2))
        expected = np.linalg.norm(basis[:, 0])
        h = cgs2_append(nb, basis, 0)
        assert h[0] == pytest.approx(expected)
        assert np.linalg.norm(basis[:, 0]) == pytest.approx(1.0)

    def test_dependent_column_collapses_norm(self, nb, rng):
        # a numerically dependent column projects to roundoff level: the
        # Arnoldi subdiagonal entry h[j] becomes ~eps * ||input||
        basis = np.zeros((50, 2))
        basis[:, 0] = rng.standard_normal(50)
        cgs2_append(nb, basis, 0)
        basis[:, 1] = basis[:, 0]
        h = cgs2_append(nb, basis, 1)
        assert h[1] < 1e-14  # input had unit norm

    def test_exact_zero_column_raises(self, nb, rng):
        basis = np.zeros((50, 2))
        basis[:, 0] = rng.standard_normal(50)
        cgs2_append(nb, basis, 0)
        basis[:, 1] = 0.0
        with pytest.raises(NumericalError):
            cgs2_append(nb, basis, 1)


class TestMGS:
    def test_orthonormal(self, nb):
        basis, _, _ = build_basis(nb, mgs_append)
        err = np.linalg.norm(np.eye(8) - basis.T @ basis, 2)
        assert err < 1e-12

    def test_coefficients_reconstruct(self, nb):
        basis, coeffs, raw = build_basis(nb, mgs_append)
        for j in range(1, 8):
            recon = basis[:, : j + 1] @ coeffs[j]
            np.testing.assert_allclose(recon, raw[:, j], rtol=1e-10,
                                       atol=1e-12)


class TestNormalize:
    def test_zero_column_raises(self, nb):
        basis = np.zeros((10, 1))
        with pytest.raises(NumericalError):
            normalize_column(nb, basis, 0)


class TestSyncCounts:
    def test_cgs2_three_reduces_per_column(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(120, 4)
        db = DistBackend(comm4)
        basis = DistMultiVector.from_global(rng.standard_normal((120, 4)),
                                            part, comm4)
        cgs2_append(db, basis, 0)
        before = comm4.tracer.sync_count()
        cgs2_append(db, basis, 1)
        assert comm4.tracer.sync_count() - before == 3

    def test_mgs_syncs_grow_with_column(self, comm4, rng):
        from repro.distla.multivector import DistMultiVector
        from repro.ortho.backend import DistBackend
        from repro.parallel.partition import Partition
        part = Partition(120, 4)
        db = DistBackend(comm4)
        basis = DistMultiVector.from_global(rng.standard_normal((120, 4)),
                                            part, comm4)
        mgs_append(db, basis, 0)
        mgs_append(db, basis, 1)
        before = comm4.tracer.sync_count()
        mgs_append(db, basis, 2)
        assert comm4.tracer.sync_count() - before == 3  # 2 dots + 1 norm
