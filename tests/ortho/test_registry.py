"""Name -> class registries for kernels and schemes."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.ortho import (
    BCGSPIP2Scheme,
    CholQR2,
    RBCGSScheme,
    SketchedCholQR,
    SketchedTwoStageScheme,
    TwoStageScheme,
    get_intra_qr,
    get_scheme,
    list_intra_qr,
    list_schemes,
)
from repro.ortho.base import BlockOrthoScheme, IntraBlockQR


class TestIntraQRRegistry:
    def test_lookup(self):
        assert get_intra_qr("cholqr2") is CholQR2
        assert get_intra_qr("sketched_cholqr") is SketchedCholQR

    def test_name_normalization(self):
        assert get_intra_qr("Sketched-CholQR") is SketchedCholQR
        assert get_intra_qr(" CHOLQR2 ") is CholQR2

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="sketched_cholqr"):
            get_intra_qr("qr_of_destiny")

    def test_listing_instantiable(self):
        names = list_intra_qr()
        assert "cholqr" in names and "hhqr" in names
        for name in names:
            assert isinstance(get_intra_qr(name)(), IntraBlockQR)


class TestSchemeRegistry:
    def test_lookup(self):
        assert get_scheme("bcgs-pip2") is BCGSPIP2Scheme
        assert get_scheme("two-stage") is TwoStageScheme
        assert get_scheme("rbcgs") is RBCGSScheme
        assert get_scheme("sketched_two_stage") is SketchedTwoStageScheme

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="two_stage"):
            get_scheme("three-stage")

    def test_listing_subclasses(self):
        for name in list_schemes():
            assert issubclass(get_scheme(name), BlockOrthoScheme)

    def test_env_style_selection(self, monkeypatch):
        """The registry is what REPRO_* config hooks resolve through."""
        import os
        monkeypatch.setenv("REPRO_SCHEME", "sketched-two-stage")
        cls = get_scheme(os.environ["REPRO_SCHEME"])
        scheme = cls(big_step=10)
        assert scheme.name == "sketched-two-stage"
