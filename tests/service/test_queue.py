"""SolveQueue: grouping, max-width/max-wait dispatch, result plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.bcgs_pip import BCGSPIP2Scheme
from repro.parallel.machine import generic_cpu
from repro.service import SolveQueue

S, RESTART = 4, 12


def fresh_sim(nx=12, ranks=4):
    return Simulation(laplace2d(nx), ranks=ranks, machine=generic_cpu())


def make_queue(sim, **kw):
    kw.setdefault("s", S)
    kw.setdefault("restart", RESTART)
    return SolveQueue(sim, **kw)


def rhs(n, count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(count)]


class TestDispatchPolicy:
    def test_full_group_dispatches_on_pump(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=4, max_wait=100.0)
        for b in rhs(sim.n, 4):
            q.submit(b, now=0.0)
        assert q.pending == 4
        assert q.pump(now=0.0) == 4
        assert q.pending == 0
        assert q.dispatched_widths == [4]

    def test_partial_group_waits_out_max_wait(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=4, max_wait=10.0)
        for b in rhs(sim.n, 2):
            q.submit(b, now=0.0)
        # young partial group: held back
        assert q.pump(now=5.0) == 0
        assert q.pending == 2
        # oldest member crosses the wait bound: dispatched at width 2
        assert q.pump(now=10.0) == 2
        assert q.dispatched_widths == [2]

    def test_backlog_drains_as_full_slices_plus_remainder(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=4, max_wait=0.0)
        for b in rhs(sim.n, 10):
            q.submit(b, now=0.0)
        assert q.pump(now=0.0) == 10
        assert q.dispatched_widths == [4, 4, 2]

    def test_flush_ignores_wait_policy(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=8, max_wait=1e9)
        for b in rhs(sim.n, 3):
            q.submit(b, now=0.0)
        assert q.flush() == 3
        assert q.dispatched_widths == [3]

    def test_default_now_is_the_modeled_clock(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=8, max_wait=1e9)
        rid = q.submit(rhs(sim.n, 1)[0])
        # tracer clock has not advanced past the submit stamp, so the
        # wait policy holds the request back ...
        assert q.pump() == 0
        # ... until flush forces it
        q.flush()
        assert q.done(rid)


class TestCompatibilityGrouping:
    def test_incompatible_requests_never_share_a_batch(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=8, max_wait=0.0)
        bs = rhs(sim.n, 4)
        q.submit(bs[0], now=0.0)
        q.submit(bs[1], now=0.0)
        q.submit(bs[2], now=0.0, s=2)          # different s -> own batch
        q.submit(bs[3], now=0.0, restart=8)    # different restart -> own
        q.pump(now=0.0)
        assert sorted(q.dispatched_widths) == [1, 1, 2]

    def test_tol_and_maxiter_do_not_fragment_batches(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=8, max_wait=0.0)
        for i, b in enumerate(rhs(sim.n, 3)):
            q.submit(b, tol=10.0 ** -(4 + i), maxiter=100 * (i + 1),
                     now=0.0)
        q.pump(now=0.0)
        assert q.dispatched_widths == [3]

    def test_scheme_factory_groups_by_identity(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=8, max_wait=0.0)
        bs = rhs(sim.n, 3)
        q.submit(bs[0], now=0.0, scheme_factory=BCGSPIP2Scheme)
        q.submit(bs[1], now=0.0, scheme_factory=BCGSPIP2Scheme)
        q.submit(bs[2], now=0.0)  # default scheme -> separate batch
        q.pump(now=0.0)
        assert sorted(q.dispatched_widths) == [1, 2]


class TestResults:
    def test_results_match_independent_solves(self):
        sim = fresh_sim()
        q = make_queue(sim, max_width=4, max_wait=0.0)
        bs = rhs(sim.n, 4)
        rids = [q.submit(b, tol=1e-8, now=0.0) for b in bs]
        q.pump(now=0.0)
        for rid, b in zip(rids, bs):
            res = q.result(rid)
            ref = sstep_gmres(fresh_sim(), b, s=S, restart=RESTART,
                              tol=1e-8)
            np.testing.assert_array_equal(res.x, ref.x)
            assert res.iterations == ref.iterations
            assert res.history.residuals == ref.history.residuals
            assert res.diagnostics["request_id"] == rid

    def test_pending_result_raises(self):
        sim = fresh_sim()
        q = make_queue(sim, max_wait=1e9)
        rid = q.submit(rhs(sim.n, 1)[0], now=0.0)
        assert not q.done(rid)
        with pytest.raises(KeyError, match="pending"):
            q.result(rid)


class TestValidation:
    def test_bad_rhs_shape_rejected(self):
        with pytest.raises(ShapeError):
            make_queue(fresh_sim()).submit(np.ones(5))

    def test_bad_x0_shape_rejected(self):
        sim = fresh_sim()
        with pytest.raises(ShapeError, match="x0"):
            make_queue(sim).submit(np.ones(sim.n), np.ones(3))

    def test_unknown_override_rejected(self):
        sim = fresh_sim()
        with pytest.raises(ConfigurationError, match="override"):
            make_queue(sim).submit(np.ones(sim.n), tolerance=1e-8)

    def test_bad_policy_knobs_rejected(self):
        sim = fresh_sim()
        with pytest.raises(ConfigurationError):
            SolveQueue(sim, max_width=0)
        with pytest.raises(ConfigurationError):
            SolveQueue(sim, max_wait=-1.0)
