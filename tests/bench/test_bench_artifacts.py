"""Round-trip, comparison, and gating logic of bench artifacts."""

from __future__ import annotations

import pytest

from repro.bench.artifacts import (
    SCHEMA,
    BenchArtifact,
    BenchRecord,
    collect_environment,
    compare_artifacts,
    load_artifact,
)


def rec(name, min_s, extra=None):
    return BenchRecord(name=name, group=None, mean=min_s * 1.1, min=min_s,
                       median=min_s * 1.05, stddev=min_s * 0.01, rounds=100,
                       iterations=1, extra=extra or {})


def artifact(records):
    return BenchArtifact(name="kernels", created_utc="2026-07-30T00:00:00+00:00",
                         environment={"python": "3.11"}, benchmarks=records)


class TestRoundTrip:
    def test_write_load(self, tmp_path):
        art = artifact([rec("test_a[loop]", 2e-4, {"engine": "loop"}),
                        rec("test_a[batched]", 1e-4, {"engine": "batched"})])
        path = art.write(tmp_path / "BENCH_kernels.json")
        loaded = load_artifact(path)
        assert loaded.schema == SCHEMA
        assert loaded.names() == art.names()
        assert loaded.record("test_a[loop]").extra == {"engine": "loop"}
        assert loaded.record("test_a[batched]").min == pytest.approx(1e-4)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": "other/9", "name": "x", '
                        '"created_utc": "", "environment": {}, '
                        '"benchmarks": []}')
        with pytest.raises(ValueError, match="schema"):
            load_artifact(path)

    def test_missing_record_raises(self):
        with pytest.raises(KeyError):
            artifact([]).record("nope")


class TestComparison:
    def test_speedup(self):
        art = artifact([rec("test_a[loop]", 3e-4), rec("test_a[batched]", 1e-4)])
        assert art.speedup("test_a[loop]", "test_a[batched]") == pytest.approx(3.0)

    def test_no_regression_within_threshold(self):
        base = artifact([rec("test_a", 1e-4)])
        cur = artifact([rec("test_a", 1.15e-4)])
        assert compare_artifacts(base, cur, threshold=0.20) == []

    def test_regression_detected(self):
        base = artifact([rec("test_a", 1e-4), rec("test_b", 1e-4)])
        cur = artifact([rec("test_a", 1.5e-4), rec("test_b", 1e-4)])
        regs = compare_artifacts(base, cur, threshold=0.20)
        assert [r.name for r in regs] == ["test_a"]
        assert regs[0].ratio == pytest.approx(1.5)

    def test_added_and_removed_benchmarks_ignored(self):
        base = artifact([rec("gone", 1e-4), rec("kept", 1e-4)])
        cur = artifact([rec("kept", 1e-4), rec("new", 9.0)])
        assert compare_artifacts(base, cur) == []


class TestEnvironment:
    def test_collect_environment_keys(self):
        env = collect_environment()
        for key in ("repro", "python", "numpy", "scipy", "default_engine"):
            assert key in env


class TestCompareBenchCli:
    """scripts/compare_bench.py gating semantics through its main()."""

    @pytest.fixture
    def cli(self):
        import importlib.util
        from pathlib import Path
        script = (Path(__file__).resolve().parents[2]
                  / "scripts" / "compare_bench.py")
        spec = importlib.util.spec_from_file_location("compare_bench", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_regression_fails(self, cli, tmp_path):
        base = artifact([rec("test_a", 1e-4)])
        cur = artifact([rec("test_a", 2e-4)])
        b = str(base.write(tmp_path / "base.json"))
        c = str(cur.write(tmp_path / "cur.json"))
        assert cli.main([b, c]) == 1
        assert cli.main([b, b]) == 0

    def test_disjoint_names_are_not_green(self, cli, tmp_path):
        """A benchmark rename must not make the gate pass vacuously."""
        base = artifact([rec("test_old", 1e-4)])
        cur = artifact([rec("test_new", 9.0)])
        b = str(base.write(tmp_path / "base.json"))
        c = str(cur.write(tmp_path / "cur.json"))
        assert cli.main([b, c]) == 1
        # ... unless the rename is declared intentional
        assert cli.main([b, c, "--allow-disjoint"]) == 0

    def test_one_sided_entries_reported_not_errored(self, cli, tmp_path,
                                                    capsys):
        """Benchmarks present in only one artifact are new/removed churn,
        not failures; the shared set still gates."""
        base = artifact([rec("kept", 1e-4), rec("gone", 1e-4)])
        cur = artifact([rec("kept", 1e-4), rec("fresh", 9.0)])
        b = str(base.write(tmp_path / "base.json"))
        c = str(cur.write(tmp_path / "cur.json"))
        assert cli.main([b, c]) == 0
        out = capsys.readouterr().out
        assert "new benchmark (not gated): fresh" in out
        assert "removed benchmark: gone" in out
        # a regression in the shared set still fails alongside churn
        cur2 = artifact([rec("kept", 9e-4), rec("fresh", 9.0)])
        c2 = str(cur2.write(tmp_path / "cur2.json"))
        assert cli.main([b, c2]) == 1

    def test_speedup_gate(self, cli, tmp_path):
        art = artifact([rec("test_a[loop]", 3e-4),
                        rec("test_a[batched]", 1e-4)])
        p = str(art.write(tmp_path / "a.json"))
        assert cli.main([p, "--check-speedup", "test_a"]) == 0
        assert cli.main([p, "--check-speedup", "test_a",
                         "--min-speedup", "5.0"]) == 1

    def test_missing_speedup_entries_hard_error(self, cli, tmp_path,
                                                capsys):
        """A candidate missing entries referenced by --check-speedup is a
        configuration error (exit 2, every missing entry named), never a
        silent pass."""
        art = artifact([rec("test_a[loop]", 3e-4),
                        rec("test_a[batched]", 1e-4)])
        p = str(art.write(tmp_path / "a.json"))
        assert cli.main([p, "--check-speedup", "test_missing"]) == 2
        out = capsys.readouterr().out
        assert "ERROR" in out and p in out
        assert "test_missing[loop]" in out
        assert "test_missing[batched]" in out
        # one present engine leg is not enough — both are required
        half = artifact([rec("test_a[loop]", 3e-4)])
        ph = str(half.write(tmp_path / "half.json"))
        assert cli.main([ph, "--check-speedup", "test_a"]) == 2
        out = capsys.readouterr().out
        assert "test_a[batched]" in out and "test_a[loop]" not in \
            out.split("required by --check-speedup:")[1]
        # the two-artifact form blames the *candidate* file
        assert cli.main([p, ph, "--check-speedup", "test_a",
                         "--allow-disjoint"]) == 2
        assert ph in capsys.readouterr().out
