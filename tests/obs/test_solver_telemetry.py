"""SolveResult.telemetry: per-cycle records from the real solvers, and
their consistency with the legacy diagnostics keys they now back."""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov.ir import gmres_ir
from repro.krylov.options import SolverOptions
from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.obs import CycleRecord
from repro.ortho.randomized import SketchedTwoStageScheme
from repro.ortho.two_stage import TwoStageScheme


def _solve(nx=24, s=3, restart=12, tol=1e-9, **kw):
    sim = Simulation(laplace2d(nx), ranks=4)
    return sstep_gmres(sim, sim.ones_solution_rhs(), s=s, restart=restart,
                       tol=tol, maxiter=400, **kw)


class TestSstepTelemetry:
    def test_one_record_per_restart(self):
        res = _solve(scheme=TwoStageScheme(big_step=12))
        assert len(res.telemetry) == res.restarts
        assert all(isinstance(r, CycleRecord) for r in res.telemetry)
        assert [r.cycle for r in res.telemetry] == list(range(res.restarts))

    def test_iterations_cumulative_and_final(self):
        res = _solve(scheme=TwoStageScheme(big_step=12))
        iters = [r.iterations for r in res.telemetry]
        assert iters == sorted(iters)
        assert iters[-1] == res.iterations

    def test_residual_norm_tracks_convergence(self):
        res = _solve(scheme=TwoStageScheme(big_step=12))
        assert res.converged
        assert res.telemetry[-1].residual_norm is not None
        assert res.telemetry[-1].residual_norm <= res.telemetry[0].residual_norm

    def test_residual_gap_lands_one_cycle_late(self):
        """The explicit residual exposing cycle k's gap is computed at
        cycle k+1's top — so all but possibly the last record carry one
        (the gap monitor runs on the sketched path only)."""
        res = _solve(nx=32, tol=1e-11,
                     scheme=SketchedTwoStageScheme(big_step=12),
                     options=SolverOptions(solve_mode="sketched"))
        if res.restarts < 2:
            pytest.skip("needs at least two restart cycles")
        gaps = [r.residual_gap for r in res.telemetry[:-1]]
        assert all(g is not None and g >= 0.0 for g in gaps)
        # a classical solve has no sketch, hence no gap observations
        classical = _solve(scheme=TwoStageScheme(big_step=12))
        assert all(r.residual_gap is None for r in classical.telemetry)

    def test_diagnostics_derived_from_telemetry(self):
        res = _solve(scheme=SketchedTwoStageScheme(big_step=12),
                     options=SolverOptions(solve_mode="sketched"))
        conds = [r.basis_condition for r in res.telemetry
                 if r.basis_condition is not None]
        assert conds, "sketched cycles must observe basis condition"
        assert res.diagnostics["basis_condition_max"] == max(conds)
        gaps = [r.residual_gap for r in res.telemetry
                if r.residual_gap is not None]
        assert res.diagnostics["residual_gap_max"] == max(gaps + [0.0])
        dist = [r.embedding_distortion for r in res.telemetry
                if r.embedding_distortion is not None]
        assert res.diagnostics["embedding_distortion_max"] == max(
            dist + [0.0])

    def test_mode_stamped_per_cycle(self):
        res = _solve(scheme=TwoStageScheme(big_step=12))
        assert all(r.mode == "classical" for r in res.telemetry)
        res = _solve(scheme=SketchedTwoStageScheme(big_step=12),
                     options=SolverOptions(solve_mode="sketched"))
        assert all(r.mode == "sketched" for r in res.telemetry)


class TestGmresIrTelemetry:
    def test_one_record_per_refinement(self):
        sim = Simulation(laplace2d(24), ranks=4)
        res = gmres_ir(sim, sim.ones_solution_rhs(), s=3, restart=12,
                       tol=1e-10)
        assert res.converged
        assert len(res.telemetry) >= 1
        assert all(r.mode is not None and r.mode.startswith("ir/")
                   for r in res.telemetry)
        assert res.telemetry[-1].iterations == res.iterations


class TestAdaptiveTelemetry:
    def test_segments_concatenate_with_global_numbering(self):
        from repro.krylov.adaptive import adaptive_sstep_gmres
        sim = Simulation(laplace2d(24), ranks=4)
        res = adaptive_sstep_gmres(sim, sim.ones_solution_rhs(), s_max=6,
                                   restart=12, tol=1e-9, maxiter=400)
        cycles = [r.cycle for r in res.telemetry]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles), "renumbering must not collide"
        iters = [r.iterations for r in res.telemetry]
        assert iters == sorted(iters)
        switches = sum(1 for r in res.telemetry for e in r.events
                       if e.startswith("mode_switch"))
        assert switches == res.diagnostics.get("mode_switches", 0)


class TestTelemetrySerialization:
    def test_records_round_trip_json(self):
        import json
        res = _solve(scheme=TwoStageScheme(big_step=12))
        docs = [r.to_dict() for r in res.telemetry]
        back = [CycleRecord.from_dict(d) for d in json.loads(json.dumps(docs))]
        assert back == res.telemetry

    def test_telemetry_is_plain_list_of_floats(self):
        res = _solve(scheme=TwoStageScheme(big_step=12))
        for r in res.telemetry:
            for v in (r.residual_norm, r.residual_gap, r.basis_condition):
                assert v is None or isinstance(v, float)
            assert not isinstance(r.iterations, np.integer)
