"""repro-trace CLI: summarize / diff / export via main(argv)."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import export_chrome_trace, load_spans
from repro.parallel.tracing import Tracer


@pytest.fixture()
def twin_trace(tmp_path):
    """Chrome trace holding both streams (an mp-backend style export)."""
    modeled = Tracer()
    measured = Tracer(stream="measured")
    for t in (modeled, measured):
        t.enable_spans()
    with modeled.phase("spmv"):
        modeled.add("halo", 1.0, payload_bytes=64.0)
    with modeled.phase("ortho"):
        modeled.add("allreduce", 1.0, payload_bytes=8.0)
    with measured.phase("spmv"):
        measured.add("halo", 3.0, payload_bytes=64.0)
        measured.record_span("halo", 0.0, 1.5, rank=0)
    with measured.phase("ortho"):
        measured.add("allreduce", 1.0, payload_bytes=8.0)
    path = tmp_path / "twin.json"
    export_chrome_trace(path, modeled, measured)
    return path


class TestSummarize:
    def test_reports_both_streams(self, twin_trace, capsys):
        assert main(["summarize", str(twin_trace)]) == 0
        out = capsys.readouterr().out
        assert "[modeled]" in out and "[measured]" in out
        assert "1 rank lanes" in out
        assert "72 collective payload bytes" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}\n')
        assert main(["summarize", str(path)]) == 1
        assert "no spans" in capsys.readouterr().out


class TestSummarizeJson:
    def test_machine_readable_document(self, twin_trace, capsys):
        assert main(["summarize", str(twin_trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["streams"]) == {"modeled", "measured"}
        mea = doc["streams"]["measured"]
        assert mea["rank_lanes"] == 1
        assert mea["collective_payload_bytes"] == 72.0
        assert mea["totals"]["by_kernel"]["spmv/halo"] == 3.0
        assert mea["totals"]["payload_bytes"]["spmv/halo"] == 64.0
        assert doc["n_spans"] == sum(s["spans"]
                                     for s in doc["streams"].values())

    def test_empty_trace_still_emits_json_but_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}\n')
        assert main(["summarize", str(path), "--json"]) == 1
        assert json.loads(capsys.readouterr().out) == {"n_spans": 0,
                                                       "streams": {}}


class TestMetrics:
    def test_replay_modeled_stream(self, twin_trace, capsys):
        assert main(["metrics", str(twin_trace)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["machine"] == "summit"
        assert doc["ranks"] == 1  # one rank lane in the fixture
        assert doc["kernels"]["spmv/halo"]["seconds"] == 1.0
        assert doc["net_bytes"]["allreduce"] == 8.0

    def test_prometheus_flag(self, twin_trace, capsys):
        assert main(["metrics", str(twin_trace), "--prometheus",
                     "--stream", "measured", "--ranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_kernel_seconds_total counter" in out
        assert 'repro_net_bytes_total{kind="halo"} 64.0' in out

    def test_missing_stream_fails(self, tmp_path, capsys):
        t = Tracer()  # modeled-only trace
        t.enable_spans()
        t.add("dot", 1.0)
        path = export_chrome_trace(tmp_path / "m.json", t)
        assert main(["metrics", str(path), "--stream", "measured"]) == 1
        assert "no driver kernel spans" in capsys.readouterr().err


class TestCalibrate:
    def test_human_table(self, twin_trace, capsys):
        assert main(["calibrate", str(twin_trace), "--ranks", "4"]) == 0
        out = capsys.readouterr().out
        assert "calibrated 'summit'" in out
        assert "net_bandwidth_inter" in out and "->" in out

    def test_json_fit_document(self, twin_trace, capsys):
        assert main(["calibrate", str(twin_trace), "--ranks", "4",
                     "--machine", "generic_cpu", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["base_machine"] == "generic_cpu"
        assert doc["ranks"] == 4
        assert doc["n_net_pairs"] + doc["n_kernel_pairs"] > 0
        assert set(doc["constants"]) >= {"net_latency_intra", "peak_flops"}


class TestDiff:
    def test_self_diff_twin_file(self, twin_trace, capsys):
        assert main(["diff", str(twin_trace)]) == 0
        out = capsys.readouterr().out
        assert "max share drift" in out and "spmv" in out

    def test_self_diff_needs_both_streams(self, tmp_path, capsys):
        t = Tracer()
        t.enable_spans()
        t.add("dot", 1.0)
        path = export_chrome_trace(tmp_path / "single.json", t)
        assert main(["diff", str(path)]) == 1
        assert "need both" in capsys.readouterr().out

    def test_two_single_stream_files(self, tmp_path, capsys):
        a, b = Tracer(), Tracer(stream="measured")
        for t in (a, b):
            t.enable_spans()
            t.add("dot", 1.0)
        pa = export_chrome_trace(tmp_path / "a.json", a)
        pb = export_chrome_trace(tmp_path / "b.json", b)
        assert main(["diff", str(pa), str(pb)]) == 0
        assert "max share drift" in capsys.readouterr().out


class TestExport:
    def test_chrome_to_jsonl_and_back(self, twin_trace, tmp_path, capsys):
        jsonl = tmp_path / "out.jsonl"
        assert main(["export", str(twin_trace), str(jsonl)]) == 0
        assert "jsonl" in capsys.readouterr().out
        assert len(load_spans(jsonl)) == len(load_spans(twin_trace))

        chrome = tmp_path / "back.json"
        assert main(["export", str(jsonl), str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        assert "traceEvents" in doc

    def test_format_flag_overrides_extension(self, twin_trace, tmp_path):
        dst = tmp_path / "forced.json"
        assert main(["export", str(twin_trace), str(dst),
                     "--format", "jsonl"]) == 0
        # JSONL content despite the .json extension (sniffed on read)
        first = dst.read_text().splitlines()[0]
        assert "traceEvents" not in first


def test_module_entrypoint_help():
    import subprocess
    import sys
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.cli", "--help"],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "repro-trace" in proc.stdout
