"""repro-trace CLI: summarize / diff / export via main(argv)."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import export_chrome_trace, load_spans
from repro.parallel.tracing import Tracer


@pytest.fixture()
def twin_trace(tmp_path):
    """Chrome trace holding both streams (an mp-backend style export)."""
    modeled = Tracer()
    measured = Tracer(stream="measured")
    for t in (modeled, measured):
        t.enable_spans()
    with modeled.phase("spmv"):
        modeled.add("halo", 1.0, payload_bytes=64.0)
    with modeled.phase("ortho"):
        modeled.add("allreduce", 1.0, payload_bytes=8.0)
    with measured.phase("spmv"):
        measured.add("halo", 3.0, payload_bytes=64.0)
        measured.record_span("halo", 0.0, 1.5, rank=0)
    with measured.phase("ortho"):
        measured.add("allreduce", 1.0, payload_bytes=8.0)
    path = tmp_path / "twin.json"
    export_chrome_trace(path, modeled, measured)
    return path


class TestSummarize:
    def test_reports_both_streams(self, twin_trace, capsys):
        assert main(["summarize", str(twin_trace)]) == 0
        out = capsys.readouterr().out
        assert "[modeled]" in out and "[measured]" in out
        assert "1 rank lanes" in out
        assert "72 collective payload bytes" in out

    def test_empty_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text('{"traceEvents": []}\n')
        assert main(["summarize", str(path)]) == 1
        assert "no spans" in capsys.readouterr().out


class TestDiff:
    def test_self_diff_twin_file(self, twin_trace, capsys):
        assert main(["diff", str(twin_trace)]) == 0
        out = capsys.readouterr().out
        assert "max share drift" in out and "spmv" in out

    def test_self_diff_needs_both_streams(self, tmp_path, capsys):
        t = Tracer()
        t.enable_spans()
        t.add("dot", 1.0)
        path = export_chrome_trace(tmp_path / "single.json", t)
        assert main(["diff", str(path)]) == 1
        assert "need both" in capsys.readouterr().out

    def test_two_single_stream_files(self, tmp_path, capsys):
        a, b = Tracer(), Tracer(stream="measured")
        for t in (a, b):
            t.enable_spans()
            t.add("dot", 1.0)
        pa = export_chrome_trace(tmp_path / "a.json", a)
        pb = export_chrome_trace(tmp_path / "b.json", b)
        assert main(["diff", str(pa), str(pb)]) == 0
        assert "max share drift" in capsys.readouterr().out


class TestExport:
    def test_chrome_to_jsonl_and_back(self, twin_trace, tmp_path, capsys):
        jsonl = tmp_path / "out.jsonl"
        assert main(["export", str(twin_trace), str(jsonl)]) == 0
        assert "jsonl" in capsys.readouterr().out
        assert len(load_spans(jsonl)) == len(load_spans(twin_trace))

        chrome = tmp_path / "back.json"
        assert main(["export", str(jsonl), str(chrome)]) == 0
        doc = json.loads(chrome.read_text())
        assert "traceEvents" in doc

    def test_format_flag_overrides_extension(self, twin_trace, tmp_path):
        dst = tmp_path / "forced.json"
        assert main(["export", str(twin_trace), str(dst),
                     "--format", "jsonl"]) == 0
        # JSONL content despite the .json extension (sniffed on read)
        first = dst.read_text().splitlines()[0]
        assert "traceEvents" not in first


def test_module_entrypoint_help():
    import subprocess
    import sys
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.cli", "--help"],
        capture_output=True, text=True)
    assert proc.returncode == 0
    assert "repro-trace" in proc.stdout
