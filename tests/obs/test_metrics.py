"""MetricsRegistry: charge-stream feed, derived gauges, Prometheus text."""

from __future__ import annotations

import json
import math

import numpy as np

from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.machine import generic_cpu
from repro.parallel.tracing import Tracer


def _registry(ranks=4):
    return MetricsRegistry(generic_cpu(), ranks)


class TestFeed:
    def test_observe_accumulates_seconds_and_calls(self):
        reg = _registry()
        reg.observe("ortho", "dot", 0.5, 2, None, False)
        reg.observe("ortho", "dot", 0.25, 1, None, False)
        assert reg.seconds[("ortho", "dot")] == 0.75
        assert reg.calls[("ortho", "dot")] == 3

    def test_pending_op_shapes_drain_into_next_charge(self):
        """CostModel.record_op shapes land on the (phase, kernel) of the
        charge that follows them — exactly where the seconds land."""
        reg = _registry()
        reg.record_op(100.0, 800.0)
        reg.record_op(50.0, 400.0)
        reg.observe("ortho", "dot", 0.5, 1, None, False)
        assert reg.flops[("ortho", "dot")] == 150.0
        assert reg.mem_bytes[("ortho", "dot")] == 1200.0
        assert reg._pending == []
        # the next charge gets nothing carried over
        reg.observe("ortho", "update", 0.5, 1, None, False)
        assert ("ortho", "update") not in reg.flops

    def test_collective_payload_feeds_net_bytes_only(self):
        reg = _registry()
        reg.observe("ortho", "allreduce", 0.1, 1, 64.0, False)
        reg.observe("spmv", "halo", 0.1, 1, 256.0, False)
        reg.observe("ortho", "dot", 0.1, 1, 999.0, False)  # not a collective
        assert reg.net_bytes["allreduce"] == 64.0
        assert reg.net_bytes["halo"] == 256.0
        assert reg.net_bytes["bcast"] == 0.0
        assert ("ortho", "dot") not in reg.flops

    def test_driver_side_seconds_tracked_separately(self):
        reg = _registry()
        reg.observe("ortho", "dot", 0.5, 1, None, True)
        reg.observe("ortho", "dot", 0.25, 1, None, False)
        assert reg.driver_seconds[("ortho", "dot")] == 0.5
        assert reg.seconds[("ortho", "dot")] == 0.75

    def test_scale_pending_fans_shapes_out_by_ranks(self):
        """charge_uniform sites cost ONE rank's shard; the rank fan-out
        multiplies the queued shapes before they drain."""
        reg = _registry()
        reg.record_op(100.0, 800.0)
        reg.scale_pending(4.0)
        reg.observe("ortho", "dot", 0.5, 1, None, False)
        assert reg.flops[("ortho", "dot")] == 400.0
        assert reg.mem_bytes[("ortho", "dot")] == 3200.0
        # no-op on an empty queue and at factor 1.0
        reg.scale_pending(4.0)
        reg.record_op(10.0, 80.0)
        reg.scale_pending(1.0)
        reg.observe("ortho", "update", 0.5, 1, None, False)
        assert reg.flops[("ortho", "update")] == 10.0

    def test_tracer_attach_feeds_registry_with_phase(self):
        reg = _registry()
        t = Tracer()
        t.attach_metrics(reg)
        with t.phase("ortho"):
            t.add("allreduce", 0.1, payload_bytes=32.0)
        t.detach_metrics()
        t.add("dot", 1.0)  # after detach: not observed
        assert reg.seconds == {("ortho", "allreduce"): 0.1}
        assert reg.net_bytes["allreduce"] == 32.0


class TestSnapshot:
    def test_derived_gauges(self):
        reg = _registry(ranks=4)
        m = reg.machine
        reg.record_op(1.0e9, 2.0e8)
        reg.observe("ortho", "dot", 0.5, 1, None, False)
        row = reg.snapshot().kernels[("ortho", "dot")]
        assert math.isclose(row["arithmetic_intensity"], 5.0)
        assert math.isclose(row["flop_utilization"],
                            1.0e9 / (0.5 * 4 * m.peak_flops))
        assert math.isclose(row["mem_bw_utilization"],
                            2.0e8 / (0.5 * 4 * m.mem_bandwidth))

    def test_totals_cover_all_kernels(self):
        reg = _registry()
        reg.record_op(100.0, 50.0)
        reg.observe("ortho", "dot", 0.5, 1, None, False)
        reg.observe("spmv", "halo", 0.1, 1, 64.0, False)
        snap = reg.snapshot()
        assert snap.totals["seconds"] == 0.6
        assert snap.totals["flops"] == 100.0
        assert snap.totals["net_bytes"] == 64.0
        assert math.isclose(snap.totals["arithmetic_intensity"], 2.0)

    def test_zero_byte_kernel_has_no_intensity_gauge(self):
        reg = _registry()
        reg.observe("ortho", "allreduce", 0.1, 1, 8.0, False)
        row = reg.snapshot().kernels[("ortho", "allreduce")]
        assert "arithmetic_intensity" not in row
        assert "flop_utilization" in row  # seconds > 0

    def test_to_dict_flattens_keys_and_is_json_safe(self):
        reg = _registry()
        reg.record_op(10.0, 5.0)
        reg.observe("ortho", "dot", 0.5, 2, None, True)
        doc = reg.snapshot().to_dict()
        json.dumps(doc)
        assert doc["machine"] == reg.machine.name
        assert doc["kernels"]["ortho/dot"]["calls"] == 2
        assert doc["kernels"]["ortho/dot"]["driver_seconds"] == 0.5

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = _registry()
        reg.observe("other", "dot", DURATION_BUCKETS[0] / 2, 1, None, False)
        reg.observe("other", "dot", DURATION_BUCKETS[3], 1, None, False)
        reg.observe("other", "dot", DURATION_BUCKETS[-1] * 10, 1, None, False)
        h = reg.snapshot().histograms["dot"]
        les = [le for le, _ in h["buckets"]]
        counts = [n for _, n in h["buckets"]]
        assert les[-1] == float("inf")
        assert counts == sorted(counts)  # cumulative
        assert counts[0] == 1 and counts[3] == 2 and counts[-1] == 3
        assert h["count"] == 3

    def test_snapshot_is_repeatable(self):
        reg = _registry()
        reg.observe("ortho", "dot", 0.5, 1, None, False)
        assert reg.snapshot().to_dict() == reg.snapshot().to_dict()


class TestPrometheus:
    def _snap(self):
        reg = _registry()
        reg.record_op(1.0e6, 1.0e5)
        reg.observe("ortho", "dot", 0.5, 2, None, True)
        reg.observe("ortho", "allreduce", 0.1, 1, 64.0, False)
        return reg.snapshot()

    def test_exposition_format(self):
        text = self._snap().to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_kernel_seconds_total counter" in text
        assert ('repro_kernel_seconds_total{phase="ortho",kernel="dot"} 0.5'
                in text)
        assert 'repro_net_bytes_total{kind="allreduce"} 64.0' in text
        assert "# TYPE repro_arithmetic_intensity gauge" in text
        assert ('repro_kernel_driver_seconds_total'
                '{phase="ortho",kernel="dot"} 0.5') in text

    def test_totals_row_and_histogram(self):
        text = self._snap().to_prometheus()
        assert 'repro_roofline_flop_utilization{phase="all",kernel="all"}' \
            in text
        assert "# TYPE repro_kernel_duration_seconds histogram" in text
        assert 'repro_kernel_duration_seconds_bucket{kernel="dot",le="+Inf"}' \
            in text
        # one charge (count=2 calls) is one histogram sample
        assert 'repro_kernel_duration_seconds_count{kernel="dot"} 1' in text


class TestSimulationIntegration:
    def _solve(self, **sim_kw):
        sim = Simulation(laplace2d(12), ranks=4, machine=generic_cpu(),
                         **sim_kw)
        res = sstep_gmres(sim, np.ones(sim.n), s=3, restart=9, tol=1.0e-8,
                          maxiter=100, scheme=TwoStageScheme(9))
        return sim, res

    def test_disabled_by_default(self):
        sim, res = self._solve()
        assert sim.metrics is None
        assert res.metrics == {}
        assert sim.metrics_doc() == {}

    def test_enabled_snapshot_rides_on_result(self):
        sim, res = self._solve(metrics=True)
        assert res.metrics["machine"] == sim.machine.name
        assert res.metrics["ranks"] == 4
        assert res.metrics["totals"]["flops"] > 0.0
        assert res.metrics["net_bytes"]["allreduce"] > 0.0
        # seconds in the registry match the tracer's accumulators
        assert math.isclose(res.metrics["totals"]["seconds"],
                            sum(sim.tracer.by_phase.values()))

    def test_enable_metrics_is_idempotent(self):
        sim, _ = self._solve(metrics=True)
        reg = sim.metrics
        sim.enable_metrics()
        assert sim.metrics is reg

    def test_prometheus_from_live_solve(self):
        sim, _ = self._solve(metrics=True)
        text = sim.metrics.snapshot().to_prometheus()
        assert "repro_kernel_flops_total" in text
        assert 'kind="halo"' in text

    def test_counters_are_engine_invariant(self):
        """Loop costs every rank's shard; batched costs one uniform
        shard and fans it out by the rank count — the aggregate flop,
        memory-byte, and wire-byte counters must agree exactly."""
        totals = {}
        for engine in ("loop", "batched"):
            sim, res = self._solve(metrics=True, engine=engine)
            totals[engine] = res.metrics["totals"]
        for field in ("flops", "mem_bytes", "net_bytes", "seconds"):
            assert totals["loop"][field] == totals["batched"][field], field
