"""Trace exporters: Chrome trace-event document, JSONL, round-trips."""

from __future__ import annotations

import json

from repro.obs.export import (STREAM_PIDS, chrome_trace_doc,
                              export_chrome_trace, export_jsonl, load_spans)
from repro.parallel.tracing import SpanEvent, Tracer


def _twin_tracers():
    """Modeled + measured tracer pair with driver and rank-lane spans."""
    modeled = Tracer()
    measured = Tracer(stream="measured")
    measured.share_phase_stack(modeled)
    for t in (modeled, measured):
        t.enable_spans()
    measured.set_cycle(0)
    with measured.phase("spmv"):
        modeled.add("halo", 0.25, payload_bytes=128.0)
        measured.add("halo", 0.5, payload_bytes=128.0)
        measured.record_span("halo", 0.0, 0.2, rank=0)
        measured.record_span("spmv_local", 0.2, 0.5, rank=1)
    with measured.phase("ortho"):
        modeled.add("allreduce", 0.1, count=2, payload_bytes=8.0)
        measured.add("allreduce", 0.3, count=2, payload_bytes=8.0)
    return modeled, measured


class TestChromeDoc:
    def test_streams_become_processes_ranks_become_lanes(self):
        modeled, measured = _twin_tracers()
        doc = chrome_trace_doc(modeled, measured)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {STREAM_PIDS["modeled"],
                                          STREAM_PIDS["measured"]}
        measured_tids = {e["tid"] for e in xs
                         if e["pid"] == STREAM_PIDS["measured"]}
        assert measured_tids == {0, 1, 2}  # driver + rank 0 + rank 1
        # modeled twin has no workers: driver lane only
        assert {e["tid"] for e in xs
                if e["pid"] == STREAM_PIDS["modeled"]} == {0}

    def test_metadata_names_processes_and_lanes(self):
        modeled, measured = _twin_tracers()
        doc = chrome_trace_doc(modeled, measured)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert doc["traceEvents"][:len(meta)] == meta  # metadata first
        names = {(e["name"], e["pid"], e["tid"]): e["args"]["name"]
                 for e in meta}
        assert names[("process_name", 1, 0)] == "modeled"
        assert names[("process_name", 2, 0)] == "measured"
        assert names[("thread_name", 2, 0)] == "driver"
        assert names[("thread_name", 2, 2)] == "rank 1"

    def test_complete_events_microseconds_and_args(self):
        modeled, _ = _twin_tracers()
        doc = chrome_trace_doc(modeled)
        (halo,) = [e for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["name"] == "halo"]
        assert halo["ts"] == 0.0 and halo["dur"] == 0.25e6
        assert halo["args"]["phase"] == "spmv"
        assert halo["args"]["payload_bytes"] == 128.0
        assert halo["args"]["cycle"] == 0
        (ar,) = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "allreduce"]
        assert ar["args"]["count"] == 2

    def test_doc_is_json_safe(self):
        modeled, measured = _twin_tracers()
        json.dumps(chrome_trace_doc(modeled, measured))


class TestRoundTrips:
    def test_chrome_round_trip(self, tmp_path):
        modeled, measured = _twin_tracers()
        path = export_chrome_trace(tmp_path / "trace.json", modeled, measured)
        spans = load_spans(path)
        originals = modeled.spans + measured.spans
        assert len(spans) == len(originals)
        by_key = {(s.stream, s.rank, s.t0, s.name): s for s in spans}
        for orig in originals:
            got = by_key[(orig.stream, orig.rank, orig.t0, orig.name)]
            assert (got.phase, got.cat, got.cycle,
                    got.payload_bytes, got.count) == (
                orig.phase, orig.cat, orig.cycle,
                orig.payload_bytes, orig.count)
            assert abs(got.t1 - orig.t1) < 1e-12

    def test_jsonl_round_trip_exact(self, tmp_path):
        modeled, measured = _twin_tracers()
        path = export_jsonl(tmp_path / "trace.jsonl", modeled, measured)
        spans = load_spans(path)
        # JSONL is lossless; the exporter sorts by (t0, t1)
        assert sorted(spans, key=lambda s: (s.t0, s.t1, s.name)) == sorted(
            modeled.spans + measured.spans,
            key=lambda s: (s.t0, s.t1, s.name))

    def test_load_sniffs_format_by_content_not_extension(self, tmp_path):
        modeled, _ = _twin_tracers()
        chrome_named_jsonl = tmp_path / "trace.json"
        export_jsonl(chrome_named_jsonl, modeled)
        assert len(load_spans(chrome_named_jsonl)) == len(modeled.spans)

    def test_span_sources_accept_iterables(self):
        spans = [SpanEvent("dot", 0.0, 1.0, "other", "modeled")]
        doc = chrome_trace_doc(spans, ())
        assert sum(e["ph"] == "X" for e in doc["traceEvents"]) == 1

    def test_driver_side_round_trips_both_formats(self, tmp_path):
        spans = [SpanEvent("dot", 0.0, 1.0, "ortho", "modeled",
                           driver_side=True),
                 SpanEvent("allreduce", 1.0, 2.0, "ortho", "modeled")]
        chrome = export_chrome_trace(tmp_path / "d.json", spans)
        jsonl = export_jsonl(tmp_path / "d.jsonl", spans)
        for path in (chrome, jsonl):
            loaded = sorted(load_spans(path), key=lambda s: s.t0)
            assert [s.driver_side for s in loaded] == [True, False]
        # the flag only appears in args when set
        doc = json.loads(chrome.read_text())
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert xs["dot"]["args"]["driver_side"] is True
        assert "driver_side" not in xs["allreduce"]["args"]
