"""SolveTelemetry / CycleRecord: builder semantics and diagnostics parity."""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import CycleRecord, SolveTelemetry


class TestBuilder:
    def test_cycle_lifecycle(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0, mode="classical")
        tel.observe("basis_condition", 10.0)
        tel.observe("basis_condition", 3.0)   # running max, not last-wins
        tel.note_residual(1e-3)
        rec = tel.end_cycle(30)
        assert rec == tel.last
        assert (rec.cycle, rec.iterations, rec.mode) == (0, 30, "classical")
        assert rec.basis_condition == 10.0
        assert rec.residual_norm == 1e-3
        assert rec.residual_gap is None and rec.embedding_distortion is None

    def test_observe_outside_cycle_is_noop(self):
        tel = SolveTelemetry()
        tel.observe("basis_condition", 5.0)
        tel.note_residual(1.0)
        tel.event("breakdown")
        assert tel.end_cycle(0) is None
        assert len(tel) == 0

    def test_observe_unknown_field_ignored(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0)
        tel.observe("not_a_field", 1.0)
        rec = tel.end_cycle(1)
        assert not hasattr(rec, "not_a_field")

    def test_begin_closes_pending_defensively(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0)
        tel.begin_cycle(1)
        tel.end_cycle(10)
        assert [r.cycle for r in tel] == [0, 1]

    def test_events_attach_to_pending_cycle_only(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0)
        tel.event("breakdown")
        tel.end_cycle(5)
        tel.begin_cycle(1)
        tel.end_cycle(10)
        assert tel.records[0].events == ("breakdown",)
        assert tel.records[1].events == ()

    def test_event_last_lands_on_completed_cycle(self):
        """Restart-boundary decisions tag the cycle whose monitors
        triggered them, even if a new cycle is already open."""
        tel = SolveTelemetry()
        tel.event_last("mode_switch:sketched")   # no records yet: no-op
        tel.begin_cycle(0)
        tel.end_cycle(5)
        tel.begin_cycle(1)
        tel.event_last("mode_switch:sketched")
        assert tel.records[0].events == ("mode_switch:sketched",)

    def test_observe_gap_max_merges_onto_last_frozen_record(self):
        tel = SolveTelemetry()
        tel.observe_gap(9.0)                     # no records yet: no-op
        tel.begin_cycle(0)
        tel.end_cycle(5)
        tel.observe_gap(0.5)
        tel.observe_gap(0.25)
        assert tel.records[0].residual_gap == 0.5


class TestReaders:
    def _tel(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0)
        tel.observe("basis_condition", 2.0)
        tel.event("mode_switch:sketched")
        tel.end_cycle(10)
        tel.begin_cycle(1)
        tel.observe("basis_condition", 8.0)
        tel.event("mode_switch:classical")
        tel.event("resketch_requested")
        tel.end_cycle(20)
        return tel

    def test_max_of_skips_none(self):
        tel = self._tel()
        assert tel.max_of("basis_condition") == 8.0
        assert tel.max_of("residual_gap", 0.0) == 0.0

    def test_max_of_includes_pending(self):
        tel = self._tel()
        tel.begin_cycle(2)
        tel.observe("basis_condition", 99.0)
        assert tel.max_of("basis_condition") == 99.0

    def test_count_event_prefix_and_exact(self):
        tel = self._tel()
        assert tel.count_event("mode_switch") == 2
        assert tel.count_event("mode_switch:sketched") == 1
        assert tel.count_event("resketch_requested") == 1
        tel.begin_cycle(2)
        tel.event("mode_switch:sketched")        # pending events count too
        assert tel.count_event("mode_switch") == 3

    def test_inf_observation_survives(self):
        tel = SolveTelemetry()
        tel.begin_cycle(0)
        tel.observe("embedding_distortion", np.inf)
        tel.end_cycle(1)
        assert tel.max_of("embedding_distortion") == np.inf


class TestRecordSerialization:
    def test_round_trip(self):
        rec = CycleRecord(cycle=3, iterations=90, mode="sketched",
                          residual_norm=1e-6, residual_gap=0.1,
                          basis_condition=12.0, embedding_distortion=0.4,
                          events=("breakdown", "mode_switch:classical"))
        assert CycleRecord.from_dict(rec.to_dict()) == rec

    def test_to_dict_is_json_safe(self):
        import json
        rec = CycleRecord(cycle=0, iterations=1)
        doc = rec.to_dict()
        assert isinstance(doc["events"], list)
        json.dumps(doc)
