"""Drift monitor: span pairing, share drift, gating."""

from __future__ import annotations

import math

from repro.obs.drift import (DEFAULT_DRIFT_BOUND, DriftReport, drift_report,
                             pair_kernel_spans)
from repro.parallel.tracing import SpanEvent, Tracer


def _span(name, t0, t1, phase="other", stream="modeled", cat="kernel",
          rank=None):
    return SpanEvent(name, t0, t1, phase, stream, cat=cat, rank=rank)


class TestPairing:
    def test_in_order_pairing(self):
        mod = [_span("halo", 0.0, 1.0, "spmv"), _span("dot", 1.0, 2.0, "ortho")]
        mea = [_span("halo", 0.0, 3.0, "spmv", "measured"),
               _span("dot", 3.0, 4.0, "ortho", "measured")]
        pairs, mismatches = pair_kernel_spans(mod, mea)
        assert mismatches == 0
        assert [(m.name, x.name) for m, x in pairs] == [("halo", "halo"),
                                                        ("dot", "dot")]

    def test_sequence_disagreement_counts_mismatch(self):
        mod = [_span("halo", 0.0, 1.0, "spmv"), _span("dot", 1.0, 2.0, "ortho")]
        mea = [_span("dot", 0.0, 1.0, "ortho", "measured"),
               _span("halo", 1.0, 2.0, "spmv", "measured")]
        pairs, mismatches = pair_kernel_spans(mod, mea)
        assert pairs == [] and mismatches == 2

    def test_length_difference_counts_mismatch(self):
        mod = [_span("dot", 0.0, 1.0)]
        pairs, mismatches = pair_kernel_spans(mod, [])
        assert pairs == [] and mismatches == 1

    def test_phase_envelopes_and_rank_lanes_not_paired(self):
        mod = [_span("spmv", 0.0, 1.0, "spmv", cat="phase"),
               _span("halo", 0.0, 0.5, "spmv", rank=2)]
        pairs, mismatches = pair_kernel_spans(mod, [])
        assert pairs == [] and mismatches == 0


class TestDriftReport:
    def _tracers(self):
        """Model says 50/50 spmv/ortho; measurement says 80/20 at 10x."""
        modeled = Tracer()
        measured = Tracer(stream="measured")
        for t in (modeled, measured):
            t.enable_spans()
        with modeled.phase("spmv"):
            modeled.add("halo", 1.0)
        with modeled.phase("ortho"):
            modeled.add("dot", 1.0)
        with measured.phase("spmv"):
            measured.add("halo", 16.0)
        with measured.phase("ortho"):
            measured.add("dot", 4.0)
        return modeled, measured

    def test_share_drift_and_scale(self):
        modeled, measured = self._tracers()
        rep = drift_report(modeled, measured)
        assert rep.scale == 10.0
        spmv = rep.phase_drift("spmv")
        assert spmv.modeled_share == 0.5 and spmv.measured_share == 0.8
        assert math.isclose(spmv.share_drift, 0.3)
        assert math.isclose(rep.max_share_drift, 0.3)
        # rel error after removing the 10x scale: |16 - 10| / 10
        assert math.isclose(spmv.rel_error, 0.6)
        assert rep.within(DEFAULT_DRIFT_BOUND)
        assert not rep.within(0.25)

    def test_spans_pulled_from_tracers_and_attributed(self):
        modeled, measured = self._tracers()
        rep = drift_report(modeled, measured)
        assert rep.spans_paired == 2 and rep.span_mismatches == 0
        assert rep.phase_drift("spmv").spans_paired == 1

    def test_totals_inputs_without_spans(self):
        modeled, measured = self._tracers()
        rep = drift_report(modeled.snapshot(), measured.snapshot())
        assert rep.spans_paired == 0
        assert math.isclose(rep.max_share_drift, 0.3)

    def test_phase_only_in_measurement_is_infinite_rel_error(self):
        modeled, measured = self._tracers()
        with measured.phase("precond"):
            measured.add("host", 1.0)
        rep = drift_report(modeled, measured)
        assert rep.phase_drift("precond").modeled_seconds == 0.0
        assert rep.phase_drift("precond").rel_error == float("inf")

    def test_empty_report_gates_clean(self):
        rep = DriftReport()
        assert rep.max_share_drift == 0.0 and rep.within()
        assert math.isnan(drift_report(Tracer(), Tracer()).scale)

    def test_to_dict_and_summary(self):
        import json
        modeled, measured = self._tracers()
        rep = drift_report(modeled, measured)
        doc = rep.to_dict()
        json.dumps(doc)
        assert doc["max_share_drift"] == rep.max_share_drift
        assert len(doc["phases"]) == 2
        text = rep.summary()
        assert "spmv" in text and "max share drift" in text


class TestDriftEdgeCases:
    """Degenerate inputs the monitor must survive, not just the happy
    mp-backend twin: span-less tracers, streams that agree on nothing,
    and single-phase solves where share drift is vacuous."""

    def _accumulate(self, pairs, spans=False):
        """Tracer with given (phase, kernel, seconds) charges."""
        t = Tracer()
        if spans:
            t.enable_spans()
        for phase, kernel, seconds in pairs:
            with t.phase(phase):
                t.add(kernel, seconds)
        return t

    def test_empty_span_streams_still_report_totals_drift(self):
        """Accumulators without spans (the default) must yield a full
        share-drift report with zero pairing, not an error."""
        modeled = self._accumulate([("spmv", "halo", 1.0),
                                    ("ortho", "dot", 3.0)])
        measured = self._accumulate([("spmv", "halo", 2.0),
                                     ("ortho", "dot", 2.0)])
        rep = drift_report(modeled, measured)
        assert rep.spans_paired == 0 and rep.span_mismatches == 0
        assert math.isclose(rep.max_share_drift, 0.25)
        assert all(p.spans_paired == 0 for p in rep.phases)

    def test_explicit_empty_span_lists(self):
        modeled = self._accumulate([("spmv", "halo", 1.0)], spans=True)
        measured = self._accumulate([("spmv", "halo", 2.0)], spans=True)
        rep = drift_report(modeled, measured,
                           modeled_spans=[], measured_spans=[])
        assert rep.spans_paired == 0 and rep.span_mismatches == 0

    def test_one_sided_span_stream_counts_every_span_mismatched(self):
        """Modeled spans with nothing to pair against: each is a
        mismatch, and no phase claims a pairing."""
        modeled = self._accumulate([("spmv", "halo", 1.0),
                                    ("ortho", "dot", 3.0)], spans=True)
        measured = self._accumulate([("spmv", "halo", 2.0),
                                     ("ortho", "dot", 2.0)])
        rep = drift_report(modeled, measured)
        assert rep.spans_paired == 0 and rep.span_mismatches == 2
        assert all(p.spans_paired == 0 for p in rep.phases)

    def test_fully_mismatched_streams(self):
        """Streams that disagree on every charge: zero pairs, every
        span counted, and the totals-level drift still gates."""
        modeled = self._accumulate([("spmv", "halo", 1.0),
                                    ("ortho", "dot", 1.0)], spans=True)
        measured = self._accumulate([("ortho", "dot", 2.0),
                                     ("spmv", "halo", 2.0)], spans=True)
        measured_spans = [
            SpanEvent(s.name, s.t0, s.t1, s.phase, "measured", cat=s.cat)
            for s in measured.spans]
        rep = drift_report(modeled, measured,
                           measured_spans=measured_spans)
        assert rep.spans_paired == 0
        assert rep.span_mismatches == 2
        assert rep.within(DEFAULT_DRIFT_BOUND)
        doc = rep.to_dict()
        assert doc["span_mismatches"] == 2

    def test_single_phase_traces_have_vacuous_share_drift(self):
        """With one phase on both sides the shares are 1.0 vs 1.0 —
        drift is exactly zero regardless of scale, and the scale factor
        absorbs the whole relative error."""
        modeled = self._accumulate([("spmv", "halo", 1.0)], spans=True)
        measured = self._accumulate([("spmv", "halo", 100.0)], spans=True)
        measured_spans = [
            SpanEvent(s.name, s.t0, s.t1, s.phase, "measured", cat=s.cat)
            for s in measured.spans]
        rep = drift_report(modeled, measured,
                           measured_spans=measured_spans)
        assert rep.scale == 100.0
        assert rep.max_share_drift == 0.0
        assert rep.within(1.0e-12)
        (phase,) = rep.phases
        assert phase.modeled_share == 1.0 and phase.measured_share == 1.0
        assert phase.rel_error == 0.0
        assert phase.spans_paired == 1

    def test_single_phase_one_sided_is_maximal_drift(self):
        """A phase the model never charged takes the whole measured
        share: drift 1.0, rel error infinite."""
        modeled = self._accumulate([("spmv", "halo", 1.0)])
        measured = self._accumulate([("precond", "host", 2.0)])
        rep = drift_report(modeled, measured)
        assert math.isclose(rep.max_share_drift, 1.0)
        assert rep.phase_drift("precond").rel_error == float("inf")
        assert not rep.within(DEFAULT_DRIFT_BOUND)
