"""LogGP calibration: synthetic-stream fits with known ground truth."""

from __future__ import annotations

import math

import pytest

from repro.obs.calibrate import (DEFAULT_RANKS, CalibrationFit, calibrate,
                                 fit_machine)
from repro.parallel.costmodel import CostModel
from repro.parallel.machine import generic_cpu
from repro.parallel.tracing import SpanEvent

RANKS = 4


def _twin(name, phase, modeled_s, measured_s, t0=0.0, *, payload=None,
          driver_side=False, overlapped=None):
    """One modeled/measured span pair for the same logical charge."""
    mod = SpanEvent(name, t0, t0 + modeled_s, phase, "modeled",
                    payload_bytes=payload, driver_side=driver_side,
                    overlapped_seconds=overlapped)
    mea = SpanEvent(name, t0, t0 + measured_s, phase, "measured",
                    payload_bytes=payload, driver_side=driver_side)
    return [mod, mea]


def _net_parts(cost, kind, payload, ranks=RANKS):
    """The exact (latency, wire) decomposition the fitter inverts."""
    m = cost.machine
    intra, inter = cost._tree_hops(ranks)
    syncs = 2.0 if kind == "allreduce" else 1.0
    lat = (syncs * m.device_sync_latency + intra * m.net_latency_intra
           + inter * m.net_latency_inter)
    wire = (intra * payload / m.net_bandwidth_intra
            + inter * payload / m.net_bandwidth_inter)
    return lat, wire


def _synthetic_net_stream(base, lam, beta, payloads):
    """Collective pairs whose measured time is lam*L + beta*W exactly."""
    cost = CostModel(base)
    spans = []
    t = 0.0
    for i, payload in enumerate(payloads):
        kind = "allreduce" if i % 2 == 0 else "bcast"
        lat, wire = _net_parts(cost, kind, payload)
        spans += _twin(kind, "ortho", lat + wire, lam * lat + beta * wire,
                       t, payload=payload)
        t += 1.0
    return spans


def _synthetic_kernel_stream(base, kappa, gamma, rates):
    """Local-kernel pairs with measured = kappa*fixed + gamma*rate."""
    spans = []
    t = 100.0
    for i, rate in enumerate(rates):
        name = "spmv_local" if i % 2 == 0 else "dot"
        fixed = base.kernel_latency
        if name == "spmv_local":
            fixed += base.spmv_fixed_overhead
        spans += _twin(name, "spmv", fixed + rate,
                       kappa * fixed + gamma * rate, t)
        t += 1.0
    return spans


class TestNetworkFit:
    def test_recovers_known_scales(self):
        base = generic_cpu()
        spans = _synthetic_net_stream(base, lam=3.0, beta=0.5,
                                      payloads=[8.0, 64.0, 1024.0, 65536.0])
        fit = calibrate(spans, base=base, ranks=RANKS)
        assert math.isclose(fit.lam_net, 3.0, rel_tol=1e-9)
        assert math.isclose(fit.beta_net, 0.5, rel_tol=1e-9)
        assert fit.n_net_pairs == 4 and fit.span_mismatches == 0

    def test_constants_rescaled_consistently(self):
        base = generic_cpu()
        spans = _synthetic_net_stream(base, lam=2.0, beta=4.0,
                                      payloads=[8.0, 512.0, 8192.0])
        m = calibrate(spans, base=base, ranks=RANKS).machine
        assert m.name == f"{base.name}-calibrated"
        assert math.isclose(m.net_latency_intra,
                            base.net_latency_intra * 2.0)
        assert math.isclose(m.device_sync_latency,
                            base.device_sync_latency * 2.0)
        # bandwidth DIVIDED by the wire scale: slower wire, lower bw
        assert math.isclose(m.net_bandwidth_inter,
                            base.net_bandwidth_inter / 4.0)

    def test_driver_side_collectives_excluded(self):
        """TSQR tree reductions run on the driver: they must count as
        excluded, not skew the latency estimate."""
        base = generic_cpu()
        spans = _synthetic_net_stream(base, lam=3.0, beta=0.5,
                                      payloads=[8.0, 64.0, 4096.0])
        # a driver-side allreduce whose measured time is wildly off
        spans += _twin("allreduce", "ortho", 1.0e-5, 17.0, 50.0,
                       payload=64.0, driver_side=True)
        fit = calibrate(spans, base=base, ranks=RANKS)
        assert fit.n_driver_excluded == 1
        assert fit.n_net_pairs == 3
        assert math.isclose(fit.lam_net, 3.0, rel_tol=1e-9)

    def test_overlapped_collectives_excluded(self):
        """A posted collective's span is the exposed remainder, not the
        full formula — it cannot feed the fit."""
        base = generic_cpu()
        spans = _synthetic_net_stream(base, lam=3.0, beta=0.5,
                                      payloads=[8.0, 64.0, 4096.0])
        spans += _twin("halo", "spmv", 1.0e-6, 12.0, 60.0,
                       payload=256.0, overlapped=5.0e-6)
        fit = calibrate(spans, base=base, ranks=RANKS)
        assert fit.n_net_pairs == 3
        assert math.isclose(fit.lam_net, 3.0, rel_tol=1e-9)


class TestKernelFit:
    def test_recovers_known_scales(self):
        base = generic_cpu()
        spans = _synthetic_kernel_stream(
            base, kappa=2.0, gamma=8.0,
            rates=[1.0e-6, 5.0e-6, 4.0e-5, 3.0e-4])
        fit = calibrate(spans, base=base, ranks=RANKS)
        assert math.isclose(fit.kappa_kernel, 2.0, rel_tol=1e-6)
        assert math.isclose(fit.gamma_kernel, 8.0, rel_tol=1e-6)
        assert fit.n_kernel_pairs == 4

    def test_rate_scale_divides_machine_rates(self):
        base = generic_cpu()
        spans = _synthetic_kernel_stream(base, kappa=1.5, gamma=3.0,
                                         rates=[1.0e-6, 2.0e-5, 8.0e-4])
        m = calibrate(spans, base=base, ranks=RANKS).machine
        assert math.isclose(m.kernel_latency, base.kernel_latency * 1.5,
                            rel_tol=1e-4)
        assert math.isclose(m.spmv_fixed_overhead,
                            base.spmv_fixed_overhead * 1.5, rel_tol=1e-4)
        assert math.isclose(m.peak_flops, base.peak_flops / 3.0,
                            rel_tol=1e-4)
        assert math.isclose(m.host_flops, base.host_flops / 3.0,
                            rel_tol=1e-4)

    def test_host_kernel_is_pure_rate(self):
        """The host kernel has no launch latency: a host-only stream
        must leave kernel_latency untouched (scalar fallback aside)."""
        base = generic_cpu()
        spans = []
        for i, dur in enumerate([1.0e-5, 3.0e-5, 9.0e-5]):
            spans += _twin("host", "lsq", dur, 5.0 * dur, float(i))
        fit = calibrate(spans, base=base, ranks=RANKS)
        # one regressor identically zero -> scalar-ratio fallback
        assert math.isclose(fit.kappa_kernel, fit.gamma_kernel)
        assert math.isclose(fit.gamma_kernel, 5.0, rel_tol=1e-9)


class TestGuards:
    def test_empty_stream_returns_identity_fit(self):
        base = generic_cpu()
        fit = calibrate([], base=base)
        assert isinstance(fit, CalibrationFit)
        assert fit.machine is base
        assert (fit.lam_net, fit.beta_net) == (1.0, 1.0)
        assert (fit.kappa_kernel, fit.gamma_kernel) == (1.0, 1.0)
        assert fit.n_net_pairs == fit.n_kernel_pairs == 0

    def test_default_base_and_ranks(self):
        fit = calibrate([])
        assert fit.base.name == "summit"
        assert fit.ranks == DEFAULT_RANKS

    def test_ranks_inferred_from_rank_lanes(self):
        lanes = [SpanEvent("spmv_local", 0.0, 1.0, "spmv", "measured",
                           rank=r) for r in range(6)]
        fit = calibrate(lanes, base=generic_cpu())
        assert fit.ranks == 6

    def test_mismatched_streams_counted_not_fitted(self):
        base = generic_cpu()
        spans = [SpanEvent("dot", 0.0, 1.0, "ortho", "modeled"),
                 SpanEvent("halo", 0.0, 1.0, "spmv", "measured")]
        fit = calibrate(spans, base=base, ranks=RANKS)
        assert fit.span_mismatches == 1
        assert fit.machine is base

    def test_to_dict_carries_constants(self):
        import json
        base = generic_cpu()
        spans = _synthetic_net_stream(base, 2.0, 2.0, [8.0, 512.0])
        doc = calibrate(spans, base=base, ranks=RANKS).to_dict()
        json.dumps(doc)
        assert doc["base_machine"] == base.name
        assert set(doc["constants"]) == {
            "net_latency_intra", "net_latency_inter", "net_bandwidth_intra",
            "net_bandwidth_inter", "device_sync_latency", "kernel_latency",
            "spmv_fixed_overhead", "peak_flops", "mem_bandwidth",
            "host_flops"}

    def test_fit_machine_shorthand(self):
        base = generic_cpu()
        spans = _synthetic_net_stream(base, 2.0, 2.0, [8.0, 512.0])
        m = fit_machine(spans, base=base, ranks=RANKS)
        assert m.name.endswith("-calibrated")


class TestEndToEnd:
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_sim_twin_streams_calibrate_toward_measured_scale(self, ranks):
        """Synthesize a 'measured' stream by uniformly scaling a real
        sim run's modeled spans 10x: the fitted machine must predict
        ~10x the base machine's durations for those same charges."""
        import numpy as np

        from repro.krylov.simulation import Simulation
        from repro.krylov.sstep_gmres import sstep_gmres
        from repro.matrices.stencil import laplace2d
        from repro.ortho.two_stage import TwoStageScheme

        sim = Simulation(laplace2d(12), ranks=ranks, machine=generic_cpu(),
                         spans=True)
        sstep_gmres(sim, np.ones(sim.n), s=3, restart=9, tol=1.0e-8,
                    maxiter=60, scheme=TwoStageScheme(9))
        modeled = sim.tracer.spans
        measured = [
            SpanEvent(s.name, s.t0 * 10.0, s.t0 * 10.0 + s.duration * 10.0,
                      s.phase, "measured", cat=s.cat, count=s.count,
                      payload_bytes=s.payload_bytes, cycle=s.cycle,
                      rank=s.rank, driver_side=s.driver_side)
            for s in modeled if s.overlapped_seconds is None]
        kept = [s for s in modeled if s.overlapped_seconds is None]
        fit = calibrate(kept + measured, base=sim.machine, ranks=ranks)
        assert fit.n_kernel_pairs > 0
        assert math.isclose(fit.kappa_kernel, 10.0, rel_tol=1e-3)
        assert math.isclose(fit.gamma_kernel, 10.0, rel_tol=1e-3)
        if fit.n_net_pairs:
            assert math.isclose(fit.lam_net, 10.0, rel_tol=1e-3)
            assert math.isclose(fit.beta_net, 10.0, rel_tol=1e-3)
