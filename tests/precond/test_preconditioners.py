"""Preconditioners: Jacobi, coloring, Gauss-Seidel, block Jacobi, Chebyshev."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, NumericalError
from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu
from repro.precond.base import IdentityPreconditioner
from repro.precond.block_jacobi import BlockJacobiPreconditioner
from repro.precond.coloring import color_classes, greedy_coloring
from repro.precond.gauss_seidel import LocalGaussSeidel
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.polynomial import ChebyshevPreconditioner, gershgorin_interval


@pytest.fixture
def sim() -> Simulation:
    return Simulation(laplace2d(12), ranks=4, machine=generic_cpu())


class TestIdentity:
    def test_apply_copies(self, sim, rng):
        pc = IdentityPreconditioner().setup(sim.matrix)
        x = sim.vector_from(rng.standard_normal(sim.n))
        out = sim.zeros(1)
        pc.apply(x, out)
        np.testing.assert_array_equal(out.to_global(), x.to_global())


class TestJacobi:
    def test_apply_is_diag_scaling(self, sim, rng):
        pc = JacobiPreconditioner().setup(sim.matrix)
        x = rng.standard_normal(sim.n)
        out = sim.zeros(1)
        pc.apply(sim.vector_from(x), out)
        expected = x / sim.matrix.to_scipy().diagonal()
        np.testing.assert_allclose(out.to_global()[:, 0], expected,
                                   rtol=1e-14)

    def test_apply_before_setup_raises(self, sim):
        pc = JacobiPreconditioner()
        with pytest.raises(ConfigurationError):
            pc.apply(sim.zeros(1), sim.zeros(1))

    def test_zero_diagonal_rejected(self, comm4):
        from repro.distla.spmatrix import DistSparseMatrix
        from repro.parallel.partition import Partition
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        mat = DistSparseMatrix(a, Partition(2, 4,
                                            offsets=np.array([0, 1, 2, 2, 2])),
                               comm4)
        with pytest.raises(NumericalError):
            JacobiPreconditioner().setup(mat)


class TestColoring:
    def test_valid_coloring_on_laplacian(self):
        a = laplace2d(8)
        colors = greedy_coloring(a)
        coo = a.tocoo()
        for i, j in zip(coo.row, coo.col):
            if i != j:
                assert colors[i] != colors[j]

    def test_stencil_uses_two_colors(self):
        # 5-point stencil graph is bipartite
        colors = greedy_coloring(laplace2d(6))
        assert colors.max() == 1

    @given(st.integers(min_value=2, max_value=40),
           st.floats(min_value=0.05, max_value=0.4))
    @settings(max_examples=15, deadline=None)
    def test_valid_on_random_graphs(self, n, density):
        a = sp.random(n, n, density=density, random_state=n) + sp.eye(n)
        colors = greedy_coloring(a)
        pattern = (a + a.T).tocoo()
        for i, j in zip(pattern.row, pattern.col):
            if i != j:
                assert colors[i] != colors[j]

    def test_color_classes_partition(self):
        colors = greedy_coloring(laplace2d(5))
        classes = color_classes(colors)
        allidx = np.sort(np.concatenate(classes))
        np.testing.assert_array_equal(allidx, np.arange(25))


class TestLocalGaussSeidel:
    @pytest.mark.parametrize("ordering", ["natural", "multicolor"])
    def test_reduces_residual(self, ordering, rng):
        a = laplace2d(8).tocsr()
        x = rng.standard_normal(64)
        gs = LocalGaussSeidel(a, ordering=ordering, sweeps=1)
        z = gs.apply(x)
        assert np.linalg.norm(x - a @ z) < np.linalg.norm(x)

    @pytest.mark.parametrize("ordering", ["natural", "multicolor"])
    def test_more_sweeps_better(self, ordering, rng):
        a = laplace2d(8).tocsr()
        x = rng.standard_normal(64)
        r1 = np.linalg.norm(x - a @ LocalGaussSeidel(
            a, ordering=ordering, sweeps=1).apply(x))
        r4 = np.linalg.norm(x - a @ LocalGaussSeidel(
            a, ordering=ordering, sweeps=4).apply(x))
        assert r4 < r1

    def test_natural_first_sweep_is_triangular_solve(self, rng):
        a = laplace2d(6).tocsr()
        x = rng.standard_normal(36)
        gs = LocalGaussSeidel(a, ordering="natural", sweeps=1)
        z = gs.apply(x)
        lower = sp.tril(a).tocsr()
        expected = sp.linalg.spsolve_triangular(lower, x, lower=True)
        np.testing.assert_allclose(z, expected, rtol=1e-12)

    def test_validation(self):
        a = laplace2d(4).tocsr()
        with pytest.raises(ConfigurationError):
            LocalGaussSeidel(a, ordering="zigzag")
        with pytest.raises(ConfigurationError):
            LocalGaussSeidel(a, sweeps=0)
        gs = LocalGaussSeidel(a)
        with pytest.raises(ConfigurationError):
            gs.apply(np.ones(5))

    def test_zero_diagonal_rejected(self):
        a = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(NumericalError):
            LocalGaussSeidel(a)


class TestBlockJacobi:
    def test_apply_matches_per_block_gs(self, sim, rng):
        pc = BlockJacobiPreconditioner(ordering="natural").setup(sim.matrix)
        x = rng.standard_normal(sim.n)
        out = sim.zeros(1)
        pc.apply(sim.vector_from(x), out)
        # reference: per-rank triangular solve on the diagonal block
        part = sim.partition
        a = sim.matrix.to_scipy()
        expected = np.zeros(sim.n)
        for r in range(part.ranks):
            sl = part.local_slice(r)
            block = a[sl, sl].tocsr()
            lower = sp.tril(block).tocsr()
            expected[sl] = sp.linalg.spsolve_triangular(lower, x[sl],
                                                        lower=True)
        np.testing.assert_allclose(out.to_global()[:, 0], expected,
                                   rtol=1e-12)

    def test_multicolor_charges_precond_free_comm(self, sim, rng):
        pc = BlockJacobiPreconditioner().setup(sim.matrix)
        before = sim.tracer.sync_count()
        out = sim.zeros(1)
        pc.apply(sim.vector_from(rng.standard_normal(sim.n)), out)
        assert sim.tracer.sync_count() == before  # local => no reduces


class TestChebyshev:
    def test_gershgorin_bounds_spectrum(self):
        sim = Simulation(laplace2d(8), ranks=2, machine=generic_cpu())
        lo, hi = gershgorin_interval(sim.matrix)
        eigs = np.linalg.eigvalsh(sim.matrix.to_scipy().toarray())
        assert lo <= eigs.min() + 1e-10
        assert hi >= eigs.max() - 1e-10

    def test_approximates_inverse(self, sim, rng):
        pc = ChebyshevPreconditioner(degree=8).setup(sim.matrix)
        x = rng.standard_normal(sim.n)
        out = sim.zeros(1)
        pc.apply(sim.vector_from(x), out)
        a = sim.matrix.to_scipy()
        z = out.to_global()[:, 0]
        # preconditioned residual much smaller than unpreconditioned
        assert (np.linalg.norm(x - a @ z) < 0.7 * np.linalg.norm(x))

    def test_degree_validation(self):
        with pytest.raises(ConfigurationError):
            ChebyshevPreconditioner(degree=0)

    def test_bad_interval(self, sim):
        pc = ChebyshevPreconditioner(degree=2, interval=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            pc.setup(sim.matrix)
