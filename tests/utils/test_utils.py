"""Utility helpers: RNG constructions, validation, formatting, timers."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.formatting import format_seconds, format_si, render_table
from repro.utils.rng import (
    default_rng,
    haar_orthonormal,
    random_with_condition,
    spectrum_logspace,
)
from repro.utils.timers import WallTimer
from repro.utils.validation import (
    check_2d,
    check_finite,
    check_nonnegative_int,
    check_positive_int,
    check_same_rows,
    check_square,
)


class TestRNG:
    def test_default_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert default_rng(g) is g

    def test_default_rng_seeded_reproducible(self):
        assert (default_rng(5).integers(100) == default_rng(5).integers(100))

    def test_haar_orthonormal_columns(self, rng):
        q = haar_orthonormal(50, 8, rng)
        np.testing.assert_allclose(q.T @ q, np.eye(8), atol=1e-13)

    def test_haar_k_gt_n_rejected(self):
        with pytest.raises(ConfigurationError):
            haar_orthonormal(3, 5)

    @given(st.floats(min_value=1.0, max_value=1e12))
    @settings(max_examples=20)
    def test_spectrum_endpoints(self, cond):
        s = spectrum_logspace(6, cond)
        assert s[0] == pytest.approx(1.0)
        assert s[-1] == pytest.approx(1.0 / cond, rel=1e-9)

    def test_spectrum_bad_cond(self):
        with pytest.raises(ConfigurationError):
            spectrum_logspace(3, 0.5)

    def test_spectrum_single_column(self):
        assert spectrum_logspace(1, 100.0)[0] == 1.0

    def test_random_with_condition(self, rng):
        v = random_with_condition(100, 5, 1e4, rng)
        s = np.linalg.svd(v, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e4, rel=1e-9)


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_nonnegative_int(-1, "x")

    def test_2d_square(self):
        check_2d(np.zeros((2, 3)), "a")
        with pytest.raises(ShapeError):
            check_2d(np.zeros(3), "a")
        check_square(np.zeros((3, 3)), "a")
        with pytest.raises(ShapeError):
            check_square(np.zeros((2, 3)), "a")

    def test_finite(self):
        check_finite(np.ones(3), "a")
        with pytest.raises(ConfigurationError):
            check_finite(np.array([1.0, np.nan]), "a")

    def test_same_rows(self):
        check_same_rows(np.zeros((3, 1)), np.zeros((3, 2)), "a", "b")
        with pytest.raises(ShapeError):
            check_same_rows(np.zeros((3, 1)), np.zeros((4, 2)), "a", "b")


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(2.5) == "2.5s"
        assert format_seconds(0.0025) == "2.50ms"
        assert format_seconds(2.5e-6) == "2.5us"
        assert format_seconds(float("nan")) == "nan"

    def test_format_si(self):
        assert format_si(1.5e9) == "1.50G"
        assert format_si(2500, "B") == "2.50kB"
        assert format_si(12.0) == "12.00"

    def test_render_table_alignment(self):
        out = render_table(["name", "v"], [["a", 1], ["long-name", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long-name" in out
        assert all("|" in line for line in lines[1:] if "-+-" not in line)


class TestWallTimer:
    def test_accumulates(self):
        t = WallTimer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        assert first >= 0.005
        with t:
            pass
        assert t.elapsed >= first
        t.reset()
        assert t.elapsed == 0.0
