"""Partition invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.parallel.partition import Partition


class TestConstruction:
    @given(st.integers(min_value=1, max_value=10000),
           st.integers(min_value=1, max_value=64))
    def test_balanced_covers_all_rows(self, n, p):
        part = Partition(n, p)
        assert part.counts.sum() == n
        assert part.counts.min() >= n // p
        assert part.counts.max() <= n // p + 1

    def test_explicit_offsets(self):
        part = Partition(10, 3, offsets=np.array([0, 2, 2, 10]))
        assert part.local_count(0) == 2
        assert part.local_count(1) == 0
        assert part.local_count(2) == 8

    def test_bad_offsets_rejected(self):
        with pytest.raises(PartitionError):
            Partition(10, 2, offsets=np.array([0, 11, 10]))
        with pytest.raises(PartitionError):
            Partition(10, 2, offsets=np.array([1, 5, 10]))
        with pytest.raises(PartitionError):
            Partition(10, 2, offsets=np.array([0, 5]))

    def test_bad_sizes_rejected(self):
        with pytest.raises(Exception):
            Partition(0, 2)
        with pytest.raises(Exception):
            Partition(10, 0)


class TestOwnership:
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=16))
    def test_owner_consistent_with_slices(self, n, p):
        part = Partition(n, p)
        for rank in range(p):
            sl = part.local_slice(rank)
            for row in range(sl.start, min(sl.stop, sl.start + 3)):
                assert part.owner(row) == rank

    def test_owners_vectorized(self):
        part = Partition(100, 4)
        rows = np.array([0, 24, 25, 99])
        owners = part.owners(rows)
        assert list(owners) == [part.owner(int(r)) for r in rows]

    def test_owner_out_of_range(self):
        part = Partition(10, 2)
        with pytest.raises(PartitionError):
            part.owner(10)
        with pytest.raises(PartitionError):
            part.owner(-1)

    def test_rank_out_of_range(self):
        part = Partition(10, 2)
        with pytest.raises(PartitionError):
            part.local_slice(2)


class TestEquality:
    def test_eq_and_hash(self):
        a = Partition(100, 4)
        b = Partition(100, 4)
        c = Partition(100, 5)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_max_local_count(self):
        part = Partition(10, 3)
        assert part.max_local_count() == 4
