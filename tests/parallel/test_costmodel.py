"""Cost model: roofline behaviour, collective scaling, halo costs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.costmodel import CostModel
from repro.parallel.machine import generic_cpu, summit, vortex


@pytest.fixture
def cm() -> CostModel:
    return CostModel(summit())


class TestLocalKernels:
    def test_gemm_positive_and_has_latency_floor(self, cm):
        assert cm.gemm(0, 0, 0) == pytest.approx(cm.machine.kernel_latency)
        assert cm.gemm(1_000_000, 5, 5) > cm.machine.kernel_latency

    def test_tall_skinny_gemm_is_bandwidth_bound(self, cm):
        # widths (30, 5) on 1M rows: arithmetic intensity ~ 1 flop/byte,
        # far below the V100 ridge -> time tracks bytes, not flops
        n = 1_000_000
        t = cm.gemm(n, 30, 5)
        bytes_moved = 8.0 * (n * 30 + 30 * 5 + n * 5)
        t_bytes = bytes_moved / (cm.machine.mem_bandwidth
                                 * cm.gemm_efficiency(5))
        assert t == pytest.approx(cm.machine.kernel_latency + t_bytes)

    def test_gemm_efficiency_width_profile(self, cm):
        # GEMV streams well; 5-wide split-k GEMM is the trough; wide
        # blocks climb back to the plateau (the data-reuse mechanism)
        assert cm.gemm_efficiency(1) == cm.machine.gemv_efficiency
        assert cm.gemm_efficiency(5) < cm.gemm_efficiency(1)
        assert (cm.gemm_efficiency(5) < cm.gemm_efficiency(20)
                < cm.gemm_efficiency(60))
        assert cm.gemm_efficiency(60) == cm.machine.gemm_bw_efficiency

    def test_wide_block_cheaper_per_column_than_narrow(self, cm):
        # total bytes for projecting 60 columns against a 60-wide prefix:
        # one wide GEMM beats 12 narrow ones (two-stage's stage-2 win)
        n = 500_000
        wide = cm.gemm(n, 60, 60)
        narrow = sum(cm.gemm(n, 60, 5) for _ in range(12))
        assert wide < narrow

    def test_spmv_fixed_overhead_floor(self, cm):
        tiny = cm.spmv(10, 10, 10)
        assert tiny >= cm.machine.spmv_fixed_overhead

    def test_gemm_monotone_in_each_dim(self, cm):
        base = cm.gemm(10000, 10, 10)
        assert cm.gemm(20000, 10, 10) > base
        assert cm.gemm(10000, 20, 10) > base
        assert cm.gemm(10000, 10, 20) > base

    def test_update_costs_more_than_dot_same_shape(self, cm):
        # V -= Q R writes V as well as reading it
        assert cm.gemm_tall_update(100000, 10, 5) > cm.gemm(100000, 10, 5)

    def test_blas1_scales_with_streams(self, cm):
        assert cm.blas1(100000, n_streams=3) > cm.blas1(100000, n_streams=1)

    def test_spmv_bandwidth_dominated(self, cm):
        # large enough that the fixed per-call overhead is amortized
        t1 = cm.spmv(1e8, 1e7, 1e7)
        t2 = cm.spmv(2e8, 1e7, 1e7)
        assert t2 > 1.5 * t1

    def test_host_dense(self, cm):
        assert cm.host_dense(1e8) == pytest.approx(1e8 / cm.machine.host_flops)

    def test_syrk_cheaper_than_general_gemm(self, cm):
        # syrk writes only k x k, gemm k x k too but reads both operands:
        # syrk reads V once vs gemm reading A and B
        assert cm.syrk(100000, 8) < cm.gemm(100000, 8, 8)


class TestCollectives:
    def test_single_rank_free(self, cm):
        assert cm.allreduce(1024, 1) == 0.0

    def test_latency_grows_with_ranks(self, cm):
        t6 = cm.allreduce(256, 6)       # one node
        t12 = cm.allreduce(256, 12)     # two nodes
        t192 = cm.allreduce(256, 192)   # 32 nodes
        assert t6 < t12 < t192

    def test_small_message_latency_dominated(self, cm):
        # doubling a tiny payload should barely change the time
        t1 = cm.allreduce(64, 192)
        t2 = cm.allreduce(128, 192)
        assert t2 < 1.05 * t1 + 1e-12

    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=512))
    def test_monotone_in_bytes_and_ranks(self, payload, ranks):
        cm = CostModel(summit())
        assert cm.allreduce(payload, ranks) <= cm.allreduce(payload * 2, ranks)
        assert cm.allreduce(payload, ranks) <= cm.allreduce(payload, ranks * 2)

    def test_intra_node_cheaper_than_inter(self, cm):
        same = cm.point_to_point(8192, same_node=True)
        cross = cm.point_to_point(8192, same_node=False)
        assert same < cross

    def test_halo_exchange_empty(self, cm):
        assert cm.halo_exchange({}, rank=0, ranks=6) == 0.0

    def test_halo_exchange_inter_node_pricier(self, cm):
        intra = cm.halo_exchange({1: 8192.0}, rank=0, ranks=12)
        inter = cm.halo_exchange({7: 8192.0}, rank=0, ranks=12)
        assert inter > intra


class TestMachines:
    def test_presets_distinct(self):
        assert summit().ranks_per_node == 6
        assert vortex().ranks_per_node == 4
        assert generic_cpu().ranks_per_node == 16

    def test_nodes_for(self):
        m = summit()
        assert m.nodes_for(1) == 1
        assert m.nodes_for(6) == 1
        assert m.nodes_for(7) == 2
        assert m.nodes_for(192) == 32

    def test_with_overrides(self):
        m = summit().with_overrides(kernel_latency=1e-9)
        assert m.kernel_latency == 1e-9
        assert m.name == "summit"
        assert summit().kernel_latency != 1e-9  # original untouched


class TestSpmvWordSize:
    def test_default_is_fp64_bit_identical(self, cm):
        assert cm.spmv(1e6, 1e5, 1e5) == cm.spmv(1e6, 1e5, 1e5,
                                                 word_bytes=8.0)

    def test_low_precision_vectors_cost_less(self, cm):
        # bandwidth-dominated shape: halving the vector-stream word size
        # must strictly reduce the modeled time (matrix values stay fp64)
        t64 = cm.spmv(1e8, 1e7, 1e7)
        t32 = cm.spmv(1e8, 1e7, 1e7, word_bytes=4.0)
        assert t32 < t64
        # and the delta is exactly the vector-stream bytes saved
        saved = 4.0 * 2e7 / (cm.machine.mem_bandwidth
                             * cm.machine.spmv_efficiency)
        assert t64 - t32 == pytest.approx(saved, rel=1e-12)
