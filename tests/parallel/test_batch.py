"""BatchCharges: leader/follower charge fusion on the ``_charge`` funnel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.batch import BatchCharges
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu, summit
from repro.parallel.tracing import Tracer


def fresh_comm(machine=None, ranks=8):
    return SimComm(machine or summit(), ranks, Tracer())


class TestInstallation:
    def test_install_and_restore(self):
        comm = fresh_comm()
        orig = comm._charge
        with BatchCharges(comm):
            assert "_charge" in vars(comm)
        assert "_charge" not in vars(comm)
        assert comm._charge == orig

    def test_nested_installation_is_inert(self):
        comm = fresh_comm()
        with BatchCharges(comm) as outer:
            installed = comm._charge
            with BatchCharges(comm) as inner:
                # inner must NOT re-wrap the already-wrapped funnel
                assert comm._charge is installed
                assert not inner._installed
            # ... and must not tear the outer wrapper down on exit
            assert comm._charge is installed
            assert outer._installed

    def test_outside_member_charges_pass_through(self):
        """Charges between members (driver-side work) fuse nothing."""
        a, b = fresh_comm(), fresh_comm()
        with BatchCharges(a) as batch:
            with batch.group():
                a.allreduce_sum([np.ones(4)] * a.size)
                a.allreduce_sum([np.ones(4)] * a.size)
        b.allreduce_sum([np.ones(4)] * b.size)
        b.allreduce_sum([np.ones(4)] * b.size)
        assert a.tracer.clock == b.tracer.clock
        assert (a.tracer.collective_counts()["allreduce"]
                == b.tracer.collective_counts()["allreduce"] == 2)


class TestFusion:
    def test_follower_pays_seconds_minus_fixed_cost(self):
        """Occurrence i of a kernel: first member charges in full, later
        members shed exactly the cost model's fixed (latency) part."""
        comm = fresh_comm()
        ref = fresh_comm()
        payload = np.ones(1000)
        ref.allreduce_sum([payload] * ref.size)
        full = ref.tracer.clock
        fixed = ref.cost.fixed_cost("allreduce", ref.size)
        assert 0.0 < fixed < full
        with BatchCharges(comm) as batch:
            with batch.group():
                for _ in range(3):
                    with batch.member():
                        comm.allreduce_sum([payload] * comm.size)
        assert comm.tracer.clock == pytest.approx(full + 2 * (full - fixed))

    def test_follower_count_is_zero_bytes_accumulate(self):
        """The collective count stays width-independent while payload
        bytes grow with the batch — the wire truth of message fusion."""
        comm = fresh_comm()
        with BatchCharges(comm) as batch:
            with batch.group():
                for _ in range(4):
                    with batch.member():
                        comm.allreduce_sum([np.ones(100)] * comm.size)
        counts = comm.tracer.collective_counts(payload_bytes=True)
        assert counts["allreduce"]["count"] == 1
        ref = fresh_comm()
        ref.allreduce_sum([np.ones(100)] * ref.size)
        ref_bytes = ref.tracer.collective_counts(
            payload_bytes=True)["allreduce"]["bytes"]
        assert counts["allreduce"]["bytes"] == 4 * ref_bytes

    def test_occurrence_matching_is_per_kernel_kind(self):
        """Members with different kernel interleavings still fuse by
        (kind, occurrence): the 2nd allreduce of member B fuses with the
        2nd of member A even if B skipped other work in between."""
        comm = fresh_comm()
        with BatchCharges(comm) as batch:
            with batch.group():
                with batch.member():
                    comm.allreduce_sum([np.ones(10)] * comm.size)
                    comm.charge_local("dot", [1e-6] * comm.size)
                    comm.allreduce_sum([np.ones(20)] * comm.size)
                with batch.member():
                    comm.allreduce_sum([np.ones(10)] * comm.size)
                    comm.allreduce_sum([np.ones(20)] * comm.size)
        assert comm.tracer.collective_counts()["allreduce"] == 2

    def test_new_group_resets_leadership(self):
        comm = fresh_comm()
        with BatchCharges(comm) as batch:
            for _ in range(2):
                with batch.group():
                    with batch.member():
                        comm.allreduce_sum([np.ones(10)] * comm.size)
        # two groups -> two leaders -> two counted collectives
        assert comm.tracer.collective_counts()["allreduce"] == 2

    def test_width_one_is_charge_identical(self):
        """A single member is always the leader: the batch wrapper is
        a no-op for width 1 (the degenerate-case contract)."""
        batched, plain = fresh_comm(), fresh_comm()
        with BatchCharges(batched) as batch:
            with batch.group():
                with batch.member():
                    batched.allreduce_sum([np.ones(64)] * batched.size)
                    batched.charge_halo([{1: 256.0}] * batched.size)
        plain.allreduce_sum([np.ones(64)] * plain.size)
        plain.charge_halo([{1: 256.0}] * plain.size)
        assert batched.tracer.clock == plain.tracer.clock
        assert (batched.tracer.collective_counts(payload_bytes=True)
                == plain.tracer.collective_counts(payload_bytes=True))

    def test_follower_seconds_never_negative(self):
        """A follower cheaper than the fixed cost clamps to zero."""
        comm = fresh_comm(machine=generic_cpu(), ranks=4)
        with BatchCharges(comm) as batch:
            with batch.group():
                for _ in range(2):
                    with batch.member():
                        comm.allreduce_sum([np.ones(1)] * comm.size)
        ref = fresh_comm(machine=generic_cpu(), ranks=4)
        ref.allreduce_sum([np.ones(1)] * ref.size)
        assert comm.tracer.clock >= ref.tracer.clock
