"""Communicator protocol conformance + the make_comm factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.parallel.api import BACKENDS, Communicator, make_comm
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu, summit
from repro.parallel.mp_backend import MpComm
from repro.parallel.tracing import Tracer

#: Every method the protocol promises; conformance is checked name by
#: name so a backend silently dropping one fails with a message naming
#: the missing method rather than a bare isinstance failure.
PROTOCOL_METHODS = (
    "allreduce_sum", "allreduce_scalar", "fused_allreduce_sum",
    "allreduce_sum_stacked", "fused_allreduce_sum_stacked", "allreduce_dd",
    "charge_local", "charge_uniform", "charge_halo",
    "alloc_stack", "exec_spmv", "mark", "close",
)


@pytest.fixture
def mp2():
    comm = MpComm(generic_cpu(), 2, Tracer())
    yield comm
    comm.close()


class TestProtocolConformance:
    def test_backends_tuple(self):
        assert BACKENDS == ("sim", "mp")

    @pytest.mark.parametrize("cls", [SimComm, MpComm])
    def test_methods_present(self, cls):
        for name in PROTOCOL_METHODS:
            assert callable(getattr(cls, name, None)), (
                f"{cls.__name__} is missing Communicator.{name}")

    def test_sim_is_communicator(self, comm4):
        assert isinstance(comm4, Communicator)

    def test_mp_is_communicator(self, mp2):
        assert isinstance(mp2, Communicator)

    def test_backend_attribute(self, comm4, mp2):
        assert comm4.backend == "sim"
        assert mp2.backend == "mp"

    def test_incomplete_object_is_not_communicator(self):
        class Half:
            machine = size = tracer = cost = engine = None
            backend = "half"

            def allreduce_sum(self, shards):
                return shards[0]

        assert not isinstance(Half(), Communicator)


class TestSimCommDefaults:
    """SimComm's protocol additions: planner-side no-op/fallback hooks."""

    def test_alloc_stack_plain_zeros(self, comm4):
        stack = comm4.alloc_stack(4, 10, 3, np.float32)
        assert stack.shape == (4, 10, 3)
        assert stack.dtype == np.float32
        assert not stack.any()

    def test_exec_spmv_defers_to_driver(self, comm4):
        assert comm4.exec_spmv(None, None, None) is False

    def test_mark_and_close_are_noops(self, comm4):
        comm4.mark()
        comm4.close()
        comm4.allreduce_scalar([1.0] * 4)  # still usable after close

    def test_context_manager(self):
        with SimComm(generic_cpu(), 4) as comm:
            assert comm.allreduce_scalar([1.0] * 4) == 4.0


class TestMakeComm:
    def test_default_backend_is_sim(self):
        comm = make_comm()
        assert isinstance(comm, SimComm) and not isinstance(comm, MpComm)
        assert comm.size == 4
        assert comm.machine.name == summit().name

    def test_sim_with_machine_and_size(self):
        comm = make_comm("sim", generic_cpu(), 8)
        assert comm.size == 8
        assert comm.machine.name == generic_cpu().name

    def test_mp_backend(self):
        with make_comm("mp", generic_cpu(), 2) as comm:
            assert isinstance(comm, MpComm)
            assert comm.allreduce_scalar([1.0, 2.0]) == 3.0

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            make_comm("mpi")

    def test_tracer_threaded_through(self):
        tracer = Tracer()
        comm = make_comm("sim", tracer=tracer)
        assert comm.tracer is tracer

    def test_engine_threaded_through(self):
        comm = make_comm("sim", engine="loop")
        assert comm.engine == "loop"
