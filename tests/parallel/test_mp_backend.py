"""MpComm: real-process reductions bit-identical to SimComm, the
modeled twin, shared-memory stacks, and lifecycle hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd.linalg import matmul_dd
from repro.exceptions import CommunicatorError
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.mp_backend import MpComm, _reduce_schedule
from repro.parallel.tracing import Tracer


@pytest.fixture(scope="module")
def mp4():
    comm = MpComm(generic_cpu(), 4, Tracer())
    yield comm
    comm.close()


def _pair(size):
    """A fresh (SimComm, MpComm) pair of the same size."""
    return (SimComm(generic_cpu(), size, Tracer()),
            MpComm(generic_cpu(), size, Tracer()))


class TestReduceSchedule:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8])
    def test_mirrors_tree_sum(self, size):
        """Folding the schedule's (a, b) pairs level by level reproduces
        SimComm._tree_sum's pairing exactly."""
        rng = np.random.default_rng(size)
        items = [rng.standard_normal(5) for _ in range(size)]
        slots = [x.copy() for x in items]
        for level in _reduce_schedule(size):
            for a, b in level:
                slots[a] = slots[a] + slots[b]
        sim = SimComm(generic_cpu(), size, Tracer())
        np.testing.assert_array_equal(
            slots[0], sim.allreduce_sum([x.copy() for x in items]))


class TestBitIdenticalReductions:
    """Every collective, byte-for-byte against the simulator."""

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
    def test_allreduce_sum(self, size):
        rng = np.random.default_rng(size)
        shards = [rng.standard_normal((3, 2)) for _ in range(size)]
        sim, mp = _pair(size)
        try:
            a = sim.allreduce_sum([s.copy() for s in shards])
            b = mp.allreduce_sum([s.copy() for s in shards])
            assert a.tobytes() == b.tobytes()
        finally:
            mp.close()

    def test_allreduce_sum_f32_contributions(self, mp4):
        rng = np.random.default_rng(0)
        shards = [rng.standard_normal((4,)).astype(np.float32)
                  for _ in range(4)]
        sim = SimComm(generic_cpu(), 4, Tracer())
        a = sim.allreduce_sum([s.copy() for s in shards])
        b = mp4.allreduce_sum([s.copy() for s in shards])
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()

    def test_allreduce_scalar(self, mp4):
        vals = [0.1, 0.2, 0.3, 0.7]
        sim = SimComm(generic_cpu(), 4, Tracer())
        assert mp4.allreduce_scalar(vals) == sim.allreduce_scalar(vals)

    def test_fused_allreduce_sum(self, mp4):
        rng = np.random.default_rng(1)
        g1 = [rng.standard_normal((2, 2)) for _ in range(4)]
        g2 = [rng.standard_normal((3,)) for _ in range(4)]
        sim = SimComm(generic_cpu(), 4, Tracer())
        a = sim.fused_allreduce_sum([[s.copy() for s in g] for g in (g1, g2)])
        b = mp4.fused_allreduce_sum([[s.copy() for s in g] for g in (g1, g2)])
        for x, y in zip(a, b):
            assert x.tobytes() == y.tobytes()

    def test_stacked_variants(self, mp4):
        rng = np.random.default_rng(2)
        stack = rng.standard_normal((4, 3, 2))
        sim = SimComm(generic_cpu(), 4, Tracer())
        assert (sim.allreduce_sum_stacked(stack.copy()).tobytes()
                == mp4.allreduce_sum_stacked(stack.copy()).tobytes())
        s2 = rng.standard_normal((4, 5))
        a = sim.fused_allreduce_sum_stacked([stack.copy(), s2.copy()])
        b = mp4.fused_allreduce_sum_stacked([stack.copy(), s2.copy()])
        for x, y in zip(a, b):
            assert x.tobytes() == y.tobytes()

    def test_allreduce_dd(self, mp4):
        rng = np.random.default_rng(3)
        pairs = [matmul_dd(rng.standard_normal((6, 2)),
                           rng.standard_normal((6, 2))) for _ in range(4)]
        his = [p[0] for p in pairs]
        los = [p[1] for p in pairs]
        sim = SimComm(generic_cpu(), 4, Tracer())
        ah, al = sim.allreduce_dd([h.copy() for h in his],
                                  [lo.copy() for lo in los])
        bh, bl = mp4.allreduce_dd([h.copy() for h in his],
                                  [lo.copy() for lo in los])
        assert ah.tobytes() == bh.tobytes()
        assert al.tobytes() == bl.tobytes()


class TestModeledTwin:
    def test_twin_matches_sim_charges_exactly(self):
        """The duplicated charge formulas must not drift: running the
        same collective/charge sequence on both backends leaves the mp
        modeled twin equal to the sim tracer — clock, kernels, counts."""
        rng = np.random.default_rng(9)
        shards = [rng.standard_normal((4, 4)) for _ in range(3)]
        sim, mp = _pair(3)
        try:
            for comm in (sim, mp):
                with comm.tracer.phase("ortho"):
                    comm.allreduce_sum([s.copy() for s in shards])
                with comm.tracer.phase("spmv"):
                    comm.charge_local("spmv_local", [1e-4, 2e-4, 3e-4])
                    comm.charge_halo([{1: 640.0}, {0: 640.0}, {0: 64.0}])
                comm.charge_uniform("host", 5e-5)
            assert mp.modeled.clock == sim.tracer.clock
            assert mp.modeled.by_kernel == sim.tracer.by_kernel
            assert mp.modeled.counts == sim.tracer.counts
        finally:
            mp.close()

    def test_measured_tracer_records_wall_clock(self, mp4):
        before = mp4.tracer.clock
        mp4.allreduce_sum([np.ones(64) for _ in range(4)])
        assert mp4.tracer.clock > before
        assert mp4.tracer.sync_count() >= 1

    def test_phase_stack_aliased(self, mp4):
        """One phase region attributes both streams."""
        with mp4.tracer.phase("ortho"):
            mp4.allreduce_sum([np.ones(8) for _ in range(4)])
        assert ("ortho", "allreduce") in mp4.tracer.by_kernel
        assert ("ortho", "allreduce") in mp4.modeled.by_kernel


class TestSharedStacks:
    def test_alloc_stack_shape_dtype_zeroed(self, mp4):
        stack = mp4.alloc_stack(4, 7, 2, np.float32)
        assert stack.shape == (4, 7, 2)
        assert stack.dtype == np.float32
        assert not stack.any()
        stack[1, 2, 0] = 3.0  # writable shared memory
        assert stack[1, 2, 0] == 3.0

    def test_describe_finds_strided_views(self, mp4):
        stack = mp4.alloc_stack(4, 6, 3, np.float64)
        view = stack[:, :, 1:2]  # column view, non-contiguous
        desc = mp4._describe(view)
        assert desc is not None
        assert desc["shape"] == view.shape
        private = np.zeros((4, 6, 3))
        assert mp4._describe(private) is None


class TestValidationAndLifecycle:
    def test_contribution_count_checked(self, mp4):
        with pytest.raises(CommunicatorError):
            mp4.allreduce_sum([np.zeros(2)] * 3)

    def test_close_idempotent_and_rejects_use(self):
        comm = MpComm(generic_cpu(), 2, Tracer())
        assert comm.allreduce_scalar([1.0, 1.0]) == 2.0
        comm.close()
        comm.close()
        with pytest.raises(CommunicatorError):
            comm.allreduce_scalar([1.0, 1.0])
        assert "closed" in repr(comm)

    def test_context_manager_closes(self):
        with MpComm(generic_cpu(), 2, Tracer()) as comm:
            comm.allreduce_scalar([1.0, 2.0])
        with pytest.raises(CommunicatorError):
            comm.allreduce_scalar([1.0, 2.0])

    def test_size_one_works(self):
        with MpComm(generic_cpu(), 1, Tracer()) as comm:
            out = comm.allreduce_sum([np.arange(3.0)])
            np.testing.assert_array_equal(out, np.arange(3.0))
