"""Tracer: phase attribution, snapshots/diffs, reporting."""

from __future__ import annotations

import pytest

from repro.parallel.tracing import Tracer, phase_names


class TestPhases:
    def test_default_phase_is_other(self):
        t = Tracer()
        t.add("dot", 1.0)
        assert t.phase_seconds("other") == 1.0

    def test_nested_phases(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
            with t.phase("spmv"):
                t.add("halo", 0.5)
            t.add("update", 2.0)
        assert t.phase_seconds("ortho") == 3.0
        assert t.phase_seconds("spmv") == 0.5
        assert t.clock == 3.5

    def test_phase_restored_after_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.phase("ortho"):
                raise RuntimeError("boom")
        assert t.current_phase == "other"

    def test_negative_cost_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.add("dot", -1.0)


class TestSnapshots:
    def test_since_diff(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
        snap = t.snapshot()
        with t.phase("ortho"):
            t.add("dot", 2.0)
            t.add("allreduce", 0.5)
        d = t.since(snap)
        assert d.clock == 2.5
        assert d.by_phase["ortho"] == 2.5
        assert d.by_kernel[("ortho", "dot")] == 2.0
        assert d.counts[("ortho", "allreduce")] == 1

    def test_reset(self):
        t = Tracer()
        t.add("dot", 1.0)
        t.reset()
        assert t.clock == 0.0
        assert t.sync_count() == 0


class TestAccessors:
    def test_sync_count_by_phase(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("allreduce", 0.1)
            t.add("allreduce", 0.1)
        with t.phase("spmv"):
            t.add("allreduce", 0.1)
        assert t.sync_count() == 3
        assert t.sync_count("ortho") == 2

    def test_kernel_count(self):
        t = Tracer()
        t.add("dot", 0.5, count=3)
        assert t.kernel_count("other", "dot") == 3

    def test_report_contains_phases(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
        rep = t.report()
        assert "ortho" in rep and "dot" in rep

    def test_phase_names(self):
        assert "ortho" in phase_names()
