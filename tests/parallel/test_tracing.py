"""Tracer: phase attribution, snapshots/diffs, spans, reporting."""

from __future__ import annotations

import pytest

from repro.parallel.tracing import (COLLECTIVE_KERNELS, SpanEvent, Tracer,
                                    phase_names)


class TestPhases:
    def test_default_phase_is_other(self):
        t = Tracer()
        t.add("dot", 1.0)
        assert t.phase_seconds("other") == 1.0

    def test_nested_phases(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
            with t.phase("spmv"):
                t.add("halo", 0.5)
            t.add("update", 2.0)
        assert t.phase_seconds("ortho") == 3.0
        assert t.phase_seconds("spmv") == 0.5
        assert t.clock == 3.5

    def test_reentering_same_phase_name_unwinds_to_outer(self):
        t = Tracer()
        with t.phase("ortho"):
            with t.phase("ortho"):
                t.add("dot", 1.0)
            assert t.current_phase == "ortho"
            t.add("update", 2.0)
        assert t.current_phase == "other"
        assert t.phase_seconds("ortho") == 3.0

    def test_phase_restored_after_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.phase("ortho"):
                raise RuntimeError("boom")
        assert t.current_phase == "other"

    def test_negative_cost_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.add("dot", -1.0)


class TestSnapshots:
    def test_since_counts_are_diffs_not_totals(self):
        t = Tracer()
        t.add("dot", 1.0, count=3)
        snap = t.snapshot()
        t.add("dot", 1.0, count=2)
        d = t.since(snap)
        assert d.counts[("other", "dot")] == 2
        assert t.counts[("other", "dot")] == 5

    def test_since_keys_absent_from_snapshot_diff_against_zero(self):
        t = Tracer()
        t.add("dot", 1.0)
        snap = t.snapshot()
        with t.phase("spmv"):
            t.add("halo", 0.25, count=4)
        d = t.since(snap)
        assert d.by_kernel[("spmv", "halo")] == 0.25
        assert d.counts[("spmv", "halo")] == 4
        # untouched keys diff to zero, not disappear
        assert d.by_kernel[("other", "dot")] == 0.0
        assert d.counts[("other", "dot")] == 0

    def test_since_diff(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
        snap = t.snapshot()
        with t.phase("ortho"):
            t.add("dot", 2.0)
            t.add("allreduce", 0.5)
        d = t.since(snap)
        assert d.clock == 2.5
        assert d.by_phase["ortho"] == 2.5
        assert d.by_kernel[("ortho", "dot")] == 2.0
        assert d.counts[("ortho", "allreduce")] == 1

    def test_reset(self):
        t = Tracer()
        t.add("dot", 1.0)
        t.reset()
        assert t.clock == 0.0
        assert t.sync_count() == 0


class TestAccessors:
    def test_sync_count_by_phase(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("allreduce", 0.1)
            t.add("allreduce", 0.1)
        with t.phase("spmv"):
            t.add("allreduce", 0.1)
        assert t.sync_count() == 3
        assert t.sync_count("ortho") == 2

    def test_kernel_count(self):
        t = Tracer()
        t.add("dot", 0.5, count=3)
        assert t.kernel_count("other", "dot") == 3

    def test_report_contains_phases(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.0)
        rep = t.report()
        assert "ortho" in rep and "dot" in rep

    def test_phase_names(self):
        assert "ortho" in phase_names()

    def test_collective_counts_zero_filled(self):
        t = Tracer()
        assert t.collective_counts() == dict.fromkeys(COLLECTIVE_KERNELS, 0)

    def test_collective_counts_cover_all_collectives(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("allreduce", 0.1, count=2)
            t.add("bcast", 0.1)
        with t.phase("spmv"):
            t.add("halo", 0.1, count=3)
            t.add("spmv_local", 1.0)  # not a collective
        assert t.collective_counts() == {"allreduce": 2, "halo": 3, "bcast": 1}
        assert t.collective_counts("ortho") == {"allreduce": 2, "halo": 0,
                                                "bcast": 1}
        assert t.sync_count("ortho") == 2

    def test_collective_counts_with_payload_bytes(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("allreduce", 0.1, count=2, payload_bytes=64.0)
        with t.phase("spmv"):
            t.add("halo", 0.1, payload_bytes=256.0)
            t.add("allreduce", 0.1, payload_bytes=8.0)
        assert t.collective_counts(payload_bytes=True) == {
            "allreduce": {"count": 3, "bytes": 72.0},
            "halo": {"count": 1, "bytes": 256.0},
            "bcast": {"count": 0, "bytes": 0.0}}
        assert t.collective_counts("ortho", payload_bytes=True) == {
            "allreduce": {"count": 2, "bytes": 64.0},
            "halo": {"count": 0, "bytes": 0.0},
            "bcast": {"count": 0, "bytes": 0.0}}

    def test_payload_accumulator_and_since_diff(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("allreduce", 0.1, payload_bytes=64.0)
        snap = t.snapshot()
        with t.phase("ortho"):
            t.add("allreduce", 0.1, payload_bytes=16.0)
        assert t.payload_bytes[("ortho", "allreduce")] == 80.0
        d = t.since(snap)
        assert d.payload_bytes[("ortho", "allreduce")] == 16.0
        doc = t.snapshot().to_dict()
        assert doc["payload_bytes"] == {"ortho/allreduce": 80.0}
        t.reset()
        assert t.payload_bytes == {}


class TestSpanStream:
    def test_disabled_by_default_and_records_nothing(self):
        t = Tracer()
        assert not t.spans_enabled
        t.add("dot", 1.0)
        t.record_span("halo", 0.0, 0.5, rank=1)  # no-op while disabled
        assert t.spans == []

    def test_charge_span_fields(self):
        t = Tracer()
        t.enable_spans()
        t.set_cycle(7)
        with t.phase("ortho"):
            t.add("allreduce", 0.5, count=2, payload_bytes=64.0)
        kernel_spans = [s for s in t.spans if s.cat == "kernel"]
        assert len(kernel_spans) == 1
        s = kernel_spans[0]
        assert (s.name, s.phase, s.stream) == ("allreduce", "ortho", "modeled")
        assert (s.t0, s.t1, s.duration) == (0.0, 0.5, 0.5)
        assert (s.count, s.payload_bytes, s.cycle, s.rank) == (2, 64.0, 7, None)

    def test_phase_region_records_phase_span(self):
        t = Tracer()
        t.enable_spans()
        with t.phase("spmv"):
            t.add("halo", 0.25)
            t.add("spmv_local", 0.75)
        phase_spans = [s for s in t.spans if s.cat == "phase"]
        assert len(phase_spans) == 1
        assert phase_spans[0].name == "spmv"
        assert (phase_spans[0].t0, phase_spans[0].t1) == (0.0, 1.0)

    def test_record_span_does_not_touch_accumulators(self):
        t = Tracer()
        t.enable_spans()
        t.record_span("halo", 1.0, 2.0, phase="spmv", rank=3)
        assert t.clock == 0.0 and not t.counts
        (s,) = t.spans
        assert (s.name, s.phase, s.rank) == ("halo", "spmv", 3)

    def test_disable_drops_reset_preserves_enablement(self):
        t = Tracer()
        t.enable_spans()
        t.add("dot", 1.0)
        t.reset()
        assert t.spans_enabled and t.spans == []
        t.add("dot", 1.0)
        t.disable_spans()
        assert not t.spans_enabled and t.spans == []

    def test_measured_stream_tag(self):
        t = Tracer(stream="measured")
        t.enable_spans()
        t.add("dot", 1.0)
        assert t.spans[0].stream == "measured"
        assert t.report().startswith("measured clock:")

    def test_driver_side_stamped_on_spans(self):
        t = Tracer()
        t.enable_spans()
        t.add("dot", 0.5, driver_side=True)
        t.add("dot", 0.5)
        t.record_span("update", 1.0, 1.5, driver_side=True)
        flags = [s.driver_side for s in t.spans]
        assert flags == [True, False, True]

    def test_attached_metrics_observe_every_charge(self):
        class Probe:
            observed = []

            def observe(self, *args):
                Probe.observed.append(args)

        t = Tracer()
        t.attach_metrics(Probe())
        with t.phase("ortho"):
            t.add("allreduce", 0.5, count=2, payload_bytes=8.0,
                  driver_side=True)
        assert Probe.observed == [("ortho", "allreduce", 0.5, 2, 8.0, True)]
        t.detach_metrics()
        t.add("dot", 1.0)
        assert len(Probe.observed) == 1


class TestSharePhaseStack:
    """Regression for the mp backend's modeled twin: one phase()/cycle
    context must drive both tracers without touching private fields."""

    def test_twin_follows_phase_and_cycle(self):
        measured = Tracer(stream="measured")
        modeled = Tracer()
        measured.share_phase_stack(modeled)
        measured.set_cycle(3)
        with measured.phase("ortho"):
            measured.add("allreduce", 0.2)
            modeled.add("allreduce", 0.1)
        assert modeled.phase_seconds("ortho") == 0.1
        assert measured.phase_seconds("ortho") == 0.2
        assert modeled.current_cycle == 3

    def test_twin_spans_attribute_identically(self):
        measured = Tracer(stream="measured")
        modeled = Tracer()
        measured.share_phase_stack(modeled)
        for t in (measured, modeled):
            t.enable_spans()
        with measured.phase("spmv"):
            measured.add("halo", 0.2)
            modeled.add("halo", 0.1)
        (ms,) = [s for s in measured.spans if s.cat == "kernel"]
        (ds,) = [s for s in modeled.spans if s.cat == "kernel"]
        assert ms.phase == ds.phase == "spmv"
        assert (ms.stream, ds.stream) == ("measured", "modeled")


class TestSerialization:
    def test_span_event_round_trip(self):
        s = SpanEvent("allreduce", 1.0, 1.5, "ortho", "measured",
                      count=2, payload_bytes=8.0, cycle=4, rank=1,
                      driver_side=True)
        assert SpanEvent.from_dict(s.to_dict()) == s

    def test_span_event_from_sparse_dict_defaults(self):
        s = SpanEvent.from_dict({"name": "dot", "t0": 0, "t1": 1})
        assert (s.phase, s.stream, s.cat, s.count) == (
            "other", "modeled", "kernel", 1)
        assert s.payload_bytes is None and s.rank is None
        assert s.driver_side is False

    def test_totals_to_dict_flattens_keys(self):
        t = Tracer()
        with t.phase("ortho"):
            t.add("dot", 1.5, count=2)
        doc = t.snapshot().to_dict()
        assert doc["clock"] == 1.5
        assert doc["by_phase"] == {"ortho": 1.5}
        assert doc["by_kernel"] == {"ortho/dot": 1.5}
        assert doc["counts"] == {"ortho/dot": 2}

    def test_tracer_to_dict_stream_and_spans(self):
        t = Tracer(stream="measured")
        t.add("dot", 1.0)
        doc = t.to_dict()
        assert doc["stream"] == "measured"
        assert "spans" not in doc
        t.enable_spans()
        t.add("dot", 1.0)
        doc = t.to_dict(include_spans=True)
        assert [s["name"] for s in doc["spans"]] == ["dot"]
        import json
        json.dumps(doc)  # JSON-safe end to end
