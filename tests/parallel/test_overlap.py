"""Nonblocking collectives: overlap-window charging semantics.

These pin the LogGP-style contract of the ``post_*``/``wait`` API on the
simulated communicator: posted collectives drain FIFO under compute
charges, ``wait`` charges only the exposed remainder, and results are
bit-identical to the blocking calls (values are computed eagerly at post
time in the same tree order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CommunicatorError
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu, summit
from repro.parallel.tracing import Tracer


def blocking_cost(comm, payload_elems: int) -> float:
    return comm.cost.allreduce(payload_elems * 8.0, comm.size)


class TestResultsBitIdentical:
    def test_posted_allreduce_matches_blocking(self, comm4):
        rng = np.random.default_rng(3)
        shards = [rng.standard_normal((3, 2)) for _ in range(4)]
        blocking = SimComm(generic_cpu(), 4, Tracer()).allreduce_sum(shards)
        req = comm4.post_iallreduce_sum(shards)
        posted = comm4.wait(req)
        assert posted.tobytes() == blocking.tobytes()

    def test_posted_fused_matches_blocking(self, comm4):
        rng = np.random.default_rng(4)
        g1 = [rng.standard_normal(5) for _ in range(4)]
        g2 = [rng.standard_normal((2, 2)) for _ in range(4)]
        blocking = SimComm(generic_cpu(), 4, Tracer()).fused_allreduce_sum(
            [g1, g2])
        posted = comm4.wait(comm4.post_ifused_allreduce_sum([g1, g2]))
        for p, b in zip(posted, blocking):
            assert p.tobytes() == b.tobytes()

    def test_posted_stacked_matches_loop_variant(self, comm4):
        rng = np.random.default_rng(5)
        stack = rng.standard_normal((4, 3, 3))
        blocking = SimComm(generic_cpu(), 4, Tracer()).fused_allreduce_sum(
            [list(stack)])
        posted = comm4.wait(
            comm4.post_ifused_allreduce_sum_stacked([stack]))
        assert posted[0].tobytes() == blocking[0].tobytes()

    def test_posted_bcast_passes_value_through(self, comm4):
        value = np.arange(6.0)
        out = comm4.wait(comm4.post_ibcast(value))
        assert out is value


class TestChargeSemantics:
    def test_wait_before_compute_charges_full_cost(self, comm4):
        """No intervening compute: the window is empty and the wait is
        charge-identical to the blocking collective."""
        shards = [np.ones(16)] * 4
        req = comm4.post_iallreduce_sum(shards)
        assert comm4.tracer.clock == 0.0  # post itself is free
        comm4.wait(req)
        assert comm4.tracer.clock == blocking_cost(comm4, 16)
        assert comm4.tracer.overlapped_seconds() == 0.0

    def test_compute_exceeding_inflight_hides_fully(self, comm4):
        """Enough compute between post and wait: the wait charges zero
        seconds (but still counts), and the full cost shows up as
        overlapped."""
        shards = [np.ones(16)] * 4
        full = blocking_cost(comm4, 16)
        req = comm4.post_iallreduce_sum(shards)
        comm4.charge_local("spmv", [10.0 * full] * 4)
        before = comm4.tracer.clock
        comm4.wait(req)
        assert comm4.tracer.clock == before  # zero exposed seconds
        assert comm4.tracer.sync_count() == 1
        assert comm4.tracer.overlapped_seconds() == pytest.approx(full)

    def test_partial_drain_charges_remainder(self, comm4):
        shards = [np.ones(1024)] * 4
        full = blocking_cost(comm4, 1024)
        compute = 0.25 * full
        req = comm4.post_iallreduce_sum(shards)
        comm4.charge_local("spmv", [compute] * 4)
        comm4.wait(req)
        assert comm4.tracer.kernel_seconds("other", "allreduce") == \
            pytest.approx(full - compute)
        assert comm4.tracer.overlapped_seconds() == pytest.approx(compute)
        # total elapsed = compute + exposed remainder, not compute + full
        assert comm4.tracer.clock == pytest.approx(full)

    def test_nested_posts_drain_fifo(self, comm4):
        """Two in-flight requests: compute drains the OLDEST first."""
        shards = [np.ones(1024)] * 4
        full = blocking_cost(comm4, 1024)
        first = comm4.post_iallreduce_sum(shards)
        second = comm4.post_iallreduce_sum(shards)
        comm4.charge_local("spmv", [1.5 * full] * 4)
        assert first.hidden == pytest.approx(full)      # fully drained
        assert second.hidden == pytest.approx(0.5 * full)  # the spill
        comm4.wait(first)
        comm4.wait(second)
        assert comm4.tracer.kernel_seconds("other", "allreduce") == \
            pytest.approx(0.5 * full)

    def test_wait_does_not_drain_queued_requests(self, comm4):
        """Serialized NIC: the exposed remainder of waiting the head
        request cannot progress the one queued behind it."""
        shards = [np.ones(1024)] * 4
        full = blocking_cost(comm4, 1024)
        first = comm4.post_iallreduce_sum(shards)
        second = comm4.post_iallreduce_sum(shards)
        comm4.wait(first)  # charges `full` exposed seconds
        assert second.hidden == 0.0
        comm4.wait(second)
        assert comm4.tracer.clock == pytest.approx(2.0 * full)

    def test_posted_total_never_below_compute_plus_zero(self, comm4):
        """Overlap can at best hide the whole collective: clock with
        posting is within [compute, compute + full]."""
        shards = [np.ones(64)] * 4
        full = blocking_cost(comm4, 64)
        for factor in (0.0, 0.3, 1.0, 2.5):
            comm = SimComm(generic_cpu(), 4, Tracer())
            req = comm.post_iallreduce_sum(shards)
            if factor:
                comm.charge_local("spmv", [factor * full] * 4)
            comm.wait(req)
            compute = factor * full
            assert compute <= comm.tracer.clock <= compute + full + 1e-18
            assert comm.tracer.clock == pytest.approx(max(compute, full))

    def test_counts_unchanged_vs_blocking(self, comm4):
        """post contributes no collective count; wait counts exactly 1."""
        shards = [np.ones(8)] * 4
        req = comm4.post_iallreduce_sum(shards)
        assert comm4.tracer.sync_count() == 0
        comm4.charge_local("spmv", [1.0] * 4)
        comm4.wait(req)
        assert comm4.tracer.sync_count() == 1

    def test_empty_fused_post_is_zero_cost(self, comm4):
        for req in (comm4.post_ifused_allreduce_sum([]),
                    comm4.post_ifused_allreduce_sum_stacked([])):
            assert comm4.wait(req) == []
        assert comm4.tracer.clock == 0.0


class TestPostedHalo:
    def test_posted_halo_matches_blocking_charge(self):
        a = SimComm(summit(), 8, Tracer())
        b = SimComm(summit(), 8, Tracer())
        recv = [{(r + 1) % 8: 4096.0, (r - 1) % 8: 4096.0} for r in range(8)]
        b.charge_halo(recv)
        a.wait(a.post_ihalo(recv))
        assert a.tracer.clock == b.tracer.clock
        assert a.tracer.kernel_seconds("other", "halo") == \
            b.tracer.kernel_seconds("other", "halo")

    def test_posted_halo_hides_behind_spmv(self):
        comm = SimComm(summit(), 8, Tracer())
        recv = [{(r + 1) % 8: 4096.0} for r in range(8)]
        req = comm.post_ihalo(recv)
        comm.charge_local("spmv", [1.0] * 8)  # way more than the halo
        comm.wait(req)
        assert comm.tracer.kernel_seconds("other", "halo") == 0.0
        assert comm.tracer.overlapped_seconds(kernel="halo") > 0.0

    def test_descriptor_count_validated(self, comm4):
        with pytest.raises(CommunicatorError):
            comm4.post_ihalo([{0: 1.0}] * 3)


class TestWaitErrors:
    def test_double_wait_raises(self, comm4):
        req = comm4.post_iallreduce_sum([np.ones(2)] * 4)
        comm4.wait(req)
        with pytest.raises(CommunicatorError, match="twice"):
            comm4.wait(req)

    def test_foreign_request_raises(self, comm4):
        other = SimComm(generic_cpu(), 4, Tracer())
        req = other.post_iallreduce_sum([np.ones(2)] * 4)
        with pytest.raises(CommunicatorError, match="different communicator"):
            comm4.wait(req)

    def test_bcast_root_validated(self, comm4):
        with pytest.raises(CommunicatorError, match="root"):
            comm4.post_ibcast(np.ones(2), root=7)
        with pytest.raises(CommunicatorError, match="root"):
            comm4.bcast(np.ones(2), root=-1)


class TestBcastCost:
    def test_single_rank_is_free(self):
        comm = SimComm(generic_cpu(), 1, Tracer())
        comm.bcast(np.ones(100))
        assert comm.tracer.clock == 0.0

    def test_cheaper_than_allreduce(self):
        a = SimComm(summit(), 24, Tracer())
        b = SimComm(summit(), 24, Tracer())
        a.bcast(np.ones(64))
        b.allreduce_sum([np.ones(64)] * 24)
        assert 0.0 < a.tracer.clock < b.tracer.clock

    def test_counts_as_bcast_kernel(self, comm4):
        comm4.bcast(np.ones(4))
        assert comm4.tracer.counts[("other", "bcast")] == 1


class TestOverlapSpans:
    def test_post_marker_and_window_span(self, comm4):
        comm4.tracer.enable_spans()
        shards = [np.ones(16)] * 4
        req = comm4.post_iallreduce_sum(shards)
        comm4.charge_local("spmv", [1e-3] * 4)
        comm4.wait(req)
        cats = {s.cat: s for s in comm4.tracer.spans}
        post = cats["post"]
        assert post.duration == 0.0  # zero-duration wire marker
        window = cats["comm_overlap"]
        assert window.t0 == post.t0
        assert window.duration == pytest.approx(1e-3)  # post .. wait-start

    def test_no_window_span_without_compute(self, comm4):
        comm4.tracer.enable_spans()
        comm4.wait(comm4.post_iallreduce_sum([np.ones(4)] * 4))
        assert all(s.cat != "comm_overlap" for s in comm4.tracer.spans)

    def test_exposed_charge_span_carries_overlapped(self, comm4):
        comm4.tracer.enable_spans()
        req = comm4.post_iallreduce_sum([np.ones(2048)] * 4)
        comm4.charge_local("spmv", [1e-7] * 4)
        comm4.wait(req)
        charge = [s for s in comm4.tracer.spans
                  if s.cat == "kernel" and s.name == "allreduce"][-1]
        assert charge.overlapped_seconds == pytest.approx(1e-7)
        assert charge.to_dict()["overlapped_seconds"] == \
            charge.overlapped_seconds


class TestTracerOverlapAccounting:
    def test_totals_carry_overlapped_dimension(self, comm4):
        snap = comm4.tracer.snapshot()
        req = comm4.post_iallreduce_sum([np.ones(2048)] * 4)
        comm4.charge_local("spmv", [1e-7] * 4)
        comm4.wait(req)
        totals = comm4.tracer.since(snap)
        assert totals.overlapped[("other", "allreduce")] == \
            pytest.approx(1e-7)
        doc = totals.to_dict()
        assert doc["overlapped"]["other/allreduce"] == pytest.approx(1e-7)

    def test_report_mentions_hidden_comm(self, comm4):
        req = comm4.post_iallreduce_sum([np.ones(2048)] * 4)
        comm4.charge_local("spmv", [1e-7] * 4)
        comm4.wait(req)
        assert "hidden comm" in comm4.tracer.report()

    def test_reset_clears_overlapped(self, comm4):
        req = comm4.post_iallreduce_sum([np.ones(2048)] * 4)
        comm4.charge_local("spmv", [1e-7] * 4)
        comm4.wait(req)
        comm4.tracer.reset()
        assert comm4.tracer.overlapped_seconds() == 0.0
