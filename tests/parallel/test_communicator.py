"""Simulated communicator: tree reductions, fused collectives, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CommunicatorError
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu, summit
from repro.parallel.tracing import Tracer


class TestAllreduce:
    def test_sums_correctly(self, comm4):
        shards = [np.full((2, 2), float(r)) for r in range(4)]
        out = comm4.allreduce_sum(shards)
        np.testing.assert_array_equal(out, np.full((2, 2), 6.0))

    def test_tree_order_matches_pairwise(self, comm4):
        rng = np.random.default_rng(7)
        shards = [rng.standard_normal((3,)) for _ in range(4)]
        out = comm4.allreduce_sum(shards)
        expected = (shards[0] + shards[2]) + (shards[1] + shards[3])
        np.testing.assert_array_equal(out, expected)

    def test_charges_time_and_counts(self, comm4):
        before = comm4.tracer.clock
        comm4.allreduce_sum([np.zeros(4)] * 4)
        assert comm4.tracer.clock > before
        assert comm4.tracer.sync_count() == 1

    def test_wrong_shard_count(self, comm4):
        with pytest.raises(CommunicatorError):
            comm4.allreduce_sum([np.zeros(2)] * 3)

    def test_scalar(self, comm4):
        assert comm4.allreduce_scalar([1.0, 2.0, 3.0, 4.0]) == 10.0


class TestFusedAllreduce:
    def test_single_latency_charge(self, comm4):
        g1 = [np.ones(3)] * 4
        g2 = [np.ones((2, 2))] * 4
        out = comm4.fused_allreduce_sum([g1, g2])
        np.testing.assert_array_equal(out[0], 4 * np.ones(3))
        np.testing.assert_array_equal(out[1], 4 * np.ones((2, 2)))
        assert comm4.tracer.sync_count() == 1  # ONE collective for both

    def test_fused_cheaper_than_separate(self):
        m = summit()
        a = SimComm(m, 24, Tracer())
        b = SimComm(m, 24, Tracer())
        payload = [np.ones(16)] * 24
        a.fused_allreduce_sum([payload, payload])
        b.allreduce_sum(payload)
        b.allreduce_sum(payload)
        assert a.tracer.clock < b.tracer.clock

    def test_empty(self, comm4):
        assert comm4.fused_allreduce_sum([]) == []


class TestLocalCharges:
    def test_charge_local_takes_max(self, comm4):
        comm4.charge_local("dot", [1.0, 5.0, 2.0, 3.0])
        assert comm4.tracer.kernel_seconds("other", "dot") == 5.0

    def test_charge_local_wrong_count(self, comm4):
        with pytest.raises(CommunicatorError):
            comm4.charge_local("dot", [1.0, 2.0])

    def test_charge_halo(self, comm4):
        comm4.charge_halo([{1: 800.0}, {0: 800.0}, {3: 800.0}, {2: 800.0}])
        assert comm4.tracer.kernel_seconds("other", "halo") > 0

    def test_size_validation(self):
        with pytest.raises(CommunicatorError):
            SimComm(generic_cpu(), 0)


class TestAllreducePayloadWordSize:
    """Low-precision reductions (fp32 contribution partials) charge their
    payload at the storage word size; fp64 stays bit-identical to the
    historical always-8-byte sizing."""

    def test_fp64_payload_matches_result_nbytes(self, comm4):
        shards = [np.ones((3, 3)) for _ in range(4)]
        comm4.allreduce_sum(shards)
        expected = comm4.cost.allreduce(9 * 8.0, 4)
        assert comm4.tracer.kernel_seconds("other", "allreduce") == expected

    def test_fp32_contributions_charge_half_payload(self):
        m = summit()
        a = SimComm(m, 24, Tracer())
        b = SimComm(m, 24, Tracer())
        a.allreduce_sum([np.ones((8, 8), dtype=np.float32)] * 24)
        b.allreduce_sum([np.ones((8, 8))] * 24)
        assert a.tracer.clock == a.cost.allreduce(64 * 4.0, 24)
        assert b.tracer.clock == b.cost.allreduce(64 * 8.0, 24)
        assert a.tracer.clock < b.tracer.clock

    def test_fp32_result_is_still_float64(self, comm4):
        """The reduction tree stays float64 regardless of what travels."""
        out = comm4.allreduce_sum([np.ones(4, dtype=np.float32)] * 4)
        assert out.dtype == np.float64

    def test_stacked_variant_matches_loop_variant(self):
        m = summit()
        a = SimComm(m, 8, Tracer())
        b = SimComm(m, 8, Tracer())
        stack = np.ones((8, 4, 4), dtype=np.float32)
        a.allreduce_sum_stacked(stack)
        b.allreduce_sum(list(stack))
        assert a.tracer.clock == b.tracer.clock

    def test_fused_mixed_precision_groups(self):
        """Each group travels at its own contribution word size."""
        m = summit()
        comm = SimComm(m, 8, Tracer())
        g32 = [np.ones(16, dtype=np.float32)] * 8
        g64 = [np.ones(16)] * 8
        comm.fused_allreduce_sum([g32, g64])
        expected = comm.cost.allreduce(16 * 4.0 + 16 * 8.0, 8)
        assert comm.tracer.clock == expected
