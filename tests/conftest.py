"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov.simulation import Simulation
from repro.matrices.stencil import laplace2d
from repro.parallel.machine import generic_cpu, summit
from repro.parallel.communicator import SimComm
from repro.parallel.tracing import Tracer


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def comm4() -> SimComm:
    """A 4-rank communicator on the generic CPU machine."""
    return SimComm(generic_cpu(), 4, Tracer())


@pytest.fixture
def comm_summit() -> SimComm:
    return SimComm(summit(), 12, Tracer())


@pytest.fixture
def small_sim() -> Simulation:
    """20x20 Laplacian distributed over 4 ranks (400 unknowns)."""
    return Simulation(laplace2d(20), ranks=4, machine=generic_cpu())
