"""Leave-one-out a-posteriori embedding-quality estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.sketch import (
    leave_one_out_distortion,
    make_operator,
    sketch_rows,
)


def _sketched_orthonormal(family: str, n: int, k: int, m: int,
                          seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    q = np.linalg.qr(rng.standard_normal((n, k)))[0]
    op = make_operator(family, n, m, seed=seed)
    return op.apply(q)


class TestLeaveOneOutDistortion:
    def test_healthy_embedding_is_certified(self):
        """A generously sized Gaussian embedding of an orthonormal basis
        yields a finite, small estimate."""
        sv = _sketched_orthonormal("gaussian", 4000, 10, 800)
        est = leave_one_out_distortion(sv)
        assert np.isfinite(est)
        assert 0.0 < est < 0.5

    def test_estimate_shrinks_with_more_rows(self):
        small = leave_one_out_distortion(
            _sketched_orthonormal("gaussian", 4000, 10, 120))
        big = leave_one_out_distortion(
            _sketched_orthonormal("gaussian", 4000, 10, 2000))
        assert big < small

    def test_overestimates_never_zero(self):
        """The split halves have fewer rows than the full sketch, so the
        estimate upper-bounds the sketch's own distortion direction —
        it cannot report a perfect isometry for a random embedding."""
        sv = _sketched_orthonormal("sparse", 2000, 8,
                                   sketch_rows(8, 2000, family="sparse"))
        assert leave_one_out_distortion(sv) > 0.0

    def test_rank_deficient_sketch_fails_certification(self):
        # duplicated columns: the whitening half cannot be full rank
        sv = np.repeat(np.random.default_rng(1).standard_normal((64, 3)),
                       2, axis=1)
        assert leave_one_out_distortion(sv) == np.inf

    def test_too_few_rows_fails_certification(self):
        sv = np.random.default_rng(2).standard_normal((9, 5))
        assert leave_one_out_distortion(sv) == np.inf

    def test_empty_basis(self):
        assert leave_one_out_distortion(np.zeros((32, 0))) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            leave_one_out_distortion(np.zeros(7))

    def test_exact_isometry_certifies_near_zero(self):
        """When both halves see identical, exactly isometric geometry the
        estimate collapses to ~0 (each scaled half is orthonormal)."""
        rng = np.random.default_rng(3)
        q = np.linalg.qr(rng.standard_normal((50, 6)))[0]
        inter = np.empty((100, 6))
        inter[0::2] = q / np.sqrt(2.0)
        inter[1::2] = q / np.sqrt(2.0)
        assert leave_one_out_distortion(inter) < 1e-10
