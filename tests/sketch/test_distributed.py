"""Distributed sketch application: engine equivalence, costs, syncs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import config
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError
from repro.parallel.communicator import SimComm
from repro.parallel.machine import generic_cpu
from repro.parallel.partition import Partition
from repro.parallel.tracing import Tracer
from repro.sketch import make_operator, sketch_multivector

FAMILIES = ["sparse", "gaussian", "srht"]
M_ROWS = 24
K = 3


def sketch_under(engine: str, family: str, n: int, ranks: int,
                 seed: int = 17):
    comm = SimComm(generic_cpu(), ranks, Tracer())
    part = Partition(n, ranks)
    rng = np.random.default_rng(0)
    v = DistMultiVector.from_global(rng.standard_normal((n, K)), part, comm)
    op = make_operator(family, n, M_ROWS, seed=seed)
    with config.engine_scope(engine):
        out = sketch_multivector(v, op)
    return out, comm.tracer, op, v


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("ranks,n", [(4, 96), (8, 96), (8, 101), (3, 37)],
                         ids=["uniform4", "uniform8", "ragged8", "ragged3"])
class TestEngineEquivalence:
    def test_bit_identical_across_engines(self, family, ranks, n):
        loop, _, _, _ = sketch_under("loop", family, n, ranks)
        batched, _, _, _ = sketch_under("batched", family, n, ranks)
        np.testing.assert_array_equal(batched, loop)

    def test_charged_costs_identical(self, family, ranks, n):
        _, t_loop, _, _ = sketch_under("loop", family, n, ranks)
        _, t_batched, _, _ = sketch_under("batched", family, n, ranks)
        assert t_batched.clock == t_loop.clock
        assert dict(t_batched.by_kernel) == dict(t_loop.by_kernel)
        assert dict(t_batched.counts) == dict(t_loop.counts)

    def test_matches_in_memory_apply(self, family, ranks, n):
        out, _, op, v = sketch_under("batched", family, n, ranks)
        ref = op.apply(v.to_global())
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-13)


class TestProtocol:
    def test_single_synchronization(self):
        _, tracer, _, _ = sketch_under("loop", "sparse", 96, 8)
        assert tracer.sync_count() == 1
        _, tracer, _, _ = sketch_under("batched", "sparse", 96, 8)
        assert tracer.sync_count() == 1

    def test_rank_count_invariance(self):
        """The sketch is a property of (operator, V), not of the
        partition: different rank counts agree to reduction rounding."""
        ref, _, _, _ = sketch_under("loop", "sparse", 96, 2)
        for ranks in (3, 8):
            out, _, _, _ = sketch_under("batched", "sparse", 96, ranks)
            np.testing.assert_allclose(out, ref, rtol=1e-13, atol=1e-14)

    def test_height_mismatch_rejected(self):
        comm = SimComm(generic_cpu(), 4, Tracer())
        part = Partition(96, 4)
        v = DistMultiVector.zeros(part, comm, K)
        op = make_operator("sparse", 97, M_ROWS, seed=0)
        with pytest.raises(ShapeError):
            sketch_multivector(v, op)

    def test_explicit_engine_argument(self):
        comm = SimComm(generic_cpu(), 4, Tracer())
        part = Partition(96, 4)
        rng = np.random.default_rng(1)
        v = DistMultiVector.from_global(rng.standard_normal((96, K)),
                                        part, comm)
        op = make_operator("sparse", 96, M_ROWS, seed=2)
        a = sketch_multivector(v, op, engine="loop")
        b = sketch_multivector(v, op, engine="batched")
        np.testing.assert_array_equal(a, b)


class TestFusedDotSketch:
    @pytest.mark.parametrize("n", [96, 101], ids=["uniform", "ragged"])
    def test_fused_matches_separate_and_one_sync(self, n):
        from repro.ortho.backend import DistBackend
        comm = SimComm(generic_cpu(), 8, Tracer())
        part = Partition(n, 8)
        rng = np.random.default_rng(5)
        q = DistMultiVector.from_global(rng.standard_normal((n, 4)),
                                        part, comm)
        v = DistMultiVector.from_global(rng.standard_normal((n, K)),
                                        part, comm)
        op = make_operator("sparse", n, M_ROWS, seed=9)
        for engine in ("loop", "batched"):
            backend = DistBackend(comm, engine=engine)
            before = comm.tracer.sync_count()
            (p,), sv = backend.fused_dots_sketch([(q, v)], v, op)
            assert comm.tracer.sync_count() - before == 1
            np.testing.assert_allclose(p, backend.dot(q, v), rtol=1e-13)
            np.testing.assert_array_equal(sv, backend.sketch(v, op))
