"""Sketch operators: determinism, shard-locality, embedding quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sketch import (
    OPERATOR_FAMILIES,
    GaussianSketch,
    SRHTSketch,
    SketchOperator,
    SparseSignSketch,
    canonical_family,
    derive_seed,
    embedding_dim,
    make_operator,
    sketch_rows,
)
from repro.sketch.operators import _GAUSS_CHUNK
from repro.utils.rng import haar_orthonormal

FAMILIES = ["sparse", "gaussian", "srht", "srht_fft"]


class TestSeeding:
    def test_derive_seed_stable(self):
        a = derive_seed(7, "ctx", 3, 5)
        assert a == derive_seed(7, "ctx", 3, 5)
        assert 0 <= a < 2 ** 63

    def test_derive_seed_sensitive_to_context(self):
        base = derive_seed(7, "ctx", 3, 5)
        assert base != derive_seed(8, "ctx", 3, 5)
        assert base != derive_seed(7, "ctx", 3, 6)
        assert base != derive_seed(7, "other", 3, 5)

    def test_type_distinction(self):
        # the int 3 and the string "3" must not collide
        assert derive_seed(0, 3) != derive_seed(0, "3")


@pytest.mark.parametrize("family", FAMILIES)
class TestOperatorContract:
    def test_deterministic(self, family):
        a = make_operator(family, 200, 24, seed=11)
        b = make_operator(family, 200, 24, seed=11)
        np.testing.assert_array_equal(a.matrix(), b.matrix())
        c = make_operator(family, 200, 24, seed=12)
        assert not np.array_equal(a.matrix(), c.matrix())

    def test_partial_matches_matrix(self, family, rng):
        op = make_operator(family, 150, 20, seed=5)
        v = rng.standard_normal((150, 4))
        np.testing.assert_allclose(op.apply(v), op.matrix() @ v,
                                   rtol=1e-12, atol=1e-13)

    def test_partition_independence(self, family, rng):
        """Summed shard partials equal the full sketch, bitwise, for any
        row split — the property the distributed layer relies on."""
        n = 173
        op = make_operator(family, n, 16, seed=3)
        v = rng.standard_normal((n, 3))
        full = op.apply(v)
        for cuts in ([40, 90, 130], [1, 2, 172], [86]):
            bounds = [0, *cuts, n]
            total = sum(op.partial(v[lo:hi], lo)
                        for lo, hi in zip(bounds, bounds[1:]))
            np.testing.assert_allclose(total, full, rtol=1e-13, atol=1e-14)

    def test_partial_stack_bit_identical_to_loop(self, family, rng):
        n, ranks = 160, 8
        op = make_operator(family, n, 16, seed=9)
        stack = rng.standard_normal((ranks, n // ranks, 3))
        loop = np.stack([op.partial(stack[r], r * (n // ranks))
                         for r in range(ranks)])
        np.testing.assert_array_equal(op.partial_stack(stack), loop)

    def test_embedding_quality(self, family, rng):
        """Singular values of S Q stay within a constant band for an
        orthonormal Q at the heuristic embedding dimension."""
        n, k = 800, 10
        q = haar_orthonormal(n, k, rng)
        m = embedding_dim(k, family=family)
        op = make_operator(family, n, m, seed=21)
        s = np.linalg.svd(op.apply(q), compute_uv=False)
        assert 0.3 < s[-1] and s[0] < 1.7

    def test_apply_validates_height(self, family, rng):
        op = make_operator(family, 100, 12, seed=1)
        with pytest.raises(ConfigurationError):
            op.apply(rng.standard_normal((99, 2)))

    def test_repr_and_shape(self, family):
        op = make_operator(family, 64, 8, seed=2)
        assert op.shape == (8, 64)
        assert type(op).__name__ in repr(op)


class TestSparseSign:
    def test_countsketch_single_nnz_columns(self):
        op = SparseSignSketch(50, 8, seed=4)
        s = op.matrix()
        # exactly one +-1 per input row (CountSketch)
        assert np.all(np.count_nonzero(s, axis=0) == 1)
        assert set(np.unique(s[s != 0])) <= {-1.0, 1.0}

    def test_multi_nnz_scaling(self):
        op = SparseSignSketch(50, 16, seed=4, nnz_per_row=4)
        s = op.matrix()
        counts = np.count_nonzero(s, axis=0)
        assert np.all(counts >= 1) and np.all(counts <= 4)
        # collision-free rows carry unit weight (4 entries of 1/sqrt(4))
        clean = counts == 4
        assert clean.any()
        np.testing.assert_allclose(np.sum(s * s, axis=0)[clean], 1.0)

    def test_nnz_validation(self):
        with pytest.raises(ConfigurationError):
            SparseSignSketch(50, 8, seed=0, nnz_per_row=0)


class TestGaussian:
    def test_chunk_boundary_consistency(self, rng):
        """Row generation must not depend on where a shard starts,
        including across the chunk boundary."""
        n = _GAUSS_CHUNK + 100
        op = make_operator("gaussian", n, 6, seed=13)
        fresh = make_operator("gaussian", n, 6, seed=13)
        lo, hi = _GAUSS_CHUNK - 5, _GAUSS_CHUNK + 5
        v = rng.standard_normal((hi - lo, 2))
        np.testing.assert_array_equal(op.partial(v, lo),
                                      fresh.partial(v, lo))

    def test_variance_scaling(self):
        op = GaussianSketch(3000, 60, seed=8)
        s = op.matrix()
        assert np.var(s) * op.m_rows == pytest.approx(1.0, rel=0.05)

    def test_empty_shard_contribution(self):
        """Over-decomposed partitions hand empty shards to partial();
        the contribution is zero, including at chunk-aligned offsets."""
        op = GaussianSketch(2 * _GAUSS_CHUNK, 6, seed=3)
        for offset in (0, 100, _GAUSS_CHUNK):
            out = op.partial(np.zeros((0, 2)), offset)
            np.testing.assert_array_equal(out, np.zeros((6, 2)))


class TestSRHT:
    def test_orthogonal_rows(self):
        """Distinct Walsh rows are orthogonal: S S.T diagonal when the
        input length is already a power of two."""
        op = SRHTSketch(64, 12, seed=6)
        g = op.matrix() @ op.matrix().T
        off = g - np.diag(np.diag(g))
        np.testing.assert_allclose(off, 0.0, atol=1e-12)
        np.testing.assert_allclose(np.diag(g), 64 / 12, rtol=1e-12)

    def test_m_exceeding_padding_rejected(self):
        with pytest.raises(ConfigurationError):
            SRHTSketch(10, 17, seed=0)  # pad = 16 < 17


class TestFastSRHT:
    """The FFT-path SRHT family: same embedding, butterfly application."""

    def test_same_draw_as_closed_form_twin(self):
        """``srht_fft`` inherits the seed derivation, so the same
        ``(n, m, seed)`` produces the SAME operator as ``srht`` — values
        agree to summation-order rounding (butterflies vs GEMM dots)."""
        from repro.sketch import FastSRHTSketch
        slow = SRHTSketch(173, 24, seed=9)
        fast = FastSRHTSketch(173, 24, seed=9)
        np.testing.assert_array_equal(slow._d, fast._d)
        np.testing.assert_array_equal(slow._selected, fast._selected)
        np.testing.assert_allclose(fast.matrix(), slow.matrix(),
                                   rtol=1e-13, atol=1e-14)

    def test_stacked_shard_transforms_once(self):
        """partial_stack runs ONE vectorized transform over the whole
        (ranks, n_pad, k) shard stack — and stays bit-identical to the
        per-rank loop (the engine-equivalence contract)."""
        from repro.sketch import FastSRHTSketch
        rng = np.random.default_rng(4)
        n, ranks, k = 160, 8, 5
        op = FastSRHTSketch(n, 16, seed=2)
        stack = rng.standard_normal((ranks, n // ranks, k))
        loop = np.stack([op.partial(stack[r], r * (n // ranks))
                         for r in range(ranks)])
        np.testing.assert_array_equal(op.partial_stack(stack), loop)
        np.testing.assert_allclose(
            loop.sum(axis=0), op.matrix() @ stack.reshape(n, k),
            rtol=1e-12, atol=1e-13)

    def test_local_cost_uses_fast_transform_entry(self):
        """Modeled cost switches from the dense-GEMM default to the
        cost model's ``srht_apply`` (n log n butterflies)."""
        from repro.parallel.costmodel import CostModel
        from repro.parallel.machine import generic_cpu
        from repro.sketch import FastSRHTSketch
        cost = CostModel(generic_cpu())
        slow = SRHTSketch(4096, 64, seed=0)
        fast = FastSRHTSketch(4096, 64, seed=0)
        assert fast.local_cost(cost, 4096, 8) \
            == cost.srht_apply(fast.n_pad, 8, 64)
        # ... and at this size the fast transform is modeled cheaper
        assert fast.local_cost(cost, 4096, 8) < slow.local_cost(
            cost, 4096, 8)

    def test_registry_aliases(self):
        from repro.sketch import FastSRHTSketch
        assert canonical_family("srht_fft") == "srhtfft"
        assert canonical_family("SRHT-FFT") == "srhtfft"
        op = make_operator("srht_fft", 100, 12, seed=1)
        assert isinstance(op, FastSRHTSketch)
        assert op.family == "srht_fft"
        # the padded-length clamp extends to the fft family
        assert sketch_rows(12, 16, family="srht_fft", oversample=50) <= 16


class TestSizingAndRegistry:
    def test_embedding_dim_families(self):
        assert embedding_dim(10, family="sparse") == 4 * 18
        assert embedding_dim(10, family="gaussian") == 2 * 18
        # distortion scaling: half the distortion, 4x the rows
        assert embedding_dim(10, family="gaussian", distortion=0.25) \
            == 8 * 18

    def test_embedding_dim_validation(self):
        with pytest.raises(ConfigurationError):
            embedding_dim(0)
        with pytest.raises(ConfigurationError):
            embedding_dim(5, distortion=1.5)

    def test_sketch_rows_oversample_and_clamp(self):
        assert sketch_rows(5, 10_000, oversample=4) == 20
        assert sketch_rows(5, 12, oversample=4) == 13  # clamp to k+8
        assert sketch_rows(1, 10_000, oversample=2) == 9  # min pad

    def test_sketch_rows_srht_padding_clamp(self):
        """Short, wide panels: the SRHT clamp must respect the padded
        length it samples from, and construction must succeed for every
        family at the size sketch_rows returns."""
        k, n = 12, 16
        for family in FAMILIES:
            m = sketch_rows(k, n, family=family)
            assert m >= k
            op = make_operator(family, n, m, seed=1)
            assert op.shape == (m, n)
        assert sketch_rows(k, n, family="srht") <= 16  # n_pad

    def test_canonical_family(self):
        assert canonical_family("CountSketch") == "sparse"
        assert canonical_family("sparse-sign") == "sparse"
        assert canonical_family("SRHT") == "srht"
        with pytest.raises(ConfigurationError):
            canonical_family("fourier")

    def test_make_operator_and_families(self):
        for name in OPERATOR_FAMILIES:
            op = make_operator(name, 40, 10, seed=0)
            assert isinstance(op, SketchOperator)

    def test_operator_param_validation(self):
        with pytest.raises(ConfigurationError):
            SparseSignSketch(0, 4, seed=0)
        with pytest.raises(ConfigurationError):
            GaussianSketch(10, 0, seed=0)
