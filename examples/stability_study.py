#!/usr/bin/env python
"""Stability study: where each orthogonalization scheme keeps O(eps).

Reproduces the paper's Section VI numerics interactively: glued matrices
with prescribed per-panel conditioning feed every block scheme; the
script reports orthogonality error and, when a scheme's stability
condition fails, the Cholesky breakdown — then shows the remedies
(shifted / mixed-precision / sketched CholQR) absorbing the same panels.

    python examples/stability_study.py [--n 20000]
"""

from __future__ import annotations

import argparse

from repro.exceptions import CholeskyBreakdownError
from repro.matrices.synthetic import glued_matrix, logscaled_matrix
from repro.ortho import (
    BCGS2Scheme,
    BCGSPIP2Scheme,
    BCGSPIPScheme,
    CholQR2,
    MixedPrecisionCholQR,
    ShiftedCholQR,
    SketchedCholQR,
    TwoStageScheme,
)
from repro.ortho.analysis import orthogonality_error
from repro.ortho.backend import NumpyBackend
from repro.ortho.base import BlockDriver
from repro.utils.formatting import render_table
from repro.utils.rng import default_rng


def scheme_sweep(n: int) -> None:
    print("== inter-block schemes on glued matrices "
          "(panel kappa sweeps, growth 2x per panel) ==")
    rows = []
    for panel_cond in (1e3, 1e7, 1e11):
        g = glued_matrix(n, 5, 12, panel_cond=panel_cond, growth=2.0,
                         rng=default_rng(17))
        cells = [f"{panel_cond:.0e}"]
        for scheme_f in (lambda: BCGS2Scheme(),
                         lambda: BCGSPIPScheme(),
                         lambda: BCGSPIP2Scheme(),
                         lambda: TwoStageScheme(big_step=60)):
            try:
                out = BlockDriver(scheme_f(), 5).run(g.matrix)
                cells.append(f"{orthogonality_error(out.q):.1e}")
            except CholeskyBreakdownError:
                cells.append("breakdown")
        rows.append(cells)
    print(render_table(
        ["panel kappa", "bcgs2", "pip (1 pass)", "pip2", "two-stage"],
        rows))
    print("pip's single pass degrades as kappa^2*eps; the twice-applied "
          "schemes and the two-stage scheme hold O(eps) until the "
          "Pythagorean Gram loses definiteness.\n")


def intra_sweep(n: int) -> None:
    print("== intra-block remedies on one ill-conditioned panel ==")
    nb = NumpyBackend()
    rows = []
    for kappa in (1e6, 1e10, 1e14):
        cells = [f"{kappa:.0e}"]
        v = logscaled_matrix(n, 5, kappa, default_rng(23))
        for kernel in (CholQR2(), ShiftedCholQR(), MixedPrecisionCholQR(),
                       SketchedCholQR()):
            q = v.copy()
            try:
                kernel.factor(nb, q)
                cells.append(f"{orthogonality_error(q):.1e}")
            except CholeskyBreakdownError:
                cells.append("breakdown")
        rows.append(cells)
    print(render_table(
        ["kappa(V)", "cholqr2", "shifted", "dd-precision", "sketched"],
        rows))
    print("CholQR2 cliffs near eps^-1/2; the three remedies — including "
          "the randomized sketch the paper lists as future work — extend "
          "the range toward eps^-1.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20_000)
    args = parser.parse_args()
    scheme_sweep(args.n)
    intra_sweep(args.n)


if __name__ == "__main__":
    main()
