#!/usr/bin/env python
"""Strong-scaling study on the simulated Summit (paper Table III shape).

Projects the four solver configurations across 1..32 nodes at the
paper's full problem size using the validated cycle-cost model, then —
optionally — runs a reduced-scale *live* solve at a chosen node count so
you can see that the cost model and the executing simulator agree.

    python examples/laplace_strong_scaling.py [--live-nodes 2]
"""

from __future__ import annotations

import argparse

import repro
from repro.experiments import table3
from repro.experiments.estimator import CycleCostEstimator, ProblemShape
from repro.parallel.machine import summit
from repro.utils.formatting import render_table


def live_check(nodes: int, nx: int = 40) -> None:
    ranks = nodes * 6
    print(f"\n== live simulator check at {nodes} node(s), "
          f"reduced nx={nx} ==")
    a = repro.matrices.laplace2d(nx, stencil=9)
    rows = []
    for label, scheme in [("pip2", repro.BCGSPIP2Scheme()),
                          ("two-stage", repro.TwoStageScheme(60))]:
        sim = repro.Simulation(a, ranks=ranks, machine=summit())
        b = sim.ones_solution_rhs()
        res = repro.sstep_gmres(sim, b, s=5, restart=60, tol=1e-30,
                                maxiter=60, scheme=scheme)
        est = CycleCostEstimator(summit(), ranks,
                                 ProblemShape.stencil2d(nx, 9), m=60, s=5)
        tr = (est.sstep_cycle("two_stage", bs=60) if label == "two-stage"
              else est.sstep_cycle("pip2"))
        model = est.phase_seconds(tr)
        rows.append([label, f"{res.ortho_time * 1e3:.3f}",
                     f"{model['ortho'] * 1e3:.3f}",
                     f"{res.total_time * 1e3:.3f}",
                     f"{model['total'] * 1e3:.3f}"])
    print(render_table(
        ["scheme", "live ortho ms", "model ortho ms", "live total ms",
         "model total ms"], rows,
        title="one live restart cycle vs the analytic cost model"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--live-nodes", type=int, default=2)
    parser.add_argument("--skip-live", action="store_true")
    args = parser.parse_args()
    print(table3.run().render())
    if not args.skip_live:
        live_check(args.live_nodes)


if __name__ == "__main__":
    main()
