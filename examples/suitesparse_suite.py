#!/usr/bin/env python
"""Run the solver suite over the SuiteSparse surrogates (Table IV shape).

For each surrogate: build it at a runnable size, apply the paper's
column/row scaling, solve with all four configurations, and print
iteration counts plus modeled per-iteration times.  With a real
SuiteSparse download, point ``--mtx`` at a MatrixMarket file to run the
same study on the genuine matrix.

    python examples/suitesparse_suite.py [--run-n 8000]
    python examples/suitesparse_suite.py --mtx path/to/ecology2.mtx
"""

from __future__ import annotations

import argparse

import numpy as np
import scipy.sparse as sp

import repro
from repro.matrices.io import read_matrix_market
from repro.matrices.suitesparse import build_surrogate, scale_columns_rows
from repro.utils.formatting import render_table

MATRICES = ["ecology2", "thermal2", "atmosmodl"]


def regularized(a: sp.csr_matrix) -> sp.csr_matrix:
    """Shift to make the scaled surrogate solvable at laptop scale."""
    n = a.shape[0]
    return (a + 0.05 * sp.identity(n, format="csr")).tocsr()


def solve_suite(a: sp.csr_matrix, name: str, tol: float) -> None:
    print(f"== {name}: n = {a.shape[0]}, nnz/row = {a.nnz / a.shape[0]:.1f} ==")
    configs = [
        ("gmres", "standard", None),
        ("bcgs2", "sstep", repro.BCGS2Scheme()),
        ("pip2", "sstep", repro.BCGSPIP2Scheme()),
        ("two-stage", "sstep", repro.TwoStageScheme(60)),
    ]
    rows = []
    for label, kind, scheme in configs:
        sim = repro.Simulation(a, ranks=6)
        b = sim.ones_solution_rhs()
        if kind == "standard":
            res = repro.gmres(sim, b, restart=60, tol=tol, maxiter=12_000)
        else:
            res = repro.sstep_gmres(sim, b, s=5, restart=60, tol=tol,
                                    maxiter=12_000, scheme=scheme)
        rows.append([label, res.iterations,
                     f"{res.relative_residual:.1e}",
                     f"{res.time_per_iteration() * 1e6:.1f}",
                     f"{res.ortho_time / max(res.iterations, 1) * 1e6:.1f}",
                     "yes" if res.converged else "NO"])
    print(render_table(
        ["config", "iters", "rel.res", "us/iter (total)", "us/iter (ortho)",
         "converged"], rows))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run-n", type=int, default=8000)
    parser.add_argument("--tol", type=float, default=1e-6)
    parser.add_argument("--mtx", type=str, default=None,
                        help="MatrixMarket file of a real matrix")
    args = parser.parse_args()
    if args.mtx:
        a = scale_columns_rows(read_matrix_market(args.mtx))
        solve_suite(regularized(a), args.mtx, args.tol)
        return
    for name in MATRICES:
        a = build_surrogate(name, run_n=args.run_n,
                            rng=np.random.default_rng(11))
        solve_suite(regularized(a), f"{name} (surrogate)", args.tol)


if __name__ == "__main__":
    main()
