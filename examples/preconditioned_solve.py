#!/usr/bin/env python
"""Preconditioned s-step GMRES (the paper's Fig. 13 configuration).

Solves a convection-diffusion problem with the local Gauss-Seidel
preconditioner (block Jacobi with multicolor Gauss-Seidel per block) and
compares iteration counts and modeled times against the unpreconditioned
solver and a Chebyshev polynomial alternative.

    python examples/preconditioned_solve.py [--nx 48]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.precond import (
    BlockJacobiPreconditioner,
    ChebyshevPreconditioner,
    JacobiPreconditioner,
)
from repro.utils.formatting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=48)
    parser.add_argument("--tol", type=float, default=1e-8)
    args = parser.parse_args()

    a = repro.matrices.convection_diffusion_2d(args.nx, wind=(1.0, 0.3),
                                               diffusion=5e-2)
    print(f"problem: upwinded convection-diffusion, n = {a.shape[0]} "
          f"(nonsymmetric)\n")
    configs = [
        ("none", None),
        ("jacobi", JacobiPreconditioner()),
        ("block-jacobi/GS (paper Fig. 13)", BlockJacobiPreconditioner()),
        ("block-jacobi/GS x2 sweeps", BlockJacobiPreconditioner(sweeps=2)),
    ]
    rows = []
    for label, precond in configs:
        sim = repro.Simulation(a, ranks=6)
        b = sim.ones_solution_rhs()
        res = repro.sstep_gmres(sim, b, s=5, restart=30, tol=args.tol,
                                maxiter=20_000,
                                scheme=repro.TwoStageScheme(big_step=30),
                                precond=precond)
        err = float(np.max(np.abs(res.x - 1.0)))
        rows.append([label, res.iterations, f"{err:.1e}",
                     f"{res.times.get('precond', 0.0) * 1e3:.2f}",
                     f"{res.ortho_time * 1e3:.2f}",
                     f"{res.total_time * 1e3:.2f}",
                     "yes" if res.converged else "NO"])
    print(render_table(
        ["preconditioner", "iters", "max err", "precond ms", "ortho ms",
         "total ms", "converged"],
        rows, title="two-stage s-step GMRES under different preconditioners"))
    print("\nGauss-Seidel cuts iterations most; being communication-free "
          "it leaves the s-step communication structure (and the "
          "two-stage advantage) intact — the paper's Fig. 13 point.")

    # Chebyshev needs a definite spectrum: demonstrate it on the SPD
    # Laplacian instead of the nonsymmetric operator above.
    a_spd = repro.matrices.laplace2d(args.nx)
    rows = []
    for label, precond in [("none", None),
                           ("chebyshev(8)",
                            ChebyshevPreconditioner(degree=8))]:
        sim = repro.Simulation(a_spd, ranks=6)
        b = sim.ones_solution_rhs()
        res = repro.sstep_gmres(sim, b, s=5, restart=30, tol=args.tol,
                                maxiter=20_000,
                                scheme=repro.TwoStageScheme(big_step=30),
                                precond=precond)
        rows.append([label, res.iterations,
                     f"{res.total_time * 1e3:.2f}",
                     "yes" if res.converged else "NO"])
    print()
    print(render_table(
        ["preconditioner", "iters", "total ms", "converged"], rows,
        title=f"Chebyshev on the SPD Laplacian (n = {a_spd.shape[0]})"))


if __name__ == "__main__":
    main()
