#!/usr/bin/env python
"""Quickstart: solve a 2D Laplace system with two-stage s-step GMRES.

Runs the four solver configurations the paper compares (Table III) on a
laptop-sized 2D Laplacian over a simulated 12-GPU Summit slice, printing
convergence, modeled times, and synchronization counts.

    python examples/quickstart.py [--nx 64] [--ranks 12]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.utils.formatting import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nx", type=int, default=64,
                        help="grid size (n = nx^2 unknowns)")
    parser.add_argument("--ranks", type=int, default=12,
                        help="simulated GPUs (6 per Summit node)")
    parser.add_argument("--tol", type=float, default=1e-8)
    args = parser.parse_args()

    a = repro.matrices.laplace2d(args.nx, stencil=9)
    print(f"problem: 9-pt 2D Laplace, n = {a.shape[0]}, nnz = {a.nnz}")
    print(f"machine: simulated Summit, {args.ranks} V100 ranks\n")

    configs = [
        ("GMRES + CGS2", "standard", None),
        ("s-step + BCGS2-CholQR2", "sstep", repro.BCGS2Scheme()),
        ("s-step + BCGS-PIP2", "sstep", repro.BCGSPIP2Scheme()),
        ("s-step + two-stage(bs=m)", "sstep", repro.TwoStageScheme(60)),
    ]
    rows = []
    for label, kind, scheme in configs:
        sim = repro.Simulation(a, ranks=args.ranks)
        b = sim.ones_solution_rhs()
        if kind == "standard":
            res = repro.gmres(sim, b, restart=60, tol=args.tol,
                              maxiter=20_000)
        else:
            res = repro.sstep_gmres(sim, b, s=5, restart=60, tol=args.tol,
                                    maxiter=20_000, scheme=scheme,
                                    options=repro.SolverOptions(
                                        mpk_mode="auto"))
        err = float(np.max(np.abs(res.x - 1.0)))
        rows.append([label, res.iterations,
                     f"{res.relative_residual:.2e}", f"{err:.2e}",
                     f"{res.spmv_time * 1e3:.2f}",
                     f"{res.ortho_time * 1e3:.2f}",
                     f"{res.total_time * 1e3:.2f}",
                     res.sync_count])
    print(render_table(
        ["config", "iters", "rel.res", "max err", "SpMV ms",
         "Ortho ms", "Total ms", "syncs"],
        rows, title="four solver configurations (modeled times)"))
    print("\nNote how the orthogonalization time and the synchronization "
          "count fall from CGS2 to BCGS2 to BCGS-PIP2 to two-stage — the "
          "paper's Table III pattern.")


if __name__ == "__main__":
    main()
