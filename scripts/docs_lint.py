#!/usr/bin/env python
"""Docs lint: no dead relative links in the repo's markdown pages.

Scans README.md and docs/*.md for markdown links, resolves every
relative target against the linking file's directory, and fails (exit 1)
listing each target that does not exist.  Fragments are checked too:
``page.md#some-heading`` must match a GitHub-style slug of a heading in
the target page.  External links (http/https/mailto) are ignored — this
is a structural check, not a crawler.

Runs standalone in CI (a non-pytest tier-1 step), so a docs rename can
never leave silently broken cross-references behind.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: Path) -> set[str]:
    return {_slug(h) for h in _HEADING.findall(md_path.read_text())}


def lint_file(md_path: Path) -> list[str]:
    """Return human-readable problems for one markdown file."""
    problems = []
    for target in _LINK.findall(md_path.read_text()):
        if target.startswith(_EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-page anchor
            if fragment and _slug(fragment) not in _anchors(md_path):
                problems.append(f"{md_path.name}: dead anchor #{fragment}")
            continue
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(f"{md_path.name}: dead link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _slug(fragment) not in _anchors(resolved):
                problems.append(
                    f"{md_path.name}: dead anchor -> {target}")
    return problems


def main() -> int:
    pages = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    problems = []
    for page in pages:
        problems.extend(lint_file(page))
    for problem in problems:
        print(f"docs-lint: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"docs-lint: {len(pages)} pages clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
