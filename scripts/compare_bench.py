#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` artifacts and gate CI on the result.

Two checks, combinable in one invocation:

* regression gate (default when two artifacts are given): every benchmark
  present in both files must not be slower than ``baseline * (1 + t)``
  with ``t`` the ``--threshold`` (default 0.20, i.e. 20%).  Benchmarks
  present in only one artifact are reported as ``new`` / ``removed``
  (informational, never a failure); only the degenerate case of *zero*
  shared names fails, because a rename must not turn the gate green by
  vacuity — pass ``--allow-disjoint`` for intentional wholesale renames;
* speedup gate (``--check-speedup NAME``): within the *current* artifact,
  ``NAME[batched]`` must be at least ``--min-speedup`` (default 1.5x)
  faster than ``NAME[loop]`` — the engine claim this repo's CI enforces
  on ``test_block_dot`` and ``test_block_axpy``.

A candidate artifact that is *missing* an entry referenced by
``--check-speedup`` is a configuration error, not a failed gate — the
benchmark was renamed or never ran, and silently "failing" (or worse,
passing) would hide that.  It exits with status 2 and a message naming
the file and every missing entry.

Exit status 0 when all gates pass, 1 when a gate fails, 2 on a
hard configuration error.  Examples::

    python scripts/compare_bench.py benchmarks/BENCH_kernels.json \
        bench-out/BENCH_kernels.json
    python scripts/compare_bench.py bench-out/BENCH_kernels.json \
        --check-speedup test_block_dot --check-speedup test_block_axpy
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.artifacts import compare_artifacts, load_artifact  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json (or the only "
                        "artifact when just --check-speedup is wanted)")
    parser.add_argument("current", nargs="?", default=None,
                        help="current BENCH_*.json to compare against baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional wall-time regression "
                        "(default: 0.20)")
    parser.add_argument("--allow-disjoint", action="store_true",
                        help="do not fail when baseline and current share "
                        "no benchmark names (intentional wholesale rename)")
    parser.add_argument("--check-speedup", action="append", default=[],
                        metavar="NAME",
                        help="require NAME[batched] >= --min-speedup x faster "
                        "than NAME[loop] in the current artifact (repeatable)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required batched-vs-loop speedup (default: 1.5)")
    args = parser.parse_args(argv)

    baseline = load_artifact(args.baseline)
    current = load_artifact(args.current) if args.current else baseline
    failed = False

    if args.current:
        base_names = set(baseline.names())
        cur_names = set(current.names())
        shared = base_names & cur_names
        # One-sided entries are expected churn, not an error: report them
        # so a reviewer sees coverage changes, gate only the shared set.
        for name in sorted(cur_names - base_names):
            print(f"new benchmark (not gated): {name}")
        for name in sorted(base_names - cur_names):
            print(f"removed benchmark: {name}")
        if baseline.benchmarks and not shared and not args.allow_disjoint:
            # A rename must not turn the gate green by vacuity.
            print("GATE VACUOUS: no benchmark names shared between "
                  f"{args.baseline} and {args.current} "
                  "(pass --allow-disjoint if intentional)")
            failed = True
        regressions = compare_artifacts(baseline, current,
                                        threshold=args.threshold)
        for reg in regressions:
            print(f"REGRESSION {reg}")
            failed = True
        if shared and not regressions:
            print(f"regression gate ok: {len(shared)} shared benchmarks "
                  f"within {args.threshold:.0%} of baseline")

    if args.check_speedup:
        candidate = args.current if args.current else args.baseline
        have = set(current.names())
        missing = [entry for name in args.check_speedup
                   for entry in (f"{name}[loop]", f"{name}[batched]")
                   if entry not in have]
        if missing:
            # Hard error, not a failed gate: the artifact cannot answer
            # the question it is being asked (renamed/never-ran bench).
            print(f"ERROR: {candidate} is missing "
                  f"{len(missing)} entr{'y' if len(missing) == 1 else 'ies'} "
                  f"required by --check-speedup: {', '.join(missing)}")
            print("(benchmark renamed or did not run; fix the bench "
                  "invocation or the --check-speedup names)")
            return 2

    for name in args.check_speedup:
        speedup = current.speedup(f"{name}[loop]", f"{name}[batched]")
        ok = speedup >= args.min_speedup
        tag = "ok" if ok else "TOO SLOW"
        print(f"speedup {tag}: {name} batched is {speedup:.2f}x vs loop "
              f"(required {args.min_speedup:.2f}x)")
        failed = failed or not ok

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
