"""CI gate: the disabled span path must stay effectively free.

Two assertions, run in bench-smoke right after ``bench_kernels``:

1. **Micro overhead.**  With spans disabled, one ``Tracer.add`` call
   pays a single ``is not None`` test over the pre-span implementation.
   We time a batch of charges and require the per-call cost to stay
   under an absolute bound generous enough for any CI host but far
   below anything a regression (e.g. unconditional span allocation)
   would produce.

2. **Bit identity.**  Recording spans must not change what is charged:
   the same solve with spans off and spans on must produce
   byte-identical accumulator documents (``Tracer.to_dict``) — the
   committed ``BENCH_*.json`` baselines depend on it.

Run as ``PYTHONPATH=src python scripts/span_overhead_check.py``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.tracing import Tracer

#: Absolute per-call budget for a spans-disabled charge.  A plain
#: accumulator update is ~1 us even on slow CI hosts; tripping 10 us
#: means the disabled path started doing real work.
MAX_DISABLED_US_PER_CALL = 10.0

CALLS = 100_000
ROUNDS = 5


def _time_adds(tracer: Tracer, calls: int) -> float:
    t0 = time.perf_counter()
    for _ in range(calls):
        tracer.add("dot", 1.0e-9)
    return time.perf_counter() - t0


def micro_overhead() -> tuple[float, float]:
    """Median per-call microseconds with spans (disabled, enabled)."""
    disabled, enabled = [], []
    for _ in range(ROUNDS):
        off = Tracer()
        disabled.append(_time_adds(off, CALLS))
        on = Tracer()
        on.enable_spans()
        enabled.append(_time_adds(on, CALLS))
    to_us = 1.0e6 / CALLS
    return (float(np.median(disabled)) * to_us,
            float(np.median(enabled)) * to_us)


def solve_doc(spans: bool) -> dict:
    """Accumulator document of a fixed small solve."""
    sim = Simulation(laplace2d(16), ranks=4, spans=spans)
    b = np.ones(sim.n)
    sstep_gmres(sim, b, s=3, restart=9, tol=1.0e-8, maxiter=200,
                scheme=TwoStageScheme(9))
    return sim.tracer.to_dict()  # accumulators only, never the spans


def main() -> int:
    off_us, on_us = micro_overhead()
    print(f"spans disabled: {off_us:.3f} us/charge   "
          f"enabled: {on_us:.3f} us/charge   "
          f"(bound {MAX_DISABLED_US_PER_CALL} us)")
    if off_us > MAX_DISABLED_US_PER_CALL:
        print("FAIL: disabled-span charge overhead above bound")
        return 1

    doc_off = solve_doc(spans=False)
    doc_on = solve_doc(spans=True)
    if doc_off != doc_on:
        print("FAIL: enabling spans changed the charged accumulators")
        return 1
    print(f"accumulators bit-identical with spans on/off "
          f"(clock {doc_off['clock']!r} s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
