"""CI gate: the disabled span AND metrics paths must stay effectively free.

Three assertions, run in bench-smoke right after ``bench_kernels``:

1. **Micro overhead.**  With spans disabled, one ``Tracer.add`` call
   pays a single ``is not None`` test over the pre-span implementation
   (the metrics feed adds one more).  We time a batch of charges and
   require the per-call cost to stay under an absolute bound generous
   enough for any CI host but far below anything a regression (e.g.
   unconditional span allocation) would produce.

2. **Bit identity (spans).**  Recording spans must not change what is
   charged: the same solve with spans off and spans on must produce
   byte-identical accumulator documents (``Tracer.to_dict``) — the
   committed ``BENCH_*.json`` baselines depend on it.

3. **Bit identity (metrics).**  Attaching a metrics registry must be
   charge-identical and modeled-cost-identical too: the registry only
   *observes* the charge stream and the cost model's (flops, bytes)
   shapes, never the returned seconds.  Asserted the same way, plus a
   sanity check that the enabled registry actually accumulated.

Run as ``PYTHONPATH=src python scripts/span_overhead_check.py``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.krylov.simulation import Simulation
from repro.krylov.sstep_gmres import sstep_gmres
from repro.matrices.stencil import laplace2d
from repro.ortho.two_stage import TwoStageScheme
from repro.parallel.tracing import Tracer

#: Absolute per-call budget for a spans-disabled charge.  A plain
#: accumulator update is ~1 us even on slow CI hosts; tripping 10 us
#: means the disabled path started doing real work.
MAX_DISABLED_US_PER_CALL = 10.0

CALLS = 100_000
ROUNDS = 5


def _time_adds(tracer: Tracer, calls: int) -> float:
    t0 = time.perf_counter()
    for _ in range(calls):
        tracer.add("dot", 1.0e-9)
    return time.perf_counter() - t0


def micro_overhead() -> tuple[float, float]:
    """Median per-call microseconds with spans (disabled, enabled)."""
    disabled, enabled = [], []
    for _ in range(ROUNDS):
        off = Tracer()
        disabled.append(_time_adds(off, CALLS))
        on = Tracer()
        on.enable_spans()
        enabled.append(_time_adds(on, CALLS))
    to_us = 1.0e6 / CALLS
    return (float(np.median(disabled)) * to_us,
            float(np.median(enabled)) * to_us)


def solve_doc(spans: bool = False, metrics: bool = False) -> tuple[dict, dict]:
    """(accumulator document, metrics document) of a fixed small solve."""
    sim = Simulation(laplace2d(16), ranks=4, spans=spans, metrics=metrics)
    b = np.ones(sim.n)
    sstep_gmres(sim, b, s=3, restart=9, tol=1.0e-8, maxiter=200,
                scheme=TwoStageScheme(9))
    # accumulators only, never the spans
    return sim.tracer.to_dict(), sim.metrics_doc()


def main() -> int:
    off_us, on_us = micro_overhead()
    print(f"spans disabled: {off_us:.3f} us/charge   "
          f"enabled: {on_us:.3f} us/charge   "
          f"(bound {MAX_DISABLED_US_PER_CALL} us)")
    if off_us > MAX_DISABLED_US_PER_CALL:
        print("FAIL: disabled-span charge overhead above bound")
        return 1

    doc_off, _ = solve_doc(spans=False)
    doc_on, _ = solve_doc(spans=True)
    if doc_off != doc_on:
        print("FAIL: enabling spans changed the charged accumulators")
        return 1
    print(f"accumulators bit-identical with spans on/off "
          f"(clock {doc_off['clock']!r} s)")

    doc_metrics, metrics = solve_doc(metrics=True)
    if doc_off != doc_metrics:
        print("FAIL: enabling metrics changed the charged accumulators")
        return 1
    if not metrics or not metrics["kernels"]:
        print("FAIL: enabled metrics registry stayed empty")
        return 1
    if metrics["totals"]["flops"] <= 0.0:
        print("FAIL: metrics registry recorded no flops")
        return 1
    print(f"accumulators bit-identical with metrics on/off "
          f"({len(metrics['kernels'])} kernel rows, "
          f"{metrics['totals']['flops']:.3e} flops recorded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
