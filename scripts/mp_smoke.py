#!/usr/bin/env python
"""CI smoke for the multiprocessing execution backend.

Runs one small s-step GMRES solve on ``backend="sim"`` and again on
``backend="mp"`` (every rank a real OS process over shared memory) and
asserts the executor's contract:

* the solutions are **bit-identical** — the mp reductions fold in the
  exact recursive-doubling pair order the planner models;
* MpComm's modeled twin tracer charged **exactly** the seconds the sim
  run predicts — the duplicated charge formulas have not drifted;
* the measured tracer actually recorded wall clock in every phase the
  solve touched.

Deliberately NOT a pytest file: CI runs it as a separate step under a
hard ``timeout`` so a deadlocked worker (the characteristic failure
mode of barrier/pipe bugs) kills the step instead of hanging the whole
test job.

Usage: PYTHONPATH=src python scripts/mp_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np


def main() -> int:
    from repro.krylov.simulation import Simulation
    from repro.krylov.sstep_gmres import SolverOptions, sstep_gmres
    from repro.matrices.stencil import laplace2d
    from repro.ortho.two_stage import TwoStageScheme

    a = laplace2d(24)
    b = np.ones(a.shape[0])
    opts = SolverOptions(mpk_mode="auto")

    def solve(backend):
        with Simulation(a, ranks=4, backend=backend) as sim:
            res = sstep_gmres(sim, b, s=3, restart=12, tol=1e-8,
                              scheme=TwoStageScheme(12), options=opts)
            modeled = (sim.comm.modeled.clock if backend == "mp"
                       else sim.tracer.clock)
            measured_phases = (dict(sim.tracer.by_phase)
                               if backend == "mp" else {})
        return res, modeled, measured_phases

    res_sim, clock_sim, _ = solve("sim")
    res_mp, clock_mp, measured = solve("mp")

    failures = []
    if not res_sim.converged:
        failures.append("sim solve did not converge")
    if res_mp.x.tobytes() != res_sim.x.tobytes():
        failures.append("mp solution is not bit-identical to sim")
    if clock_mp != clock_sim:
        failures.append(
            f"mp modeled twin clock {clock_mp!r} != sim clock {clock_sim!r}")
    for phase in ("spmv", "ortho"):
        if measured.get(phase, 0.0) <= 0.0:
            failures.append(f"no measured wall clock in phase {phase!r}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    wall = sum(measured.values())
    print(f"mp smoke OK: {res_mp.iterations} iterations bit-identical "
          f"across backends; modeled {clock_sim:.4g}s, "
          f"measured {wall:.4g}s wall")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
