"""Plain-text table/series rendering for the experiment harness.

The paper reports results as LaTeX tables and matplotlib figures; our
harness prints the same rows/series as aligned monospace tables so a
benchmark run is directly comparable against the paper without plotting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_seconds(t: float) -> str:
    """Human-scale time: seconds above 1s, milli/micro below."""
    if t != t:  # NaN
        return "nan"
    if t >= 1.0:
        return f"{t:.1f}s"
    if t >= 1.0e-3:
        return f"{t * 1e3:.2f}ms"
    return f"{t * 1e6:.1f}us"


def format_si(x: float, unit: str = "") -> str:
    """Format with SI magnitude prefix (k, M, G, T)."""
    for threshold, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(x) >= threshold:
            return f"{x / threshold:.2f}{prefix}{unit}"
    return f"{x:.2f}{unit}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table.

    ``rows`` cells are str()-ed; column widths auto-fit.  Used by every
    experiment module to print paper-style tables.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)
