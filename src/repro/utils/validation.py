"""Input-validation helpers shared across the library.

These raise :class:`repro.exceptions.ConfigurationError` subclasses with
messages naming the offending argument, so API misuse fails fast at the
boundary instead of deep inside a kernel.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_2d(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``arr`` is a 2-D ndarray and return it."""
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    return arr


def check_square(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``arr`` is a square 2-D ndarray and return it."""
    arr = check_2d(arr, name)
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {arr.shape}")
    return arr


def check_finite(arr: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``arr`` contains no NaN/Inf and return it."""
    arr = np.asarray(arr)
    if not np.isfinite(arr).all():
        raise ConfigurationError(f"{name} contains non-finite entries")
    return arr


def check_same_rows(a: np.ndarray, b: np.ndarray, aname: str, bname: str) -> None:
    """Validate that two 2-D arrays share a row count."""
    if a.shape[0] != b.shape[0]:
        raise ShapeError(
            f"{aname} and {bname} must have the same number of rows, "
            f"got {a.shape[0]} vs {b.shape[0]}")
