"""Small shared utilities: RNG helpers, validation, formatting, timers."""

from repro.utils.rng import (
    default_rng,
    haar_orthonormal,
    random_with_condition,
    spectrum_logspace,
)
from repro.utils.validation import (
    check_2d,
    check_finite,
    check_positive_int,
    check_square,
)
from repro.utils.formatting import format_seconds, format_si, render_table
from repro.utils.timers import WallTimer

__all__ = [
    "default_rng",
    "haar_orthonormal",
    "random_with_condition",
    "spectrum_logspace",
    "check_2d",
    "check_finite",
    "check_positive_int",
    "check_square",
    "format_seconds",
    "format_si",
    "render_table",
    "WallTimer",
]
