"""Lightweight wall-clock timers (for the *host* process).

These measure real elapsed Python time, e.g. to report harness run times.
They are distinct from :mod:`repro.parallel.tracing`, which accounts
*modeled* time on the simulated machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WallTimer:
    """Accumulating wall-clock timer usable as a context manager.

    >>> t = WallTimer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None, "timer exited without entering"
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None
