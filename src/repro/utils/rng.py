"""Random-matrix helpers used by the numerics experiments.

The paper's Section VI builds synthetic test matrices ``V = X @ Sigma @ Y.T``
with random orthonormal ``X`` (tall) and ``Y`` (small square) and a diagonal
``Sigma`` holding log-spaced singular values.  These helpers generate the
pieces reproducibly.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SEED
from repro.exceptions import ConfigurationError


def default_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    ``None`` maps to the library-wide default seed so experiments are
    reproducible by default; pass an existing generator through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def haar_orthonormal(n: int, k: int, rng: np.random.Generator | None = None,
                     dtype=np.float64) -> np.ndarray:
    """Sample an ``n x k`` matrix with Haar-distributed orthonormal columns.

    Uses the QR-of-Gaussian construction with the sign fix of Mezzadri
    (2007) so the distribution is exactly Haar, not merely orthonormal.
    """
    if k > n:
        raise ConfigurationError(f"need k <= n, got n={n}, k={k}")
    rng = default_rng(rng)
    gauss = rng.standard_normal((n, k)).astype(dtype, copy=False)
    q, r = np.linalg.qr(gauss)
    # Make the factorization unique (positive diagonal of R) => Haar.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs[np.newaxis, :]


def spectrum_logspace(k: int, cond: float, dtype=np.float64) -> np.ndarray:
    """Log-spaced singular values from 1 down to ``1/cond`` (length ``k``).

    This is the "Logscaled" construction of the paper's Fig. 6.
    """
    if cond < 1.0:
        raise ConfigurationError(f"condition number must be >= 1, got {cond}")
    if k == 1:
        return np.ones(1, dtype=dtype)
    return np.logspace(0.0, -np.log10(cond), k).astype(dtype, copy=False)


def random_with_condition(n: int, k: int, cond: float,
                          rng: np.random.Generator | None = None,
                          dtype=np.float64) -> np.ndarray:
    """Random ``n x k`` matrix with exactly prescribed 2-norm condition.

    ``V = X diag(sigma) Y.T`` with Haar orthonormal ``X`` (n x k) and ``Y``
    (k x k) and log-spaced ``sigma``; kappa(V) == cond by construction.
    """
    rng = default_rng(rng)
    x = haar_orthonormal(n, k, rng, dtype=dtype)
    y = haar_orthonormal(k, k, rng, dtype=dtype)
    sigma = spectrum_logspace(k, cond, dtype=dtype)
    return (x * sigma[np.newaxis, :]) @ y.T
