"""Double-double (software ~quad precision) arithmetic substrate.

The paper's related work (Section II, ref. [26]) uses a mixed-precision
CholQR whose Gram matrix is accumulated in *twice* the working precision;
on hardware without native float128 this is emulated with double-double
arithmetic (Hida, Li, Bailey, ARITH-15).  This subpackage provides the
error-free transformations, a vectorized pair-of-arrays representation,
and the Gram-matrix kernels :func:`repro.dd.linalg.gram_dd` /
:func:`repro.dd.linalg.dot_dd` used by
:class:`repro.ortho.cholqr.MixedPrecisionCholQR`.
"""

from repro.dd.core import (
    DDArray,
    dd_add,
    dd_add_double,
    dd_div,
    dd_from_double,
    dd_mul,
    dd_mul_double,
    dd_neg,
    dd_sqrt,
    dd_sub,
    dd_sum,
    dd_to_double,
    quick_two_sum,
    two_prod,
    two_sum,
)
from repro.dd.linalg import cholesky_dd, dot_dd, gram_dd, matmul_dd

__all__ = [
    "DDArray",
    "two_sum",
    "quick_two_sum",
    "two_prod",
    "dd_from_double",
    "dd_to_double",
    "dd_add",
    "dd_add_double",
    "dd_sub",
    "dd_neg",
    "dd_mul",
    "dd_mul_double",
    "dd_div",
    "dd_sqrt",
    "dd_sum",
    "gram_dd",
    "dot_dd",
    "matmul_dd",
    "cholesky_dd",
]
