"""Vectorized double-double arithmetic.

A double-double (dd) value represents a real number as an unevaluated sum
``hi + lo`` of two float64 with ``|lo| <= ulp(hi)/2``, giving roughly 106
bits of significand (~32 decimal digits).  All primitives below are
branch-free and vectorize over NumPy arrays, following Dekker (1971) and
Hida/Li/Bailey (2001).

The error-free transformations:

* :func:`two_sum`   — Knuth: works for any ordering of inputs (6 flops).
* :func:`quick_two_sum` — Dekker: requires ``|a| >= |b|`` (3 flops).
* :func:`two_prod`  — Dekker split based product (no FMA assumed; 17 flops).

Note on range: the Dekker splitter multiplies by ``2^27 + 1``, so inputs
with magnitude above ~``2^996`` overflow during splitting, and the
error-free property of :func:`two_prod` requires the error term not to
underflow (inputs comfortably above ~1e-150 in magnitude).  All users in
this library feed normalized basis vectors (norms O(1)), far from both
limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Dekker's splitting constant: 2**27 + 1 for IEEE binary64.
_SPLITTER = 134217729.0


def two_sum(a, b):
    """Error-free sum: return ``(s, e)`` with ``s = fl(a+b)``, ``a+b = s+e``."""
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def quick_two_sum(a, b):
    """Error-free sum assuming ``|a| >= |b|`` elementwise (3 flops)."""
    s = a + b
    e = b - (s - a)
    return s, e


def _split(a):
    """Dekker split: ``a = hi + lo`` with both halves having 26-bit mantissas."""
    t = _SPLITTER * a
    hi = t - (t - a)
    lo = a - hi
    return hi, lo


def two_prod(a, b):
    """Error-free product: return ``(p, e)`` with ``p = fl(a*b)``, ``a*b = p+e``."""
    p = a * b
    ahi, alo = _split(a)
    bhi, blo = _split(b)
    e = ((ahi * bhi - p) + ahi * blo + alo * bhi) + alo * blo
    return p, e


# ---------------------------------------------------------------------------
# dd pair operations (operands are (hi, lo) tuples of scalars or ndarrays)
# ---------------------------------------------------------------------------

def dd_from_double(a):
    """Lift float64 (scalar or array) to a dd pair with zero low part."""
    a = np.asarray(a, dtype=np.float64)
    return a, np.zeros_like(a)


def dd_to_double(x):
    """Round a dd pair to float64 (hi + lo evaluated in double)."""
    hi, lo = x
    return hi + lo


def dd_add(x, y):
    """Accurate dd + dd (IEEE-style, Hida et al. 'accurate' variant)."""
    xhi, xlo = x
    yhi, ylo = y
    s1, s2 = two_sum(xhi, yhi)
    t1, t2 = two_sum(xlo, ylo)
    s2 = s2 + t1
    s1, s2 = quick_two_sum(s1, s2)
    s2 = s2 + t2
    s1, s2 = quick_two_sum(s1, s2)
    return s1, s2


def dd_add_double(x, a):
    """dd + float64."""
    xhi, xlo = x
    s1, s2 = two_sum(xhi, a)
    s2 = s2 + xlo
    return quick_two_sum(s1, s2)


def dd_neg(x):
    """Negate a dd pair."""
    hi, lo = x
    return -hi, -lo


def dd_sub(x, y):
    """dd - dd."""
    return dd_add(x, dd_neg(y))


def dd_mul(x, y):
    """dd * dd."""
    xhi, xlo = x
    yhi, ylo = y
    p1, p2 = two_prod(xhi, yhi)
    p2 = p2 + (xhi * ylo + xlo * yhi)
    return quick_two_sum(p1, p2)


def dd_mul_double(x, a):
    """dd * float64."""
    xhi, xlo = x
    p1, p2 = two_prod(xhi, a)
    p2 = p2 + xlo * a
    return quick_two_sum(p1, p2)


def dd_div(x, y):
    """dd / dd via one Newton-ish correction of the double quotient."""
    xhi, xlo = x
    yhi, ylo = y
    q1 = xhi / yhi
    r = dd_sub(x, dd_mul_double(y, q1))
    q2 = (r[0] + r[1]) / (yhi + ylo)
    return quick_two_sum(q1, q2)


def dd_sqrt(x):
    """sqrt of a dd pair (one Karp-Markstein style refinement).

    Negative high parts raise ``ValueError`` — callers (dd Cholesky) catch
    this to report breakdown.
    """
    hi, lo = x
    hi_arr = np.asarray(hi, dtype=np.float64)
    if np.any(hi_arr < 0.0):
        raise ValueError("dd_sqrt of negative value")
    root = np.sqrt(hi_arr)
    # Guard exact zeros: sqrt(0 + lo) with tiny lo is below dd resolution.
    safe = np.where(root == 0.0, 1.0, root)
    resid = dd_sub(x, dd_mul((root, np.zeros_like(root)), (root, np.zeros_like(root))))
    corr = (resid[0] + resid[1]) / (2.0 * safe)
    corr = np.where(root == 0.0, 0.0, corr)
    return quick_two_sum(root, corr)


def dd_sum(hi, lo=None, axis=0):
    """Pairwise dd summation of an array along ``axis``.

    ``hi``/``lo`` may be the two components of elementwise dd values (e.g.
    from :func:`two_prod`); ``lo=None`` means plain float64 input.  The
    reduction folds halves with :func:`dd_add`, so only ``O(log n)``
    vectorized passes are made — both fast and accuracy-preserving.

    Returns a dd pair with the summed axis removed.
    """
    hi = np.asarray(hi, dtype=np.float64)
    lo = np.zeros_like(hi) if lo is None else np.asarray(lo, dtype=np.float64)
    hi = np.moveaxis(hi, axis, 0)
    lo = np.moveaxis(lo, axis, 0)
    while hi.shape[0] > 1:
        m = hi.shape[0]
        half = m // 2
        top_hi, top_lo = hi[:half], lo[:half]
        bot_hi, bot_lo = hi[half:2 * half], lo[half:2 * half]
        s_hi, s_lo = dd_add((top_hi, top_lo), (bot_hi, bot_lo))
        if m % 2:
            s_hi = np.concatenate([s_hi, hi[-1:]], axis=0)
            s_lo = np.concatenate([s_lo, lo[-1:]], axis=0)
        hi, lo = s_hi, s_lo
    if hi.shape[0] == 0:
        shape = hi.shape[1:]
        return np.zeros(shape), np.zeros(shape)
    return hi[0], lo[0]


@dataclass
class DDArray:
    """Convenience wrapper bundling the (hi, lo) pair with operators.

    Thin sugar over the functional API; kernels use the tuples directly for
    speed, while tests and the dd Cholesky use this class for readability.
    """

    hi: np.ndarray
    lo: np.ndarray

    @classmethod
    def from_double(cls, a) -> "DDArray":
        hi, lo = dd_from_double(a)
        return cls(hi, lo)

    @property
    def pair(self):
        return (self.hi, self.lo)

    def to_double(self) -> np.ndarray:
        return dd_to_double(self.pair)

    def __add__(self, other: "DDArray") -> "DDArray":
        return DDArray(*dd_add(self.pair, other.pair))

    def __sub__(self, other: "DDArray") -> "DDArray":
        return DDArray(*dd_sub(self.pair, other.pair))

    def __mul__(self, other: "DDArray") -> "DDArray":
        return DDArray(*dd_mul(self.pair, other.pair))

    def __truediv__(self, other: "DDArray") -> "DDArray":
        return DDArray(*dd_div(self.pair, other.pair))

    def __neg__(self) -> "DDArray":
        return DDArray(*dd_neg(self.pair))

    def sqrt(self) -> "DDArray":
        return DDArray(*dd_sqrt(self.pair))

    def sum(self, axis=0) -> "DDArray":
        return DDArray(*dd_sum(self.hi, self.lo, axis=axis))

    def __getitem__(self, key) -> "DDArray":
        return DDArray(self.hi[key], self.lo[key])
