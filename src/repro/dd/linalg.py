"""Double-double linear-algebra kernels for mixed-precision CholQR.

The mixed-precision CholQR of the paper's ref. [26] accumulates the Gram
matrix ``G = V.T @ V`` in twice the working precision so that the computed
``G`` carries a relative error ~``eps_dd`` instead of ``n*eps``; the
Cholesky factorization can then succeed for kappa(V) up to ~``eps**-1``
rather than ``eps**-0.5``.

Everything here is sized for tall-skinny inputs (n up to ~1e6, k <= ~64):
the n-dimension is fully vectorized, while the k x k loops are plain Python
(at most a few thousand scalar dd ops).
"""

from __future__ import annotations

import numpy as np

from repro.dd.core import DDArray, dd_add, dd_sum, two_prod
from repro.exceptions import CholeskyBreakdownError, ShapeError


def dot_dd(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dd-accurate dot product(s) of columns: returns dd pair of shape [k].

    ``x`` and ``y`` are (n,) or (n, k); products are formed with
    :func:`two_prod` and summed pairwise in dd.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ShapeError(f"dot_dd operands must match, got {x.shape} vs {y.shape}")
    p_hi, p_lo = two_prod(x, y)
    return dd_sum(p_hi, p_lo, axis=0)


def gram_dd(v: np.ndarray, chunk: int = 262_144) -> tuple[np.ndarray, np.ndarray]:
    """Gram matrix ``G = V.T @ V`` accumulated in double-double.

    Returns the dd pair ``(G_hi, G_lo)`` of shape (k, k); round with
    ``G_hi + G_lo`` for a float64 result that is correctly rounded from an
    essentially exact sum.

    The n-dimension is processed in ``chunk``-row tiles to bound the
    ``n x k x k`` temporary; each tile contributes an elementwise
    :func:`two_prod` and the tiles combine through dd addition.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 2:
        raise ShapeError(f"gram_dd expects a 2-D array, got ndim={v.ndim}")
    n, k = v.shape
    acc_hi = np.zeros((k, k))
    acc_lo = np.zeros((k, k))
    for start in range(0, max(n, 1), chunk):
        tile = v[start:start + chunk]
        if tile.shape[0] == 0:
            break
        # outer products per row: (rows, k, k)
        p_hi, p_lo = two_prod(tile[:, :, None], tile[:, None, :])
        t_hi, t_lo = dd_sum(p_hi, p_lo, axis=0)
        acc_hi, acc_lo = dd_add((acc_hi, acc_lo), (t_hi, t_lo))
    # Symmetrize exactly: dd arithmetic above is already symmetric because
    # two_prod(a,b) == two_prod(b,a), but enforce it against any future
    # tiling change.
    acc_hi = 0.5 * (acc_hi + acc_hi.T)
    acc_lo = 0.5 * (acc_lo + acc_lo.T)
    return acc_hi, acc_lo


def matmul_dd(a: np.ndarray, b: np.ndarray,
              chunk: int = 262_144) -> tuple[np.ndarray, np.ndarray]:
    """``A.T @ B`` with dd accumulation; A is (n, j), B is (n, k).

    Used for the dd-accurate inter-block projection in the mixed-precision
    BCGS variant.  Returns a dd pair of shape (j, k).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[0] != b.shape[0]:
        raise ShapeError(f"matmul_dd shapes incompatible: {a.shape} x {b.shape}")
    j, k = a.shape[1], b.shape[1]
    acc_hi = np.zeros((j, k))
    acc_lo = np.zeros((j, k))
    n = a.shape[0]
    for start in range(0, max(n, 1), chunk):
        ta = a[start:start + chunk]
        tb = b[start:start + chunk]
        if ta.shape[0] == 0:
            break
        p_hi, p_lo = two_prod(ta[:, :, None], tb[:, None, :])
        t_hi, t_lo = dd_sum(p_hi, p_lo, axis=0)
        acc_hi, acc_lo = dd_add((acc_hi, acc_lo), (t_hi, t_lo))
    return acc_hi, acc_lo


def cholesky_dd(g_hi: np.ndarray, g_lo: np.ndarray | None = None) -> np.ndarray:
    """Upper-triangular Cholesky factor of a dd Gram matrix.

    The factorization itself runs in dd (right-looking, scalar loops over
    the small k x k matrix) and the factor is rounded to float64 on return.
    Raises :class:`CholeskyBreakdownError` when a pivot is non-positive,
    mirroring LAPACK ``dpotrf``'s info > 0.
    """
    g_hi = np.asarray(g_hi, dtype=np.float64)
    if g_lo is None:
        g_lo = np.zeros_like(g_hi)
    k = g_hi.shape[0]
    if g_hi.shape != (k, k):
        raise ShapeError(f"cholesky_dd expects square input, got {g_hi.shape}")
    # Work on scalar DDArray cells.
    a = [[DDArray(np.float64(g_hi[i, j]), np.float64(g_lo[i, j]))
          for j in range(k)] for i in range(k)]
    r = [[DDArray(np.float64(0.0), np.float64(0.0)) for _ in range(k)]
         for _ in range(k)]
    for i in range(k):
        # diagonal: r_ii = sqrt(a_ii - sum_{p<i} r_pi^2)
        acc = a[i][i]
        for p in range(i):
            acc = acc - r[p][i] * r[p][i]
        if float(acc.hi) <= 0.0:
            raise CholeskyBreakdownError(
                f"dd Cholesky breakdown at pivot {i}",
                gram_diag_min=float(acc.hi), panel_index=i)
        rii = acc.sqrt()
        r[i][i] = rii
        for j in range(i + 1, k):
            acc = a[i][j]
            for p in range(i):
                acc = acc - r[p][i] * r[p][j]
            r[i][j] = acc / rii
    out = np.zeros((k, k))
    for i in range(k):
        for j in range(i, k):
            out[i, j] = float(r[i][j].to_double())
    return out
