"""Mixed-precision block-orthogonalization kernels.

The stability bottleneck of every Cholesky-based scheme in this library
is the *Gram matrix*: forming ``G = V.T V`` (and the Pythagorean update
``G - P.T P``) in working precision squares the panel's condition
number, so the factorization breaks down at ``kappa ~ eps^-1/2``.  The
mixed-precision CholQR of the paper's ref. [26]
(:class:`repro.ortho.cholqr.MixedPrecisionCholQR`) fixes the
*intra-block* factorization by accumulating ``G`` in double-double;
this module extends the same trade to the *inter-block* level:

* :func:`mixed_precision_panel` — a BCGS-PIP-shaped panel pass whose
  Gram matrix and Pythagorean subtraction run at a selectable precision
  (``"dd"`` pushes breakdown to ``kappa ~ eps^-1``; ``"fp32"``
  deliberately degrades it for studying the cliff);
* :class:`MixedPrecisionTwoStageScheme` — the paper's two-stage scheme
  with either stage's pass swapped for the mixed-precision pass.  The
  canonical configuration is storage-fp32 / accumulate-fp64 / Gram-dd:
  panels stream at half the bytes (what the cost model now charges)
  while the dd Gram keeps the second stage factorizable at condition
  numbers where plain fp64 CholQR breaks outright.

Selectable through the :mod:`repro.ortho` registry as
``get_scheme("mixed-two-stage")`` and through
``sstep_gmres(precision=...)`` with a ``gram="dd"`` policy.
"""

from __future__ import annotations

import numpy as np

from repro.dd.core import dd_mul, dd_sub, dd_sum
from repro.dd.linalg import cholesky_dd
from repro.exceptions import CholeskyBreakdownError, ConfigurationError
from repro.ortho.bcgs_pip import _pythagorean_factor, bcgs_pip_panel
from repro.ortho.two_stage import TwoStageScheme
from repro.precision.dtypes import GRAM_SPECS

#: Host-side flop multiplier of scalar dd arithmetic (matches the dd
#: Cholesky accounting in :class:`repro.ortho.cholqr.MixedPrecisionCholQR`).
_DD_HOST_PENALTY = 16.0


def _round_gram_fp32(g: np.ndarray) -> np.ndarray:
    """Round a Gram matrix through fp32 (the degraded-Gram study knob)."""
    return np.asarray(g, dtype=np.float32).astype(np.float64)


def mixed_precision_panel(backend, basis, lo: int, hi: int, *,
                          gram: str = "dd", breakdown: str = "raise",
                          panel_index: int = 0
                          ) -> tuple[np.ndarray | None, np.ndarray]:
    """One inter-block pass of columns ``[lo, hi)`` with a mixed-precision
    Gram.

    Contract matches :func:`repro.ortho.bcgs_pip.bcgs_pip_panel`: the
    panel is projected against the prefix ``[0, lo)`` and orthonormalized
    internally; returns ``(P, R_jj)``.

    ``gram`` selects the Gram/Pythagorean precision:

    * ``"dd"`` — the panel Gram travels as a double-double pair (ONE
      collective of 2x payload, :meth:`OrthoBackend.dot_dd`) and the
      Pythagorean subtraction ``G - P.T P`` plus the Cholesky run in dd
      on the host.  Breakdown moves from ``kappa ~ eps^-1/2`` to
      ``kappa ~ eps^-1``.  2 synchronizations when a prefix exists
      (P cannot ride in the dd collective), 1 otherwise.
    * ``"fp32"`` — the classical fp64 pass, with the reduced Gram
      rounded through fp32 before factorization (emulates an fp32 Gram
      reduction; breakdown moves *down* to ``kappa ~ eps_fp32^-1/2 ~
      1e3..1e4`` — the study knob for the precision_stability sweep).
    * ``"fp64"`` — delegates to the classical pass unchanged.
    """
    if gram not in GRAM_SPECS:
        raise ConfigurationError(
            f"unknown gram precision {gram!r}; expected one of {GRAM_SPECS}")
    if gram == "fp64":
        return bcgs_pip_panel(backend, basis, lo, lo, hi,
                              breakdown=breakdown, panel_index=panel_index)
    v = backend.view(basis, slice(lo, hi))
    c = hi - lo
    if gram == "fp32":
        if lo == 0:
            g = backend.fused_dots([(v, v)])[0]                    # 1 sync
            p = None
            s = _round_gram_fp32(g)
        else:
            q = backend.view(basis, slice(0, lo))
            p, g = backend.fused_dots([(q, v), (v, v)])            # 1 sync
            backend.host_flops(2.0 * lo * c * c)
            s = _round_gram_fp32(g - p.T @ p)
        backend.host_flops(c ** 3 / 3.0)
        r_jj = _pythagorean_factor(s, None, breakdown=breakdown,
                                   panel_index=panel_index)
    else:  # gram == "dd"
        if lo == 0:
            p = None
            g_hi, g_lo = backend.dot_dd(v, v)                      # 1 sync
            s_hi, s_lo = g_hi, g_lo
        else:
            # Both the projection AND the Gram travel as dd pairs: an
            # fp64-rounded P would reintroduce an eps*||V||^2 error into
            # the Pythagorean cancellation below, putting the breakdown
            # right back at kappa ~ eps^-1/2.  With P and G both dd,
            # the subtraction keeps ~32 digits and breakdown moves to
            # kappa ~ eps_dd^-1/2 ~ eps^-1.
            q = backend.view(basis, slice(0, lo))
            p_hi, p_lo = backend.dot_dd(q, v)                      # 1 sync
            g_hi, g_lo = backend.dot_dd(v, v)                      # 1 sync
            pt = dd_sum(*dd_mul((p_hi[:, :, None], p_lo[:, :, None]),
                                (p_hi[:, None, :], p_lo[:, None, :])),
                        axis=0)
            s_hi, s_lo = dd_sub((g_hi, g_lo), pt)
            p = p_hi + p_lo
            backend.host_flops(_DD_HOST_PENALTY * 2.0 * lo * c * c)
        backend.host_flops(_DD_HOST_PENALTY * c ** 3 / 3.0)
        try:
            r_jj = cholesky_dd(s_hi, s_lo)
        except CholeskyBreakdownError:
            if breakdown != "shift":
                raise
            # dd factorization failed => the panel is numerically rank
            # deficient even at ~32 digits; recover with the shifted
            # fp64 factorization like the classical pass does.
            r_jj = _pythagorean_factor(s_hi + s_lo, None, breakdown="shift",
                                       panel_index=panel_index)
    if p is not None:
        backend.update(v, q, p)
    backend.trsm(v, r_jj)
    return p, r_jj


class MixedPrecisionTwoStageScheme(TwoStageScheme):
    """Two-stage scheme with mixed-precision (dd-Gram) stage passes.

    Inherits the full two-stage state machine — big-panel accumulation,
    R fix-up, ``w`` bookkeeping, ``bs``-granular finality — and swaps
    the factorization kernel of the selected ``stages`` for
    :func:`mixed_precision_panel`.

    Parameters
    ----------
    big_step:
        Second-stage step size ``bs`` (as in
        :class:`~repro.ortho.two_stage.TwoStageScheme`).
    gram:
        Gram precision for the selected stages (``"dd"`` default;
        ``"fp32"`` for the degraded-Gram study; ``"fp64"`` reduces to
        the classical scheme).
    stages:
        Which stage passes run mixed-precision: any subset of
        ``("first", "big_panel")``.  The default applies it to both —
        the safest configuration at extreme condition numbers.  The
        cheapest useful configuration is ``("big_panel",)``: stage 1
        stays a single-collective classical PIP pass over ``s``-column
        panels (their conditioning is tamed by frequent
        pre-processing), while the breakdown-prone ``bs``-wide second
        stage gets the dd Gram.
    breakdown:
        Cholesky-breakdown policy for both stages ("raise" or "shift").
    """

    name = "mixed-two-stage"

    def __init__(self, big_step: int, breakdown: str = "raise",
                 gram: str = "dd",
                 stages: tuple = ("first", "big_panel")) -> None:
        super().__init__(big_step, breakdown=breakdown)
        if gram not in GRAM_SPECS:
            raise ConfigurationError(
                f"unknown gram precision {gram!r}; expected one of "
                f"{GRAM_SPECS}")
        stages = tuple(stages)
        bad = set(stages) - {"first", "big_panel"}
        if bad:
            raise ConfigurationError(
                f"unknown stage names {sorted(bad)}; expected a subset of "
                f"('first', 'big_panel')")
        self.gram = gram
        self.stages = stages

    def _stage_pass(self, lo: int, hi: int, *, stage: str
                    ) -> tuple[np.ndarray | None, np.ndarray]:
        if stage in self.stages:
            return mixed_precision_panel(
                self.backend, self.basis, lo, hi, gram=self.gram,
                breakdown=self.breakdown, panel_index=lo)
        return super()._stage_pass(lo, hi, stage=stage)
