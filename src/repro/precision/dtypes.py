"""Storage-precision specs: word sizes, container dtypes, quantizers.

The multi-precision subsystem describes precision with small string
*specs* rather than raw NumPy dtypes, because two of the interesting
precisions do not exist as native NumPy storage:

* ``"fp64"`` — IEEE binary64, the library's historical working
  precision (8-byte words).
* ``"fp32"`` — IEEE binary32 storage (4-byte words).  Stored in native
  ``float32`` containers; all reductions still accumulate in float64
  (see :mod:`repro.distla.engine`).
* ``"bf16"`` — bfloat16 *emulated by rounding*: values live on the
  bfloat16 grid (8-bit exponent, 8-bit significand) but are carried in
  ``float32`` containers, since NumPy has no native bfloat16.  Charged
  at 2 bytes per word — what the storage would cost on hardware that
  has it.
* ``"dd"`` — double-double compensated arithmetic
  (:mod:`repro.dd`): two float64 words per value, 16 bytes.  Never a
  multivector *storage* format here (the dd pair lives in small
  replicated host matrices), but a legal Gram/accumulate spec so
  :class:`~repro.precision.policy.PrecisionPolicy` can express the
  mixed-precision CholQR trade.

This module is deliberately dependency-free (NumPy only) so the
lowest layers (:mod:`repro.distla.multivector`,
:mod:`repro.parallel.costmodel`) can import it without cycles.
"""

from __future__ import annotations

import numpy as np

#: Specs a :class:`~repro.distla.multivector.DistMultiVector` may store.
STORAGE_SPECS = ("fp64", "fp32", "bf16")

#: Specs local kernels may accumulate in (the reduction tree itself is
#: always float64, see ``SimComm._tree_sum``).
ACCUMULATE_SPECS = ("fp64", "fp32")

#: Specs a Gram matrix may be formed in.
GRAM_SPECS = ("fp64", "fp32", "dd")

#: Bytes per stored word, the quantity the roofline cost model charges.
_WORD_BYTES = {"fp64": 8.0, "fp32": 4.0, "bf16": 2.0, "dd": 16.0}

#: NumPy container that carries each spec's values in memory.
_CONTAINERS = {"fp64": np.float64, "fp32": np.float32, "bf16": np.float32}

#: Unit roundoff of each spec (bf16: 8 significand bits incl. implicit).
_EPS = {
    "fp64": float(np.finfo(np.float64).eps),
    "fp32": float(np.finfo(np.float32).eps),
    "bf16": 2.0 ** -8,
    "dd": 2.0 ** -104,
}


def validate_storage(spec: str) -> str:
    """Return ``spec`` if it names a storage precision, else raise."""
    if spec not in STORAGE_SPECS:
        raise ValueError(
            f"unknown storage precision {spec!r}; expected one of "
            f"{STORAGE_SPECS}")
    return spec


def word_bytes(spec: str) -> float:
    """Bytes one stored word of ``spec`` occupies (bf16 charges 2)."""
    try:
        return _WORD_BYTES[spec]
    except KeyError:
        raise ValueError(
            f"unknown precision spec {spec!r}; expected one of "
            f"{tuple(_WORD_BYTES)}") from None


def container_dtype(spec: str) -> np.dtype:
    """NumPy dtype that carries ``spec`` values (bf16 rides in float32)."""
    try:
        return np.dtype(_CONTAINERS[spec])
    except KeyError:
        raise ValueError(
            f"no container dtype for precision spec {spec!r}") from None


def eps(spec: str) -> float:
    """Unit roundoff of ``spec`` (used for tolerance heuristics)."""
    try:
        return _EPS[spec]
    except KeyError:
        raise ValueError(f"unknown precision spec {spec!r}") from None


def round_bf16(arr: np.ndarray) -> np.ndarray:
    """Round to the nearest bfloat16 value (ties to even), as float32.

    Standard bit trick: a float32 truncated to its top 16 bits *is* a
    bfloat16; round-to-nearest-even adds ``0x7FFF`` plus the parity of
    the bit that will become the new LSB before truncating.  Infinities
    pass through (their low mantissa bits are zero); NaNs stay NaN
    (rounding a NaN payload may move it within the NaN space, which is
    fine).  Overflow to inf happens exactly where bfloat16 would
    overflow, since the exponent field is the same as float32's.
    """
    with np.errstate(over="ignore"):  # overflow-to-inf is the semantics
        a32 = np.ascontiguousarray(arr, dtype=np.float32)
    bits = a32.view(np.uint32)
    rounded = bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16))
                                          & np.uint32(1))
    rounded &= np.uint32(0xFFFF0000)
    # High-payload negative NaNs would wrap around uint32 during the
    # rounding add; keep NaN bit patterns as-is instead.
    rounded = np.where(np.isnan(a32), bits, rounded)
    return rounded.view(np.float32)


def quantize(arr: np.ndarray, spec: str) -> np.ndarray:
    """Round ``arr`` to ``spec``'s grid, in ``spec``'s container dtype.

    ``"fp64"`` and ``"fp32"`` are plain dtype conversions (no copy when
    the dtype already matches); ``"bf16"`` applies
    :func:`round_bf16`.
    """
    if spec == "fp64":
        return np.asarray(arr, dtype=np.float64)
    if spec == "fp32":
        return np.asarray(arr, dtype=np.float32)
    if spec == "bf16":
        return round_bf16(arr)
    raise ValueError(f"cannot quantize to precision spec {spec!r}")
