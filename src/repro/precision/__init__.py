"""Multi-precision storage/compute subsystem.

The cost model of this library is bytes-dominated (tall-skinny BLAS on
a GPU roofline), which makes storage precision the single biggest
bandwidth lever: fp32 storage halves, bf16 storage quarters, every
panel's charged traffic.  This package makes precision a first-class
policy threaded through the whole stack:

* :mod:`repro.precision.dtypes` — storage specs (``fp64``/``fp32``/
  ``bf16``-emulated/``dd``), word sizes, container dtypes, quantizers;
* :mod:`repro.precision.policy` — :class:`PrecisionPolicy` (storage,
  accumulate, Gram) and the named-policy registry;
* :mod:`repro.precision.kernels` — mixed-precision orthogonalization:
  the dd-Gram BCGS-PIP pass and
  :class:`~repro.precision.kernels.MixedPrecisionTwoStageScheme`
  (imported lazily by consumers — not re-exported here, because it
  pulls in :mod:`repro.ortho` and this package must stay importable
  from the lowest layers).

Downstream: :class:`repro.distla.multivector.DistMultiVector` carries a
storage spec, both kernel engines accumulate reductions in fp64 over
low-precision shards (bit-identical loop/batched per dtype) and charge
bytes at the storage word size, ``sstep_gmres(precision=...)`` runs the
whole basis at a policy, and :func:`repro.krylov.ir.gmres_ir` wraps a
low-precision inner solve in an fp64 iterative-refinement loop.
"""

from repro.precision.dtypes import (
    ACCUMULATE_SPECS,
    GRAM_SPECS,
    STORAGE_SPECS,
    container_dtype,
    eps,
    quantize,
    round_bf16,
    validate_storage,
    word_bytes,
)
from repro.precision.policy import (
    POLICIES,
    PrecisionPolicy,
    list_policies,
    resolve_policy,
)

__all__ = [
    "STORAGE_SPECS",
    "ACCUMULATE_SPECS",
    "GRAM_SPECS",
    "word_bytes",
    "container_dtype",
    "eps",
    "quantize",
    "round_bf16",
    "validate_storage",
    "PrecisionPolicy",
    "POLICIES",
    "resolve_policy",
    "list_policies",
]
