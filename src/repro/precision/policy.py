"""Precision policies: one object naming the three precision knobs.

A :class:`PrecisionPolicy` bundles the precisions a solver run uses:

* ``storage`` — what the distributed multivectors (the Krylov basis,
  the panels every orthogonalization kernel streams) are stored in.
  This is the bandwidth lever: the cost model charges local kernels by
  bytes moved, and fp32/bf16 storage halves/quarters every panel's
  byte traffic (see :func:`repro.parallel.costmodel.bytes_per_word`).
* ``accumulate`` — what shard-local reduction kernels (Gram /
  projection GEMMs, column norms) accumulate partial results in before
  the (always-float64) reduction tree combines them.  ``"fp64"`` is
  the safe default the backward-stability analyses assume
  (arXiv:2409.03079): low-precision *storage* with high-precision
  *accumulation*.
* ``gram`` — what the Gram matrix is formed in by the mixed-precision
  orthogonalization schemes (:mod:`repro.precision.kernels`): plain
  ``"fp64"``, deliberately degraded ``"fp32"`` (for studying the
  cliff), or ``"dd"`` double-double compensation, which pushes the
  CholQR breakdown from ``kappa ~ eps^-1/2`` to ``kappa ~ eps^-1``
  (the mixed-precision CholQR of the paper's ref. [26]).

Policies are frozen and hashable; resolve one from a name with
:func:`resolve_policy` — every ``precision=`` argument in the library
accepts a policy instance, a registered name, or ``None`` (fp64).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.precision import dtypes


@dataclass(frozen=True)
class PrecisionPolicy:
    """Storage / accumulate / Gram precision triple (validated)."""

    name: str
    storage: str = "fp64"
    accumulate: str = "fp64"
    gram: str = "fp64"

    def __post_init__(self) -> None:
        dtypes.validate_storage(self.storage)
        if self.accumulate not in dtypes.ACCUMULATE_SPECS:
            raise ValueError(
                f"unknown accumulate precision {self.accumulate!r}; "
                f"expected one of {dtypes.ACCUMULATE_SPECS}")
        if self.gram not in dtypes.GRAM_SPECS:
            raise ValueError(
                f"unknown gram precision {self.gram!r}; expected one of "
                f"{dtypes.GRAM_SPECS}")

    # ------------------------------------------------------------------
    @property
    def storage_word_bytes(self) -> float:
        """Bytes per stored basis word (what panel traffic is charged at)."""
        return dtypes.word_bytes(self.storage)

    @property
    def storage_eps(self) -> float:
        """Unit roundoff of the storage format (tolerance heuristics)."""
        return dtypes.eps(self.storage)

    @property
    def is_default(self) -> bool:
        """True when the policy is all-fp64 (the historical behavior)."""
        return (self.storage == "fp64" and self.accumulate == "fp64"
                and self.gram == "fp64")

    def __str__(self) -> str:
        return (f"{self.name}(storage={self.storage}, "
                f"accumulate={self.accumulate}, gram={self.gram})")


#: Registered policies, selectable by name everywhere ``precision=`` is
#: accepted.  The names spell the storage format first; suffixes name a
#: non-default Gram precision.
POLICIES: dict[str, PrecisionPolicy] = {
    "fp64": PrecisionPolicy("fp64"),
    "fp32": PrecisionPolicy("fp32", storage="fp32"),
    "bf16": PrecisionPolicy("bf16", storage="bf16"),
    # dd-compensated Gram over fp64 storage: the mixed-precision CholQR
    # configuration of the paper's ref. [26].
    "fp64_dd_gram": PrecisionPolicy("fp64_dd_gram", gram="dd"),
    # the headline mixed-precision configuration: half-width storage,
    # fp64 accumulation, dd Gram for the breakdown-prone factorizations.
    "fp32_dd_gram": PrecisionPolicy("fp32_dd_gram", storage="fp32",
                                    gram="dd"),
    # native low-precision accumulation (for studying what fp64
    # accumulation buys — not a recommended production setting).
    "fp32_native": PrecisionPolicy("fp32_native", storage="fp32",
                                   accumulate="fp32"),
}


def resolve_policy(precision: "PrecisionPolicy | str | None"
                   ) -> PrecisionPolicy:
    """Resolve a ``precision=`` argument to a :class:`PrecisionPolicy`.

    Accepts a policy instance (returned as-is), a registered name from
    :data:`POLICIES` (case-insensitive, ``-``/``_`` interchangeable),
    or ``None`` (the all-fp64 default).
    """
    if precision is None:
        return POLICIES["fp64"]
    if isinstance(precision, PrecisionPolicy):
        return precision
    key = str(precision).strip().lower().replace("-", "_")
    try:
        return POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown precision policy {precision!r}; expected one of "
            f"{sorted(POLICIES)} or a PrecisionPolicy instance") from None


def list_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)
