"""LogGP-flavoured cost model mapping operation descriptors to seconds.

Local kernels follow a roofline:  ``t = launch + max(flops / peak,
bytes / (bw * efficiency))``.  Tall-skinny BLAS-2/3 on short inner
dimensions is bandwidth-bound on a V100 (arithmetic intensity of
``Q.T @ V`` with widths (j, c) is ``jc / (4(j+c))`` flop/byte, far below
the ~60 flop/byte FP64 ridge), so the *bytes* term dominates every
orthogonalization kernel in this paper — which is exactly why running the
second stage at block width ``bs`` instead of ``s`` pays: the prefix
``Q_{1:l-1}`` is streamed once per big panel instead of once per panel.

Collectives use a hierarchical tree: intra-node hops at NVLink latency,
inter-node hops at IB latency, plus one device synchronization per
collective (the GPU pipeline must drain before MPI may touch the buffer).

Every method returns seconds as a plain float; the caller decides the
tracing category.  The model is deliberately small and fully unit-tested —
see ``tests/parallel/test_costmodel.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.parallel.machine import MachineSpec
from repro.precision.dtypes import word_bytes as bytes_per_word

#: Default word size: IEEE double, the library's historical working
#: precision.  Every local-kernel method accepts ``word_bytes`` so the
#: charged byte traffic scales with the *storage* precision of the
#: operands (``bytes_per_word("fp32") == 4.0`` etc.); the default keeps
#: all fp64 charges bit-identical to the pre-precision-subsystem model.
_DOUBLE = bytes_per_word("fp64")
_INT = 4     # bytes per CSR index (cuSparse uses 32-bit local indices)


@dataclass(frozen=True)
class CostModel:
    """Maps operation shapes to modeled seconds on one :class:`MachineSpec`."""

    machine: MachineSpec
    #: Optional :class:`repro.obs.metrics.MetricsRegistry` feed.  When
    #: set, every local-kernel costing records its (flops, bytes_moved)
    #: operation shape; the registry pairs those with the next tracer
    #: charge.  ``None`` (the default) is a single ``is not None`` test
    #: per costing — returned seconds are identical either way.
    metrics: object | None = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # local device kernels
    # ------------------------------------------------------------------
    def _roofline(self, flops: float, bytes_moved: float, efficiency: float) -> float:
        if self.metrics is not None:
            self.metrics.record_op(flops, bytes_moved)
        m = self.machine
        t_flops = flops / m.peak_flops
        t_bytes = bytes_moved / (m.mem_bandwidth * efficiency)
        return m.kernel_latency + max(t_flops, t_bytes)

    def gemm_efficiency(self, width: float) -> float:
        """Effective bandwidth fraction of a tall-skinny BLAS-2/3 kernel
        whose *narrow* dimension is ``width`` columns.

        width == 1 is a GEMV (clean streaming); widths 2..~8 hit the
        reduction-shaped split-k regime (slowest); efficiency then climbs
        linearly to the wide plateau at ``gemm_width_sat`` columns — the
        hardware mechanism behind the paper's "increasing the potential
        for the data reuse" with block size ``bs``.
        """
        m = self.machine
        if width <= 1:
            return m.gemv_efficiency
        if m.gemm_width_sat <= 2:
            return m.gemm_bw_efficiency
        frac = min(1.0, (width - 2.0) / (m.gemm_width_sat - 2.0))
        return m.gemm_eff_narrow + frac * (m.gemm_bw_efficiency
                                           - m.gemm_eff_narrow)

    def gemm(self, m_rows: float, k_inner: float, n_cols: float,
             word_bytes: float = _DOUBLE) -> float:
        """Dense ``C[m,n] += A[m,k] @ B[k,n]`` (tall-skinny: m >> k, n).

        Bytes: stream A and B once, write C once — ``word_bytes`` each
        (the *storage* word size of the operands; fp32 panels are
        charged at half the fp64 traffic).  For the tall-skinny shapes
        in block orthogonalization (m = local rows) the A/B streams
        dominate; efficiency follows the narrow dimension.
        """
        flops = 2.0 * m_rows * k_inner * n_cols
        bytes_moved = word_bytes * (m_rows * k_inner + k_inner * n_cols
                                    + m_rows * n_cols)
        eff = self.gemm_efficiency(min(k_inner, n_cols) if k_inner and n_cols
                                   else 1.0)
        return self._roofline(flops, bytes_moved, eff)

    def gemm_tall_update(self, m_rows: float, k_inner: float, n_cols: float,
                         word_bytes: float = _DOUBLE) -> float:
        """Tall update ``V[m,n] -= Q[m,k] @ R[k,n]`` (reads and writes V)."""
        flops = 2.0 * m_rows * k_inner * n_cols
        bytes_moved = word_bytes * (m_rows * k_inner + k_inner * n_cols
                                    + 2.0 * m_rows * n_cols)
        eff = self.gemm_efficiency(min(k_inner, n_cols) if k_inner and n_cols
                                   else 1.0)
        return self._roofline(flops, bytes_moved, eff)

    def syrk(self, m_rows: float, n_cols: float,
             word_bytes: float = _DOUBLE) -> float:
        """Symmetric rank-k: ``G = V.T @ V`` for tall-skinny V (m x n)."""
        flops = 1.0 * m_rows * n_cols * (n_cols + 1)
        bytes_moved = word_bytes * (m_rows * n_cols + n_cols * n_cols)
        return self._roofline(flops, bytes_moved,
                              self.gemm_efficiency(n_cols))

    def trsm(self, m_rows: float, n_cols: float,
             word_bytes: float = _DOUBLE) -> float:
        """Triangular solve ``Q = V @ R^{-1}`` over m x n tall operand."""
        flops = 1.0 * m_rows * n_cols * n_cols
        bytes_moved = word_bytes * (2.0 * m_rows * n_cols
                                    + n_cols * n_cols / 2.0)
        return self._roofline(flops, bytes_moved,
                              self.gemm_efficiency(n_cols))

    def blas1(self, n_elems: float, n_streams: int = 2, writes: int = 1,
              word_bytes: float = _DOUBLE) -> float:
        """Vector kernel streaming ``n_streams`` reads + ``writes`` writes."""
        flops = 2.0 * n_elems
        bytes_moved = word_bytes * n_elems * (n_streams + writes)
        return self._roofline(flops, bytes_moved, self.machine.stream_efficiency)

    def dd_factor(self) -> float:
        """Flop multiplier for double-double arithmetic (~20 native flops
        per dd flop; bandwidth cost unchanged since operands stay float64).
        Used by the mixed-precision CholQR cost accounting."""
        return 20.0

    def spmv(self, nnz: float, n_rows: float, n_cols_touched: float,
             word_bytes: float = _DOUBLE) -> float:
        """CSR SpMV: stream values+indices once, rows of y, gathered x.

        ``spmv_efficiency`` covers the irregular x-gather; the fixed
        overhead covers the distributed-SpMV bookkeeping (operand
        import/export, MPI progression, device syncs) that dominates at
        small local sizes — see the MachineSpec module docstring.
        ``word_bytes`` sizes the *vector* streams (x gather + y rows) at
        the operand storage precision; matrix values always stream fp64.
        """
        flops = 2.0 * nnz
        bytes_moved = ((_DOUBLE + _INT) * nnz + _INT * (n_rows + 1)
                       + word_bytes * (n_rows + n_cols_touched))
        return (self.machine.spmv_fixed_overhead
                + self._roofline(flops, bytes_moved,
                                 self.machine.spmv_efficiency))

    def host_dense(self, flops: float) -> float:
        """Small redundant dense math on the host (Cholesky of an s x s
        Gram, Hessenberg least squares) — paper Sec. VII runs these on CPU
        on every rank."""
        if self.metrics is not None:
            self.metrics.record_op(flops, 0.0)
        return flops / self.machine.host_flops

    def ghost_plan_analysis(self, level_rows: float, level_nnz: float) -> float:
        """Symbolic cost of building one rank's s-level ghost-zone closure.

        Host-side graph traversal over the transitively reachable rows:
        each closure level walks its rows' CSR adjacency (a few ops per
        nonzero to follow column indices, plus per-row set/sort
        bookkeeping).  ``level_rows`` / ``level_nnz`` are the totals over
        every level of the plan (:class:`repro.distla.halo.GhostPlan`
        records them per rank).  Charged once per ``(depth, expand)`` key
        when the plan is first analyzed — deep-halo planning is no longer
        free, so one-shot short solves see the setup the CA MPK really
        pays before its first panel.
        """
        return self.host_dense(8.0 * level_nnz + 32.0 * level_rows)

    def srht_apply(self, n_pad: float, n_cols: float, m_rows: float,
                   word_bytes: float = _DOUBLE) -> float:
        """Batched FFT-style SRHT: one fast Walsh–Hadamard transform over
        the zero-padded shard, applied to all ``n_cols`` columns at once.

        The butterfly network does ``n_pad log2(n_pad)`` adds per column
        (versus ``2 m n_pad`` for the explicit tall GEMM the closed-form
        operator charges), then gathers and sign-flips the ``m_rows``
        sampled rows.  Bytes: stream the padded work array in and out
        once — the log2(n_pad) passes are cache-tiled — plus the sampled
        output.  Used by :class:`repro.sketch.operators.FastSRHTSketch`.
        """
        lg = max(1.0, math.log2(max(n_pad, 2.0)))
        flops = n_pad * lg * n_cols + 2.0 * m_rows * n_cols
        bytes_moved = word_bytes * (2.0 * n_pad * n_cols
                                    + m_rows * n_cols)
        return self._roofline(flops, bytes_moved,
                              self.machine.stream_efficiency)

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def _tree_hops(self, ranks: int) -> tuple[int, int]:
        """(intra-node hops, inter-node hops) of a hierarchical reduction."""
        m = self.machine
        if ranks <= 1:
            return 0, 0
        on_node = min(ranks, m.ranks_per_node)
        nodes = m.nodes_for(ranks)
        intra = math.ceil(math.log2(on_node)) if on_node > 1 else 0
        inter = math.ceil(math.log2(nodes)) if nodes > 1 else 0
        return intra, inter

    def allreduce(self, bytes_payload: float, ranks: int) -> float:
        """Allreduce of ``bytes_payload`` across ``ranks`` devices.

        Hierarchical recursive doubling: every hop pays its latency plus
        the payload over its link; one device sync drains the GPU pipeline
        before MPI may read the buffer (and one more to resume).
        """
        if ranks <= 1:
            return 0.0
        m = self.machine
        intra, inter = self._tree_hops(ranks)
        t = 2.0 * m.device_sync_latency
        t += intra * (m.net_latency_intra + bytes_payload / m.net_bandwidth_intra)
        t += inter * (m.net_latency_inter + bytes_payload / m.net_bandwidth_inter)
        return t

    def bcast(self, bytes_payload: float, ranks: int) -> float:
        """Broadcast of ``bytes_payload`` from one root to ``ranks`` devices.

        Same hierarchical tree as :meth:`allreduce` but one-way: a single
        device sync drains the root's pipeline, then the payload fans out
        down the intra/inter hop levels.  Half the sync cost of an
        allreduce because nothing is gathered back.
        """
        if ranks <= 1:
            return 0.0
        m = self.machine
        intra, inter = self._tree_hops(ranks)
        t = m.device_sync_latency
        t += intra * (m.net_latency_intra + bytes_payload / m.net_bandwidth_intra)
        t += inter * (m.net_latency_inter + bytes_payload / m.net_bandwidth_inter)
        return t

    def point_to_point(self, bytes_payload: float, same_node: bool) -> float:
        """One message between two ranks."""
        m = self.machine
        if same_node:
            return m.net_latency_intra + bytes_payload / m.net_bandwidth_intra
        return m.net_latency_inter + bytes_payload / m.net_bandwidth_inter

    def halo_exchange(self, recv_bytes_by_peer: dict[int, float], rank: int,
                      ranks: int) -> float:
        """Neighbour exchange as seen by one rank: messages from all peers
        land concurrently; serialization only on shared injection bandwidth.
        """
        m = self.machine
        if not recv_bytes_by_peer:
            return 0.0
        node = rank // m.ranks_per_node
        t_lat = 0.0
        vol_intra = 0.0
        vol_inter = 0.0
        for peer, nbytes in recv_bytes_by_peer.items():
            if peer // m.ranks_per_node == node:
                t_lat = max(t_lat, m.net_latency_intra)
                vol_intra += nbytes
            else:
                t_lat = max(t_lat, m.net_latency_inter)
                vol_inter += nbytes
        return (m.device_sync_latency + t_lat
                + vol_intra / m.net_bandwidth_intra
                + vol_inter / m.net_bandwidth_inter)

    # ------------------------------------------------------------------
    # batched (multi-solve) charging
    # ------------------------------------------------------------------
    def fixed_cost(self, kernel: str, ranks: int) -> float:
        """Width-independent seconds of ONE charged ``kernel`` occurrence.

        Every formula above is affine in its shape: ``t = fixed +
        work(shape)`` where the fixed part (launch latency, device
        syncs, per-hop message latency) does not grow with the operand.
        A fused pass over ``b`` stacked operands therefore pays the
        fixed part once and the work term per member — this method is
        the split :class:`repro.parallel.batch.BatchCharges` subtracts
        from follower members' charges.  Host-side redundant math
        (``host``, ``ghost_plan``) has no launch cost and batching buys
        it nothing.
        """
        m = self.machine
        if kernel == "allreduce":
            return self.allreduce(0.0, ranks)
        if kernel == "bcast":
            return self.bcast(0.0, ranks)
        if kernel == "halo":
            if ranks <= 1:
                return 0.0
            lat = (m.net_latency_inter if m.nodes_for(ranks) > 1
                   else m.net_latency_intra)
            return m.device_sync_latency + lat
        if kernel == "spmv_local":
            return m.kernel_latency + m.spmv_fixed_overhead
        if kernel in ("host", "ghost_plan"):
            return 0.0
        return m.kernel_latency
