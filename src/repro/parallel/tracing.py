"""Modeled-time accounting for the simulated machine.

A :class:`Tracer` owns the simulated clock.  Code charges time with
``tracer.add(kernel, seconds)`` inside a ``with tracer.phase("ortho")``
region; totals are kept per phase and per (phase, kernel) pair, plus call
counters.  This is what regenerates the paper's time-breakdown figures
(Figs. 10-12: dot-products vs vector-updates vs the rest of the
orthogonalization) and the SpMV/Ortho/Total columns of Tables II-IV.

The tracer is deliberately not thread-safe: the simulator executes ranks
in lockstep inside one Python thread, charging the *maximum* cost across
concurrently-executing ranks (see :mod:`repro.distla.blas`).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Canonical phase names used across the library; free-form names are also
#: accepted (they simply show up as extra rows in reports).
PHASES = ("spmv", "precond", "ortho", "small_dense", "other")

#: Canonical kernel names (sub-categories inside a phase).
KERNELS = (
    "dot",        # Gram / projection GEMMs (the paper's "dot-products")
    "update",     # V -= Q R tall updates (the paper's "vector-updates")
    "norm",
    "scale",
    "chol",
    "trsm",
    "allreduce",
    "halo",
    "spmv_local",
    "host",
    "axpy",
)


def phase_names() -> tuple[str, ...]:
    """Public accessor for the canonical phase list."""
    return PHASES


@dataclass
class TraceTotals:
    """Immutable-ish snapshot of tracer accumulators (for diffs)."""

    clock: float
    by_phase: dict[str, float]
    by_kernel: dict[tuple[str, str], float]
    counts: dict[tuple[str, str], int]


@dataclass
class Tracer:
    """Accumulates modeled seconds per phase/kernel and a global clock."""

    clock: float = 0.0
    by_phase: dict = field(default_factory=lambda: defaultdict(float))
    by_kernel: dict = field(default_factory=lambda: defaultdict(float))
    counts: dict = field(default_factory=lambda: defaultdict(int))
    _phase_stack: list = field(default_factory=lambda: ["other"])

    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1]

    @contextmanager
    def phase(self, name: str):
        """Charge subsequent :meth:`add` calls to phase ``name``."""
        self._phase_stack.append(name)
        try:
            yield self
        finally:
            self._phase_stack.pop()

    def add(self, kernel: str, seconds: float, count: int = 1) -> None:
        """Advance the clock by ``seconds``, attributed to ``kernel``."""
        if seconds < 0:
            raise ValueError(f"negative cost for kernel {kernel!r}: {seconds}")
        phase = self.current_phase
        self.clock += seconds
        self.by_phase[phase] += seconds
        self.by_kernel[(phase, kernel)] += seconds
        self.counts[(phase, kernel)] += count

    # ------------------------------------------------------------------
    def snapshot(self) -> TraceTotals:
        """Copy of the accumulators, e.g. to diff around a solver call."""
        return TraceTotals(self.clock, dict(self.by_phase),
                           dict(self.by_kernel), dict(self.counts))

    def since(self, snap: TraceTotals) -> TraceTotals:
        """Totals accumulated after ``snap`` was taken."""
        by_phase = {k: v - snap.by_phase.get(k, 0.0)
                    for k, v in self.by_phase.items()}
        by_kernel = {k: v - snap.by_kernel.get(k, 0.0)
                     for k, v in self.by_kernel.items()}
        counts = {k: v - snap.counts.get(k, 0)
                  for k, v in self.counts.items()}
        return TraceTotals(self.clock - snap.clock, by_phase, by_kernel, counts)

    def reset(self) -> None:
        """Zero everything (phase stack is preserved)."""
        self.clock = 0.0
        self.by_phase.clear()
        self.by_kernel.clear()
        self.counts.clear()

    # ------------------------------------------------------------------
    def phase_seconds(self, name: str) -> float:
        return float(self.by_phase.get(name, 0.0))

    def kernel_seconds(self, phase: str, kernel: str) -> float:
        return float(self.by_kernel.get((phase, kernel), 0.0))

    def kernel_count(self, phase: str, kernel: str) -> int:
        return int(self.counts.get((phase, kernel), 0))

    def sync_count(self, phase: str | None = None) -> int:
        """Number of global synchronizations (allreduces) charged so far."""
        total = 0
        for (ph, kern), c in self.counts.items():
            if kern == "allreduce" and (phase is None or ph == phase):
                total += c
        return total

    def report(self) -> str:
        """Multi-line human-readable accounting summary."""
        lines = [f"modeled clock: {self.clock:.6f} s"]
        for ph in sorted(self.by_phase, key=lambda p: -self.by_phase[p]):
            lines.append(f"  {ph:<12s} {self.by_phase[ph]:.6f} s")
            kerns = [(k[1], v) for k, v in self.by_kernel.items() if k[0] == ph]
            for kern, v in sorted(kerns, key=lambda kv: -kv[1]):
                cnt = self.counts[(ph, kern)]
                lines.append(f"    {kern:<12s} {v:.6f} s  (x{cnt})")
        return "\n".join(lines)
