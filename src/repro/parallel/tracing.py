"""Time accounting for the simulated (or real-process) machine.

A :class:`Tracer` owns one clock.  Code charges time with
``tracer.add(kernel, seconds)`` inside a ``with tracer.phase("ortho")``
region; totals are kept per phase and per (phase, kernel) pair, plus call
counters.  This is what regenerates the paper's time-breakdown figures
(Figs. 10-12: dot-products vs vector-updates vs the rest of the
orthogonalization) and the SpMV/Ortho/Total columns of Tables II-IV.

Two kinds of tracer exist, distinguished by :attr:`Tracer.stream`:

``"modeled"``
    The clock is simulated seconds charged by the
    :class:`~repro.parallel.costmodel.CostModel` (the ``"sim"`` backend,
    and :attr:`MpComm.modeled`, the mp backend's predicted twin).

``"measured"``
    The clock is real wall-clock seconds (``perf_counter`` deltas)
    recorded by the ``"mp"`` executor backend.

Structured span stream (opt-in)
-------------------------------
Beyond the lossy accumulators, a tracer can keep a **structured span
stream**: one :class:`SpanEvent` per charge (and per ``phase()`` region)
with begin/end timestamps on the tracer's clock, the enclosing phase,
the kernel, the restart-cycle marker, the reduction payload bytes and
the stream tag.  Spans power the Chrome-trace / JSONL exporters and the
predicted-vs-measured drift monitor in :mod:`repro.obs`.

Spans are **disabled by default** and the disabled path is a no-op: one
``is not None`` test per charge, nothing allocated.  Call
:meth:`Tracer.enable_spans` (or ``Simulation(..., spans=True)``) to
record them.

Overlap dimension (nonblocking collectives)
-------------------------------------------
When a communicator posts a collective (``post_iallreduce`` & co.), the
compute charged between post and wait drains the collective's modeled
time, and the ``wait`` charges only the exposed remainder — passing the
hidden part as ``overlapped_seconds``.  That hidden time accumulates in
:attr:`Tracer.overlapped` (per phase/kernel, queryable via
:meth:`Tracer.overlapped_seconds`) and is stamped onto the wait's
:class:`SpanEvent`, so Perfetto can show hidden vs exposed comm without
the clock ever double-counting.

The tracer is deliberately not thread-safe: the simulator executes ranks
in lockstep inside one Python thread, charging the *maximum* cost across
concurrently-executing ranks (see :mod:`repro.distla.blas`).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Canonical phase names used across the library; free-form names are also
#: accepted (they simply show up as extra rows in reports).
PHASES = ("spmv", "precond", "ortho", "small_dense", "other")

#: Canonical kernel names (sub-categories inside a phase).
KERNELS = (
    "dot",        # Gram / projection GEMMs (the paper's "dot-products")
    "update",     # V -= Q R tall updates (the paper's "vector-updates")
    "norm",
    "scale",
    "chol",
    "trsm",
    "allreduce",
    "halo",
    "bcast",
    "spmv_local",
    "host",
    "axpy",
)

#: Kernels that are communication collectives (global or neighbourhood);
#: what :meth:`Tracer.collective_counts` reports.
COLLECTIVE_KERNELS = ("allreduce", "halo", "bcast")

#: Stream tags a tracer's clock can run on.
STREAMS = ("modeled", "measured")


def phase_names() -> tuple[str, ...]:
    """Public accessor for the canonical phase list."""
    return PHASES


@dataclass
class SpanEvent:
    """One begin/end interval on a tracer's clock.

    ``cat`` is ``"kernel"`` for charge spans (one per :meth:`Tracer.add`
    call), ``"phase"`` for ``with tracer.phase(...)`` regions, and free
    for :meth:`Tracer.record_span` callers (the mp backend tags per-rank
    sub-spans of the worker-executed SpMV).  ``rank`` is ``None`` for
    driver-global spans (the simulator charges the max over ranks) and a
    rank index for per-rank lanes.
    """

    name: str
    t0: float
    t1: float
    phase: str
    stream: str
    cat: str = "kernel"
    count: int = 1
    payload_bytes: float | None = None
    cycle: int | None = None
    rank: int | None = None
    #: For the exposed-remainder charge of a posted collective: how many
    #: seconds of the collective were hidden behind compute before the
    #: wait (``None`` for ordinary blocking charges).
    overlapped_seconds: float | None = None
    #: True for kernels the mp backend executes on the driver process
    #: rather than the workers (panel QR, sketch apply): their measured
    #: wall-clock carries no worker round-trip, so LogGP calibration
    #: must exclude them from network fits.
    driver_side: bool = False

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        """JSON-safe flat dict (the JSONL exporter's line schema)."""
        return {
            "name": self.name, "t0": self.t0, "t1": self.t1,
            "phase": self.phase, "stream": self.stream, "cat": self.cat,
            "count": self.count, "payload_bytes": self.payload_bytes,
            "cycle": self.cycle, "rank": self.rank,
            "overlapped_seconds": self.overlapped_seconds,
            "driver_side": self.driver_side,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanEvent":
        return cls(name=doc["name"], t0=float(doc["t0"]), t1=float(doc["t1"]),
                   phase=doc.get("phase", "other"),
                   stream=doc.get("stream", "modeled"),
                   cat=doc.get("cat", "kernel"),
                   count=int(doc.get("count", 1)),
                   payload_bytes=doc.get("payload_bytes"),
                   cycle=doc.get("cycle"), rank=doc.get("rank"),
                   overlapped_seconds=doc.get("overlapped_seconds"),
                   driver_side=bool(doc.get("driver_side", False)))


def _key_str(key: tuple[str, str]) -> str:
    """Serialize a (phase, kernel) tuple key as ``"phase/kernel"``."""
    return f"{key[0]}/{key[1]}"


@dataclass
class TraceTotals:
    """Immutable-ish snapshot of tracer accumulators (for diffs)."""

    clock: float
    by_phase: dict[str, float]
    by_kernel: dict[tuple[str, str], float]
    counts: dict[tuple[str, str], int]
    #: Hidden comm seconds per (phase, kernel): the part of each posted
    #: collective that compute drained before its ``wait`` (empty for
    #: purely blocking runs).
    overlapped: dict = field(default_factory=dict)
    #: Wire payload bytes per (phase, kernel) — fed from the
    #: ``payload_bytes`` argument of :meth:`Tracer.add`, so only
    #: collective charges contribute (local kernels pass None).
    payload_bytes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe document: tuple keys flattened to ``"phase/kernel"``.

        The machine-readable form experiment artifacts embed instead of
        hand-rolled breakdown dicts.
        """
        return {
            "clock": float(self.clock),
            "by_phase": {p: float(v) for p, v in self.by_phase.items()},
            "by_kernel": {_key_str(k): float(v)
                          for k, v in self.by_kernel.items()},
            "counts": {_key_str(k): int(c) for k, c in self.counts.items()},
            "overlapped": {_key_str(k): float(v)
                           for k, v in self.overlapped.items()},
            "payload_bytes": {_key_str(k): float(v)
                              for k, v in self.payload_bytes.items()},
        }


@dataclass
class Tracer:
    """Accumulates seconds per phase/kernel plus a global clock, and —
    when enabled — a structured :class:`SpanEvent` stream.

    ``stream`` labels which clock this tracer runs on (``"modeled"`` or
    ``"measured"``); it is stamped into every span.  The phase stack and
    the cycle marker live in shared mutable cells so a twin tracer can
    attribute through them (see :meth:`share_phase_stack`).
    """

    clock: float = 0.0
    by_phase: dict = field(default_factory=lambda: defaultdict(float))
    by_kernel: dict = field(default_factory=lambda: defaultdict(float))
    counts: dict = field(default_factory=lambda: defaultdict(int))
    overlapped: dict = field(default_factory=lambda: defaultdict(float))
    payload_bytes: dict = field(default_factory=lambda: defaultdict(float))
    stream: str = "modeled"
    _phase_stack: list = field(default_factory=lambda: ["other"])
    _cycle: list = field(default_factory=lambda: [None])
    _spans: list | None = None
    _metrics: object | None = None

    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1]

    @property
    def current_cycle(self) -> int | None:
        """Restart-cycle marker stamped into spans (None outside solves)."""
        return self._cycle[0]

    def set_cycle(self, cycle: int | None) -> None:
        """Mark subsequent spans as belonging to restart cycle ``cycle``."""
        self._cycle[0] = cycle

    def share_phase_stack(self, other: "Tracer") -> None:
        """Attribute ``other``'s charges through THIS tracer's context.

        Aliases the phase stack *and* the cycle marker, so one ``with
        tracer.phase(...)`` region (and one :meth:`set_cycle` call)
        drives both tracers — the mp backend uses this to keep its
        measured tracer and its modeled twin attributing every charge to
        the same phase without reaching into private fields.
        """
        other._phase_stack = self._phase_stack
        other._cycle = self._cycle

    @contextmanager
    def phase(self, name: str):
        """Charge subsequent :meth:`add` calls to phase ``name``.

        Re-entrant: nesting (including re-entering the *same* phase
        name) pushes/pops a stack, so an inner region ends back in the
        outer phase.  With spans enabled, each region also records one
        ``cat="phase"`` span covering its clock interval.
        """
        self._phase_stack.append(name)
        t0 = self.clock
        try:
            yield self
        finally:
            self._phase_stack.pop()
            if self._spans is not None:
                self._spans.append(SpanEvent(
                    name, t0, self.clock, name, self.stream, cat="phase",
                    cycle=self._cycle[0]))

    def add(self, kernel: str, seconds: float, count: int = 1,
            payload_bytes: float | None = None,
            overlapped_seconds: float | None = None,
            driver_side: bool = False) -> None:
        """Advance the clock by ``seconds``, attributed to ``kernel``.

        ``payload_bytes`` optionally records the wire payload of a
        collective; it accumulates in :attr:`payload_bytes` and lands in
        the span stream (charged seconds are unchanged whether or not it
        is passed).

        ``overlapped_seconds`` marks this charge as the *exposed*
        remainder of a posted collective and records how much of the
        collective was hidden behind compute before its ``wait``.  The
        hidden part never advances the clock (that time already elapsed
        inside the draining charges); it accumulates in
        :attr:`overlapped` as a separate dimension.

        ``driver_side`` tags charges the mp backend executes on the
        driver process (see :class:`SpanEvent`); it only lands in the
        span stream and the metrics feed.
        """
        if seconds < 0:
            raise ValueError(f"negative cost for kernel {kernel!r}: {seconds}")
        phase = self._phase_stack[-1]
        t0 = self.clock
        self.clock = t0 + seconds
        self.by_phase[phase] += seconds
        self.by_kernel[(phase, kernel)] += seconds
        self.counts[(phase, kernel)] += count
        if overlapped_seconds:
            self.overlapped[(phase, kernel)] += overlapped_seconds
        if payload_bytes:
            self.payload_bytes[(phase, kernel)] += payload_bytes
        if self._metrics is not None:
            self._metrics.observe(phase, kernel, seconds, count,
                                  payload_bytes, driver_side)
        if self._spans is not None:
            self._spans.append(SpanEvent(
                kernel, t0, self.clock, phase, self.stream, count=count,
                payload_bytes=payload_bytes, cycle=self._cycle[0],
                overlapped_seconds=overlapped_seconds,
                driver_side=driver_side))

    # -- span stream ----------------------------------------------------
    def enable_spans(self) -> None:
        """Start recording :class:`SpanEvent` objects (idempotent)."""
        if self._spans is None:
            self._spans = []

    def disable_spans(self) -> None:
        """Stop recording and DROP any recorded spans."""
        self._spans = None

    @property
    def spans_enabled(self) -> bool:
        return self._spans is not None

    @property
    def spans(self) -> list[SpanEvent]:
        """Copy of the recorded span stream (empty when disabled)."""
        return list(self._spans) if self._spans is not None else []

    def record_span(self, name: str, t0: float, t1: float, *,
                    phase: str | None = None, cat: str = "kernel",
                    count: int = 1, payload_bytes: float | None = None,
                    rank: int | None = None,
                    cycle: int | None = None,
                    driver_side: bool = False) -> None:
        """Append a raw span WITHOUT touching the accumulators.

        For sub-charge detail that must not double-count — e.g. the mp
        backend's per-rank SpMV gather/compute lanes, whose driver-side
        totals are already charged through :meth:`add`.  No-op while
        spans are disabled.
        """
        if self._spans is None:
            return
        self._spans.append(SpanEvent(
            name, t0, t1, phase if phase is not None else self.current_phase,
            self.stream, cat=cat, count=count, payload_bytes=payload_bytes,
            cycle=self._cycle[0] if cycle is None else cycle, rank=rank,
            driver_side=driver_side))

    # -- metrics feed ---------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Feed every subsequent charge into ``registry`` (a
        :class:`repro.obs.metrics.MetricsRegistry`).  Disabled by
        default; the disabled path is one ``is not None`` test per
        charge — accumulator and clock behaviour are identical either
        way (``scripts/span_overhead_check.py`` gates this)."""
        self._metrics = registry

    def detach_metrics(self) -> None:
        self._metrics = None

    # ------------------------------------------------------------------
    def snapshot(self) -> TraceTotals:
        """Copy of the accumulators, e.g. to diff around a solver call."""
        return TraceTotals(self.clock, dict(self.by_phase),
                           dict(self.by_kernel), dict(self.counts),
                           dict(self.overlapped), dict(self.payload_bytes))

    def since(self, snap: TraceTotals) -> TraceTotals:
        """Totals accumulated after ``snap`` was taken.

        Seconds and call counts alike are element-wise differences: a
        kernel charged 3 times before the snapshot and 5 times in total
        diffs to count 2 (keys absent from ``snap`` diff against zero).
        """
        by_phase = {k: v - snap.by_phase.get(k, 0.0)
                    for k, v in self.by_phase.items()}
        by_kernel = {k: v - snap.by_kernel.get(k, 0.0)
                     for k, v in self.by_kernel.items()}
        counts = {k: v - snap.counts.get(k, 0)
                  for k, v in self.counts.items()}
        overlapped = {k: v - snap.overlapped.get(k, 0.0)
                      for k, v in self.overlapped.items()}
        payload = {k: v - snap.payload_bytes.get(k, 0.0)
                   for k, v in self.payload_bytes.items()}
        return TraceTotals(self.clock - snap.clock, by_phase, by_kernel,
                           counts, overlapped, payload)

    def reset(self) -> None:
        """Zero accumulators and drop recorded spans (phase stack and
        span-enablement are preserved)."""
        self.clock = 0.0
        self.by_phase.clear()
        self.by_kernel.clear()
        self.counts.clear()
        self.overlapped.clear()
        self.payload_bytes.clear()
        if self._spans is not None:
            self._spans.clear()

    # ------------------------------------------------------------------
    def phase_seconds(self, name: str) -> float:
        return float(self.by_phase.get(name, 0.0))

    def kernel_seconds(self, phase: str, kernel: str) -> float:
        return float(self.by_kernel.get((phase, kernel), 0.0))

    def kernel_count(self, phase: str, kernel: str) -> int:
        return int(self.counts.get((phase, kernel), 0))

    def overlapped_seconds(self, phase: str | None = None,
                           kernel: str | None = None) -> float:
        """Total hidden comm seconds, optionally filtered by phase/kernel.

        The sum over :attr:`overlapped` entries — i.e. how much posted
        collective time compute drained before the matching ``wait``
        charges landed.  Zero for purely blocking runs.
        """
        return float(sum(
            v for (ph, kern), v in self.overlapped.items()
            if (phase is None or ph == phase)
            and (kernel is None or kern == kernel)))

    def collective_counts(self, phase: str | None = None, *,
                          payload_bytes: bool = False) -> dict:
        """Call counts of every collective kernel, optionally per phase.

        Returns ``{"allreduce": n, "halo": m, "bcast": k}`` — all of
        :data:`COLLECTIVE_KERNELS`, zero-filled for collectives never
        charged — covering global reductions, neighbourhood exchanges
        and broadcasts alike (:meth:`sync_count` reports only the
        allreduce entry).

        With ``payload_bytes=True`` each entry becomes ``{"count": n,
        "bytes": b}`` where ``bytes`` totals the wire payload charged
        through :meth:`add` — the comm-budget tests pin both: how often
        each collective fires AND how much it moves.
        """
        out = dict.fromkeys(COLLECTIVE_KERNELS, 0)
        for (ph, kern), c in self.counts.items():
            if kern in out and (phase is None or ph == phase):
                out[kern] += c
        if not payload_bytes:
            return out
        nbytes = dict.fromkeys(COLLECTIVE_KERNELS, 0.0)
        for (ph, kern), b in self.payload_bytes.items():
            if kern in nbytes and (phase is None or ph == phase):
                nbytes[kern] += b
        return {k: {"count": out[k], "bytes": float(nbytes[k])}
                for k in COLLECTIVE_KERNELS}

    def sync_count(self, phase: str | None = None) -> int:
        """Number of global synchronizations (allreduces) charged so far."""
        return self.collective_counts(phase)["allreduce"]

    def to_dict(self, include_spans: bool = False) -> dict:
        """JSON-safe document of the accumulators (and optionally spans).

        Same layout as :meth:`TraceTotals.to_dict` plus the ``stream``
        tag; with ``include_spans=True`` and spans enabled, a ``spans``
        list of :meth:`SpanEvent.to_dict` entries is appended.
        """
        doc = self.snapshot().to_dict()
        doc["stream"] = self.stream
        if include_spans and self._spans is not None:
            doc["spans"] = [s.to_dict() for s in self._spans]
        return doc

    def report(self) -> str:
        """Multi-line human-readable accounting summary."""
        lines = [f"{self.stream} clock: {self.clock:.6f} s"]
        if self.overlapped:
            lines.append(
                f"  hidden comm (overlapped): "
                f"{self.overlapped_seconds():.6f} s")
        for ph in sorted(self.by_phase, key=lambda p: -self.by_phase[p]):
            lines.append(f"  {ph:<12s} {self.by_phase[ph]:.6f} s")
            kerns = [(k[1], v) for k, v in self.by_kernel.items() if k[0] == ph]
            for kern, v in sorted(kerns, key=lambda kv: -kv[1]):
                cnt = self.counts[(ph, kern)]
                lines.append(f"    {kern:<12s} {v:.6f} s  (x{cnt})")
        return "\n".join(lines)
