"""Execution-driven simulator of a distributed GPU cluster.

The paper measures on Summit (IBM Power9 + 6 NVIDIA V100 per node,
Spectrum MPI) and Vortex (4 V100 per node).  We reproduce the performance
experiments on a *simulated* machine: algorithms execute for real (SPMD
over per-rank shards, tree-order reductions), while every local kernel and
every message is charged modeled time from a :class:`MachineSpec` through
a :class:`CostModel`, accumulated by a :class:`Tracer`.

See DESIGN.md section 3 for why this substitution preserves the paper's
relevant behaviour (speedups are count-driven: synchronizations per s
steps, kernel launches, and bytes moved as a function of block width).
"""

from repro.parallel.machine import MachineSpec, summit, vortex, generic_cpu
from repro.parallel.costmodel import CostModel
from repro.parallel.tracing import Tracer, phase_names
from repro.parallel.partition import Partition
from repro.parallel.communicator import SimComm

__all__ = [
    "MachineSpec",
    "summit",
    "vortex",
    "generic_cpu",
    "CostModel",
    "Tracer",
    "phase_names",
    "Partition",
    "SimComm",
]
