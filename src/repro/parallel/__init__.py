"""Execution-driven simulator of a distributed GPU cluster.

The paper measures on Summit (IBM Power9 + 6 NVIDIA V100 per node,
Spectrum MPI) and Vortex (4 V100 per node).  We reproduce the performance
experiments on a *simulated* machine: algorithms execute for real (SPMD
over per-rank shards, tree-order reductions), while every local kernel and
every message is charged modeled time from a :class:`MachineSpec` through
a :class:`CostModel`, accumulated by a :class:`Tracer`.

See DESIGN.md section 3 for why this substitution preserves the paper's
relevant behaviour (speedups are count-driven: synchronizations per s
steps, kernel launches, and bytes moved as a function of block width).

The communication surface is a formal protocol (:class:`Communicator`,
:mod:`repro.parallel.api`) with two backends: :class:`SimComm`, the
modeled *planner* described above, and :class:`MpComm`
(:mod:`repro.parallel.mp_backend`), a real ``multiprocessing`` +
shared-memory *executor* whose ranks are OS processes and whose tracer
records measured wall clock — bit-identical results, measured twin for
every modeled cost.  Construct either via :func:`make_comm`.
"""

from repro.parallel.machine import MachineSpec, summit, vortex, generic_cpu
from repro.parallel.costmodel import CostModel
from repro.parallel.tracing import SpanEvent, Tracer, TraceTotals, phase_names
from repro.parallel.partition import Partition
from repro.parallel.api import BACKENDS, Communicator, make_comm
from repro.parallel.communicator import SimComm
from repro.parallel.mp_backend import MpComm

__all__ = [
    "MachineSpec",
    "summit",
    "vortex",
    "generic_cpu",
    "CostModel",
    "Tracer",
    "TraceTotals",
    "SpanEvent",
    "phase_names",
    "Partition",
    "BACKENDS",
    "Communicator",
    "make_comm",
    "SimComm",
    "MpComm",
]
