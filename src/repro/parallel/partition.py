"""1-D block-row partitions of a global index range over P ranks.

The paper distributes matrices and basis vectors "among MPI processes in
1D block row format" (Section VII).  A :class:`Partition` is the single
source of truth for who owns which rows; the distributed containers in
:mod:`repro.distla` carry one around.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.utils.validation import check_positive_int


class Partition:
    """Contiguous block-row partition of ``n_global`` rows over ``ranks``.

    Parameters
    ----------
    n_global:
        Total number of rows.
    ranks:
        Number of MPI ranks (simulated devices).
    offsets:
        Optional explicit rank boundaries, length ``ranks + 1`` with
        ``offsets[0] == 0`` and ``offsets[-1] == n_global``; defaults to a
        balanced split (remainder spread over the leading ranks, matching
        Tpetra's default contiguous map).
    """

    def __init__(self, n_global: int, ranks: int,
                 offsets: np.ndarray | None = None) -> None:
        self.n_global = check_positive_int(n_global, "n_global")
        self.ranks = check_positive_int(ranks, "ranks")
        if offsets is None:
            base, rem = divmod(self.n_global, self.ranks)
            counts = np.full(self.ranks, base, dtype=np.int64)
            counts[:rem] += 1
            offsets = np.concatenate([[0], np.cumsum(counts)])
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.shape != (self.ranks + 1,):
            raise PartitionError(
                f"offsets must have length ranks+1={self.ranks + 1}, "
                f"got {offsets.shape}")
        if offsets[0] != 0 or offsets[-1] != self.n_global:
            raise PartitionError("offsets must start at 0 and end at n_global")
        if np.any(np.diff(offsets) < 0):
            raise PartitionError("offsets must be non-decreasing")
        self.offsets = offsets

    # ------------------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        """Rows owned by each rank (length ``ranks``)."""
        return np.diff(self.offsets)

    def local_slice(self, rank: int) -> slice:
        """Global-row slice owned by ``rank``."""
        self._check_rank(rank)
        return slice(int(self.offsets[rank]), int(self.offsets[rank + 1]))

    def local_count(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self.offsets[rank + 1] - self.offsets[rank])

    def max_local_count(self) -> int:
        """Rows on the most loaded rank — what concurrent kernels cost."""
        return int(self.counts.max())

    @property
    def is_uniform(self) -> bool:
        """True when every rank owns the same number of rows.

        Uniform partitions are what the batched execution engine can stack
        into one contiguous ``(ranks, rows, k)`` array; ragged ones take
        the per-rank loop fallback.
        """
        counts = self.counts
        return bool((counts == counts[0]).all())

    def owner(self, row: int) -> int:
        """Rank owning global row ``row``."""
        if not 0 <= row < self.n_global:
            raise PartitionError(f"row {row} outside [0, {self.n_global})")
        return int(np.searchsorted(self.offsets, row, side="right") - 1)

    def owners(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        rows = np.asarray(rows)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_global):
            raise PartitionError("row indices outside global range")
        return np.searchsorted(self.offsets, rows, side="right") - 1

    def group_by_owner(self, rows: np.ndarray) -> dict[int, np.ndarray]:
        """Partition a sorted global row set by owning rank.

        Returns ``{rank: rows_owned_by_rank}`` with only non-empty
        groups — the shape halo/ghost planners need to size per-peer
        messages.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return {}
        owners = self.owners(rows)
        groups: dict[int, np.ndarray] = {}
        for peer in np.unique(owners):
            groups[int(peer)] = rows[owners == peer]
        return groups

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.ranks:
            raise PartitionError(f"rank {rank} outside [0, {self.ranks})")

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Partition)
                and self.n_global == other.n_global
                and self.ranks == other.ranks
                and np.array_equal(self.offsets, other.offsets))

    def __hash__(self) -> int:  # partitions are logically immutable
        return hash((self.n_global, self.ranks, self.offsets.tobytes()))

    def __repr__(self) -> str:
        return (f"Partition(n_global={self.n_global}, ranks={self.ranks}, "
                f"counts={self.counts.tolist() if self.ranks <= 8 else '...'})")
