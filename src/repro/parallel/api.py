"""The formal :class:`Communicator` protocol and the backend factory.

Everything the solvers, schemes, and distributed kernels ask of a
communicator is written down here as one explicit protocol — the
communication surface the simulator grew implicitly: tree-ordered global
reductions (plain, fused, stacked, and double-double), their nonblocking
``post_*``/``wait`` counterparts (iallreduce, ihalo, ibcast — posted
collectives whose modeled time subsequent compute charges drain, so the
wait charges only the exposed remainder), neighbourhood (halo) exchange
accounting, broadcasts, concurrent-kernel charging, shard storage
allocation, and an optional backend-executed SpMV hook.

Two backends implement it:

``"sim"`` — :class:`~repro.parallel.communicator.SimComm`, the *planner*.
    Executes reductions driver-side in recursive-doubling pair order and
    charges a LogGP-style :class:`~repro.parallel.costmodel.CostModel` to
    the tracer: every number it produces is **modeled** seconds.

``"mp"`` — :class:`~repro.parallel.mp_backend.MpComm`, the *executor*.
    Each rank is a real OS process (``multiprocessing`` + shared memory)
    owning its shard; reductions fold on the workers in the *same* pair
    order, so results are bit-identical to ``"sim"`` on the same problem.
    Its tracer records **measured** wall-clock per phase, and a modeled
    twin (:attr:`MpComm.modeled`) charges the exact SimComm formulas so
    one run yields predicted *and* measured numbers.  Posted reductions
    map onto genuinely asynchronous worker-side progress: the post
    scatters and dispatches the fold without collecting acknowledgements,
    the wait collects them — driver time between the two is real overlap.

Solver code never branches on the backend: construct via
:func:`make_comm` (or ``Simulation(..., backend=...)``) and the identical
solver/scheme/MPK code runs unchanged on either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.parallel.communicator import CommRequest
from repro.parallel.costmodel import CostModel
from repro.parallel.machine import MachineSpec, summit
from repro.parallel.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.distla.multivector import DistMultiVector
    from repro.distla.spmatrix import DistSparseMatrix

#: Backend names :func:`make_comm` accepts.
BACKENDS = ("sim", "mp")


@runtime_checkable
class Communicator(Protocol):
    """What a backend must provide to run the solvers unchanged.

    Reduction contract: per-rank contributions fold pairwise in
    recursive-doubling order (``items[i] + items[i + half]`` per level,
    odd leftover carried), accumulating in float64 — the order
    :meth:`SimComm._tree_sum` defines.  Any conforming backend must
    reproduce that floating-point result bit-for-bit; the cross-backend
    equivalence suite enforces it.
    """

    machine: MachineSpec
    size: int
    tracer: Tracer
    cost: CostModel
    engine: str | None
    #: Which :data:`BACKENDS` entry this communicator implements.
    backend: str

    # -- global reductions --------------------------------------------
    def allreduce_sum(self, shards: list[np.ndarray]) -> np.ndarray: ...

    def allreduce_scalar(self, values: list[float]) -> float: ...

    def fused_allreduce_sum(self, shard_groups: list[list[np.ndarray]]
                            ) -> list[np.ndarray]: ...

    def allreduce_sum_stacked(self, stack: np.ndarray) -> np.ndarray: ...

    def fused_allreduce_sum_stacked(self, stacks: list[np.ndarray]
                                    ) -> list[np.ndarray]: ...

    def allreduce_dd(self, his: list[np.ndarray], los: list[np.ndarray]
                     ) -> tuple[np.ndarray, np.ndarray]: ...

    def bcast(self, value, root: int = 0): ...

    # -- nonblocking collectives (overlap windows) --------------------
    # post_* returns a CommRequest; compute charged between post and
    # wait drains the request's modeled cost, and wait(request) charges
    # only the exposed remainder (tagged with overlapped_seconds).
    # Results are bit-identical to the blocking counterparts.
    def post_iallreduce_sum(self, shards: list[np.ndarray]
                            ) -> CommRequest: ...

    def post_ifused_allreduce_sum(self, shard_groups: list[list[np.ndarray]]
                                  ) -> CommRequest: ...

    def post_ifused_allreduce_sum_stacked(self, stacks: list[np.ndarray]
                                          ) -> CommRequest: ...

    def post_ihalo(self, recv_bytes_by_rank: list[dict[int, float]]
                   ) -> CommRequest: ...

    def post_ibcast(self, value, root: int = 0) -> CommRequest: ...

    def wait(self, request: CommRequest): ...

    # -- local-kernel and neighbourhood accounting --------------------
    def charge_local(self, kernel: str, per_rank_seconds: list[float],
                     count: int = 1, driver_side: bool = False) -> None: ...

    def charge_uniform(self, kernel: str, seconds: float,
                       count: int = 1, driver_side: bool = False) -> None: ...

    def charge_halo(self, recv_bytes_by_rank: list[dict[int, float]]
                    ) -> None: ...

    # -- storage and execution hooks ----------------------------------
    def alloc_stack(self, ranks: int, rows: int, k: int,
                    dtype: np.dtype) -> np.ndarray: ...

    def exec_spmv(self, matrix: "DistSparseMatrix", x: "DistMultiVector",
                  out: "DistMultiVector") -> bool: ...

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None: ...


def make_comm(backend: str = "sim", machine: MachineSpec | None = None,
              size: int = 4, *, tracer: Tracer | None = None,
              engine: str | None = None) -> "Communicator":
    """Construct a communicator for ``backend`` (``"sim"`` or ``"mp"``).

    Parameters mirror :class:`~repro.parallel.communicator.SimComm`:
    ``machine`` defaults to Summit, ``tracer`` to a fresh
    :class:`~repro.parallel.tracing.Tracer`.  For ``"mp"`` the returned
    communicator owns real worker processes — ``close()`` it (or use it
    as a context manager / let ``Simulation.close`` do it) when done.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown communicator backend {backend!r}; expected one of "
            f"{BACKENDS}")
    machine = machine if machine is not None else summit()
    if backend == "mp":
        from repro.parallel.mp_backend import MpComm
        return MpComm(machine, size, tracer, engine=engine)
    from repro.parallel.communicator import SimComm
    return SimComm(machine, size, tracer, engine=engine)
