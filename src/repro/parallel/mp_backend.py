"""Real multiprocess communicator: the ``"mp"`` executor backend.

:class:`MpComm` implements the :class:`~repro.parallel.api.Communicator`
protocol with *actual* OS processes — one persistent worker per rank,
zero dependencies beyond the standard library: ``multiprocessing`` for
the ranks and ``multiprocessing.shared_memory`` for shard storage and
the reduction arena.

Execution model
---------------
* :meth:`MpComm.alloc_stack` places every library-allocated multivector
  stack in a shared-memory segment, so each worker can reach any shard.
* Global reductions scatter per-rank contributions (cast to float64,
  exactly like :meth:`SimComm._tree_sum`) into a shared ``(size, cap)``
  arena; the workers then fold the slots **in the same recursive-doubling
  pair order** — worker ``a`` executes ``slot[a] += slot[b]`` for its
  level pair, with a barrier between levels — so the reduced result is
  bit-identical to the simulator's on the same problem.
* :meth:`MpComm.exec_spmv` runs the distributed SpMV on the workers:
  each rank gathers the operand from the shared stack (the halo-exchange
  analogue) and computes its own block row.
* The communication-avoiding MPK's ghost-zone loops stay driver-executed
  (they are already plain NumPy over shared arrays); its wall clock is
  still measured.
* Posted reductions (``post_*`` / :meth:`MpComm.wait`) are *genuinely*
  asynchronous: the post scatters into a pooled slab and dispatches the
  fold **without** collecting acknowledgements, so the workers reduce
  while the driver computes; the wait matches token-tagged acks
  (stashing any that belong to other outstanding commands) and unpacks
  slot 0.  Real wall time between post and wait is recorded as the
  measured ``overlapped_seconds``, while the modeled twin drains the
  same overlap window as the sim backend — results stay bit-identical.

Measurement model (the planner/executor split)
----------------------------------------------
``MpComm.tracer`` accumulates **measured** wall-clock seconds: every
charge point records the elapsed time since the previous one
(``perf_counter`` deltas), which attributes each stretch of real work to
the kernel charged right after it — the library's convention is to
charge immediately after the work a kernel models.  ``MpComm.modeled``
is the *modeled twin*: the exact SimComm cost formulas charged through
the inherited code paths, with the phase stack aliased so one
``tracer.phase(...)`` region drives both streams.  A solve on the mp
backend therefore yields predicted AND measured numbers for every phase,
and ``modeled`` matches a ``backend="sim"`` run bit-for-bit.

Hygiene: workers are daemons, every blocking wait has a timeout, and
:meth:`close` (also wired to a ``weakref.finalize``) tears down
processes and unlinks every shared segment.
"""

from __future__ import annotations

import time
import traceback
import weakref

import multiprocessing as mp
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from repro.exceptions import CommunicatorError
from repro.parallel.communicator import SimComm
from repro.parallel.machine import MachineSpec
from repro.parallel.tracing import Tracer

_MIN_ARENA_ELEMS = 4096


def _reduce_schedule(size: int) -> list[list[tuple[int, int]]]:
    """Recursive-doubling levels over slot indices.

    Level ``l`` holds ``(a, b)`` pairs meaning *slot a absorbs slot b*;
    folding them in order reproduces :meth:`SimComm._tree_sum` exactly
    (``items[i] + items[i + half]`` per level, odd leftover carried).
    """
    idx = list(range(size))
    levels: list[list[tuple[int, int]]] = []
    while len(idx) > 1:
        half = len(idx) // 2
        levels.append([(idx[i], idx[i + half]) for i in range(half)])
        idx = idx[:half] + (idx[-1:] if len(idx) % 2 else [])
    return levels


def _split_rows(row: np.ndarray, shapes: list[tuple]) -> list[np.ndarray]:
    """Slice one reduced flat row back into per-group result arrays."""
    results = []
    offset = 0
    for shape in shapes:
        m = int(np.prod(shape, dtype=np.int64)) if shape else 1
        results.append(row[offset:offset + m].reshape(shape))
        offset += m
    return results


def _attach_silent(name: str) -> SharedMemory:
    """Attach a segment created by the driver without tracking it.

    The driver's resource tracker owns cleanup; letting the worker's
    attach register the name too either double-books the shared tracker
    (fork) or schedules a bogus unlink at worker exit (spawn).  Python
    3.13 has ``track=False`` for this; earlier versions need the
    register hook silenced around the attach.
    """
    try:
        return SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _view(segments: dict, desc: dict) -> np.ndarray:
    """Materialize an ndarray described by ``desc`` over a shared segment."""
    shm = segments.get(desc["seg"])
    if shm is None:
        shm = _attach_silent(desc["seg"])
        segments[desc["seg"]] = shm
    return np.ndarray(desc["shape"], dtype=np.dtype(desc["dtype"]),
                      buffer=shm.buf, offset=desc["offset"],
                      strides=desc["strides"])


def _worker_main(rank: int, size: int, conn, barrier, timeout: float) -> None:
    """Per-rank worker loop (module-level: spawn-start compatible)."""
    import scipy.sparse as sp

    from repro.dd.core import dd_add
    from repro.precision.dtypes import quantize

    segments: dict[str, SharedMemory] = {}
    matrices: dict[int, "sp.csr_matrix"] = {}

    def send(ack: dict) -> None:
        # echo the command token so the driver can match this ack to an
        # outstanding (possibly posted/asynchronous) command
        ack["tok"] = cmd.get("tok")
        conn.send(ack)

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        op = cmd.get("op")
        try:
            if op == "exit":
                send({"ok": True})
                break
            if op == "matrix":
                matrices[cmd["token"]] = sp.csr_matrix(
                    (cmd["data"], cmd["indices"], cmd["indptr"]),
                    shape=cmd["shape"])
                send({"ok": True})
            elif op == "reduce":
                shm = segments.get(cmd["arena"])
                if shm is None:
                    shm = _attach_silent(cmd["arena"])
                    segments[cmd["arena"]] = shm
                n = cmd["elems"]
                arena = np.ndarray((size, cmd["cap"]), dtype=np.float64,
                                   buffer=shm.buf)
                dd = cmd["mode"] == "dd"
                h = n // 2
                for pairs in cmd["levels"]:
                    for a, b in pairs:
                        if a != rank:
                            continue
                        if dd:
                            hi, lo = dd_add(
                                (arena[a, :h], arena[a, h:n]),
                                (arena[b, :h], arena[b, h:n]))
                            arena[a, :h] = hi
                            arena[a, h:n] = lo
                        else:
                            arena[a, :n] += arena[b, :n]
                    barrier.wait(timeout)
                send({"ok": True})
            elif op == "spmv":
                t0 = time.perf_counter()
                x = _view(segments, cmd["x"])
                # assemble the global operand from the shared stack — the
                # executor's halo exchange (same values/dtype the
                # simulator feeds ``block @ x_global``)
                x_global = np.asarray(x[:, :, 0]).reshape(-1)
                t1 = time.perf_counter()
                block = matrices[cmd["mat"]]
                y = block @ x_global
                out = _view(segments, cmd["out"])
                if cmd["storage"] != "fp64":
                    y = quantize(y, cmd["storage"])
                out[rank, :, 0] = y
                t2 = time.perf_counter()
                send({"ok": True, "gather": t1 - t0, "compute": t2 - t1})
            else:
                send({"ok": False, "error": f"unknown op {op!r}"})
        except Exception:
            send({"ok": False, "error": traceback.format_exc()})
    for shm in segments.values():
        try:
            shm.close()
        except BufferError:
            pass
    conn.close()


def _cleanup(conns, procs, shms) -> None:
    """Tear down workers and shared segments (close() and GC finalizer)."""
    for conn in conns:
        try:
            conn.send({"op": "exit"})
        except (OSError, ValueError):
            pass
    for p in procs:
        p.join(timeout=5.0)
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for shm in shms:
        try:
            shm.close()
        except BufferError:
            # a live multivector still exports the buffer; the mapping
            # dies with the process, unlink below removes the name
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class MpComm(SimComm):
    """Communicator whose ranks are real ``multiprocessing`` workers.

    Same constructor surface as :class:`SimComm`; ``tracer`` here
    accumulates **measured** wall clock while :attr:`modeled` carries the
    simulator's predicted charges for the identical run.  Close it when
    done (context-manager friendly); ``Simulation.close`` does so for
    simulations constructed with ``backend="mp"``.
    """

    backend = "mp"

    def __init__(self, machine: MachineSpec, size: int,
                 tracer: Tracer | None = None,
                 engine: str | None = None, *,
                 timeout: float = 60.0) -> None:
        super().__init__(machine, size, tracer, engine=engine)
        self.tracer.stream = "measured"
        self.modeled = Tracer()
        # one `with tracer.phase(...)` (and one cycle marker) drives
        # both streams
        self.tracer.share_phase_stack(self.modeled)
        self._timeout = float(timeout)
        self._schedule = _reduce_schedule(self.size)
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self._barrier = ctx.Barrier(self.size)
        self._conns: list = []
        self._procs: list = []
        self._shms: list[SharedMemory] = []
        self._segments: list[tuple[str, int, int]] = []  # (name, addr, nbytes)
        self._arena: SharedMemory | None = None
        self._arena_np: np.ndarray | None = None
        self._arena_cap = 0
        # token-tagged ack plumbing: posted reductions leave their acks
        # in the pipes; any later recv stashes mismatched tokens here
        self._tok = 0
        self._ack_stash: list[dict] = [dict() for _ in range(self.size)]
        # slab pool for posted reductions (the main arena may be busy
        # with a blocking collective inside an overlap window)
        self._slab_pool: list[tuple[SharedMemory, np.ndarray, int]] = []
        self._pending: dict[str, float] = {}
        self._matrix_tokens: dict[int, int] = {}
        self._matrix_keep: list = []
        self._closed = False
        for r in range(self.size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(r, self.size, child, self._barrier, self._timeout),
                daemon=True, name=f"repro-mp-rank{r}")
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._finalizer = weakref.finalize(
            self, _cleanup, self._conns, self._procs, self._shms)
        self._mark = time.perf_counter()

    # -- measured-time bookkeeping -------------------------------------
    def _model_tracer(self):
        # modeled charges (and overlap-window spans) land on the twin
        return self.modeled

    def _charge(self, kernel: str, seconds: float, count: int = 1,
                payload_bytes: float | None = None, *,
                overlapped_seconds: float | None = None,
                drain: bool = True, driver_side: bool = False) -> None:
        # the inherited SimComm cost formulas land on the modeled twin;
        # modeled overlap windows drain exactly as on the sim backend
        if drain and self._inflight and seconds > 0.0:
            self._drain_inflight(seconds)
        self.modeled.add(kernel, seconds, count=count,
                         payload_bytes=payload_bytes,
                         overlapped_seconds=overlapped_seconds,
                         driver_side=driver_side)

    def mark(self) -> None:
        """Reset the wall-clock attribution mark (drop setup time)."""
        self._mark = time.perf_counter()

    def _take_elapsed(self) -> float:
        now = time.perf_counter()
        dt = now - self._mark
        self._mark = now
        return dt if dt > 0.0 else 0.0

    # -- worker round-trips --------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise CommunicatorError("MpComm is closed")

    def _next_tok(self) -> int:
        self._tok += 1
        return self._tok

    def _send_all(self, cmd: dict) -> int:
        """Dispatch one token-stamped command to every worker WITHOUT
        collecting acknowledgements (the asynchronous half of a posted
        collective).  Per-pipe FIFO keeps command order — and hence the
        shared barrier sequence — identical on every worker."""
        self._require_open()
        tok = self._next_tok()
        stamped = dict(cmd, tok=tok)
        for conn in self._conns:
            conn.send(stamped)
        return tok

    def _recv_ack(self, rank: int, tok: int, opname: str) -> dict:
        """Receive rank's ack for ``tok``, stashing out-of-order acks
        that belong to other outstanding (posted) commands."""
        stash = self._ack_stash[rank]
        if tok in stash:
            return stash.pop(tok)
        conn = self._conns[rank]
        deadline = time.perf_counter() + self._timeout
        while True:
            budget = deadline - time.perf_counter()
            if budget <= 0.0 or not conn.poll(budget):
                raise CommunicatorError(
                    f"rank {rank} did not answer {opname!r} within "
                    f"{self._timeout}s")
            ack = conn.recv()
            if ack.get("tok") == tok:
                return ack
            stash[ack.get("tok")] = ack

    def _collect(self, tok: int, opname: str) -> list[dict]:
        acks = [self._recv_ack(r, tok, opname) for r in range(self.size)]
        errors = [(r, a["error"]) for r, a in enumerate(acks)
                  if not a.get("ok")]
        if errors:
            try:
                self._barrier.reset()
            except Exception:
                pass
            rank, err = errors[0]
            raise CommunicatorError(
                f"rank {rank} failed {opname!r}:\n{err}")
        return acks

    def _roundtrip(self, cmd: dict) -> list[dict]:
        return self._collect(self._send_all(cmd), cmd.get("op"))

    # -- reductions on the workers -------------------------------------
    def _ensure_arena(self, elems: int) -> None:
        if elems <= self._arena_cap:
            return
        cap = max(_MIN_ARENA_ELEMS, self._arena_cap * 2, int(elems))
        shm = SharedMemory(create=True, size=self.size * cap * 8)
        self._shms.append(shm)
        self._arena = shm
        self._arena_cap = cap
        self._arena_np = np.ndarray((self.size, cap), dtype=np.float64,
                                    buffer=shm.buf)

    def _reduce_flat(self, flats: list[np.ndarray], mode: str = "sum"
                     ) -> np.ndarray:
        """Scatter one float64 row per rank, fold on the workers, gather
        slot 0.  ``flats`` are 1-D contributions (already concatenated
        for fused/dd collectives)."""
        self._require_open()
        n = int(flats[0].size)
        self._ensure_arena(n)
        for r, flat in enumerate(flats):
            self._arena_np[r, :n] = flat  # casts to float64, like _tree_sum
        self._roundtrip({"op": "reduce", "arena": self._arena.name,
                         "cap": self._arena_cap, "elems": n,
                         "levels": self._schedule, "mode": mode})
        return self._arena_np[0, :n].copy()

    # -- posted (asynchronous) reductions ------------------------------
    def _acquire_slab(self, elems: int) -> tuple[SharedMemory, np.ndarray, int]:
        """A ``(size, cap)`` float64 scratch arena for one posted
        reduction.  Pooled separately from the main ``_arena`` because a
        blocking collective may run inside the overlap window and must
        not clobber the slots the workers are still folding."""
        needed = int(elems)
        for i, slab in enumerate(self._slab_pool):
            if slab[2] >= needed:
                return self._slab_pool.pop(i)
        cap = max(_MIN_ARENA_ELEMS, needed)
        shm = SharedMemory(create=True, size=self.size * cap * 8)
        self._shms.append(shm)
        view = np.ndarray((self.size, cap), dtype=np.float64, buffer=shm.buf)
        return (shm, view, cap)

    def _release_slab(self, slab: tuple[SharedMemory, np.ndarray, int]
                      ) -> None:
        self._slab_pool.append(slab)

    def _post(self, kernel, seconds, payload_bytes, result):
        req = super()._post(kernel, seconds, payload_bytes, result)
        # park driver setup time (scatter + dispatch) for the wait's
        # measured charge, and stamp the start of the real overlap window
        req._measured_setup = self._take_elapsed()
        req._posted_wall = time.perf_counter()
        return req

    def _post_reduce_flat(self, flats: list[np.ndarray], payload: float,
                          unpack):
        """Scatter into a pooled slab and dispatch the fold WITHOUT
        collecting acks — the workers reduce while the driver computes.
        ``unpack`` maps the reduced slot-0 row to the caller's result."""
        self._require_open()
        n = int(flats[0].size)
        slab = self._acquire_slab(n)
        shm, view, _cap = slab
        for r, flat in enumerate(flats):
            view[r, :n] = flat  # casts to float64, like _tree_sum
        tok = self._send_all({"op": "reduce", "arena": shm.name,
                              "cap": slab[2], "elems": n,
                              "levels": self._schedule, "mode": "sum"})
        req = self._post("allreduce",
                         self.cost.allreduce(payload, self.size),
                         payload, None)
        req._mp = (tok, slab, n, unpack)
        return req

    def post_iallreduce_sum(self, shards):
        self._check_contributions(shards)
        arrs = [np.asarray(s) for s in shards]
        shape = arrs[0].shape
        payload = float(arrs[0].size * arrs[0].dtype.itemsize)
        return self._post_reduce_flat(
            [a.ravel() for a in arrs], payload,
            lambda row: row.reshape(shape))

    def post_ifused_allreduce_sum(self, shard_groups):
        if not shard_groups:
            return super().post_ifused_allreduce_sum(shard_groups)
        groups = [[np.asarray(s) for s in shards]
                  for shards in shard_groups]
        for shards in groups:
            self._check_contributions(shards)
        flats = [np.concatenate([g[r].ravel().astype(np.float64)
                                 for g in groups])
                 for r in range(self.size)]
        shapes = [g[0].shape for g in groups]
        payload = float(sum(
            (int(np.prod(sh, dtype=np.int64)) if sh else 1)
            * g[0].dtype.itemsize for sh, g in zip(shapes, groups)))
        return self._post_reduce_flat(flats, payload,
                                      lambda row: _split_rows(row, shapes))

    def post_ifused_allreduce_sum_stacked(self, stacks):
        if not stacks:
            return super().post_ifused_allreduce_sum_stacked(stacks)
        stacks = [np.asarray(s) for s in stacks]
        for stack in stacks:
            self._check_stack(stack)
        flats = [np.concatenate([s[r].ravel().astype(np.float64)
                                 for s in stacks])
                 for r in range(self.size)]
        shapes = [s.shape[1:] for s in stacks]
        payload = float(sum(
            (int(np.prod(sh, dtype=np.int64)) if sh else 1)
            * s.dtype.itemsize for sh, s in zip(shapes, stacks)))
        return self._post_reduce_flat(flats, payload,
                                      lambda row: _split_rows(row, shapes))

    def wait(self, request):
        """Settle a posted collective: collect the workers' token-tagged
        acks, unpack slot 0, and charge both streams.

        Measured: the parked setup time plus the collect wait, with the
        real wall clock elapsed since the post recorded as
        ``overlapped_seconds``.  Modeled: delegated to the inherited
        drain accounting, so ``modeled`` stays bit-identical to a
        ``backend="sim"`` run.
        """
        if request.done:
            raise CommunicatorError(f"wait() called twice on {request!r}")
        if request.comm is not self:
            raise CommunicatorError(
                "wait() on a request posted by a different communicator")
        hidden_wall = max(
            0.0, time.perf_counter() - getattr(request, "_posted_wall",
                                               time.perf_counter()))
        mp_state = getattr(request, "_mp", None)
        if mp_state is not None:
            tok, slab, n, unpack = mp_state
            self._collect(tok, "reduce")
            request.result = unpack(slab[1][0, :n].copy())
            self._release_slab(slab)
            del request._mp
        result = super().wait(request)
        self.tracer.add(request.kernel,
                        getattr(request, "_measured_setup", 0.0)
                        + self._take_elapsed(),
                        payload_bytes=request.payload_bytes,
                        overlapped_seconds=hidden_wall or None)
        return result

    # -- Communicator reductions ---------------------------------------
    def allreduce_sum(self, shards: list[np.ndarray]) -> np.ndarray:
        self._check_contributions(shards)
        arrs = [np.asarray(s) for s in shards]
        result = self._reduce_flat([a.ravel() for a in arrs]
                                   ).reshape(arrs[0].shape)
        payload = self._payload_bytes(result, arrs[0])
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=payload)
        return result

    def allreduce_scalar(self, values: list[float]) -> float:
        self._check_contributions([np.asarray(v) for v in values])
        result = float(self._reduce_flat(
            [np.asarray([float(v)]) for v in values])[0])
        self._charge("allreduce", self.cost.allreduce(8.0, self.size),
                     payload_bytes=8.0)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=8.0)
        return result

    def fused_allreduce_sum(self, shard_groups: list[list[np.ndarray]]
                            ) -> list[np.ndarray]:
        if not shard_groups:
            return []
        groups = [[np.asarray(s) for s in shards]
                  for shards in shard_groups]
        for shards in groups:
            self._check_contributions(shards)
        flats = [np.concatenate([g[r].ravel().astype(np.float64)
                                 for g in groups])
                 for r in range(self.size)]
        merged = self._reduce_flat(flats)
        results = []
        payload = 0.0
        offset = 0
        for shards in groups:
            shape = shards[0].shape
            m = int(np.prod(shape, dtype=np.int64)) if shape else 1
            red = merged[offset:offset + m].reshape(shape)
            offset += m
            payload += self._payload_bytes(red, shards[0])
            results.append(red)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=payload)
        return results

    def allreduce_sum_stacked(self, stack: np.ndarray) -> np.ndarray:
        stack = np.asarray(stack)
        self._check_stack(stack)
        result = self._reduce_flat(
            [stack[r].ravel() for r in range(self.size)]
        ).reshape(stack.shape[1:])
        payload = self._payload_bytes(result, stack)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=payload)
        return result

    def fused_allreduce_sum_stacked(self, stacks: list[np.ndarray]
                                    ) -> list[np.ndarray]:
        if not stacks:
            return []
        stacks = [np.asarray(s) for s in stacks]
        for stack in stacks:
            self._check_stack(stack)
        flats = [np.concatenate([s[r].ravel().astype(np.float64)
                                 for s in stacks])
                 for r in range(self.size)]
        merged = self._reduce_flat(flats)
        results = []
        payload = 0.0
        offset = 0
        for stack in stacks:
            shape = stack.shape[1:]
            m = int(np.prod(shape, dtype=np.int64)) if shape else 1
            red = merged[offset:offset + m].reshape(shape)
            offset += m
            payload += self._payload_bytes(red, stack)
            results.append(red)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=payload)
        return results

    def allreduce_dd(self, his: list[np.ndarray], los: list[np.ndarray]
                     ) -> tuple[np.ndarray, np.ndarray]:
        self._check_contributions(his)
        self._check_contributions(los)
        shape = np.asarray(his[0]).shape
        m = int(np.asarray(his[0]).size)
        flats = [np.concatenate([np.asarray(h, dtype=np.float64).ravel(),
                                 np.asarray(lo, dtype=np.float64).ravel()])
                 for h, lo in zip(his, los)]
        merged = self._reduce_flat(flats, mode="dd")
        hi = merged[:m].reshape(shape)
        lo = merged[m:].reshape(shape)
        payload = float(hi.nbytes + lo.nbytes)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        self.tracer.add("allreduce", self._take_elapsed(),
                        payload_bytes=payload)
        return hi, lo

    # -- accounting: modeled via super(), measured via elapsed marks ---
    def charge_local(self, kernel: str, per_rank_seconds: list[float],
                     count: int = 1, driver_side: bool = False) -> None:
        super().charge_local(kernel, per_rank_seconds, count=count,
                             driver_side=driver_side)
        self.tracer.add(kernel, self._pending.pop(kernel, 0.0)
                        + self._take_elapsed(), count=count,
                        driver_side=driver_side)

    def charge_uniform(self, kernel: str, seconds: float,
                       count: int = 1, driver_side: bool = False) -> None:
        super().charge_uniform(kernel, seconds, count=count,
                               driver_side=driver_side)
        self.tracer.add(kernel, self._pending.pop(kernel, 0.0)
                        + self._take_elapsed(), count=count,
                        driver_side=driver_side)

    def charge_halo(self, recv_bytes_by_rank: list[dict[int, float]]) -> None:
        super().charge_halo(recv_bytes_by_rank)
        self.tracer.add("halo", self._pending.pop("halo", 0.0)
                        + self._take_elapsed(),
                        payload_bytes=self._halo_payload(recv_bytes_by_rank))

    # -- shard storage and worker-executed SpMV ------------------------
    def alloc_stack(self, ranks: int, rows: int, k: int,
                    dtype) -> np.ndarray:
        """Zeroed ``(ranks, rows, k)`` stack in a shared-memory segment.

        The segment lives until :meth:`close`; vectors allocated on this
        communicator must not outlive it.
        """
        self._require_open()
        shape = (int(ranks), int(rows), int(k))
        nbytes = max(1, int(np.prod(shape, dtype=np.int64))
                     * np.dtype(dtype).itemsize)
        shm = SharedMemory(create=True, size=nbytes)
        self._shms.append(shm)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        arr[...] = 0
        addr = arr.__array_interface__["data"][0]
        self._segments.append((shm.name, addr, nbytes))
        return arr

    def _describe(self, arr: np.ndarray) -> dict | None:
        """Locate ``arr`` inside a registered shared segment (else None)."""
        addr = arr.__array_interface__["data"][0]
        span = arr.itemsize + sum(
            (n - 1) * abs(s) for n, s in zip(arr.shape, arr.strides) if n)
        for name, base, nbytes in self._segments:
            if base <= addr and addr + span <= base + nbytes:
                return {"seg": name, "offset": addr - base,
                        "shape": arr.shape, "strides": arr.strides,
                        "dtype": arr.dtype.str}
        return None

    def _matrix_token(self, matrix) -> int | None:
        token = self._matrix_tokens.get(id(matrix))
        if token is None:
            token = len(self._matrix_keep)
            tok = self._next_tok()  # per-rank payloads, one shared token
            for r, conn in enumerate(self._conns):
                block = matrix.local_blocks[r].tocsr()
                conn.send({"op": "matrix", "token": token, "tok": tok,
                           "data": block.data, "indices": block.indices,
                           "indptr": block.indptr, "shape": block.shape})
            self._collect(tok, "matrix")
            self._matrix_tokens[id(matrix)] = token
            self._matrix_keep.append(matrix)  # pins id() for the cache
        return token

    def exec_spmv(self, matrix, x, out) -> bool:
        """Run ``out = A @ x`` on the workers when both operands live in
        shared memory; returns False (driver fallback) otherwise.

        The measured cost is split into a halo part (slowest worker's
        operand gather) and a local-compute part, parked in ``_pending``
        for the `charge_halo` / `charge_local("spmv_local")` calls the
        caller issues next.  With spans enabled, each worker's own
        gather/compute timings land as rank-tagged spans (per-rank trace
        lanes) without touching the accumulators.
        """
        if self._closed:
            return False
        if x.stack is None or out.stack is None:
            return False
        xdesc = self._describe(x.stack)
        odesc = self._describe(out.stack)
        if xdesc is None or odesc is None:
            return False
        token = self._matrix_token(matrix)
        acks = self._roundtrip({"op": "spmv", "mat": token, "x": xdesc,
                                "out": odesc, "storage": out.storage})
        elapsed = self._take_elapsed()
        if self.tracer.spans_enabled:
            base = self.tracer.clock
            for r, ack in enumerate(acks):
                g = max(float(ack["gather"]), 0.0)
                c = max(float(ack["compute"]), 0.0)
                self.tracer.record_span("halo", base, base + g,
                                        phase="spmv", rank=r)
                self.tracer.record_span("spmv_local", base + g, base + g + c,
                                        phase="spmv", rank=r)
        gather = max(a["gather"] for a in acks)
        halo = min(max(gather, 0.0), elapsed)
        self._pending["halo"] = self._pending.get("halo", 0.0) + halo
        self._pending["spmv_local"] = (self._pending.get("spmv_local", 0.0)
                                       + (elapsed - halo))
        return True

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Terminate workers and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"MpComm(machine={self.machine.name!r}, size={self.size}, "
                f"{state})")
