"""Machine descriptions for the performance simulator.

A :class:`MachineSpec` captures the handful of hardware constants the cost
model needs.  The constants in the presets are public figures for the
paper's systems; none of them are fitted to the paper's result tables (the
reproduction target is ratios/crossovers, which depend on operation counts,
not on the constants — see DESIGN.md section 3).

Device-level constants (NVIDIA V100, SXM2 16GB):
  * 7.0 TF/s FP64 peak, ~900 GB/s HBM2 peak; STREAM-like kernels reach
    ~78-85% of peak bandwidth.
  * Tall-skinny cuBLAS GEMM efficiency depends strongly on the *narrow*
    dimension: reduction-shaped products with 4-8 columns run at
    ~100-200 GB/s effective (split-k kernels), while 48+ column blocks
    approach ~50% of peak; plain GEMV streams at ~50%.  This width
    dependence is the hardware face of the paper's "data reuse with a
    larger block size" argument, so the model carries it explicitly
    (``gemm_eff_narrow`` / ``gemm_bw_efficiency`` / ``gemm_width_sat``).
  * CUDA kernel launch + driver overhead ~5-10 microseconds.
  * A distributed (Tpetra-style) SpMV pays a fixed per-call overhead for
    import/export packing, MPI progression and device synchronization —
    ~0.25 ms on V100-era Summit software (visible in the paper's
    Table III: SpMV time stops scaling past ~8 nodes).

Network constants (Summit, dual-rail EDR InfiniBand, fat tree):
  * ~1.5 us nearest-neighbour MPI latency CPU-side; GPU-direct collectives
    on V100-era Spectrum MPI see ~20-30 us effective latency per hop once
    device synchronization is included.
  * 12.5 GB/s per-direction per rail inter-node; NVLink ~50 GB/s
    intra-node per direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """Hardware constants for one device type plus its interconnect.

    All rates are bytes/s and flop/s; all latencies are seconds.
    """

    name: str
    #: FP64 peak of one device (one MPI rank = one device).
    peak_flops: float
    #: Peak memory bandwidth of one device.
    mem_bandwidth: float
    #: Achievable fraction of peak bandwidth for streaming (BLAS-1) kernels.
    stream_efficiency: float
    #: Bandwidth fraction of *wide* tall-skinny BLAS-3 (>= gemm_width_sat
    #: narrow-dimension columns).
    gemm_bw_efficiency: float
    #: Bandwidth fraction of very narrow (2-8 column) tall-skinny GEMM.
    gemm_eff_narrow: float
    #: Narrow-dimension width at which GEMM efficiency saturates.
    gemm_width_sat: float
    #: Bandwidth fraction of GEMV (single-column projections/updates).
    gemv_efficiency: float
    #: Bandwidth fraction of CSR SpMV (irregular gathers).
    spmv_efficiency: float
    #: Fixed per-SpMV overhead (import/export, MPI progression, syncs).
    spmv_fixed_overhead: float
    #: Fixed overhead per device-kernel launch.
    kernel_latency: float
    #: Devices (MPI ranks) per node.
    ranks_per_node: int
    #: Effective per-hop latency of an intra-node collective step.
    net_latency_intra: float
    #: Effective per-hop latency of an inter-node collective step.
    net_latency_inter: float
    #: Per-direction intra-node link bandwidth (NVLink).
    net_bandwidth_intra: float
    #: Per-direction inter-node link bandwidth (IB).
    net_bandwidth_inter: float
    #: Host-side scalar flop rate for the small redundant dense math
    #: (Cholesky of s x s Gram, least squares on the Hessenberg) which the
    #: implementation performs "redundantly ... on CPU" (paper Sec. VII).
    host_flops: float
    #: Fixed cost of a device<->host transfer + synchronization, paid once
    #: per global collective with device data (cudaMemcpy + stream sync).
    device_sync_latency: float

    def nodes_for(self, ranks: int) -> int:
        """Number of nodes hosting ``ranks`` devices."""
        return max(1, math.ceil(ranks / self.ranks_per_node))

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


def summit() -> MachineSpec:
    """Summit: 6 V100 per node (the paper's Tables III/IV, Figs. 10-13)."""
    return MachineSpec(
        name="summit",
        peak_flops=7.0e12,
        mem_bandwidth=900.0e9,
        stream_efficiency=0.80,
        gemm_bw_efficiency=0.50,
        gemm_eff_narrow=0.15,
        gemm_width_sat=48.0,
        gemv_efficiency=0.50,
        spmv_efficiency=0.18,
        spmv_fixed_overhead=2.5e-4,
        kernel_latency=8.0e-6,
        ranks_per_node=6,
        net_latency_intra=6.0e-6,
        net_latency_inter=3.5e-5,
        net_bandwidth_intra=5.0e10,
        net_bandwidth_inter=1.25e10,
        host_flops=1.0e10,
        device_sync_latency=3.0e-5,
    )


def vortex() -> MachineSpec:
    """Vortex (Sandia ASC testbed): 4 V100 per node (the paper's Table II)."""
    return MachineSpec(
        name="vortex",
        peak_flops=7.0e12,
        mem_bandwidth=900.0e9,
        stream_efficiency=0.80,
        gemm_bw_efficiency=0.50,
        gemm_eff_narrow=0.15,
        gemm_width_sat=48.0,
        gemv_efficiency=0.50,
        spmv_efficiency=0.18,
        spmv_fixed_overhead=2.5e-4,
        kernel_latency=8.0e-6,
        ranks_per_node=4,
        net_latency_intra=6.0e-6,
        net_latency_inter=3.5e-5,
        net_bandwidth_intra=5.0e10,
        net_bandwidth_inter=1.25e10,
        host_flops=1.0e10,
        device_sync_latency=3.0e-5,
    )


def generic_cpu() -> MachineSpec:
    """A generic multicore CPU node — useful for unit tests and laptops.

    Latency terms are small relative to bandwidth so tests that assert
    bandwidth-driven behaviour are not swamped by launch overhead.
    """
    return MachineSpec(
        name="generic_cpu",
        peak_flops=5.0e11,
        mem_bandwidth=1.0e11,
        stream_efficiency=0.85,
        gemm_bw_efficiency=0.70,
        gemm_eff_narrow=0.70,   # CPU BLAS is far less width-sensitive
        gemm_width_sat=2.0,
        gemv_efficiency=0.70,
        spmv_efficiency=0.85,
        spmv_fixed_overhead=0.0,
        kernel_latency=2.0e-7,
        ranks_per_node=16,
        net_latency_intra=1.0e-6,
        net_latency_inter=5.0e-6,
        net_bandwidth_intra=2.0e10,
        net_bandwidth_inter=1.0e10,
        host_flops=5.0e10,
        device_sync_latency=0.0,
    )


#: Registry used by the experiment CLI (``--machine summit``).
PRESETS = {
    "summit": summit,
    "vortex": vortex,
    "generic_cpu": generic_cpu,
}
