"""Fused charging for batched multi-solve (multi-RHS) passes.

Every :class:`~repro.parallel.costmodel.CostModel` formula is affine in
its operand shape: ``t = fixed + work(shape)``, where the fixed part —
kernel launch latency, device syncs, per-hop message latency — does not
grow with the operand (:meth:`CostModel.fixed_cost` names the split per
kernel kind).  When ``b`` compatible solves advance in lockstep, each
round's kernels share one launch and each round's collectives share one
message: a width-``b·s`` panel is ONE charged pass, not ``b`` passes.

:class:`BatchCharges` models exactly that without touching any
numerical code path.  It wraps the communicator's ``_charge`` funnel
(the single point every modeled charge flows through, on the simulated
and the real-process backend alike) and, inside a fusion ``group()``,
matches each ``member()``'s charges by *kernel-kind occurrence*: the
first member to reach occurrence ``i`` of kernel ``k`` is the leader —
it charges the full modeled seconds and the occurrence count — and
every later member at the same occurrence is a follower, charging only
its marginal work term ``max(0, seconds - fixed)`` with ``count=0``.
Collective *counts* per cycle therefore stay width-independent (the
point of the optimization) while payload *bytes* still accumulate per
member: the fused message carries every member's panel.

Occurrence matching is by kind, not position, so members desynchronized
by per-member control flow (an early convergence checkpoint, a truncated
panel) stay sound: a round's fused message simply carries whatever each
member needs.  At width 1 every charge is a leader charge, so a batch of
one is charge-identical to the unbatched solve.
"""

from __future__ import annotations

from contextlib import contextmanager


class BatchCharges:
    """Context manager fusing modeled charges across lockstep members.

    Usage::

        with BatchCharges(sim.comm) as batch:
            while active:
                with batch.group():            # one lockstep round
                    for m in active:
                        with batch.member():   # one member's unit of work
                            advance(m)

    Nested installation is inert: if the communicator's ``_charge`` is
    already wrapped (an outer batch is active), this instance installs
    nothing and its ``group()``/``member()`` scopes pass charges through
    to the outer batch as part of the enclosing member's stream.
    """

    def __init__(self, comm) -> None:
        self.comm = comm
        self._installed = False
        self._in_member = False
        #: kernel -> fused occurrences charged so far in the open group
        self._seen: dict[str, int] = {}
        #: kernel -> the current member's occurrence index
        self._cursor: dict[str, int] = {}

    # -- install / remove ----------------------------------------------
    def __enter__(self) -> "BatchCharges":
        comm = self.comm
        if not hasattr(comm, "_charge") or "_charge" in vars(comm):
            return self  # no charge funnel, or an outer batch owns it
        orig = comm._charge
        cost = comm.cost
        size = comm.size

        def fused_charge(kernel: str, seconds: float, count: int = 1,
                         payload_bytes: float | None = None, *,
                         overlapped_seconds: float | None = None,
                         drain: bool = True,
                         driver_side: bool = False) -> None:
            if self._in_member:
                idx = self._cursor.get(kernel, 0)
                self._cursor[kernel] = idx + 1
                if idx < self._seen.get(kernel, 0):
                    # follower: the leader already paid this occurrence's
                    # fixed cost; charge the marginal work term only and
                    # keep the occurrence count width-independent
                    seconds = max(0.0, seconds - cost.fixed_cost(kernel,
                                                                 size))
                    count = 0
                else:
                    self._seen[kernel] = idx + 1
            orig(kernel, seconds, count, payload_bytes,
                 overlapped_seconds=overlapped_seconds, drain=drain,
                 driver_side=driver_side)

        comm._charge = fused_charge
        self._installed = True
        return self

    def __exit__(self, *exc) -> bool:
        if self._installed:
            del self.comm.__dict__["_charge"]
            self._installed = False
        return False

    # -- lockstep scopes ------------------------------------------------
    @contextmanager
    def group(self):
        """One lockstep round: members inside share fused occurrences."""
        self._seen = {}
        try:
            yield self
        finally:
            self._seen = {}

    @contextmanager
    def member(self):
        """One member's unit of work within the current group."""
        self._cursor = {}
        self._in_member = True
        try:
            yield self
        finally:
            self._in_member = False
