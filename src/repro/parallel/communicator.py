"""Simulated MPI communicator over per-rank shards.

:class:`SimComm` provides the two communication patterns block
orthogonalization needs — global reductions and neighbourhood (halo)
exchange — executing them *for real* over per-rank contributions so the
floating-point result matches what a genuine MPI run produces with a
binary-tree reduction order, while charging modeled time to the
:class:`~repro.parallel.tracing.Tracer`.

Why tree order matters: orthogonality-error experiments are sensitive to
the summation order of Gram-matrix contributions.  ``sum(shards)`` in rank
order would be a *different* algorithm than MPI's pairwise trees; we fold
halves exactly like recursive doubling.

Nonblocking collectives (overlap windows)
-----------------------------------------
``post_iallreduce_sum`` / ``post_ifused_allreduce_sum[_stacked]`` /
``post_ihalo`` / ``post_ibcast`` return a :class:`CommRequest` instead of
charging immediately.  The request carries the collective's full modeled
cost; every charge issued between post and :meth:`SimComm.wait` *drains*
in-flight requests front-to-back (FIFO — the serialized-NIC picture of
LogGP overlap), and the wait charges only the exposed remainder, passing
the hidden part to the tracer as ``overlapped_seconds``.  Values are
computed eagerly at post time in the same tree order as the blocking
calls, so a posted reduction is **bit-identical** to its blocking
counterpart — only the charge choreography differs.  Collective *counts*
are unchanged: the wait charges exactly one collective (possibly of zero
exposed seconds), never the post.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.dd.core import dd_add
from repro.exceptions import CommunicatorError
from repro.parallel.costmodel import CostModel
from repro.parallel.machine import MachineSpec
from repro.parallel.tracing import Tracer


class CommRequest:
    """Handle for one posted (nonblocking) collective.

    Created by the ``post_*`` methods and settled by
    :meth:`SimComm.wait`, which returns the collective's result.  The
    modeled state is the LogGP overlap window: ``remaining`` counts down
    as compute charges drain it, ``hidden`` accumulates what was
    drained, and the wait charges ``remaining`` as the exposed part.
    Each request must be waited exactly once, on the communicator that
    created it.
    """

    def __init__(self, comm: "SimComm", kernel: str, seconds: float,
                 payload_bytes: float | None, result) -> None:
        self.comm = comm
        self.kernel = kernel
        #: Full modeled cost of the collective at post time.
        self.seconds = float(seconds)
        #: Modeled seconds still in flight (drained toward zero).
        self.remaining = float(seconds)
        #: Modeled seconds hidden behind compute so far.
        self.hidden = 0.0
        self.payload_bytes = payload_bytes
        #: Modeled clock at post time (for the overlap-window span).
        self.posted_at = 0.0
        self.result = result
        self.done = False

    def __repr__(self) -> str:
        state = "done" if self.done else "in-flight"
        return (f"CommRequest({self.kernel!r}, seconds={self.seconds:.3e}, "
                f"hidden={self.hidden:.3e}, {state})")


class SimComm:
    """A communicator binding ``size`` simulated ranks to one machine model.

    This is the ``"sim"`` backend of the
    :class:`~repro.parallel.api.Communicator` protocol — the *planner*:
    reductions execute driver-side (in MPI-faithful tree order) and every
    charge is **modeled** seconds from the cost model, never wall clock.

    Parameters
    ----------
    machine:
        Hardware description (one rank = one device).
    size:
        Number of ranks.
    tracer:
        Modeled-time accumulator; a fresh one is created when omitted.
    engine:
        Optional kernel-execution engine name (``"loop"`` / ``"batched"``)
        binding every costed BLAS call over this communicator; ``None``
        defers to :func:`repro.config.get_engine`.
    """

    #: Protocol backend name (:data:`repro.parallel.api.BACKENDS`).
    backend = "sim"

    def __init__(self, machine: MachineSpec, size: int,
                 tracer: Tracer | None = None,
                 engine: str | None = None) -> None:
        if size < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {size}")
        self.machine = machine
        self.size = int(size)
        self.tracer = tracer if tracer is not None else Tracer()
        self.cost = CostModel(machine)
        self.engine = None if engine is None else config.validate_engine(engine)
        #: Posted-but-unwaited collectives, oldest first (FIFO drain).
        self._inflight: list[CommRequest] = []

    def _model_tracer(self) -> Tracer:
        """The tracer carrying *modeled* charges.

        ``self.tracer`` here; the mp backend overrides this to its
        modeled twin (its own ``tracer`` runs on the measured clock).
        """
        return self.tracer

    def _charge(self, kernel: str, seconds: float, count: int = 1,
                payload_bytes: float | None = None, *,
                overlapped_seconds: float | None = None,
                drain: bool = True, driver_side: bool = False) -> None:
        """Record one modeled charge.

        Every cost this class computes funnels through here so subclasses
        can redirect the *modeled* stream (the mp backend sends it to its
        modeled twin while ``self.tracer`` accumulates wall clock).
        ``payload_bytes`` annotates collective charges for the span
        stream; it never affects the charged seconds.  ``driver_side``
        tags kernels the mp backend runs on the driver process (span
        annotation only — see :class:`~repro.parallel.tracing.SpanEvent`).

        While posted collectives are in flight, the charged seconds first
        drain them front-to-back (``drain=False`` is reserved for the
        exposed-remainder charge of :meth:`wait` itself — under the
        serialized-NIC FIFO model, time spent finishing the head request
        on the wire cannot progress the ones queued behind it).
        """
        if drain and self._inflight and seconds > 0.0:
            self._drain_inflight(seconds)
        self.tracer.add(kernel, seconds, count=count,
                        payload_bytes=payload_bytes,
                        overlapped_seconds=overlapped_seconds,
                        driver_side=driver_side)

    def _drain_inflight(self, seconds: float) -> None:
        """Let ``seconds`` of elapsing work hide in-flight comm (FIFO)."""
        budget = seconds
        for req in self._inflight:
            if budget <= 0.0:
                break
            take = min(req.remaining, budget)
            if take > 0.0:
                req.remaining -= take
                req.hidden += take
                budget -= take

    # -- nonblocking collectives ----------------------------------------
    def _post(self, kernel: str, seconds: float,
              payload_bytes: float | None, result) -> CommRequest:
        """Register a posted collective: no charge now, a request handle
        whose modeled cost subsequent compute charges drain."""
        req = CommRequest(self, kernel, seconds, payload_bytes, result)
        tr = self._model_tracer()
        req.posted_at = tr.clock
        self._inflight.append(req)
        if tr.spans_enabled:
            # zero-duration marker: where the collective went on the wire
            tr.record_span(kernel, tr.clock, tr.clock, cat="post",
                           payload_bytes=payload_bytes)
        return req

    def post_iallreduce_sum(self, shards: list[np.ndarray]) -> CommRequest:
        """Nonblocking :meth:`allreduce_sum` — post now, settle with
        :meth:`wait`.

        The reduction itself runs eagerly (same tree order, bit-identical
        result); only the charge is deferred into the overlap window.
        """
        self._check_contributions(shards)
        result = self._tree_sum(shards)
        payload = self._payload_bytes(result, shards[0])
        return self._post("allreduce", self.cost.allreduce(payload, self.size),
                          payload, result)

    def post_ifused_allreduce_sum(self, shard_groups: list[list[np.ndarray]]
                                  ) -> CommRequest:
        """Nonblocking :meth:`fused_allreduce_sum` (one posted message).

        Empty groups post a zero-cost request (the blocking call charges
        nothing for them either)."""
        if not shard_groups:
            return self._post("allreduce", 0.0, 0.0, [])
        results = []
        payload = 0.0
        for shards in shard_groups:
            self._check_contributions(shards)
            red = self._tree_sum(shards)
            payload += self._payload_bytes(red, shards[0])
            results.append(red)
        return self._post("allreduce", self.cost.allreduce(payload, self.size),
                          payload, results)

    def post_ifused_allreduce_sum_stacked(self, stacks: list[np.ndarray]
                                          ) -> CommRequest:
        """Nonblocking :meth:`fused_allreduce_sum_stacked`."""
        if not stacks:
            return self._post("allreduce", 0.0, 0.0, [])
        results = []
        payload = 0.0
        for stack in stacks:
            self._check_stack(stack)
            red = self._tree_sum_stacked(stack)
            payload += self._payload_bytes(red, stack)
            results.append(red)
        return self._post("allreduce", self.cost.allreduce(payload, self.size),
                          payload, results)

    def post_ihalo(self, recv_bytes_by_rank: list[dict[int, float]]
                   ) -> CommRequest:
        """Nonblocking :meth:`charge_halo` — the PA2 deep-ring exchange
        posts through here and hides behind the first local SpMVs."""
        if len(recv_bytes_by_rank) != self.size:
            raise CommunicatorError(
                f"expected {self.size} halo descriptors, got "
                f"{len(recv_bytes_by_rank)}")
        worst = max(
            self.cost.halo_exchange(recv, rank, self.size)
            for rank, recv in enumerate(recv_bytes_by_rank)
        )
        return self._post("halo", worst,
                          self._halo_payload(recv_bytes_by_rank), None)

    def post_ibcast(self, value, root: int = 0) -> CommRequest:
        """Nonblocking :meth:`bcast` of a replicated array from ``root``."""
        if not 0 <= root < self.size:
            raise CommunicatorError(
                f"bcast root {root} out of range for size {self.size}")
        payload = float(np.asarray(value).nbytes)
        return self._post("bcast", self.cost.bcast(payload, self.size),
                          payload, value)

    def wait(self, request: CommRequest):
        """Settle a posted collective and return its result.

        Charges the *exposed* remainder (whatever compute did not drain),
        annotated with the hidden part as ``overlapped_seconds``; counts
        as exactly one collective either way.  Waiting before any compute
        charges the full modeled cost — identical to the blocking call.
        """
        if request.done:
            raise CommunicatorError(
                f"wait() called twice on {request!r}")
        if request.comm is not self:
            raise CommunicatorError(
                "wait() on a request posted by a different communicator")
        self._inflight.remove(request)
        request.done = True
        exposed = request.remaining
        request.remaining = 0.0
        tr = self._model_tracer()
        if tr.spans_enabled and tr.clock > request.posted_at:
            # the overlap window: post to wait-start on the modeled clock
            tr.record_span(request.kernel, request.posted_at, tr.clock,
                           cat="comm_overlap",
                           payload_bytes=request.payload_bytes)
        self._charge(request.kernel, exposed,
                     payload_bytes=request.payload_bytes,
                     overlapped_seconds=request.hidden or None,
                     drain=False)
        return request.result

    # ------------------------------------------------------------------
    def _check_contributions(self, shards: list[np.ndarray]) -> None:
        if len(shards) != self.size:
            raise CommunicatorError(
                f"expected {self.size} per-rank contributions, got {len(shards)}")

    @staticmethod
    def _tree_sum(shards: list[np.ndarray]) -> np.ndarray:
        """Pairwise (recursive-doubling order) sum of equal-shape arrays."""
        items = [np.array(s, dtype=np.float64, copy=True) for s in shards]
        while len(items) > 1:
            half = len(items) // 2
            merged = [items[i] + items[i + half] for i in range(half)]
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        return items[0]

    @staticmethod
    def _tree_sum_stacked(stack: np.ndarray) -> np.ndarray:
        """Pairwise tree sum over axis 0 of a ``(ranks, ...)`` stack.

        Vectorized twin of :meth:`_tree_sum`: each level folds the lower
        half onto the upper half with ONE elementwise add, pairing
        ``i + half`` with ``i`` exactly like the list version — so the
        floating-point result is bit-identical to the loop engine's.
        """
        work = np.asarray(stack, dtype=np.float64)
        if work.shape[0] == 1:
            return np.array(work[0], copy=True)
        while work.shape[0] > 1:
            m = work.shape[0]
            half = m // 2
            merged = work[:half] + work[half:2 * half]
            if m % 2:
                merged = np.concatenate([merged, work[2 * half:]], axis=0)
            work = merged
        return work[0]

    @staticmethod
    def _payload_bytes(result: np.ndarray, contribution) -> float:
        """Wire payload of a reduction whose per-rank contributions were
        ``contribution``-typed.

        The reduction *tree* always runs in float64, but what travels is
        the contribution dtype: a low-precision reduction
        (``accumulate="fp32"`` partials) moves 4-byte words.  fp64
        contributions charge exactly ``result.nbytes`` — bit-identical to
        the historical always-fp64 sizing.
        """
        return float(result.size * np.asarray(contribution).dtype.itemsize)

    # ------------------------------------------------------------------
    def allreduce_sum(self, shards: list[np.ndarray]) -> np.ndarray:
        """Sum per-rank contributions; every rank receives the result.

        ``shards`` holds one equal-shape float array per rank.  The return
        value is the single reduced array (ranks share it read-only; users
        must copy before mutating — all library callers treat it as
        immutable, matching the redundant-storage convention of Sec. VII:
        "the resulting matrix R is stored redundantly on all the MPI
        processes").
        """
        self._check_contributions(shards)
        result = self._tree_sum(shards)
        payload = self._payload_bytes(result, shards[0])
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        return result

    def allreduce_scalar(self, values: list[float]) -> float:
        """Scalar allreduce (same cost floor as a tiny message)."""
        self._check_contributions([np.asarray(v) for v in values])
        result = self._tree_sum([np.asarray(float(v)) for v in values])
        self._charge("allreduce", self.cost.allreduce(8.0, self.size),
                     payload_bytes=8.0)
        return float(result)

    def fused_allreduce_sum(self, shard_groups: list[list[np.ndarray]]
                            ) -> list[np.ndarray]:
        """Reduce several arrays in one collective (single latency charge).

        BCGS-PIP's defining trick is fusing the inter-block projection and
        the Gram matrix into *one* all-reduce; this models the fused
        message: one latency, summed payload.

        ``shard_groups[g][r]`` is rank ``r``'s contribution to array ``g``.
        """
        if not shard_groups:
            return []
        results = []
        payload = 0.0
        for shards in shard_groups:
            self._check_contributions(shards)
            red = self._tree_sum(shards)
            payload += self._payload_bytes(red, shards[0])
            results.append(red)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        return results

    # -- stacked variants (batched engine) ------------------------------
    def _check_stack(self, stack: np.ndarray) -> None:
        if stack.shape[0] != self.size:
            raise CommunicatorError(
                f"expected a ({self.size}, ...) contribution stack, got "
                f"shape {stack.shape}")

    def allreduce_sum_stacked(self, stack: np.ndarray) -> np.ndarray:
        """:meth:`allreduce_sum` over a ``(ranks, ...)`` contribution stack.

        Identical reduction tree, identical charged cost — just one
        vectorized add per tree level instead of ``ranks`` Python calls.
        """
        self._check_stack(stack)
        result = self._tree_sum_stacked(stack)
        payload = self._payload_bytes(result, stack)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        return result

    def fused_allreduce_sum_stacked(self, stacks: list[np.ndarray]
                                    ) -> list[np.ndarray]:
        """:meth:`fused_allreduce_sum` over contribution stacks."""
        if not stacks:
            return []
        results = []
        payload = 0.0
        for stack in stacks:
            self._check_stack(stack)
            red = self._tree_sum_stacked(stack)
            payload += self._payload_bytes(red, stack)
            results.append(red)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        return results

    # ------------------------------------------------------------------
    def charge_local(self, kernel: str, per_rank_seconds: list[float],
                     count: int = 1, driver_side: bool = False) -> None:
        """Charge a concurrent local kernel: elapsed = max over ranks."""
        if len(per_rank_seconds) != self.size:
            raise CommunicatorError(
                f"expected {self.size} per-rank costs, got {len(per_rank_seconds)}")
        self._charge(kernel, max(per_rank_seconds), count=count,
                     driver_side=driver_side)

    def charge_uniform(self, kernel: str, seconds: float, count: int = 1,
                       driver_side: bool = False) -> None:
        """Charge a kernel whose cost is identical on every rank.

        The cost model was evaluated for ONE rank's shard; fan the
        queued metrics shapes out by the rank count so flop/byte
        counters stay the aggregate over all shards — identical to a
        per-rank :meth:`charge_local` evaluation under the loop engine
        (and a near-exact aggregate for the driver-side TSQR tree,
        whose ``ranks - 1`` node factorizations are charged from one
        per-node shape).
        """
        metrics = self.cost.metrics
        if metrics is not None:
            metrics.scale_pending(float(self.size))
        self._charge(kernel, seconds, count=count, driver_side=driver_side)

    @staticmethod
    def _halo_payload(recv_bytes_by_rank: list[dict[int, float]]) -> float:
        """Span annotation for a halo exchange: the slowest rank's total
        inbound bytes (the elapsed-time-defining payload)."""
        return max(
            (float(sum(recv.values())) for recv in recv_bytes_by_rank),
            default=0.0)

    def charge_halo(self, recv_bytes_by_rank: list[dict[int, float]]) -> None:
        """Charge a neighbourhood exchange: elapsed = slowest rank."""
        if len(recv_bytes_by_rank) != self.size:
            raise CommunicatorError(
                f"expected {self.size} halo descriptors, got {len(recv_bytes_by_rank)}")
        worst = max(
            self.cost.halo_exchange(recv, rank, self.size)
            for rank, recv in enumerate(recv_bytes_by_rank)
        )
        self._charge("halo", worst,
                     payload_bytes=self._halo_payload(recv_bytes_by_rank))

    def bcast(self, value, root: int = 0):
        """Broadcast a replicated array from ``root`` (blocking).

        The simulator keeps small replicated data driver-side, so the
        value passes through unchanged; the charge is the one-way tree
        fan-out of :meth:`CostModel.bcast`.
        """
        if not 0 <= root < self.size:
            raise CommunicatorError(
                f"bcast root {root} out of range for size {self.size}")
        payload = float(np.asarray(value).nbytes)
        self._charge("bcast", self.cost.bcast(payload, self.size),
                     payload_bytes=payload)
        return value

    # ------------------------------------------------------------------
    def allreduce_dd(self, his: list[np.ndarray], los: list[np.ndarray]
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Fused double-double allreduce of per-rank ``(hi, lo)`` pairs.

        The pairs travel in ONE collective of twice the payload and are
        combined with :func:`repro.dd.core.dd_add` in the same recursive-
        doubling pair order as :meth:`_tree_sum` — the communication side
        of the mixed-precision CholQR's dd Gram accumulation.
        """
        self._check_contributions(his)
        self._check_contributions(los)
        items = list(zip(his, los))
        while len(items) > 1:
            half = len(items) // 2
            merged = [dd_add(items[i], items[i + half]) for i in range(half)]
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        hi, lo = items[0]
        payload = float(np.asarray(hi).nbytes + np.asarray(lo).nbytes)
        self._charge("allreduce", self.cost.allreduce(payload, self.size),
                     payload_bytes=payload)
        return hi, lo

    # ------------------------------------------------------------------
    def alloc_stack(self, ranks: int, rows: int, k: int,
                    dtype) -> np.ndarray:
        """Allocate a zeroed ``(ranks, rows, k)`` shard stack.

        The backend owns vector storage so executors can place shards
        where their ranks can reach them (the mp backend hands back
        shared-memory-backed arrays); the simulator just uses the heap.
        """
        return np.zeros((int(ranks), int(rows), int(k)), dtype=dtype)

    def exec_spmv(self, matrix, x, out) -> bool:
        """Offer the backend a distributed SpMV to execute itself.

        Returns False: the simulator has no ranks to run it on, so
        :meth:`DistSparseMatrix.matvec` computes driver-side and charges
        the modeled kernels as always.
        """
        return False

    # ------------------------------------------------------------------
    def mark(self) -> None:
        """Reset wall-clock attribution (no-op: nothing is measured here)."""

    def close(self) -> None:
        """Release backend resources (no-op for the simulator)."""

    def __enter__(self) -> "SimComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SimComm(machine={self.machine.name!r}, size={self.size})"
