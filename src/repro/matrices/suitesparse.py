"""SuiteSparse surrogate registry (offline substitution — DESIGN.md §3).

The paper evaluates on matrices from the SuiteSparse Matrix Collection
(Table IV and Fig. 9).  The collection is not available offline, so each
entry here is a *surrogate generator* matched to the real matrix in:

* dimension ``paper_n`` and average ``paper_nnz_per_row`` (these two drive
  every SpMV/orthogonalization cost in the performance model — they are
  reproduced exactly in the cost harness),
* symmetry class (SPD / symmetric indefinite / nonsymmetric),
* spectrum class: ``moderate`` surrogates keep Krylov panel conditioning
  within the paper's condition (9); ``hard`` surrogates (standing in for
  HTC_336_4438 and Ga41As41H72, which the paper reports as *violating*
  condition (9) in Fig. 9) have wide dynamic range + nonnormality so the
  monomial MPK basis degrades the same way.

The runnable matrix is generated at ``run_n`` rows (configurable) so the
numerics are exercised at laptop scale, while the experiment harness uses
``paper_n`` / ``paper_nnz_per_row`` for modeled timings.

The paper's preprocessing is reproduced by :func:`scale_columns_rows`:
"we scaled the columns and then rows of the matrices by the maximum
nonzero entries in the columns and rows (hence, all the resulting
matrices are non-symmetric)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.utils.rng import default_rng


# ---------------------------------------------------------------------------
# generic banded surrogate builder
# ---------------------------------------------------------------------------

def banded_random(n: int, nnz_per_row: float, *, symmetric: bool,
                  definite: str = "spd", band_span: float = 0.02,
                  rng: np.random.Generator | None = None) -> sp.csr_matrix:
    """Random banded matrix with target average nnz/row.

    ``definite``: ``"spd"`` (diagonally dominant symmetric), ``"indef"``
    (symmetric, alternating-sign diagonal), or ``"nonsym"``.
    Bands sit at random offsets within ``band_span * n`` of the diagonal,
    giving the banded halo structure typical of reordered FEM/FVM
    matrices (small surface-to-volume communication, like the paper's
    ParMETIS-partitioned runs).
    """
    if definite not in ("spd", "indef", "nonsym"):
        raise ConfigurationError(f"unknown definiteness {definite!r}")
    rng = default_rng(rng)
    n_off = max(1, int(round(nnz_per_row)) - 1)
    if symmetric:
        n_half = max(1, n_off // 2)
        max_off = min(n - 1, max(int(band_span * n), 3 * n_half + 2))
        n_half = min(n_half, max_off - 1)
        offsets = rng.choice(np.arange(1, max_off), size=n_half, replace=False)
        offsets = np.concatenate([offsets, -offsets])
    else:
        max_off = min(n - 1, max(int(band_span * n), 3 * n_off + 2))
        n_off = min(n_off, max_off - 1)
        offsets = rng.choice(np.arange(1, max_off), size=n_off, replace=False)
        signs = rng.choice([-1, 1], size=n_off)
        offsets = offsets * signs
    diags = []
    for off in offsets:
        m = n - abs(int(off))
        vals = rng.uniform(0.1, 1.0, size=m)
        if definite == "nonsym":
            vals *= rng.choice([-1.0, 1.0], size=m)
        else:
            vals = -vals  # negative off-diagonals, Laplacian-like
        diags.append((vals, int(off)))
    a = sp.diags([d for d, _ in diags], [o for _, o in diags],
                 shape=(n, n), format="csr")
    if symmetric:
        a = ((a + a.T) * 0.5).tocsr()
    row_abs = np.abs(a).sum(axis=1).A1 if hasattr(np.abs(a).sum(axis=1), "A1") \
        else np.asarray(np.abs(a).sum(axis=1)).ravel()
    if definite == "spd":
        diag = row_abs + rng.uniform(0.05, 0.2, size=n)
    elif definite == "indef":
        sign = np.where(np.arange(n) % 7 == 0, -1.0, 1.0)
        diag = sign * (row_abs + rng.uniform(0.05, 0.2, size=n))
    else:  # "nonsym" (validated above)
        diag = row_abs + rng.uniform(0.05, 0.5, size=n)
    return (a + sp.diags(diag)).tocsr()


def _harden(a: sp.csr_matrix, dynamic_decades: float,
            rng: np.random.Generator) -> sp.csr_matrix:
    """Widen the dynamic range in an equilibration-proof way.

    Diagonal scaling would be undone by the paper's column/row max
    scaling, so hardness must be *intrinsic*: every off-diagonal entry is
    scaled by an independent log-uniform factor (edge-weight spread, like
    quantum-chemistry integrals or circuit conductances) and the diagonal
    is weakened below dominance.  kappa grows to ~10^(dynamic_decades+)
    and — as the paper observes for HTC_336_4438 and Ga41As41H72 — the
    monomial Krylov panels violate condition (9).
    """
    a = sp.csr_matrix(a, copy=True)
    n = a.shape[0]
    coo = a.tocoo()
    factors = 10.0 ** rng.uniform(-dynamic_decades, dynamic_decades,
                                  size=coo.nnz)
    off = coo.row != coo.col
    data = coo.data.copy()
    data[off] *= factors[off]
    hard = sp.coo_matrix((data, (coo.row, coo.col)), shape=a.shape).tocsr()
    # Sparse rank-one spike: a dominant, well-separated direction makes
    # monomial Krylov panels align within a handful of steps — the
    # condition-(9) violation mechanism.  Sparse u, v keep nnz/row intact.
    k_spike = max(4, n // 200)
    u = np.zeros(n)
    v = np.zeros(n)
    u[rng.choice(n, size=k_spike, replace=False)] = rng.choice(
        [-1.0, 1.0], size=k_spike)
    v[rng.choice(n, size=k_spike, replace=False)] = rng.choice(
        [-1.0, 1.0], size=k_spike)
    amplitude = 50.0 * float(np.abs(hard.data).max() if hard.nnz else 1.0)
    spike = amplitude * (sp.csr_matrix(u.reshape(-1, 1))
                         @ sp.csr_matrix(v.reshape(1, -1)))
    return (hard + spike).tocsr()


def scale_columns_rows(a: sp.spmatrix) -> sp.csr_matrix:
    """The paper's Fig. 9 preprocessing: scale columns then rows by the
    max-magnitude nonzero of each (results are nonsymmetric in general)."""
    a = sp.csr_matrix(a, copy=True)
    col_max = np.abs(a).max(axis=0).toarray().ravel()
    col_max[col_max == 0.0] = 1.0
    a = (a @ sp.diags(1.0 / col_max)).tocsr()
    row_max = np.abs(a).max(axis=1).toarray().ravel()
    row_max[row_max == 0.0] = 1.0
    a = (sp.diags(1.0 / row_max) @ a).tocsr()
    return a


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SurrogateSpec:
    """Metadata tying a surrogate to the real SuiteSparse matrix."""

    name: str
    paper_n: int
    paper_nnz_per_row: float
    symmetry: str          # "spd" | "sym-indef" | "nonsym"
    kind: str              # the paper's one-line description
    spectrum: str          # "moderate" | "hard"
    default_run_n: int
    builder: Callable[[int, "SurrogateSpec", np.random.Generator], sp.csr_matrix]

    def build(self, run_n: int | None = None,
              rng: np.random.Generator | None = None) -> sp.csr_matrix:
        """Generate the runnable surrogate matrix (``run_n`` rows)."""
        rng = default_rng(rng)
        n = self.default_run_n if run_n is None else run_n
        return self.builder(n, self, rng)

    @property
    def paper_nnz(self) -> float:
        return self.paper_n * self.paper_nnz_per_row


def _build_plain(n: int, spec: SurrogateSpec,
                 rng: np.random.Generator) -> sp.csr_matrix:
    definite = {"spd": "spd", "sym-indef": "indef", "nonsym": "nonsym"}[spec.symmetry]
    a = banded_random(n, spec.paper_nnz_per_row,
                      symmetric=spec.symmetry != "nonsym",
                      definite=definite, rng=rng)
    if spec.spectrum == "hard":
        a = _harden(a, dynamic_decades=3.5, rng=rng)
    return a


_REGISTRY: dict[str, SurrogateSpec] = {}


def _register(name: str, paper_n: int, nnz_per_row: float, symmetry: str,
              kind: str, spectrum: str = "moderate",
              default_run_n: int = 50_000) -> None:
    _REGISTRY[name] = SurrogateSpec(
        name=name, paper_n=paper_n, paper_nnz_per_row=nnz_per_row,
        symmetry=symmetry, kind=kind, spectrum=spectrum,
        default_run_n=default_run_n, builder=_build_plain)


# --- Table IV matrices (paper-reported n and nnz/n) ------------------------
_register("atmosmodl", 1_489_752, 6.9, "nonsym",
          "CFD, numerically non-symmetric")
_register("dielFilterV2real", 1_157_456, 41.9, "sym-indef",
          "Electromagnetics, symmetric indefinite")
_register("ecology2", 999_999, 5.0, "spd", "Circuit/landscape, SPD")
_register("ML_Geer", 1_504_002, 73.7, "nonsym",
          "Structural, numerically non-symmetric")
_register("thermal2", 1_228_045, 7.0, "spd", "Unstructured thermal FEM, SPD")

# --- Fig. 9 matrices (dimension 200k..300k, scaled per the paper) ----------
# The paper names only the two that violate condition (9); the remaining
# five are representative members of the stated population ("various
# positive indefinite matrices of dimension between 200,000 and 300,000").
_register("HTC_336_4438", 226_340, 3.4, "nonsym",
          "Circuit simulation (paper: violates condition (9))",
          spectrum="hard", default_run_n=30_000)
_register("Ga41As41H72", 268_096, 68.6, "sym-indef",
          "Quantum chemistry (paper: violates condition (9))",
          spectrum="hard", default_run_n=30_000)
_register("offshore", 259_789, 16.3, "sym-indef",
          "FEM electromagnetics (representative Fig. 9 member)",
          default_run_n=30_000)
_register("stomach", 213_360, 14.2, "nonsym",
          "Bioengineering (representative Fig. 9 member)",
          default_run_n=30_000)
_register("torso3", 259_156, 17.1, "nonsym",
          "Bioengineering (representative Fig. 9 member)",
          default_run_n=30_000)
_register("Dubcova3", 146_689, 24.8, "spd",
          "PDE FEM (representative Fig. 9 member)", default_run_n=30_000)
_register("ASIC_320ks", 321_671, 4.1, "nonsym",
          "Circuit simulation (representative Fig. 9 member)",
          default_run_n=30_000)


def list_surrogates() -> list[str]:
    """Registered surrogate names (sorted)."""
    return sorted(_REGISTRY)


def surrogate(name: str) -> SurrogateSpec:
    """Look up a surrogate spec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown surrogate {name!r}; known: {', '.join(list_surrogates())}"
        ) from None


def build_surrogate(name: str, run_n: int | None = None,
                    rng: np.random.Generator | None = None,
                    paper_scaling: bool = True) -> sp.csr_matrix:
    """Build a runnable surrogate; ``paper_scaling`` applies the Fig. 9
    column-then-row max scaling."""
    a = surrogate(name).build(run_n=run_n, rng=rng)
    if paper_scaling:
        a = scale_columns_rows(a)
    return a
