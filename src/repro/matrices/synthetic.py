"""Synthetic matrices with controlled conditioning (paper Section VI).

Two constructions drive the numerics experiments:

* **Logscaled** (Fig. 6): ``V = X @ diag(sigma) @ Y.T`` with Haar
  orthonormal factors and log-spaced singular values — kappa(V) is
  prescribed exactly.

* **Glued** (Figs. 7, 8): a panel-structured matrix where every s-column
  panel has a prescribed condition number while the condition number of
  the accumulated prefix ``V_{1:j}`` grows geometrically.  We realize it
  as ``V = X @ diag(sigma) @ blockdiag(Y_1..Y_p).T``: with block-diagonal
  orthogonal right factor, panel ``j`` sees only its own block of singular
  values, so per-panel and global conditioning decouple:

    - panel j singular values: ``g**(j-1) * logspace(0, -log10(kp), s)``
    - kappa(panel j) = kp for every j,
    - kappa(V_{1:j}) = kp * g**(j-1)  (growth factor g per panel).

  Fig. 8 uses kp = 1e7, g = 2 ("condition number of V_{1:j} grows as
  2^{j-1} O(10^7)"); Fig. 7's variant uses g = 1 so panel and global
  conditioning share "the same specified order".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import default_rng, haar_orthonormal, spectrum_logspace


def logscaled_matrix(n: int, k: int, cond: float,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """The Fig. 6 test input: n x k with exact 2-norm condition ``cond``."""
    rng = default_rng(rng)
    x = haar_orthonormal(n, k, rng)
    y = haar_orthonormal(k, k, rng)
    sigma = spectrum_logspace(k, cond)
    return (x * sigma[np.newaxis, :]) @ y.T


@dataclass(frozen=True)
class GluedMatrix:
    """A glued matrix plus its ground-truth conditioning metadata."""

    matrix: np.ndarray          # n x (s * n_panels)
    panel_width: int
    n_panels: int
    panel_cond: float
    growth: float
    singular_values: np.ndarray

    def panel(self, j: int) -> np.ndarray:
        """Panel ``j`` (0-based), an ``n x s`` slab."""
        if not 0 <= j < self.n_panels:
            raise ConfigurationError(
                f"panel index {j} outside [0, {self.n_panels})")
        s = self.panel_width
        return self.matrix[:, j * s:(j + 1) * s]

    def prefix(self, j: int) -> np.ndarray:
        """Panels 0..j concatenated (``V_{1:j+1}`` in paper notation)."""
        return self.matrix[:, :(j + 1) * self.panel_width]

    def expected_prefix_cond(self, j: int) -> float:
        """Analytic kappa of the prefix through panel ``j`` (0-based)."""
        return self.panel_cond * self.growth ** j


def glued_matrix(n: int, panel_width: int, n_panels: int,
                 panel_cond: float, growth: float = 2.0,
                 rng: np.random.Generator | None = None) -> GluedMatrix:
    """Build the glued matrix described in the module docstring.

    Parameters
    ----------
    n:
        Row count (paper Fig. 8 uses 100000).
    panel_width:
        Columns per panel (the paper's step size s; Fig. 8 uses 5).
    n_panels:
        Number of panels (Fig. 8: m / s panels across m = 180 columns).
    panel_cond:
        Condition number of every individual panel (Fig. 8: 1e7).
    growth:
        Per-panel geometric growth g of the accumulated condition number
        (Fig. 8: 2; use 1.0 for the Fig. 7 variant).
    """
    if growth < 1.0:
        raise ConfigurationError(f"growth must be >= 1, got {growth}")
    if panel_cond < 1.0:
        raise ConfigurationError(f"panel_cond must be >= 1, got {panel_cond}")
    rng = default_rng(rng)
    k_total = panel_width * n_panels
    if k_total > n:
        raise ConfigurationError(
            f"total columns {k_total} exceed rows {n}")
    x = haar_orthonormal(n, k_total, rng)
    sigma = np.empty(k_total)
    base = spectrum_logspace(panel_width, panel_cond)
    for j in range(n_panels):
        sigma[j * panel_width:(j + 1) * panel_width] = base / growth ** j
    v = x * sigma[np.newaxis, :]
    # block-diagonal orthogonal mixing inside each panel
    for j in range(n_panels):
        yj = haar_orthonormal(panel_width, panel_width, rng)
        cols = slice(j * panel_width, (j + 1) * panel_width)
        v[:, cols] = v[:, cols] @ yj.T
    return GluedMatrix(matrix=v, panel_width=panel_width, n_panels=n_panels,
                       panel_cond=panel_cond, growth=growth,
                       singular_values=sigma)
