"""Structured finite-difference operators (the paper's model problems).

* :func:`laplace2d` — 5-point or 9-point 2D Laplacian (Tables II/III use
  n = 2000^2; Table III says "9-points 2D Laplace").
* :func:`laplace3d` — 7-point 3D Laplacian (Table IV "Laplace3D",
  n = 100^3, nnz/n = 6.9 — the boundary rows bring the average below 7).
* :func:`convection_diffusion_2d` — nonsymmetric upwinded operator, used
  by tests and examples to exercise the solver on a genuinely
  nonsymmetric, nondiagonalizable-ish problem.

All return ``scipy.sparse.csr_matrix`` with natural (row-major grid)
ordering; Dirichlet boundaries are eliminated (matrix acts on interior
unknowns only, identity-free).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int


def _kron3(a: sp.spmatrix, b: sp.spmatrix, c: sp.spmatrix) -> sp.csr_matrix:
    return sp.kron(sp.kron(a, b), c).tocsr()


def _lap1d(n: int) -> sp.csr_matrix:
    """1-D Dirichlet Laplacian tridiag(-1, 2, -1) of size n."""
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1]).tocsr()


def _eye(n: int) -> sp.csr_matrix:
    return sp.identity(n, format="csr")


def laplace2d(nx: int, ny: int | None = None, stencil: int = 5) -> sp.csr_matrix:
    """2-D Laplacian on an ``nx x ny`` interior grid.

    ``stencil=5`` is the standard cross; ``stencil=9`` is the compact
    9-point (Mehrstellen) stencil used in the paper's Table III.
    """
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    if stencil == 5:
        a = sp.kronsum(_lap1d(ny), _lap1d(nx)).tocsr()
        return a
    if stencil == 9:
        # Compact 9-point: 1/6 * [[-1,-4,-1],[-4,20,-4],[-1,-4,-1]]
        tx = _lap1d(nx)
        ty = _lap1d(ny)
        ix = _eye(nx)
        iy = _eye(ny)
        # D2x (x) (I - 1/6 D2y) + (I - 1/6 D2x) (x) D2y   (Mehrstellen)
        a = (sp.kron(tx, iy - ty / 6.0) + sp.kron(ix - tx / 6.0, ty))
        return a.tocsr()
    raise ConfigurationError(f"stencil must be 5 or 9, got {stencil}")


def laplace3d(nx: int, ny: int | None = None, nz: int | None = None) -> sp.csr_matrix:
    """3-D 7-point Laplacian on an ``nx x ny x nz`` interior grid."""
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    nz = nx if nz is None else check_positive_int(nz, "nz")
    a = (_kron3(_lap1d(nx), _eye(ny), _eye(nz))
         + _kron3(_eye(nx), _lap1d(ny), _eye(nz))
         + _kron3(_eye(nx), _eye(ny), _lap1d(nz)))
    return a.tocsr()


def convection_diffusion_2d(nx: int, ny: int | None = None,
                            wind: tuple[float, float] = (1.0, 0.5),
                            diffusion: float = 1.0e-2) -> sp.csr_matrix:
    """Upwinded convection-diffusion: nonsymmetric 5-point operator.

    ``-diffusion * Lap(u) + wind . grad(u)`` with first-order upwinding,
    grid spacing ``h = 1/(nx+1)``.  Strong winds make the operator highly
    nonnormal — a good stress test for the s-step basis conditioning.
    """
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    h = 1.0 / (nx + 1)
    bx, by = wind

    def upwind1d(n: int, b: float) -> sp.csr_matrix:
        # first-order upwind d/dx on Dirichlet interior grid
        if b >= 0:
            return sp.diags([-np.ones(n - 1), np.ones(n)], [-1, 0]).tocsr() * (b / h)
        return sp.diags([-np.ones(n), np.ones(n - 1)], [0, 1]).tocsr() * (-b / h)

    diff = diffusion / h ** 2 * sp.kronsum(_lap1d(ny), _lap1d(nx))
    conv = (sp.kron(upwind1d(nx, bx), _eye(ny))
            + sp.kron(_eye(nx), upwind1d(ny, by)))
    return (diff + conv).tocsr()
