"""Minimal MatrixMarket coordinate I/O (self-contained, no scipy.io).

Supports the subset of the format the library needs: ``matrix coordinate
real`` with ``general`` or ``symmetric`` storage.  Round-trip tested in
``tests/matrices/test_io.py``.  Users with real SuiteSparse downloads can
load them through this reader and run the same experiment harness on the
genuine matrices.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError

_HEADER = "%%MatrixMarket matrix coordinate real"


def read_matrix_market(path: str | Path | _io.TextIOBase) -> sp.csr_matrix:
    """Parse a MatrixMarket coordinate-real file into CSR."""
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="ascii") as fh:
            return read_matrix_market(fh)
    fh = path
    header = fh.readline().strip()
    parts = header.lower().split()
    if (len(parts) < 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix"
            or parts[2] != "coordinate" or parts[3] != "real"):
        raise ConfigurationError(f"unsupported MatrixMarket header: {header!r}")
    storage = parts[4]
    if storage not in ("general", "symmetric"):
        raise ConfigurationError(f"unsupported storage {storage!r}")
    # skip comments
    line = fh.readline()
    while line.startswith("%"):
        line = fh.readline()
    dims = line.split()
    if len(dims) != 3:
        raise ConfigurationError(f"bad size line: {line!r}")
    nrows, ncols, nnz = (int(d) for d in dims)
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        entry = fh.readline().split()
        if len(entry) != 3:
            raise ConfigurationError(f"bad entry line {k}: {entry!r}")
        rows[k] = int(entry[0]) - 1
        cols[k] = int(entry[1]) - 1
        vals[k] = float(entry[2])
    a = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if storage == "symmetric":
        off = rows != cols
        a = a + sp.coo_matrix((vals[off], (cols[off], rows[off])),
                              shape=(nrows, ncols))
    return a.tocsr()


def write_matrix_market(a: sp.spmatrix, path: str | Path | _io.TextIOBase,
                        comment: str = "written by repro") -> None:
    """Write a sparse matrix as MatrixMarket coordinate real general."""
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="ascii") as fh:
            write_matrix_market(a, fh, comment=comment)
            return
    fh = path
    coo = sp.coo_matrix(a)
    fh.write(_HEADER + " general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
    for r, c, v in zip(coo.row, coo.col, coo.data):
        # repr(float(...)) is the shortest string that round-trips exactly
        fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
