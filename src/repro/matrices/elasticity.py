"""3-D linear elasticity model problem (Table IV "Elasticity3D").

The paper's Elasticity3D is a structured 3-D model with three degrees of
freedom per grid point (n = 3 * 100^3), SPD.  We discretize the Navier
(isotropic linear elasticity) operator

    -mu * Lap(u) - (lambda + mu) * grad(div(u))

with second-order central differences on a structured grid, Dirichlet
boundaries eliminated.  The grad-div term couples the displacement
components through mixed second derivatives, giving the characteristic
3x3 block structure.  The operator is symmetric positive definite for
mu > 0, lambda + mu >= 0 (verified in tests).

The paper does not specify its discretization; nnz/row differs slightly
from the reported 5.7 (see DESIGN.md section 7 — Table IV's cost model
uses the paper's nnz/n directly).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_positive_int


def _d1(n: int) -> sp.csr_matrix:
    """Central first difference (antisymmetric) on a Dirichlet grid."""
    off = 0.5 * np.ones(n - 1)
    return sp.diags([-off, off], [-1, 1]).tocsr()


def _d2(n: int) -> sp.csr_matrix:
    """Second difference -tridiag(1, -2, 1) (positive definite)."""
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1]).tocsr()


def _eye(n: int) -> sp.csr_matrix:
    return sp.identity(n, format="csr")


def elasticity3d(nx: int, ny: int | None = None, nz: int | None = None,
                 lam: float = 1.0, mu: float = 1.0) -> sp.csr_matrix:
    """Navier elasticity operator on an ``nx x ny x nz`` interior grid.

    Returns a CSR matrix of size ``3 * nx * ny * nz`` ordered by component
    blocks ``[u_x; u_y; u_z]`` (block-vector layout, as a structured
    application would assemble it).
    """
    nx = check_positive_int(nx, "nx")
    ny = nx if ny is None else check_positive_int(ny, "ny")
    nz = nx if nz is None else check_positive_int(nz, "nz")

    def kron3(a, b, c):
        return sp.kron(sp.kron(a, b), c)

    # scalar Laplacian on the grid
    lap = (kron3(_d2(nx), _eye(ny), _eye(nz))
           + kron3(_eye(nx), _d2(ny), _eye(nz))
           + kron3(_eye(nx), _eye(ny), _d2(nz)))
    # first derivatives per direction
    dx = kron3(_d1(nx), _eye(ny), _eye(nz))
    dy = kron3(_eye(nx), _d1(ny), _eye(nz))
    dz = kron3(_eye(nx), _eye(ny), _d1(nz))
    d = [dx, dy, dz]

    coeff = lam + mu
    blocks = [[None] * 3 for _ in range(3)]
    for i in range(3):
        for j in range(3):
            # grad(div) block (i, j) = d_i d_j; central d1 matrices commute
            # across dimensions, and d_i @ d_j is symmetric in (i, j).
            gd = coeff * (d[i] @ d[j])
            if i == j:
                # Use -d_i^2 = d2 contribution for the diagonal of grad-div
                # to keep the operator definite on the discrete level.
                gd = coeff * kron3(*(_d2(n) if k == i else _eye(n)
                                     for k, n in enumerate((nx, ny, nz))))
                blocks[i][j] = mu * lap + gd
            else:
                blocks[i][j] = -gd
    a = sp.bmat(blocks, format="csr")
    # Symmetrize exactly against roundoff in the kron products.
    return ((a + a.T) * 0.5).tocsr()
