"""Bandwidth-reducing orderings for the 1-D block-row distribution.

The paper distributes matrices "using a graph partitioner like
ParMETIS" (Sec. VII); with our contiguous block-row partition the
communication volume of SpMV is governed by the matrix bandwidth, so a
reverse Cuthill-McKee (RCM) reordering plays the partitioner's role:
it clusters each row's neighbours near the diagonal, shrinking the halo
each rank must gather.

Implemented from scratch (BFS with degree-sorted tie-breaking, smallest
degree start per connected component).  ``tests/matrices/test_ordering.py``
verifies bandwidth and halo reduction on scrambled stencils.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def rcm_ordering(a: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill-McKee permutation of the symmetrized pattern.

    Returns ``perm`` such that ``a[perm][:, perm]`` has (near-)minimal
    bandwidth; apply with :func:`permute`.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    pattern = sp.csr_matrix(a + a.T)
    indptr, indices = pattern.indptr, pattern.indices
    degrees = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # iterate components, each seeded at its minimum-degree vertex
    component_seeds = np.argsort(degrees, kind="stable")
    seed_idx = 0
    while pos < n:
        while seed_idx < n and visited[component_seeds[seed_idx]]:
            seed_idx += 1
        seed = int(component_seeds[seed_idx])
        visited[seed] = True
        order[pos] = seed
        head = pos
        pos += 1
        while head < pos:
            v = order[head]
            head += 1
            neigh = indices[indptr[v]:indptr[v + 1]]
            fresh = neigh[~visited[neigh]]
            if fresh.size:
                fresh = np.unique(fresh)
                fresh = fresh[~visited[fresh]]
                fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                order[pos:pos + fresh.size] = fresh
                pos += fresh.size
    return order[::-1].copy()  # the *reverse* of Cuthill-McKee


def permute(a: sp.spmatrix, perm: np.ndarray) -> sp.csr_matrix:
    """Symmetric permutation ``a[perm][:, perm]`` as CSR."""
    a = sp.csr_matrix(a)
    return a[perm][:, perm].tocsr()


def bandwidth(a: sp.spmatrix) -> int:
    """Maximum |i - j| over structural nonzeros."""
    coo = sp.coo_matrix(a)
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))


def halo_volume(a: sp.spmatrix, ranks: int) -> int:
    """Total off-rank operand entries gathered per SpMV under a balanced
    block-row partition — the quantity RCM exists to shrink."""
    from repro.parallel.partition import Partition
    a = sp.csr_matrix(a)
    part = Partition(a.shape[0], ranks)
    total = 0
    for rank in range(ranks):
        sl = part.local_slice(rank)
        block = a[sl.start:sl.stop]
        cols = np.unique(block.indices)
        total += int(np.sum((cols < sl.start) | (cols >= sl.stop)))
    return total
