"""Problem generators: model PDE operators, SuiteSparse surrogates, and
synthetic matrices with controlled conditioning for the numerics studies.
"""

from repro.matrices.stencil import (
    convection_diffusion_2d,
    laplace2d,
    laplace3d,
)
from repro.matrices.elasticity import elasticity3d
from repro.matrices.synthetic import (
    GluedMatrix,
    glued_matrix,
    logscaled_matrix,
)
from repro.matrices.suitesparse import (
    SurrogateSpec,
    build_surrogate,
    list_surrogates,
    scale_columns_rows,
    surrogate,
)
from repro.matrices.io import read_matrix_market, write_matrix_market
from repro.matrices.ordering import bandwidth, halo_volume, permute, rcm_ordering

__all__ = [
    "laplace2d",
    "laplace3d",
    "convection_diffusion_2d",
    "elasticity3d",
    "logscaled_matrix",
    "glued_matrix",
    "GluedMatrix",
    "SurrogateSpec",
    "surrogate",
    "build_surrogate",
    "list_surrogates",
    "scale_columns_rows",
    "read_matrix_market",
    "write_matrix_market",
    "rcm_ordering",
    "permute",
    "bandwidth",
    "halo_volume",
]
