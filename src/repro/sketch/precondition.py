"""Whitening preconditioners from sketched panels.

The workhorse of randomized orthogonalization (Balabanov 2022; Carson &
Ma, arXiv:2409.03079): QR-factor the *small* sketch ``S V = Q_s R_s`` on
the host and precondition ``V <- V R_s^{-1}``.  When ``S`` is an
eps-embedding of ``span(V)``, ``kappa(V R_s^{-1}) <= (1+eps)/(1-eps)``
w.h.p. — even for ``kappa(V)`` approaching ``1/eps_machine``, far past
the ``eps_machine^{-1/2}`` cliff where a Cholesky-based factorization
breaks down.

Near the numerical-rank boundary the triangular factor itself becomes
singular; :func:`sketch_qr` offers both policies — raise (a caller that
treats rank deficiency as Krylov-space closure wants the exception) or
clip the offending diagonal entries (a scheme that must make progress
regardless wants graceful degradation: clipped directions simply stay
unnormalized and the follow-up Cholesky pass sees a bounded, if larger,
condition number).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.config import EPS
from repro.exceptions import ConfigurationError

#: Default relative rank tolerance: diagonal entries of ``R_s`` below
#: ``4 eps * max |diag|`` are numerically indistinguishable from zero
#: through a constant-distortion sketch.
DEFAULT_RANK_TOL = 4.0 * EPS


def sketch_qr(sv: np.ndarray, *, rank_tol: float | None = None,
              on_deficient: str = "clip") -> tuple[np.ndarray, int]:
    """Upper-triangular whitening factor from a sketched panel.

    Parameters
    ----------
    sv:
        The ``(m_rows, k)`` sketch ``S V``.
    rank_tol:
        Relative tolerance below which a diagonal entry of ``R_s``
        counts as numerically zero (default :data:`DEFAULT_RANK_TOL`).
    on_deficient:
        ``"clip"`` — replace tiny pivots by ``rank_tol * max`` so the
        factor stays invertible (regularized whitening);
        ``"raise"`` — raise :class:`ConfigurationError` instead.

    Returns ``(r_s, n_clipped)`` with ``r_s`` sign-fixed to a positive
    diagonal and ``n_clipped`` the number of regularized pivots.
    """
    if on_deficient not in ("clip", "raise"):
        raise ConfigurationError(
            f"on_deficient must be 'clip' or 'raise', got {on_deficient!r}")
    tol = DEFAULT_RANK_TOL if rank_tol is None else float(rank_tol)
    _, r_s = np.linalg.qr(np.asarray(sv, dtype=np.float64))
    signs = np.sign(np.diag(r_s))
    signs[signs == 0] = 1.0
    r_s = r_s * signs[:, np.newaxis]
    diag = np.diag(r_s)
    dmax = float(np.max(diag)) if diag.size else 0.0
    if dmax <= 0.0:
        raise ConfigurationError(
            "sketch is identically zero: cannot build a preconditioner")
    deficient = diag < tol * dmax
    n_clipped = int(np.count_nonzero(deficient))
    if n_clipped:
        if on_deficient == "raise":
            raise ConfigurationError(
                f"sketch is numerically singular ({n_clipped} pivot(s) "
                f"below {tol:.2e} * max): input panel rank-deficient")
        r_s = r_s.copy()
        np.fill_diagonal(r_s, np.where(deficient, tol * dmax, diag))
    return r_s, n_clipped


def right_apply_inverse(a: np.ndarray, r: np.ndarray) -> np.ndarray:
    """``A @ R^{-1}`` for upper-triangular ``R`` (host-side, small).

    Used to maintain sketches of already-factored panels without an
    extra global reduction: if ``sv`` sketches ``V`` and ``V = Q R``,
    then ``sv @ R^{-1}`` sketches ``Q``.
    """
    return scipy.linalg.solve_triangular(r, a.T, trans="T", lower=False).T
