"""Sketching operators: random subspace embeddings behind one interface.

A sketching operator is a wide random matrix ``S`` of shape
``(m_rows, n_rows)`` with ``m_rows << n_rows`` that preserves the
geometry of any fixed ``k``-dimensional subspace w.h.p. (an (eps, k)
oblivious subspace embedding):

    (1 - eps) ||x||  <=  ||S x||  <=  (1 + eps) ||x||   for x in the span.

Three families, each a :class:`SketchOperator`:

* :class:`SparseSignSketch` — ``nnz`` random signed entries per input
  row (``nnz = 1`` is the classical CountSketch).  Application is a
  streaming scatter-add: O(nnz * n * k) work, no dense operator storage.
* :class:`GaussianSketch` — i.i.d. ``N(0, 1/m)`` entries; the textbook
  embedding with the sharpest constants, applied as a GEMM.
* :class:`SRHTSketch` — subsampled randomized Hadamard transform
  ``P H D``; entries are ``+-1/sqrt(m)`` with Walsh-pattern signs,
  evaluated entrywise so any column block can be materialized locally.

The key property the distributed layer (:mod:`repro.sketch.distributed`)
exploits: ``S @ V = sum_r S[:, rows_r] @ V_r`` — every rank applies the
columns of ``S`` matching its row shard and the partial sketches meet in
one allreduce.  :meth:`SketchOperator.partial` produces such a shard
contribution from *global* row offsets only, so the sketch is
bit-identical regardless of how (or whether) the rows are partitioned.

Operators are deterministic functions of ``(family, n_rows, m_rows,
seed)``; derive seeds with :func:`repro.sketch.seeding.derive_seed`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sketch.seeding import derive_seed


class SketchOperator(ABC):
    """A random ``(m_rows, n_rows)`` subspace-embedding operator.

    Subclasses generate their randomness lazily but deterministically
    from ``seed``; two instances with equal ``(family, n_rows, m_rows,
    seed)`` are the same operator.
    """

    #: registry key of the operator family (set by subclasses)
    family: str = "abstract"

    def __init__(self, n_rows: int, m_rows: int, seed: int) -> None:
        if n_rows < 1:
            raise ConfigurationError(f"n_rows must be >= 1, got {n_rows}")
        if m_rows < 1:
            raise ConfigurationError(f"m_rows must be >= 1, got {m_rows}")
        self.n_rows = int(n_rows)
        self.m_rows = int(m_rows)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.m_rows, self.n_rows)

    @abstractmethod
    def partial(self, block: np.ndarray, row_offset: int) -> np.ndarray:
        """``S[:, row_offset : row_offset + len(block)] @ block``.

        ``block`` is a ``(rows, k)`` slab holding global rows
        ``[row_offset, row_offset + rows)`` of the sketched matrix; the
        return value is this slab's ``(m_rows, k)`` contribution to the
        full sketch.  Summing the contributions of any row partition
        reproduces ``S @ V`` exactly.
        """

    def partial_stack(self, stack: np.ndarray) -> np.ndarray:
        """Per-rank contributions for a uniform ``(ranks, rows, k)`` stack.

        Rank ``r`` owns global rows ``[r * rows, (r+1) * rows)``.  The
        base implementation loops :meth:`partial`; subclasses override
        with batched kernels that stay bit-identical to the loop.
        """
        rows = stack.shape[1]
        return np.stack([self.partial(stack[r], r * rows)
                         for r in range(stack.shape[0])])

    def local_cost(self, cost, rows: int, k: int,
                   word_bytes: float = 8.0) -> float:
        """Modeled seconds to apply one ``(rows, k)`` shard contribution.

        ``cost`` is a :class:`repro.parallel.costmodel.CostModel`; dense
        families charge the tall GEMM, sparse families the streaming
        scatter-add.  ``word_bytes`` is the storage word size of the
        sketched multivector (the dominant stream), so fp32 shards are
        charged at half the fp64 traffic like every other panel kernel.
        """
        return cost.gemm(self.m_rows, rows, k, word_bytes=word_bytes)

    # -- conveniences ----------------------------------------------------
    def apply(self, arr: np.ndarray) -> np.ndarray:
        """Full sketch ``S @ arr`` of an in-memory ``(n_rows, k)`` array."""
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, np.newaxis]
        if arr.shape[0] != self.n_rows:
            raise ConfigurationError(
                f"operator sketches {self.n_rows} rows, got {arr.shape[0]}")
        return self.partial(arr, 0)

    def matrix(self) -> np.ndarray:
        """Dense ``(m_rows, n_rows)`` materialization (tests/debugging)."""
        return self.partial(np.eye(self.n_rows), 0)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(n_rows={self.n_rows}, "
                f"m_rows={self.m_rows}, seed={self.seed:#x})")


# ---------------------------------------------------------------------------
# sparse sign / CountSketch
# ---------------------------------------------------------------------------

class SparseSignSketch(SketchOperator):
    """Sparse-sign embedding: ``nnz`` entries ``+-1/sqrt(nnz)`` per row.

    Column ``j`` of ``S`` (input row ``j``) hits buckets
    ``buckets[j, 0..nnz)`` with signs ``signs[j, 0..nnz)``; application
    is a scatter-add over the input rows — one streaming pass, no dense
    operator.  ``nnz = 1`` is CountSketch (Clarkson & Woodruff); small
    ``nnz`` (2-8) buys Gaussian-like reliability at sparse cost
    (Martinsson & Tropp 2020, Sec. 9).
    """

    family = "sparse"

    def __init__(self, n_rows: int, m_rows: int, seed: int,
                 nnz_per_row: int = 1) -> None:
        super().__init__(n_rows, m_rows, seed)
        if nnz_per_row < 1:
            raise ConfigurationError(
                f"nnz_per_row must be >= 1, got {nnz_per_row}")
        self.nnz_per_row = int(nnz_per_row)
        rng = np.random.default_rng(
            derive_seed(seed, "sparse-sign", n_rows, m_rows, nnz_per_row))
        self._buckets = rng.integers(0, m_rows,
                                     size=(n_rows, self.nnz_per_row))
        self._signs = rng.choice(np.array([-1.0, 1.0]),
                                 size=(n_rows, self.nnz_per_row))
        self._signs *= 1.0 / math.sqrt(self.nnz_per_row)

    def partial(self, block: np.ndarray, row_offset: int) -> np.ndarray:
        rows, k = block.shape
        sl = slice(row_offset, row_offset + rows)
        out = np.zeros((self.m_rows, k))
        for j in range(self.nnz_per_row):
            np.add.at(out, self._buckets[sl, j],
                      block * self._signs[sl, j, np.newaxis])
        return out

    def partial_stack(self, stack: np.ndarray) -> np.ndarray:
        ranks, rows, k = stack.shape
        out = np.zeros((ranks, self.m_rows, k))
        n_span = ranks * rows
        rank_idx = np.repeat(np.arange(ranks), rows).reshape(ranks, rows)
        for j in range(self.nnz_per_row):
            buckets = self._buckets[:n_span, j].reshape(ranks, rows)
            signs = self._signs[:n_span, j].reshape(ranks, rows)
            # One unbuffered scatter-add; within each (rank, bucket, col)
            # slot contributions land in ascending local-row order exactly
            # like the per-rank loop, so the result is bit-identical.
            np.add.at(out, (rank_idx, buckets),
                      stack * signs[:, :, np.newaxis])
        return out

    def local_cost(self, cost, rows: int, k: int,
                   word_bytes: float = 8.0) -> float:
        # Streaming pass: read the shard (nnz times), scatter into the
        # small sketch.  nnz = 1 matches the historical sketch_dot charge.
        return cost.blas1(rows * k * self.nnz_per_row,
                          n_streams=1, writes=1, word_bytes=word_bytes)


# ---------------------------------------------------------------------------
# Gaussian
# ---------------------------------------------------------------------------

#: Global rows per deterministic generation chunk.  Entries for global
#: row ``i`` live in chunk ``i // _GAUSS_CHUNK`` and depend only on the
#: chunk index — never on shard boundaries — so any partition of the
#: rows sees the same operator.
_GAUSS_CHUNK = 4096


class GaussianSketch(SketchOperator):
    """Dense Gaussian embedding: i.i.d. ``N(0, 1/m_rows)`` entries.

    Entries are generated per fixed-size chunk of *global* rows (seeded
    by chunk index) and cached, so repeated applications and arbitrary
    shard boundaries are deterministic and cheap after the first pass.
    """

    family = "gaussian"

    def __init__(self, n_rows: int, m_rows: int, seed: int) -> None:
        super().__init__(n_rows, m_rows, seed)
        self._chunks: dict[int, np.ndarray] = {}

    def _rows(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``[lo, hi)`` of the scaled ``(n_rows, m_rows)`` factor."""
        if hi <= lo:  # empty shard (over-decomposed partition)
            return np.zeros((0, self.m_rows))
        parts = []
        scale = 1.0 / math.sqrt(self.m_rows)
        for c in range(lo // _GAUSS_CHUNK, (hi - 1) // _GAUSS_CHUNK + 1):
            chunk = self._chunks.get(c)
            if chunk is None:
                base = c * _GAUSS_CHUNK
                count = min(_GAUSS_CHUNK, self.n_rows - base)
                rng = np.random.default_rng(
                    derive_seed(self.seed, "gaussian-chunk",
                                self.n_rows, self.m_rows, c))
                chunk = rng.standard_normal((count, self.m_rows)) * scale
                self._chunks[c] = chunk
            base = c * _GAUSS_CHUNK
            parts.append(chunk[max(lo - base, 0): hi - base])
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def partial(self, block: np.ndarray, row_offset: int) -> np.ndarray:
        rows = block.shape[0]
        return self._rows(row_offset, row_offset + rows).T @ block

    def partial_stack(self, stack: np.ndarray) -> np.ndarray:
        ranks, rows, k = stack.shape
        blocks = np.stack([self._rows(r * rows, (r + 1) * rows).T
                           for r in range(ranks)])
        return np.matmul(blocks, stack)


# ---------------------------------------------------------------------------
# subsampled randomized Hadamard transform
# ---------------------------------------------------------------------------

def _popcount(arr: np.ndarray) -> np.ndarray:
    """Per-element population count of a non-negative integer array."""
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(arr)
    out = np.zeros_like(arr)
    work = arr.copy()
    while work.any():
        out += work & 1
        work >>= 1
    return out


class SRHTSketch(SketchOperator):
    """Subsampled randomized Hadamard transform ``sqrt(n/m) P H D``.

    ``D`` is a random diagonal of signs, ``H`` the (orthonormal)
    Walsh-Hadamard transform on the power-of-two padding of ``n_rows``,
    and ``P`` samples ``m_rows`` rows without replacement.  Entries are
    closed-form — ``S[r, j] = d_j (-1)^{popcount(sel_r & j)} / sqrt(m)``
    — so any column block materializes locally from global row indices
    alone (the property the shard-local distributed application needs;
    a fused O(n log n) FHT would not decompose this way).  The modeled
    cost is honest about that choice: we charge the explicit tall GEMM
    this simulation executes, not the fast transform.
    """

    family = "srht"

    def __init__(self, n_rows: int, m_rows: int, seed: int) -> None:
        super().__init__(n_rows, m_rows, seed)
        n_pad = 1 << max(0, (n_rows - 1).bit_length())
        if m_rows > n_pad:
            raise ConfigurationError(
                f"SRHT samples without replacement: m_rows={m_rows} exceeds "
                f"padded length {n_pad}")
        self.n_pad = n_pad
        rng = np.random.default_rng(
            derive_seed(seed, "srht", n_rows, m_rows))
        self._selected = np.sort(rng.choice(n_pad, size=m_rows,
                                            replace=False))
        self._d = rng.choice(np.array([-1.0, 1.0]), size=n_rows)
        self._d *= 1.0 / math.sqrt(m_rows)

    def block(self, lo: int, hi: int) -> np.ndarray:
        """Columns ``[lo, hi)`` of ``S`` as a dense ``(m_rows, hi-lo)``."""
        cols = np.arange(lo, hi, dtype=np.int64)
        parity = _popcount(self._selected[:, np.newaxis]
                           & cols[np.newaxis, :]) & 1
        return (1.0 - 2.0 * parity) * self._d[np.newaxis, lo:hi]

    def partial(self, block: np.ndarray, row_offset: int) -> np.ndarray:
        rows = block.shape[0]
        return self.block(row_offset, row_offset + rows) @ block

    def partial_stack(self, stack: np.ndarray) -> np.ndarray:
        ranks, rows, k = stack.shape
        blocks = np.stack([self.block(r * rows, (r + 1) * rows)
                           for r in range(ranks)])
        return np.matmul(blocks, stack)


def _fwht(work: np.ndarray) -> np.ndarray:
    """In-place fast Walsh–Hadamard transform along axis ``-2``.

    Iterative radix-2 butterflies over a power-of-two length, vectorized
    across every leading axis AND the trailing column axis — the whole
    stacked shard transforms in one pass per level, never per column.
    Computes the natural-order transform ``y_i = sum_j (-1)^popcount(i&j)
    x_j`` (unnormalized), matching :meth:`SRHTSketch.block`'s closed
    form.
    """
    p = work.shape[-2]
    h = 1
    while h < p:
        v = work.reshape(work.shape[:-2] + (p // (2 * h), 2, h,
                                            work.shape[-1]))
        top = v[..., 0, :, :] + v[..., 1, :, :]
        bot = v[..., 0, :, :] - v[..., 1, :, :]
        v[..., 0, :, :] = top
        v[..., 1, :, :] = bot
        h *= 2
    return work


class FastSRHTSketch(SRHTSketch):
    """SRHT applied via the fast Walsh–Hadamard transform (family
    ``"srht_fft"``).

    Same embedding as :class:`SRHTSketch` — identical seed derivation,
    identical sign diagonal and row sample, so the two families draw
    the *same operator* for the same ``(n, m, seed)`` — but the shard
    application runs the ``O(n_pad log n_pad)`` butterfly network once
    across all ``k`` stacked columns instead of the explicit
    ``(m, rows) @ (rows, k)`` GEMM: zero-pad the shard into its global
    offset, scale by ``D``, transform, gather the sampled rows.  Each
    rank's contribution still decomposes shard-locally (``H (D v)``
    restricted to a rank's rows is a full-length transform of a mostly
    zero operand), so the one-allreduce distributed pattern is
    untouched.

    Values agree with the closed-form family to summation-order
    rounding (butterfly adds versus GEMM dots), which is why this is a
    separate opt-in family: the default ``"srht"`` keeps its frozen
    bit-exact artifacts.  The modeled cost switches to
    :meth:`repro.parallel.costmodel.CostModel.srht_apply` — the fast
    transform this subclass genuinely executes.
    """

    family = "srht_fft"

    def _fht_partial(self, block: np.ndarray, row_offset: int,
                     out_work: np.ndarray) -> np.ndarray:
        """Shared loop/stacked kernel: pad, D-scale, transform, sample."""
        rows = block.shape[-2]
        scale = self._d[row_offset:row_offset + rows]
        out_work[..., row_offset:row_offset + rows, :] = (
            block * scale[:, np.newaxis])
        _fwht(out_work)
        return out_work[..., self._selected, :]

    def partial(self, block: np.ndarray, row_offset: int) -> np.ndarray:
        work = np.zeros((self.n_pad, block.shape[1]))
        return self._fht_partial(block, row_offset, work)

    def partial_stack(self, stack: np.ndarray) -> np.ndarray:
        ranks, rows, k = stack.shape
        work = np.zeros((ranks, self.n_pad, k))
        for r in range(ranks):
            work[r, r * rows:(r + 1) * rows] = (
                stack[r] * self._d[r * rows:(r + 1) * rows, np.newaxis])
        _fwht(work)
        return work[:, self._selected, :]

    def local_cost(self, cost, rows: int, k: int,
                   word_bytes: float = 8.0) -> float:
        return cost.srht_apply(self.n_pad, k, self.m_rows,
                               word_bytes=word_bytes)


# ---------------------------------------------------------------------------
# sizing heuristics and registry
# ---------------------------------------------------------------------------

#: Practical oversampling constants per family: sketch rows per subspace
#: dimension at the reference distortion 1/2.  Sparse-sign needs more
#: rows than a dense embedding for the same failure probability.
_FAMILY_OVERSAMPLE = {"sparse": 4.0, "gaussian": 2.0, "srht": 2.0,
                      "srhtfft": 2.0}

#: Selectable operator families (aliases included).
OPERATOR_FAMILIES: dict[str, type[SketchOperator]] = {
    "sparse": SparseSignSketch,
    "countsketch": SparseSignSketch,
    "gaussian": GaussianSketch,
    "srht": SRHTSketch,
    "srhtfft": FastSRHTSketch,
}


def canonical_family(name: str) -> str:
    """Normalize an operator-family name (``"CountSketch"`` -> ``"sparse"``)."""
    key = str(name).strip().lower().replace("_", "").replace("-", "")
    if key in ("countsketch", "sparsesign"):
        return "sparse"
    if key in OPERATOR_FAMILIES:
        return key
    raise ConfigurationError(
        f"unknown sketch operator family {name!r}; expected one of "
        f"{sorted(set(OPERATOR_FAMILIES))}")


def embedding_dim(k: int, *, family: str = "sparse",
                  distortion: float = 0.5, min_pad: int = 8) -> int:
    """Heuristic sketch-row count for a ``k``-dimensional subspace.

    Scales the per-family practical constant by ``(1/2 / distortion)^2``
    (embedding dimension grows as ``1/eps^2``); ``min_pad`` extra
    dimensions guard the tiny-``k`` regime.  These are the working
    choices of the randomized CholQR / randomized block-GS literature
    (Balabanov 2022; Carson & Ma 2024), not sharp theory bounds.
    """
    if k < 1:
        raise ConfigurationError(f"subspace dimension must be >= 1, got {k}")
    if not 0.0 < distortion < 1.0:
        raise ConfigurationError(
            f"distortion must be in (0, 1), got {distortion}")
    c = _FAMILY_OVERSAMPLE[canonical_family(family)]
    m = math.ceil(c * (k + min_pad) * (0.5 / distortion) ** 2)
    return max(m, k + min_pad)


def sketch_rows(k: int, n_rows: int, *, family: str = "sparse",
                oversample: int | None = None, min_pad: int = 8) -> int:
    """Sketch rows for a ``k``-column panel over ``n_rows`` global rows.

    ``oversample`` (rows per column, the knob :class:`SketchedCholQR`
    exposes) overrides the :func:`embedding_dim` heuristic; the result
    is clamped so the sketch never exceeds the input height (and, for
    SRHT, the power-of-two padded length it samples from without
    replacement — always >= ``n_rows`` >= ``k``, so the factor stays
    full rank).
    """
    if oversample is not None:
        m = max(int(oversample) * k, k + min_pad)
    else:
        m = embedding_dim(k, family=family, min_pad=min_pad)
    m = min(m, max(n_rows, k + min_pad))
    if canonical_family(family) in ("srht", "srhtfft"):
        m = min(m, 1 << max(0, (n_rows - 1).bit_length()))
    return m


def make_operator(family: str, n_rows: int, m_rows: int, seed: int,
                  **kwargs) -> SketchOperator:
    """Instantiate an operator by family name (see :data:`OPERATOR_FAMILIES`)."""
    cls = OPERATOR_FAMILIES[canonical_family(family)]
    return cls(n_rows, m_rows, seed, **kwargs)
