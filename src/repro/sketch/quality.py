"""A-posteriori embedding-quality estimation (leave-one-out split test).

An (eps, k) subspace embedding guarantees ``||S x|| = (1 +- eps) ||x||``
on the sketched subspace *with high probability* — but a solver that
trusts an unlucky draw has no way to notice from the sketch alone,
because the sketched basis looks perfectly well-conditioned in its own
norm.  The classical a-posteriori device (Epperly; Martinsson & Tropp
Sec. 9.4) is a *split test*: partition the sketch rows into two halves,
use one half to whiten, and measure the whitened panel through the
*other* half.  Each half is itself a (weaker) embedding, and the two
halves are independent, so the held-out half sees exactly the
distortion the first half's whitening failed to remove:

    W = S2 V R1^{-1},   S1 V = Q1 R1
    => sigma(W) in [(1 - eps2)/(1 + eps1), (1 + eps2)/(1 - eps1)] w.h.p.

``max(|sigma_max(W) - 1|, |1 - sigma_min(W)|)`` therefore *over*-
estimates the full-sketch distortion (half the rows means a larger
eps), which is the right direction for a trigger: re-sketching fires
a bit too eagerly, never too late.

Everything here is host-side math over the already-reduced ``(m, k)``
sketched basis — no extra collectives, which is what makes it cheap
enough to run at every solver checkpoint
(``sstep_gmres(solve_mode="sketched")`` surfaces the running maximum as
``SolveResult.diagnostics["embedding_distortion_max"]``).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg

from repro.exceptions import ShapeError


def leave_one_out_distortion(sv: np.ndarray) -> float:
    """Distortion estimate of the embedding behind sketched basis ``sv``.

    ``sv`` is the ``(m, k)`` sketched basis ``S V``.  Rows are split
    even/odd (interleaving keeps both halves representative for
    structured operators like SRHT, where a contiguous split could be
    biased) and rescaled by ``sqrt(m / m_half)`` so each half is an
    unbiased embedding in its own right; the first half whitens, the
    second half evaluates.

    Returns ``max(|sigma_max - 1|, |1 - sigma_min|)`` of the held-out
    view of the whitened panel — ``0`` would be a perfect isometry.
    Returns ``inf`` when the test is impossible (fewer than ``2 k``
    sketch rows) or the whitening half is numerically rank-deficient:
    both mean the embedding cannot be certified, which a re-sketching
    trigger should treat as failure.
    """
    sv = np.asarray(sv, dtype=np.float64)
    if sv.ndim != 2:
        raise ShapeError(
            f"sketched basis must be 2-D, got ndim={sv.ndim}")
    m, k = sv.shape
    if k == 0:
        return 0.0
    s1 = sv[0::2]
    s2 = sv[1::2]
    if min(s1.shape[0], s2.shape[0]) < k:
        return float("inf")
    s1 = s1 * math.sqrt(m / s1.shape[0])
    s2 = s2 * math.sqrt(m / s2.shape[0])
    r1 = np.linalg.qr(s1, mode="r")
    diag = np.abs(np.diag(r1))
    if diag.size and (np.min(diag) == 0.0
                      or np.min(diag) < 1e-14 * np.max(diag)):
        return float("inf")
    # W = S2 R1^{-1} via a triangular solve (R1^T W^T = S2^T).
    w = scipy.linalg.solve_triangular(r1, s2.T, trans="T", lower=False).T
    sigma = np.linalg.svd(w, compute_uv=False)
    return float(max(abs(sigma[0] - 1.0), abs(1.0 - sigma[-1])))
