"""Random-sketching subsystem for randomized block orthogonalization.

The paper's Section IX names random sketching as the way past the
CholQR stability cliff; this package makes it a first-class library
layer the distla engine, the ortho schemes, the s-step solver, and the
benchmarks all draw on:

* :mod:`repro.sketch.operators` — sparse-sign/CountSketch, Gaussian and
  SRHT subspace embeddings behind one :class:`SketchOperator` ABC, with
  deterministic seeding and embedding-size heuristics;
* :mod:`repro.sketch.distributed` — shard-local application through the
  ``loop``/``batched`` kernel engines (one allreduce, engine-identical
  results and charged costs);
* :mod:`repro.sketch.precondition` — sketch-QR whitening factors, the
  building block of randomized CholQR and the sketched inter-block
  schemes in :mod:`repro.ortho.randomized`.
"""

from repro.sketch.operators import (
    OPERATOR_FAMILIES,
    FastSRHTSketch,
    GaussianSketch,
    SRHTSketch,
    SketchOperator,
    SparseSignSketch,
    canonical_family,
    embedding_dim,
    make_operator,
    sketch_rows,
)
from repro.sketch.precondition import (
    DEFAULT_RANK_TOL,
    right_apply_inverse,
    sketch_qr,
)
from repro.sketch.distributed import (
    sketch_multivector,
    sketch_multivector_batched,
)
from repro.sketch.quality import leave_one_out_distortion
from repro.sketch.seeding import derive_seed

__all__ = [
    "SketchOperator",
    "SparseSignSketch",
    "GaussianSketch",
    "SRHTSketch",
    "FastSRHTSketch",
    "OPERATOR_FAMILIES",
    "canonical_family",
    "embedding_dim",
    "sketch_rows",
    "make_operator",
    "sketch_multivector",
    "sketch_multivector_batched",
    "sketch_qr",
    "right_apply_inverse",
    "DEFAULT_RANK_TOL",
    "derive_seed",
    "leave_one_out_distortion",
]
