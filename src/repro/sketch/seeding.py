"""Deterministic seed derivation for sketching operators.

Randomized orthogonalization is only reproducible if every sketching
operator can be reconstructed from *declarative* context — which solve
cycle, which panel, which operator family — instead of hidden mutable
state (the per-instance call counter this module replaced).  A seed is
therefore always *derived*: a stable 63-bit hash of the base seed plus
any number of labels, so

* the same ``(seed, context)`` always draws the same operator, across
  processes, platforms, and repeated solves with a reused kernel object;
* distinct contexts (another cycle, another panel) decorrelate — the
  operator must be independent of the data it sketches, and re-using one
  embedding across the adaptively-generated panels of a Krylov solve
  would quietly void the w.h.p. embedding guarantee.
"""

from __future__ import annotations

import hashlib

#: Python ints are unbounded but NumPy seeds are happiest below 2**63.
_SEED_BITS = 63


def derive_seed(base: int, *context: int | str) -> int:
    """Stable 63-bit seed from a base seed and arbitrary context labels.

    ``context`` entries may be ints (cycle and panel indices, operator
    sizes) or strings (operator family, call-site tags).  The derivation
    is a blake2b hash of the canonical encoding, so it is insensitive to
    Python's per-process ``hash()`` randomization and identical on every
    platform.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(base).to_bytes(16, "little", signed=True))
    for part in context:
        if isinstance(part, str):
            data = part.encode("utf-8")
            h.update(b"s" + len(data).to_bytes(4, "little") + data)
        else:
            h.update(b"i" + int(part).to_bytes(16, "little", signed=True))
    return int.from_bytes(h.digest(), "little") & ((1 << _SEED_BITS) - 1)
