"""Distributed sketch application over :class:`DistMultiVector` shards.

``S @ V`` decomposes over a row partition as the sum of shard-local
products ``S[:, rows_r] @ V_r`` (see :mod:`repro.sketch.operators`), so
the distributed application is: every rank sketches its own shard with
no communication, then the ``(m_rows, k)`` partials meet in ONE
allreduce — the same single-synchronization pattern as a block dot
product, and the reason randomized orthogonalization fits the paper's
communication-avoiding setting.

Execution goes through the :mod:`repro.distla.engine` kernel engines:
the ``loop`` path applies the operator shard by shard, the ``batched``
path hands the contiguous ``(ranks, rows, k)`` stack of a uniform
partition to the operator's batched kernel and reduces with the stacked
(vectorized, bit-identical) tree.  Both paths charge identical modeled
costs, so artifacts never depend on the engine.
"""

from __future__ import annotations

import numpy as np

from repro.distla import engine as dengine
from repro.distla.multivector import DistMultiVector
from repro.exceptions import ShapeError
from repro.sketch.operators import SketchOperator


def sketch_multivector(v: DistMultiVector, op: SketchOperator,
                       engine: "dengine.KernelEngine | str | None" = None
                       ) -> np.ndarray:
    """Global sketch ``S @ V`` — shard-local partials + one allreduce.

    Returns the ``(m_rows, k)`` sketch, replicated on every rank like
    any other reduction result.  ``engine`` resolves exactly like the
    costed BLAS layer: explicit argument, then the communicator binding,
    then the process default.
    """
    if op.n_rows != v.n_global:
        raise ShapeError(
            f"operator sketches {op.n_rows} rows but multivector has "
            f"{v.n_global}")
    return dengine.resolve(engine, v.comm).sketch_apply(v, op)


def sketch_multivector_batched(vs: list[DistMultiVector], op: SketchOperator,
                               engine: "dengine.KernelEngine | str | None"
                               = None) -> list[np.ndarray]:
    """:func:`sketch_multivector` over several multivectors as ONE
    charged pass.

    Values are bit-identical to per-multivector calls (each keeps its
    own partials and reduction tree); the modeled charges fuse under
    :class:`repro.parallel.batch.BatchCharges` — one sketch-apply kernel
    launch across the stacked shards and one allreduce whose payload
    carries every member's ``(m_rows, k)`` partial sum.
    """
    if not vs:
        return []
    comm = vs[0].comm
    if any(v.comm is not comm for v in vs):
        raise ShapeError("batched sketches must share a communicator")
    from repro.parallel.batch import BatchCharges
    out: list[np.ndarray] = []
    with BatchCharges(comm) as batch:
        with batch.group():
            for v in vs:
                with batch.member():
                    out.append(sketch_multivector(v, op, engine=engine))
    return out
