"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
``except ReproError`` at API boundaries.  Numerical breakdowns carry enough
context (condition-number estimates, offending panel index) for a solver
driver to react — e.g. retry with a shifted Cholesky factorization or a
smaller step size, which is exactly the recovery path the paper motivates
(Section II, "Shifted Cholesky QR").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An API was called with inconsistent or out-of-range parameters."""


class ShapeError(ConfigurationError):
    """Operands have incompatible shapes or distributions."""


class PartitionError(ConfigurationError):
    """A row partition is malformed (non-monotone offsets, empty ranks...)."""


class NumericalError(ReproError):
    """Base class for runtime numerical failures."""


class CholeskyBreakdownError(NumericalError):
    """Cholesky factorization of a Gram matrix failed.

    Per Section II of the paper this happens when the condition number of
    the input block exceeds ~eps^{-1/2}; condition (1) of the paper is then
    violated.  ``gram_diag_min`` records the most negative pivot observed
    (useful to decide a shift for shifted CholQR).
    """

    def __init__(self, message: str, *, gram_diag_min: float | None = None,
                 panel_index: int | None = None) -> None:
        super().__init__(message)
        self.gram_diag_min = gram_diag_min
        self.panel_index = panel_index


class RankDeficiencyError(NumericalError):
    """Input block is numerically rank deficient (kappa * n * eps >= 1)."""


class ConvergenceError(NumericalError):
    """An iterative solver failed to reach the requested tolerance.

    Carries the partially-converged state so callers can inspect or restart.
    """

    def __init__(self, message: str, *, result=None) -> None:
        super().__init__(message)
        self.result = result


class CommunicatorError(ReproError):
    """Misuse of the simulated communicator (rank mismatch, shard count...)."""
