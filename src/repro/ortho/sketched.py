"""Randomized (sketched) CholQR — the paper's future-work direction.

Section IX: "random-sketching techniques have been recently integrated
into CholQR [3].  We are investigating the potential of randomized CholQR
to improve the stability of our block orthogonalization process."

Algorithm (Balabanov [3], CountSketch flavour):

1. ``SV = S @ V`` with a sparse sketching operator of ``c * k`` rows —
   one streaming pass over V plus one (small) reduction.
2. QR of the sketch on the host: ``SV = Q_s R_s``.  With an
   eps-embedding sketch, ``kappa(V R_s^{-1}) = O(1)`` w.h.p. even for
   kappa(V) near eps^{-1}.
3. Precondition ``V <- V R_s^{-1}`` (TRSM) and finish with one plain
   CholQR pass.

Total: 2 synchronizations, BLAS-3 local work, stability far beyond the
CholQR ``eps**-0.5`` cliff — tested in ``tests/ortho/test_sketched.py``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ortho.backend import OrthoBackend
from repro.ortho.base import IntraBlockQR
from repro.ortho.cholqr import CholQR


class SketchedCholQR(IntraBlockQR):
    """Randomized preconditioning + CholQR.

    Parameters
    ----------
    oversample:
        Sketch rows per input column (c >= 2 recommended; default 4).
    seed:
        Base seed for the sketching operator; a per-call counter is mixed
        in so repeated panels draw fresh sketches.
    reorth:
        Finish with a second CholQR pass (default True: O(eps)
        orthogonality, like CholQR2).
    """

    name = "sketched_cholqr"

    def __init__(self, oversample: int = 4, seed: int = 0x5EED,
                 reorth: bool = True) -> None:
        if oversample < 2:
            raise ConfigurationError(
                f"oversample must be >= 2, got {oversample}")
        self.oversample = oversample
        self.seed = seed
        self.reorth = reorth
        self._calls = 0

    def factor(self, backend: OrthoBackend, v) -> np.ndarray:
        k = backend.n_cols(v)
        n = backend.n_rows_global(v)
        m_rows = min(max(self.oversample * k, k + 8), max(n, k + 8))
        self._calls += 1
        sv = backend.sketch_dot(v, m_rows, self.seed + self._calls)  # sync
        # Host QR of the small sketch; R_s preconditions V.
        _, r_s = np.linalg.qr(sv)
        signs = np.sign(np.diag(r_s))
        signs[signs == 0] = 1.0
        r_s = r_s * signs[:, np.newaxis]
        backend.host_flops(2.0 * m_rows * k * k)
        # Guard a numerically singular sketch (input rank-deficient).
        diag = np.abs(np.diag(r_s))
        if np.min(diag) <= np.finfo(np.float64).eps * np.max(diag) * m_rows:
            raise ConfigurationError(
                "sketch is numerically singular: input panel rank-deficient")
        backend.trsm(v, r_s)
        t1 = CholQR().factor(backend, v)                              # sync
        r = t1 @ r_s
        if self.reorth:
            t2 = CholQR().factor(backend, v)                          # sync
            r = t2 @ r
        return r
