"""Randomized (sketched) CholQR — the paper's future-work direction.

Section IX: "random-sketching techniques have been recently integrated
into CholQR [3].  We are investigating the potential of randomized CholQR
to improve the stability of our block orthogonalization process."

Algorithm (Balabanov [3], sparse-sketch flavour):

1. ``SV = S @ V`` with a sketching operator of ``c * k`` rows from
   :mod:`repro.sketch` — one streaming pass over V plus one (small)
   reduction.
2. QR of the sketch on the host: ``SV = Q_s R_s``.  With an
   eps-embedding sketch, ``kappa(V R_s^{-1}) = O(1)`` w.h.p. even for
   kappa(V) near eps^{-1}.
3. Precondition ``V <- V R_s^{-1}`` (TRSM) and finish with one plain
   CholQR pass.

Total: 2 synchronizations, BLAS-3 local work, stability far beyond the
CholQR ``eps**-0.5`` cliff — tested in ``tests/ortho/test_sketched.py``.

Reproducibility: the operator is derived deterministically from the
``(seed, cycle, panel)`` context passed to :meth:`SketchedCholQR.factor`
(no hidden call counter), so repeated solves with a reused kernel
instance draw identical sketches while distinct cycles/panels stay
decorrelated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ortho.backend import OrthoBackend
from repro.ortho.base import IntraBlockQR
from repro.ortho.cholqr import CholQR
from repro.sketch import (
    canonical_family,
    derive_seed,
    make_operator,
    sketch_qr,
    sketch_rows,
)


class SketchedCholQR(IntraBlockQR):
    """Randomized preconditioning + CholQR.

    Parameters
    ----------
    oversample:
        Sketch rows per input column (c >= 2 recommended; default 4).
    seed:
        Base seed; the actual operator seed is derived per
        ``(cycle, panel)`` so sketches are reproducible *and* fresh
        across panels.
    reorth:
        Finish with a second CholQR pass (default True: O(eps)
        orthogonality, like CholQR2).
    operator:
        Sketch family from :data:`repro.sketch.OPERATOR_FAMILIES`
        (default ``"sparse"``, i.e. CountSketch).
    """

    name = "sketched_cholqr"

    def __init__(self, oversample: int = 4, seed: int = 0x5EED,
                 reorth: bool = True, operator: str = "sparse") -> None:
        if oversample < 2:
            raise ConfigurationError(
                f"oversample must be >= 2, got {oversample}")
        self.oversample = oversample
        self.seed = seed
        self.reorth = reorth
        self.operator_family = canonical_family(operator)

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        k = backend.n_cols(v)
        n = backend.n_rows_global(v)
        m_rows = sketch_rows(k, n, family=self.operator_family,
                             oversample=self.oversample)
        op = make_operator(
            self.operator_family, n, m_rows,
            derive_seed(self.seed, "sketched_cholqr", cycle, panel, k))
        sv = backend.sketch(v, op)                                    # sync
        # Host QR of the small sketch; R_s preconditions V.  A
        # numerically singular sketch (rank-deficient input) raises.
        r_s, _ = sketch_qr(sv, rank_tol=np.finfo(np.float64).eps * m_rows,
                           on_deficient="raise")
        backend.host_flops(2.0 * m_rows * k * k)
        backend.trsm(v, r_s)
        t1 = CholQR().factor(backend, v)                              # sync
        r = t1 @ r_s
        if self.reorth:
            t2 = CholQR().factor(backend, v)                          # sync
            r = t2 @ r
        return r
