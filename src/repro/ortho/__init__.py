"""Block orthogonalization kernels — the paper's core subject.

Intra-block factorizations (Section II / Fig. 3):
:class:`HouseholderQR`, :class:`TSQRFactor`, :class:`CholQR`,
:class:`CholQR2`, :class:`ShiftedCholQR`, :class:`MixedPrecisionCholQR`,
:class:`SketchedCholQR`.

Inter-block schemes (Sections IV and V):
:class:`BCGS2Scheme` (Fig. 2), :class:`BCGSPIPScheme` /
:class:`BCGSPIP2Scheme` (Fig. 4), and the paper's contribution
:class:`TwoStageScheme` (Fig. 5).

All schemes run against either a plain-NumPy backend (for the Section VI
numerics, MATLAB-equivalent) or the distributed simulated backend (for
the Section VIII performance studies) — one code path, two substrates.
"""

from repro.ortho.backend import DistBackend, NumpyBackend, OrthoBackend
from repro.ortho.base import (
    BlockDriver,
    BlockOrthoScheme,
    IntraBlockQR,
    OrthoObserver,
    PanelInfo,
)
from repro.ortho.cholqr import (
    CholQR,
    CholQR2,
    MixedPrecisionCholQR,
    ShiftedCholQR,
    cholesky_factor,
)
from repro.ortho.hhqr import HouseholderQR
from repro.ortho.tsqr import TSQRFactor
from repro.ortho.sketched import SketchedCholQR
from repro.ortho.cgs import cgs2_append, mgs_append
from repro.ortho.low_sync import DCGS2Orthogonalizer, dcgs2_factor
from repro.ortho.bcgs import BCGS2Scheme, bcgs_project
from repro.ortho.bcgs_pip import (
    BCGSPIP2Scheme,
    BCGSPIPScheme,
    bcgs_pip_panel,
)
from repro.ortho.two_stage import TwoStageScheme
from repro.ortho.randomized import RBCGSScheme, SketchedTwoStageScheme
from repro.precision.kernels import (
    MixedPrecisionTwoStageScheme,
    mixed_precision_panel,
)
from repro.ortho.registry import (
    get_intra_qr,
    get_scheme,
    list_intra_qr,
    list_schemes,
)
from repro.ortho.analysis import (
    c1_bound,
    condition_number,
    orthogonality_error,
    representation_error,
)

__all__ = [
    "OrthoBackend",
    "NumpyBackend",
    "DistBackend",
    "IntraBlockQR",
    "BlockOrthoScheme",
    "BlockDriver",
    "OrthoObserver",
    "PanelInfo",
    "CholQR",
    "CholQR2",
    "ShiftedCholQR",
    "MixedPrecisionCholQR",
    "SketchedCholQR",
    "cholesky_factor",
    "HouseholderQR",
    "TSQRFactor",
    "cgs2_append",
    "mgs_append",
    "DCGS2Orthogonalizer",
    "dcgs2_factor",
    "BCGS2Scheme",
    "bcgs_project",
    "BCGSPIPScheme",
    "BCGSPIP2Scheme",
    "bcgs_pip_panel",
    "TwoStageScheme",
    "RBCGSScheme",
    "SketchedTwoStageScheme",
    "MixedPrecisionTwoStageScheme",
    "mixed_precision_panel",
    "get_intra_qr",
    "get_scheme",
    "list_intra_qr",
    "list_schemes",
    "orthogonality_error",
    "condition_number",
    "representation_error",
    "c1_bound",
]
