"""Low-synchronization Gram-Schmidt (the paper's ref. [25]).

The paper's related work cites "low-synchronous variants of block
orthogonalization algorithms [7], [25]" — one global reduction per new
column instead of CGS2's three.  This module implements the
delayed-reorthogonalization DCGS-2 of Swirydowicz, Langou, Ananthan,
Yang, Thomas (2020) / Yamazaki et al. [25] as a stateful column
orthogonalizer.

Invariant at the start of step ``j`` (j >= 2): columns ``0..j-2`` are
settled (orthonormal), column ``j-1`` is *pending* — projected once,
unnormalized, its reorthogonalization deferred.  Step ``j`` issues ONE
fused reduction

    [ Q_{0:j-2}, q_pend ]^T  [ q_pend, w_j ]

from which it (a) applies the delayed second Gram-Schmidt pass to the
pending column and normalizes it via the Pythagorean identity
``alpha^2 = q^T q - z^T z``, and (b) first-pass-projects the new vector
``w_j`` against all settled columns — all remaining work is local.
Total: ~1 synchronization per column (k + 1 for k columns) versus 3k for
CGS2, with the same O(eps) orthogonality for numerically full-rank input
(verified in ``tests/ortho/test_low_sync.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError, NumericalError
from repro.ortho.backend import OrthoBackend


class DCGS2Orthogonalizer:
    """Stateful one-reduce-per-column Gram-Schmidt over a shared basis.

    Usage::

        ortho = DCGS2Orthogonalizer()
        beta = ortho.start(backend, basis)   # settles column 0
        for j in range(1, k):
            # caller fills basis column j with the next raw vector, then:
            r = ortho.push(j)                # finalizes column j-1 (or None)
        r_last = ortho.flush()               # finalizes the last column

    ``push(j)``/``flush()`` return the final R column of the column they
    settle: coefficients of the *raw* vector over the settled orthonormal
    columns, diagonal entry last.
    """

    def __init__(self) -> None:
        self.backend: OrthoBackend | None = None
        self.basis = None
        self._pending: int | None = None      # index of the pending column
        self._pending_r: np.ndarray | None = None  # its first-pass coeffs
        self._posted = None                   # post_push handle in flight
        self._posted_for: int | None = None   # the push index it belongs to
        #: After each settle: representation [z...; alpha] of the settled
        #: column's *pre-settle (pending) content* over the final basis —
        #: what pipelined GMRES needs for its Hessenberg recovery, since
        #: the operator consumed the column in exactly that state.
        self.settled_content_rep: np.ndarray | None = None

    # ------------------------------------------------------------------
    def start(self, backend: OrthoBackend, basis) -> float:
        """Settle column 0 by exact normalization (one reduction)."""
        self.backend = backend
        self.basis = basis
        col = backend.view(basis, slice(0, 1))
        beta = float(backend.norms(col)[0])                      # sync
        if beta == 0.0:
            raise NumericalError("DCGS2 seed column has zero norm")
        backend.scale_cols(col, np.array([1.0 / beta]))
        self._pending = None
        self._pending_r = None
        return beta

    # ------------------------------------------------------------------
    def post_push(self, j: int) -> bool:
        """Post the settle-side half of ``push(j)``'s fused reduction.

        The pairs ``(Q_{0:j-2}, q_pend)`` and ``(q_pend, q_pend)`` read
        only columns that are final when ``push(j-1)`` returns — NOT the
        raw column ``j`` — so the caller may post them *before* the
        operator application that fills column ``j`` and let the
        collective overlap with it (pipelined GMRES's comm_overlap
        path).  ``push(j)`` then waits the posted half and issues only
        the remaining ``w``-side pairs blocking; per-pair reduction
        trees are independent, so every settled value is bit-identical
        to the unposted path.

        Returns True when something was posted; ``push(1)`` has nothing
        postable (its only pair involves the yet-unwritten new column).
        """
        if self.backend is None:
            raise ConfigurationError("call start() before post_push()")
        expected = 1 if self._pending is None else self._pending + 1
        if j != expected:
            raise ConfigurationError(
                f"post_push({j}) out of order; expected push({expected})")
        if self._posted is not None:
            raise ConfigurationError(
                f"push({self._posted_for}) partial already posted")
        if self._pending is None:
            return False
        settled = self._pending
        qm = self.backend.view(self.basis, slice(0, settled))
        qp = self.backend.view(self.basis, slice(settled, settled + 1))
        self._posted = self.backend.post_fused_dots([(qm, qp), (qp, qp)])
        self._posted_for = j
        return True

    def push(self, j: int) -> np.ndarray | None:
        """Process raw column ``j``; settle column ``j-1`` if pending.

        One fused reduction (two when :meth:`post_push` split off the
        settle-side half).  Returns the settled column's R column, or
        ``None`` on the first push (column 0 settled in :meth:`start`).
        """
        backend, basis = self.backend, self.basis
        if backend is None:
            raise ConfigurationError("call start() before push()")
        expected = 1 if self._pending is None else self._pending + 1
        if j != expected:
            raise ConfigurationError(
                f"push({j}) out of order; expected push({expected})")
        w = backend.view(basis, slice(j, j + 1))
        if self._pending is None:
            # First push: only the first-pass projection of w exists.
            q0 = backend.view(basis, slice(0, 1))
            (pw,) = backend.fused_dots([(q0, w)])                # sync
            backend.update(w, q0, pw)
            self._pending = 1
            self._pending_r = pw[:, 0].copy()
            return None
        settled = self._pending  # count of settled columns = pending index
        qm = backend.view(basis, slice(0, settled))
        qp = backend.view(basis, slice(settled, settled + 1))
        if self._posted is not None:
            # overlapped path: the settle-side pairs were posted before
            # the operator application; only the w pairs sync here
            z_m, qq_m = backend.wait_fused_dots(self._posted)    # wait
            self._posted = None
            self._posted_for = None
            pw_m, qw_m = backend.fused_dots([(qm, w), (qp, w)])  # sync
        else:
            z_m, pw_m, qq_m, qw_m = backend.fused_dots(
                [(qm, qp), (qm, w), (qp, qp), (qp, w)])          # sync
        z = z_m[:, 0]
        pw = pw_m[:, 0]
        qq = float(qq_m[0, 0])
        qw = float(qw_m[0, 0])
        # (a) delayed second pass + Pythagorean normalization of q_pend
        alpha_sq = qq - float(z @ z)
        # R column of the raw vector that lived in the settled column:
        # first-pass coeffs + delayed correction, diagonal alpha.
        r = np.zeros(settled + 1)
        r[: self._pending_r.shape[0]] = self._pending_r
        r[: z.shape[0]] += z
        self._check_independent(alpha_sq, r, settled)
        alpha = math.sqrt(alpha_sq)
        r[settled] = alpha
        content = np.zeros(settled + 1)
        content[: z.shape[0]] = z
        content[settled] = alpha
        self.settled_content_rep = content
        backend.update(qp, qm, z[:, np.newaxis])
        backend.scale_cols(qp, np.array([1.0 / alpha]))
        # (b) first-pass projection of w against ALL settled columns;
        # the coefficient on the just-settled column follows from the
        # pre-correction products: q_new^T w = (qw - z.pw) / alpha.
        beta = (qw - float(z @ pw)) / alpha
        backend.update(w, qm, pw[:, np.newaxis])
        backend.update(w, qp, np.array([[beta]]))
        self._pending = j
        self._pending_r = np.concatenate([pw, [beta]])
        return r

    @staticmethod
    def _check_independent(alpha_sq: float, r_prefix: np.ndarray,
                           column: int) -> None:
        """Breakdown when the surviving component is at roundoff level
        *relative to the raw column's norm* — recovered via Pythagoras
        from the accumulated R coefficients."""
        orig_sq = max(alpha_sq, 0.0) + float(r_prefix @ r_prefix)
        eps = float(np.finfo(np.float64).eps)
        if alpha_sq <= 1.0e4 * eps * eps * orig_sq:
            raise NumericalError(
                f"DCGS2 breakdown: column {column} numerically dependent")

    # ------------------------------------------------------------------
    def flush(self) -> np.ndarray:
        """Settle the last pending column (one extra reduction)."""
        backend, basis = self.backend, self.basis
        if self._pending is None:
            raise ConfigurationError("nothing to flush")
        settled = self._pending
        qm = backend.view(basis, slice(0, settled))
        qp = backend.view(basis, slice(settled, settled + 1))
        if self._posted is not None:
            # a posted partial for an aborted push covers exactly these
            # pairs (the settled columns have not changed since)
            z_m, g = backend.wait_fused_dots(self._posted)       # wait
            self._posted = None
            self._posted_for = None
        else:
            z_m, g = backend.fused_dots([(qm, qp), (qp, qp)])    # sync
        z = z_m[:, 0]
        alpha_sq = float(g[0, 0]) - float(z @ z)
        r = np.zeros(settled + 1)
        r[: self._pending_r.shape[0]] = self._pending_r
        r[: z.shape[0]] += z
        self._check_independent(alpha_sq, r, settled)
        alpha = math.sqrt(alpha_sq)
        r[settled] = alpha
        content = np.zeros(settled + 1)
        content[: z.shape[0]] = z
        content[settled] = alpha
        self.settled_content_rep = content
        backend.update(qp, qm, z[:, np.newaxis])
        backend.scale_cols(qp, np.array([1.0 / alpha]))
        self._pending = None
        self._pending_r = None
        return r


def dcgs2_factor(backend: OrthoBackend, v) -> np.ndarray:
    """Orthonormalize all columns of ``v`` in place with DCGS-2.

    Returns the upper-triangular R with ``Q R = V`` — a convenience
    driver (and the test oracle) around :class:`DCGS2Orthogonalizer`.
    """
    k = backend.n_cols(v)
    r = np.zeros((k, k))
    ortho = DCGS2Orthogonalizer()
    r[0, 0] = ortho.start(backend, v)
    for j in range(1, k):
        col = ortho.push(j)
        if col is not None:
            r[: col.shape[0], j - 1] = col
    last = ortho.flush()
    r[: last.shape[0], k - 1] = last
    return r
