"""BCGS with Pythagorean inner product — BCGS-PIP / BCGS-PIP2 (Fig. 4).

BCGS-PIP fuses the inter-block projection ``P = Q.T V`` and the panel
Gram matrix ``G = V.T V`` into ONE all-reduce, then forms the panel's
Cholesky factor from the block Pythagorean identity

    (V - Q P).T (V - Q P)  =  G - P.T P      (when Q.T Q = I),

so the whole panel is orthonormalized with a single synchronization.
Applying it twice (BCGS-PIP2) restores O(eps) orthogonality under
condition (5) — Theorem IV.2 — with two synchronizations per s steps
versus five for BCGS2+CholQR2, and 1.5x less intra-block flops (one
Gram+Chol+TRSM per pass instead of CholQR2's two plus a separate BCGS).

When the Pythagorean Gram update loses positive definiteness (condition
(5) violated), the Cholesky factorization breaks down; the ``breakdown``
policy either raises (default — the caller decides) or applies a shifted
factorization in the spirit of shifted CholQR [11].
"""

from __future__ import annotations

import numpy as np

from repro.config import EPS
from repro.exceptions import CholeskyBreakdownError
from repro.ortho.backend import OrthoBackend
from repro.ortho.base import BlockOrthoScheme
from repro.ortho.cholqr import cholesky_factor


def _pythagorean_factor(g: np.ndarray, p: np.ndarray | None, *,
                        breakdown: str, panel_index: int) -> np.ndarray:
    """Cholesky factor of ``G - P.T P`` with the configured recovery."""
    s = g if p is None else g - p.T @ p
    try:
        return cholesky_factor(s, panel_index=panel_index)
    except CholeskyBreakdownError:
        if breakdown != "shift":
            raise
    # Shifted recovery: sigma scaled to the Gram's norm, escalating.
    k = s.shape[0]
    norm_s = float(np.linalg.norm(s, 2))
    sigma = max(11.0 * k * (k + 1) * EPS * norm_s, EPS * norm_s)
    for attempt in range(6):
        try:
            return cholesky_factor(s, shift=sigma * 10.0 ** attempt,
                                   panel_index=panel_index)
        except CholeskyBreakdownError:
            continue
    raise CholeskyBreakdownError(
        f"shifted Pythagorean factorization failed for panel {panel_index}",
        panel_index=panel_index)


def bcgs_pip_panel(backend: OrthoBackend, basis, prefix_cols: int,
                   lo: int, hi: int, *, breakdown: str = "raise",
                   panel_index: int = 0
                   ) -> tuple[np.ndarray | None, np.ndarray]:
    """One BCGS-PIP pass (Fig. 4a) over basis columns ``[lo, hi)``.

    The panel is orthogonalized against columns ``[0, prefix_cols)``
    (normally ``prefix_cols == lo``) and orthonormalized internally —
    all with a single synchronization.  Returns ``(P, R_jj)`` where ``P``
    is ``None`` for an empty prefix (the pass degenerates to CholQR).
    """
    v = backend.view(basis, slice(lo, hi))
    c = hi - lo
    if prefix_cols == 0:
        g = backend.fused_dots([(v, v)])[0]                    # 1 sync
        backend.host_flops(c ** 3 / 3.0)
        r_jj = _pythagorean_factor(g, None, breakdown=breakdown,
                                   panel_index=panel_index)
        backend.trsm(v, r_jj)
        return None, r_jj
    q = backend.view(basis, slice(0, prefix_cols))
    p, g = backend.fused_dots([(q, v), (v, v)])                # 1 sync
    backend.host_flops(2.0 * prefix_cols * c * c + c ** 3 / 3.0)
    r_jj = _pythagorean_factor(g, p, breakdown=breakdown,
                               panel_index=panel_index)
    backend.update(v, q, p)
    backend.trsm(v, r_jj)
    return p, r_jj


class BCGSPIPScheme(BlockOrthoScheme):
    """Single-pass BCGS-PIP: 1 sync per panel, error bounded by (6).

    Alone this only *pre-processes* (orthogonality error grows with
    kappa^2 of the input); it is exposed mainly for the Section VI
    numerics and as the building block of the two-stage scheme.
    """

    name = "bcgs-pip"
    finality = "panel"

    def __init__(self, breakdown: str = "raise") -> None:
        super().__init__()
        self.breakdown = breakdown

    def panel_arrived(self, lo: int, hi: int) -> bool:
        self._check_panel(lo, hi)
        p, r_jj = bcgs_pip_panel(self.backend, self.basis, lo, lo, hi,
                                 breakdown=self.breakdown, panel_index=lo)
        if p is not None:
            self.r[:lo, lo:hi] = p
        self.r[lo:hi, lo:hi] = r_jj
        self._pushed_cols = hi
        self._final_cols = hi
        self._emit("first", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        return True


class BCGSPIP2Scheme(BlockOrthoScheme):
    """BCGS-PIP applied twice (Fig. 4b): O(eps) error, 2 syncs per panel.

    The paper's new one-stage variant ("s-step + BCGS-PIP2" in
    Tables III/IV).
    """

    name = "bcgs-pip2"
    finality = "panel"

    def __init__(self, breakdown: str = "raise") -> None:
        super().__init__()
        self.breakdown = breakdown

    def panel_arrived(self, lo: int, hi: int) -> bool:
        self._check_panel(lo, hi)
        backend = self.backend
        c = hi - lo
        p1, r1 = bcgs_pip_panel(backend, self.basis, lo, lo, hi,
                                breakdown=self.breakdown, panel_index=lo)
        self._emit("first", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        t1, t2 = bcgs_pip_panel(backend, self.basis, lo, lo, hi,
                                breakdown=self.breakdown, panel_index=lo)
        # Fig. 4b lines 5-6: R_prefix = T1 R1 + P1 ; R_jj = T2 R1.
        if p1 is not None:
            backend.host_flops(2.0 * lo * c * c)
            self.r[:lo, lo:hi] = t1 @ r1 + p1
        self.r[lo:hi, lo:hi] = t2 @ r1
        backend.host_flops(2.0 * c ** 3)
        self._pushed_cols = hi
        self._final_cols = hi
        self._emit("second", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        return True
