"""TSQR as an intra-block factorization (Demmel et al. [9]).

The communication-optimal tall-skinny QR: local Householder QR per rank,
binary-tree combination of the small R factors (log2 P small messages),
exact Q reconstruction on the way down.  Unconditionally stable like
HHQR, with far less latency — but its local work is still Householder
panels (BLAS-1/2 heavy), which is why the paper's Section II notes it
"may obtain much lower performance than BLAS-3 based CholQR" on GPUs.
"""

from __future__ import annotations

import numpy as np

from repro.ortho.backend import OrthoBackend
from repro.ortho.base import IntraBlockQR


class TSQRFactor(IntraBlockQR):
    """Binary-tree tall-skinny QR."""

    name = "tsqr"

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        return backend.tsqr(v)
