"""Column-wise Gram-Schmidt for standard GMRES (the paper's baseline).

Standard GMRES orthogonalizes one new Krylov vector per iteration;
the paper's baseline configuration is "GMRES + CGS2" (Table III).
:func:`cgs2_append` performs classical Gram-Schmidt with
reorthogonalization on a single appended column: 2 projection
synchronizations + 1 norm synchronization per iteration, BLAS-2 locality
— which is why its orthogonalization cost dominates at scale (Fig. 10's
baseline column).

:func:`mgs_append` (modified Gram-Schmidt) is provided for completeness
and tests; its j synchronizations per column make it even less scalable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NumericalError
from repro.ortho.backend import OrthoBackend


def normalize_column(backend: OrthoBackend, basis, j: int) -> float:
    """Normalize basis column ``j`` in place; returns the norm (1 sync)."""
    col = backend.view(basis, slice(j, j + 1))
    beta = float(backend.norms(col)[0])
    if beta == 0.0:
        raise NumericalError(f"column {j} has zero norm")
    backend.scale_cols(col, np.array([1.0 / beta]))
    return beta


def cgs2_append(backend: OrthoBackend, basis, j: int) -> np.ndarray:
    """Orthonormalize column ``j`` against columns ``0..j-1`` with CGS2.

    Returns the Arnoldi coefficient column ``h`` of length ``j + 1``:
    ``h[:j]`` are the (combined two-pass) projection coefficients and
    ``h[j]`` the post-projection norm.  Column ``j`` is overwritten with
    the normalized orthogonal vector.

    Cost: 3 synchronizations (projection, re-projection, norm).
    """
    if j == 0:
        beta = normalize_column(backend, basis, 0)
        return np.array([beta])
    q = backend.view(basis, slice(0, j))
    w = backend.view(basis, slice(j, j + 1))
    c1 = backend.dot(q, w)                  # sync 1
    backend.update(w, q, c1)
    c2 = backend.dot(q, w)                  # sync 2
    backend.update(w, q, c2)
    beta = float(backend.norms(w)[0])       # sync 3
    if beta == 0.0:
        raise NumericalError(
            f"breakdown in CGS2: column {j} lies in span of previous columns")
    backend.scale_cols(w, np.array([1.0 / beta]))
    h = (c1 + c2)[:, 0]
    return np.append(h, beta)


def mgs_append(backend: OrthoBackend, basis, j: int) -> np.ndarray:
    """Modified Gram-Schmidt append: ``j`` + 1 synchronizations."""
    if j == 0:
        beta = normalize_column(backend, basis, 0)
        return np.array([beta])
    w = backend.view(basis, slice(j, j + 1))
    h = np.zeros(j + 1)
    for i in range(j):
        qi = backend.view(basis, slice(i, i + 1))
        c = backend.dot(qi, w)              # sync per column
        backend.update(w, qi, c)
        h[i] = float(c[0, 0])
    beta = float(backend.norms(w)[0])       # final norm sync
    if beta == 0.0:
        raise NumericalError(
            f"breakdown in MGS: column {j} lies in span of previous columns")
    backend.scale_cols(w, np.array([1.0 / beta]))
    h[j] = beta
    return h
