"""Backends: one algorithm code path over two substrates.

Every orthogonalization algorithm in :mod:`repro.ortho` is written against
the small primitive set of :class:`OrthoBackend`:

* :class:`NumpyBackend` — plain ndarrays, no cost accounting.  This is the
  "MATLAB" substrate for the paper's Section VI numerics; a fused dot is
  simply several GEMMs.
* :class:`DistBackend` — :class:`~repro.distla.multivector.DistMultiVector`
  shards with modeled costs and MPI-faithful reduction order; a fused dot
  is one collective (the BCGS-PIP single-reduce property).

Because both backends share FP64 BLAS semantics, a scheme validated for
stability on the NumPy backend is *the same algorithm* the performance
harness times on the simulated cluster.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
import scipy.linalg

from repro import config
from repro.distla import blas as dblas
from repro.distla import engine as dengine
from repro.distla.multivector import DistMultiVector
from repro.dd.linalg import gram_dd, matmul_dd
from repro.exceptions import ShapeError
from repro.parallel.communicator import SimComm
from repro.sketch.distributed import sketch_multivector
from repro.sketch.operators import SparseSignSketch


class OrthoBackend(ABC):
    """Primitive operations the block-orthogonalization kernels need.

    Handles (the ``mv`` arguments) are backend-specific: ndarrays for
    :class:`NumpyBackend`, multivectors for :class:`DistBackend`.  Column
    views must alias the parent storage — algorithms update panels of a
    shared basis in place.
    """

    # -- structure ------------------------------------------------------
    @abstractmethod
    def n_cols(self, mv) -> int: ...

    @abstractmethod
    def n_rows_global(self, mv) -> int: ...

    @abstractmethod
    def view(self, mv, cols: slice): ...

    @abstractmethod
    def copy(self, mv): ...

    # -- reductions (each call = one global synchronization) -------------
    @abstractmethod
    def dot(self, x, y) -> np.ndarray:
        """``X.T @ Y`` — one synchronization."""

    @abstractmethod
    def fused_dots(self, pairs: list[tuple]) -> list[np.ndarray]:
        """Several ``X.T @ Y`` in ONE synchronization (BCGS-PIP fusion)."""

    def post_fused_dots(self, pairs: list[tuple]):
        """Post :meth:`fused_dots` nonblocking; settle the returned
        handle with :meth:`wait_fused_dots`.

        Default: evaluate immediately and hand back the results as the
        handle — correct (bit-identical, zero overlap) for substrates
        without a communicator.  :class:`DistBackend` overrides with a
        real posted collective whose modeled time the compute charged
        between post and wait drains.
        """
        return self.fused_dots(pairs)

    def wait_fused_dots(self, handle) -> list[np.ndarray]:
        """Settle a :meth:`post_fused_dots` handle, returning the same
        list of products the blocking call would have produced."""
        return handle

    @abstractmethod
    def dot_dd(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        """Double-double accurate ``X.T @ Y`` — one synchronization."""

    @abstractmethod
    def norms(self, x) -> np.ndarray:
        """Column 2-norms — one synchronization."""

    # -- local (synchronization-free) updates ----------------------------
    @abstractmethod
    def update(self, v, q, r: np.ndarray) -> None:
        """``V -= Q @ R`` in place."""

    @abstractmethod
    def trsm(self, v, r: np.ndarray) -> None:
        """``V <- V @ R^{-1}`` in place (R upper triangular)."""

    @abstractmethod
    def scale_cols(self, v, scales: np.ndarray) -> None:
        """``V[:, j] *= scales[j]`` in place."""

    # -- composite factorizations ----------------------------------------
    @abstractmethod
    def householder_qr(self, v) -> np.ndarray:
        """Householder QR: overwrite ``v`` with Q, return R (sign-fixed).

        On the distributed backend this is the latency-heavy LAPACK-style
        algorithm with ~2 global reductions per column (the paper's
        Section IV-A point about BLAS-1/2 and O(s) reduces).
        """

    @abstractmethod
    def tsqr(self, v) -> np.ndarray:
        """Communication-avoiding tall-skinny QR (binary tree of QRs)."""

    def tsqr_batched(self, vs: list) -> list[np.ndarray]:
        """:meth:`tsqr` over several same-shape panels as ONE charged
        pass: one batched local-QR launch, one combine message per tree
        level carrying every panel's R.  Values are bit-identical to
        per-panel :meth:`tsqr` calls — only the charge stream fuses
        (:class:`repro.parallel.batch.BatchCharges` semantics).  The
        NumPy backend simply loops."""
        return [self.tsqr(v) for v in vs]

    def sketch(self, v, op) -> np.ndarray:
        """Sketch ``S @ V`` with a :class:`repro.sketch.SketchOperator`.

        One synchronization on the distributed backend (shard-local
        partials allreduce, see :mod:`repro.sketch.distributed`); the
        NumPy backend applies the operator in place.  Both substrates
        draw the *same* operator, so results agree to reduction-order
        rounding."""
        raise NotImplementedError(f"{type(self).__name__} has no sketch")

    def fused_dots_sketch(self, pairs: list[tuple], v, op
                          ) -> tuple[list[np.ndarray], np.ndarray]:
        """Several ``X.T @ Y`` plus one sketch ``S @ V`` in ONE
        synchronization — the randomized schemes' fusion of projection
        coefficients and panel sketch into a single collective."""
        raise NotImplementedError(
            f"{type(self).__name__} has no fused_dots_sketch")

    def sketch_dot(self, v, m_rows: int, seed: int) -> np.ndarray:
        """CountSketch product ``S @ V`` (legacy signature).

        Thin shim over the :mod:`repro.sketch` subsystem kept for
        callers predating it: builds the deterministic sparse-sign
        operator for ``(n, m_rows, seed)`` and delegates to
        :meth:`sketch`.  One synchronization on the distributed
        backend, as before."""
        op = SparseSignSketch(self.n_rows_global(v), m_rows, seed=seed)
        return self.sketch(v, op)

    # -- accounting hooks ---------------------------------------------------
    def host_flops(self, flops: float) -> None:
        """Charge redundant host-side dense flops (no-op on NumPy)."""

    def charge_small(self, kernel: str, seconds: float) -> None:
        """Charge a fixed modeled cost (no-op on NumPy)."""


def _sign_fix_qr(q: np.ndarray | None, r: np.ndarray,
                 ) -> tuple[np.ndarray | None, np.ndarray, np.ndarray]:
    """Flip signs so R has a non-negative diagonal (paper's convention).

    Returns ``(q_fixed, r_fixed, signs)``; pass ``q=None`` to fix R only
    and apply ``signs`` to the distributed Q separately.
    """
    signs = np.sign(np.diag(r)).astype(np.float64)
    signs[signs == 0] = 1.0
    r_fixed = r * signs[:, np.newaxis]
    q_fixed = None if q is None else q * signs[np.newaxis, :]
    return q_fixed, r_fixed, signs


# ---------------------------------------------------------------------------
# NumPy backend
# ---------------------------------------------------------------------------

class NumpyBackend(OrthoBackend):
    """Plain-ndarray substrate (the Section VI "MATLAB" experiments)."""

    def n_cols(self, mv) -> int:
        return int(mv.shape[1])

    def n_rows_global(self, mv) -> int:
        return int(mv.shape[0])

    def view(self, mv, cols: slice):
        return mv[:, cols]

    def copy(self, mv):
        return np.array(mv, copy=True)

    def dot(self, x, y) -> np.ndarray:
        return x.T @ y

    def fused_dots(self, pairs):
        return [x.T @ y for x, y in pairs]

    def dot_dd(self, x, y):
        if x is y:
            return gram_dd(x)
        return matmul_dd(x, y)

    def norms(self, x) -> np.ndarray:
        return np.linalg.norm(x, axis=0)

    def update(self, v, q, r) -> None:
        v -= q @ r

    def trsm(self, v, r) -> None:
        v[...] = scipy.linalg.solve_triangular(r, v.T, trans="T", lower=False).T

    def scale_cols(self, v, scales) -> None:
        v *= np.asarray(scales)[np.newaxis, :]

    def householder_qr(self, v) -> np.ndarray:
        q, r = np.linalg.qr(v)
        q, r, _ = _sign_fix_qr(q, r)
        v[...] = q
        return r

    def tsqr(self, v) -> np.ndarray:
        # A tree with a single leaf: same as Householder QR.
        return self.householder_qr(v)

    def sketch(self, v, op) -> np.ndarray:
        return op.apply(v)

    def fused_dots_sketch(self, pairs, v, op):
        return [x.T @ y for x, y in pairs], op.apply(v)


# ---------------------------------------------------------------------------
# Distributed backend
# ---------------------------------------------------------------------------

class DistBackend(OrthoBackend):
    """Simulated-cluster substrate over :class:`DistMultiVector`.

    ``engine`` selects the kernel-execution engine (``"loop"`` /
    ``"batched"``) for every costed BLAS call issued through this
    backend; ``None`` defers to the communicator binding and then the
    process default (:func:`repro.config.get_engine`).
    """

    def __init__(self, comm: SimComm, engine: str | None = None) -> None:
        self.comm = comm
        self.engine = None if engine is None else config.validate_engine(engine)

    def _engine(self) -> dengine.KernelEngine:
        return dengine.resolve(self.engine, self.comm)

    # -- structure ------------------------------------------------------
    def n_cols(self, mv: DistMultiVector) -> int:
        return mv.n_cols

    def n_rows_global(self, mv: DistMultiVector) -> int:
        return mv.n_global

    def view(self, mv: DistMultiVector, cols: slice) -> DistMultiVector:
        return mv.view_cols(cols)

    def copy(self, mv: DistMultiVector) -> DistMultiVector:
        return mv.copy()

    # -- reductions -------------------------------------------------------
    def dot(self, x, y) -> np.ndarray:
        return dblas.block_dot(x, y, engine=self.engine)

    def fused_dots(self, pairs):
        return dblas.block_dot_multi(pairs, engine=self.engine)

    def post_fused_dots(self, pairs):
        return dblas.post_block_dot_multi(pairs, engine=self.engine)

    def wait_fused_dots(self, handle):
        return handle.comm.wait(handle)

    def dot_dd(self, x, y):
        return dblas.dot_dd_dist(x, y)

    def norms(self, x) -> np.ndarray:
        return dblas.column_norms(x, engine=self.engine)

    # -- local updates ------------------------------------------------------
    def update(self, v, q, r) -> None:
        dblas.block_update(v, q, r, engine=self.engine)

    def trsm(self, v, r) -> None:
        dblas.trsm_inplace(v, r, engine=self.engine)

    def scale_cols(self, v, scales) -> None:
        dblas.scale_columns(v, scales, engine=self.engine)

    # -- helpers over distributed storage -----------------------------------
    @staticmethod
    def _locate(mv: DistMultiVector, grow: int) -> tuple[int, int]:
        rank = mv.partition.owner(grow)
        return rank, grow - int(mv.partition.offsets[rank])

    def _get_entry(self, mv: DistMultiVector, grow: int, col: int = 0) -> float:
        rank, lrow = self._locate(mv, grow)
        return float(mv.shards[rank][lrow, col])

    def _set_entry(self, mv: DistMultiVector, grow: int, value: float,
                   col: int = 0) -> None:
        rank, lrow = self._locate(mv, grow)
        mv.shards[rank][lrow, col] = mv.quantize(np.asarray(value))

    def _zero_rows_above(self, mv: DistMultiVector, grow: int) -> None:
        """Zero global rows [0, grow) of every column."""
        part = mv.partition
        for rank in range(part.ranks):
            lo = int(part.offsets[rank])
            hi = int(part.offsets[rank + 1])
            if hi <= grow:
                mv.shards[rank][...] = 0.0
            elif lo < grow:
                mv.shards[rank][: grow - lo, :] = 0.0

    def _top_block(self, mv: DistMultiVector, k: int) -> np.ndarray:
        """Copy of global rows [0, k) across all columns."""
        rows = [np.array([self._get_entry(mv, i, c) for c in range(mv.n_cols)])
                for i in range(k)]
        return np.vstack(rows)

    # -- composite factorizations -----------------------------------------
    def householder_qr(self, v: DistMultiVector) -> np.ndarray:
        """Distributed column-wise Householder QR with explicit Q.

        Per column of the factorization: one norm reduction (dlarfg's
        ``||x||``) and one projection reduction (applying the reflector to
        the trailing columns); the explicit-Q rebuild adds one projection
        reduction per column.  BLAS-1/2 locality + ~3(s+1) global reduces
        — the performance profile Section IV-A ascribes to HHQR.
        """
        k = v.n_cols
        n = v.n_global
        if k > n:
            raise ShapeError("householder_qr requires n >= k")
        reflectors: list[DistMultiVector | None] = []
        for j in range(k):
            col = v.view_cols(j)
            u = col.copy()
            self._zero_rows_above(u, j)
            sigma = float(self.norms(u)[0])  # sync: partial column norm
            vjj = self._get_entry(col, j)
            if sigma == 0.0:
                reflectors.append(None)
                continue
            alpha = -math.copysign(sigma, vjj if vjj != 0.0 else 1.0)
            # ||u after head shift||^2 analytically (dlarfg does the same):
            unorm = math.sqrt(sigma * sigma - vjj * vjj
                              + (vjj - alpha) ** 2)
            self._set_entry(u, j, vjj - alpha)
            if unorm == 0.0:
                reflectors.append(None)
                continue
            self.scale_cols(u, np.array([1.0 / unorm]))
            reflectors.append(u)
            trail = v.view_cols(slice(j, k))
            proj = self.dot(u, trail)          # sync: reflector application
            self.update(trail, u, 2.0 * proj)
        r = np.triu(self._top_block(v, k))
        # Rebuild explicit Q = H_0 ... H_{k-1} [I; 0].
        v.fill(0.0)
        for j in range(k):
            self._set_entry(v, j, 1.0, col=j)
        for j in reversed(range(k)):
            u = reflectors[j]
            if u is None:
                continue
            proj = self.dot(u, v)              # sync: explicit-Q rebuild
            self.update(v, u, 2.0 * proj)
        _, r, signs = _sign_fix_qr(None, r)
        self.scale_cols(v, signs)
        return r

    def _local_qr_cost(self, rows: int, k: int,
                       word_bytes: float = 8.0) -> float:
        """Modeled cost of one local Householder panel factorization."""
        m = self.comm.machine
        flops = 4.0 * rows * k * k  # factor + explicit local Q
        # k panel sweeps, blocked; bytes scale with the storage word size
        bytes_moved = word_bytes * rows * k * max(1, k // 4)
        return (k * m.kernel_latency
                + max(flops / m.peak_flops,
                      bytes_moved / (m.mem_bandwidth * m.gemm_bw_efficiency)))

    def tsqr(self, v: DistMultiVector) -> np.ndarray:
        """Binary-tree TSQR (Demmel et al. [9]) with exact Q reconstruction.

        Local QR per rank, pairwise combining of the k x k R factors up the
        tree (one small message per level), then each leaf's Q is rebuilt
        as ``Qloc @ M_leaf`` where the ``M`` factors fall out of the
        downward sweep — the unconditionally stable CA factorization.
        """
        comm = self.comm
        k = v.n_cols
        stack = v.stack
        f64 = np.dtype(np.float64)
        batched = (isinstance(self._engine(), dengine.BatchedEngine)
                   and stack is not None and stack.shape[1] >= k)
        qstack = None
        if batched:
            work = stack if stack.dtype == f64 else stack.astype(f64)
            qstack, rstack = np.linalg.qr(work)
            local_rs = list(rstack)
        else:
            local_qs, local_rs = [], []
            for shard in v.shards:
                shard64 = shard if shard.dtype == f64 else shard.astype(f64)
                if shard.shape[0] >= k:
                    q, r = np.linalg.qr(shard64)
                else:
                    padded = np.vstack([shard64,
                                        np.zeros((k - shard.shape[0], k))])
                    q, r = np.linalg.qr(padded)
                    q = q[: shard.shape[0]]
                local_qs.append(q)
                local_rs.append(r)
        # the panel QR runs on the driver process under the mp backend
        # (ROADMAP: worker-side panel QR is an open item), so its charges
        # carry the driver_side tag calibration uses to skip them
        comm.charge_local(
            "dot", [self._local_qr_cost(s.shape[0], k,
                                        word_bytes=v.word_bytes)
                    for s in v.shards], driver_side=True)

        def tree(rs: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray], int]:
            """Return (R, leaf coefficient matrices M_i, depth)."""
            if len(rs) == 1:
                return rs[0], [np.eye(k)], 0
            half = (len(rs) + 1) // 2
            r_left, m_left, d_left = tree(rs[:half])
            r_right, m_right, d_right = tree(rs[half:])
            q, r = np.linalg.qr(np.vstack([r_left, r_right]))
            qa, qb = q[:k], q[k:]
            ms = [m @ qa for m in m_left] + [m @ qb for m in m_right]
            return r, ms, max(d_left, d_right) + 1

        r_final, coeffs, depth = tree(local_rs)
        # one small message + one 2k x k host QR per tree level
        per_level = (comm.cost.point_to_point(8.0 * k * k, same_node=False)
                     + comm.cost.host_dense(8.0 * k ** 3 / 3.0))
        if depth:
            comm.charge_uniform("allreduce", depth * per_level, count=1,
                                driver_side=True)
        _, r_final, signs = _sign_fix_qr(None, np.triu(r_final))
        quantized = v.storage != "fp64"
        if batched:
            mstack = np.stack(coeffs) * signs[np.newaxis, np.newaxis, :]
            rebuilt = np.matmul(qstack, mstack)
            stack[...] = v.quantize(rebuilt) if quantized else rebuilt
        else:
            for shard, qloc, m in zip(v.shards, local_qs, coeffs):
                rebuilt = qloc @ (m * signs[np.newaxis, :])
                shard[...] = v.quantize(rebuilt) if quantized else rebuilt
        comm.charge_local(
            "update", [comm.cost.gemm(s.shape[0], k, k,
                                      word_bytes=v.word_bytes)
                       for s in v.shards], driver_side=True)
        return r_final

    def tsqr_batched(self, vs: list[DistMultiVector]) -> list[np.ndarray]:
        """Batched binary-tree TSQR: one charged pass over ``b`` panels.

        Each panel's factorization is numerically the exact
        :meth:`tsqr` computation — same local QRs, same combine tree,
        same rebuild — but the modeled charges fuse under
        :class:`repro.parallel.batch.BatchCharges`: one batched local-QR
        launch, one combine message per tree level carrying every
        panel's stacked ``k x k`` R factors, one rebuild launch.  The
        combine message count therefore stays width-independent while
        its payload grows with the batch.
        """
        from repro.parallel.batch import BatchCharges
        rs: list[np.ndarray] = []
        with BatchCharges(self.comm) as batch:
            with batch.group():
                for v in vs:
                    with batch.member():
                        rs.append(self.tsqr(v))
        return rs

    def sketch(self, v: DistMultiVector, op) -> np.ndarray:
        return sketch_multivector(v, op, engine=self.engine)

    def fused_dots_sketch(self, pairs, v: DistMultiVector, op):
        return self._engine().fused_dot_sketch(pairs, v, op)

    # -- accounting ------------------------------------------------------
    def host_flops(self, flops: float) -> None:
        self.comm.charge_uniform("host", self.comm.cost.host_dense(flops))

    def charge_small(self, kernel: str, seconds: float) -> None:
        self.comm.charge_uniform(kernel, seconds)
