"""Orthogonality / conditioning diagnostics used across experiments.

These implement the quantities the paper plots and the constants of its
stability conditions:

* :func:`orthogonality_error` — ``||I - Q.T Q||_2`` (the y-axis of
  Figs. 6-9).
* :func:`condition_number` — 2-norm kappa (the x-axis of Figs. 6-8 and the
  tracked quantity of Fig. 9).
* :func:`c1_bound` — the constant ``c1(eps, n, s) = 5 (n s + s (s+1)) eps``
  of eq. (3); condition (1) is ``c1 * kappa^2 < 1/2``.
* :func:`cholqr_condition_limit` — the kappa above which condition (1)
  fails, ~``eps**-0.5`` scaled by problem size.
"""

from __future__ import annotations

import numpy as np

from repro.config import EPS


def orthogonality_error(q: np.ndarray) -> float:
    """``||I - Q.T Q||_2`` — O(eps) for numerically orthonormal Q."""
    q = np.asarray(q)
    k = q.shape[1]
    return float(np.linalg.norm(np.eye(k) - q.T @ q, 2))


def condition_number(v: np.ndarray) -> float:
    """2-norm condition number via SVD (inf for numerically rank-deficient)."""
    s = np.linalg.svd(np.asarray(v), compute_uv=False)
    if s[-1] == 0.0:
        return float("inf")
    return float(s[0] / s[-1])


def representation_error(v: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Relative factorization residual ``||V - Q R|| / ||V||`` (Frobenius)."""
    v = np.asarray(v)
    denom = float(np.linalg.norm(v))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(v - q @ r) / denom)


def c1_bound(n: int, s: int, eps: float = EPS) -> float:
    """The paper's eq. (3): ``c1(eps, n, s) = 5 (n s + s (s + 1)) eps``."""
    return 5.0 * (n * s + s * (s + 1)) * eps


def cholqr_condition_limit(n: int, s: int, eps: float = EPS) -> float:
    """kappa threshold of condition (1): ``c1 * kappa^2 < 1/2``."""
    return float(np.sqrt(0.5 / c1_bound(n, s, eps)))


def gram_condition_ok(v: np.ndarray, eps: float = EPS) -> bool:
    """Check condition (1) for a concrete panel."""
    n, s = v.shape
    kappa = condition_number(v)
    return c1_bound(n, s, eps) * kappa ** 2 < 0.5
