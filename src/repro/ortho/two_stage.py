"""The paper's contribution: two-stage block orthogonalization (Fig. 5).

Stage 1 (every panel of ``s`` columns): ONE BCGS-PIP pass against
*everything* before the panel — the fully-orthogonalized prefix
``Q_{1:l-1}`` plus the pre-processed panels ``Qhat_{l:j-1}`` of the
current big panel (Fig. 5 line 14).  Objective: keep the accumulated
basis well conditioned so the matrix-powers kernel can keep extending it
(1 synchronization per s steps).

Stage 2 (every big panel of ``bs`` columns): ONE BCGS-PIP pass of the
whole big panel ``Qhat_{l:t}`` against the final prefix (Fig. 5 line 17),
followed by the R fix-up of lines 18-19:

    R_{1:l-1, l:t} := T_{1:l-1} @ Rhat + R_{1:l-1, l:t}
    R_{l:t,  l:t}  := T_big     @ Rhat

(1 synchronization per bs steps, and — crucially for data reuse — local
GEMMs of width ``bs`` instead of ``s``.)

Extremes: ``bs == s`` reproduces one-stage BCGS-PIP2 exactly;
``bs == m`` is one pre-processing pass per panel plus a single big
orthogonalization per restart cycle — the paper's best performer.

R columns only become *final* at stage-2 boundaries, so a solver driving
this scheme can only test convergence every ``bs`` steps — reproducing
the iteration-count granularity visible in the paper's Tables III/IV
(e.g. 60300 = 1005 * 60 for two-stage vs 60255 = 12051 * 5 for
one-stage).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ortho.base import BlockOrthoScheme
from repro.ortho.bcgs_pip import bcgs_pip_panel


class TwoStageScheme(BlockOrthoScheme):
    """Two-stage BCGS-PIP block orthogonalization (paper Section V).

    Parameters
    ----------
    big_step:
        The second-stage step size ``bs`` (s <= bs <= m).  Stage 2
        triggers whenever at least ``big_step`` pre-processed columns have
        accumulated, and always at :meth:`finish_cycle`.
    breakdown:
        Cholesky-breakdown policy for both stages ("raise" or "shift").
    """

    name = "two-stage"
    finality = "big_panel"

    def __init__(self, big_step: int, breakdown: str = "raise") -> None:
        super().__init__()
        if big_step < 1:
            raise ConfigurationError(f"big_step must be >= 1, got {big_step}")
        self.big_step = big_step
        self.breakdown = breakdown
        self._big_lo = 0

    def begin_cycle(self, backend, basis, r, observer=None, w=None,
                    cycle: int = 0) -> None:
        super().begin_cycle(backend, basis, r, observer=observer, w=w,
                            cycle=cycle)
        self._big_lo = 0

    # ------------------------------------------------------------------
    def _stage_pass(self, lo: int, hi: int, *, stage: str
                    ) -> tuple["np.ndarray | None", np.ndarray]:
        """One orthogonalization pass of basis columns ``[lo, hi)``
        against everything before ``lo``; returns ``(P, T)`` with
        ``V_old = Q_prefix P + Q_new T`` (the :func:`bcgs_pip_panel`
        contract).  Both stages use the same pass; subclasses override
        to change the factorization (e.g. sketch-preconditioned in
        :class:`repro.ortho.randomized.SketchedTwoStageScheme`) while
        inheriting the two-stage bookkeeping unchanged.  ``stage`` is
        ``"first"`` or ``"big_panel"``.
        """
        return bcgs_pip_panel(self.backend, self.basis, lo, lo, hi,
                              breakdown=self.breakdown, panel_index=lo)

    def panel_arrived(self, lo: int, hi: int) -> bool:
        self._check_panel(lo, hi)
        # ---- Stage 1: pre-process the new panel (Fig. 5 line 14) -----
        # Prefix = final columns + already-pre-processed columns, i.e.
        # everything before lo.
        p, r_jj = self._stage_pass(lo, hi, stage="first")
        if p is not None:
            self.r[:lo, lo:hi] = p
        self.r[lo:hi, lo:hi] = r_jj
        self._pushed_cols = hi
        self._emit("first", panel_index=lo, lo=lo, hi=hi,
                   prefix=self._big_lo)
        # ---- Stage 2 when the big panel is full -----------------------
        if hi - self._big_lo >= self.big_step:
            self._second_stage(hi)
            return True
        return False

    def finish_cycle(self) -> bool:
        """Flush a partially-filled big panel (end of restart cycle)."""
        if self._pushed_cols > self._big_lo:
            self._second_stage(self._pushed_cols)
            return True
        return False

    # ------------------------------------------------------------------
    def _second_stage(self, hi: int) -> None:
        """Orthogonalize the big panel ``[big_lo, hi)`` (Fig. 5 l. 17-19)."""
        lo = self._big_lo
        backend = self.backend
        width = hi - lo
        p, t_big = self._stage_pass(lo, hi, stage="big_panel")
        r_hat = np.triu(self.r[lo:hi, lo:hi]).copy()
        if p is not None:
            backend.host_flops(2.0 * lo * width * width)
            self.r[:lo, lo:hi] = p @ r_hat + self.r[:lo, lo:hi]
        backend.host_flops(2.0 * width ** 3)
        self.r[lo:hi, lo:hi] = t_big @ r_hat
        if self.w is not None:
            # Record the final-Q representation of the big panel's
            # *pre-processed* content: Qhat = Q_pre @ p + Q_big @ t_big.
            # The s-step solver needs this for MPK start columns that were
            # consumed while still in stage-1 state.
            if p is not None:
                self.w[:lo, lo:hi] = p
            self.w[lo:hi, lo:hi] = t_big
        self._big_lo = hi
        self._final_cols = hi
        self._emit("big_panel", panel_index=lo, lo=lo, hi=hi, prefix=lo)
