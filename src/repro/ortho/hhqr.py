"""Householder QR as an intra-block factorization (paper Section IV-A).

Unconditionally stable for numerically full-rank input
(``kappa(V) max(n, s) eps < 1`` gives ``||I - Q.T Q|| = O(eps)``), but on
the distributed backend it pays ~3 global reductions per column and runs
BLAS-1/2 — the performance profile that motivates CholQR-based intra
kernels in the first place.
"""

from __future__ import annotations

import numpy as np

from repro.ortho.backend import OrthoBackend
from repro.ortho.base import IntraBlockQR


class HouseholderQR(IntraBlockQR):
    """LAPACK-style Householder QR with explicit Q."""

    name = "hhqr"

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        return backend.householder_qr(v)
