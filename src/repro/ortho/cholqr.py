"""Cholesky-QR intra-block factorizations (paper Fig. 3 + Section II).

* :class:`CholQR` — one Gram + Cholesky + TRSM; a single synchronization,
  BLAS-3 throughout, but requires ``kappa(V) < ~eps**-0.5`` (condition (1)
  with constant c1 of eq. (3)).
* :class:`CholQR2` — CholQR applied twice; O(eps) orthogonality whenever
  the first pass succeeds (Theorem IV.1).
* :class:`ShiftedCholQR` — Fukaya et al. [11]: shift the Gram matrix so
  the factorization cannot break down for numerically full-rank input;
  one extra pass (~1.5x cost of CholQR2).
* :class:`MixedPrecisionCholQR` — ref. [26]: Gram accumulated in
  double-double; stability comparable to shifted CholQR with almost no
  extra communication (payload 2x, same latency).
"""

from __future__ import annotations

import numpy as np

from repro.config import EPS
from repro.dd.core import dd_to_double
from repro.dd.linalg import cholesky_dd
from repro.exceptions import CholeskyBreakdownError
from repro.ortho.backend import OrthoBackend
from repro.ortho.base import IntraBlockQR


def cholesky_factor(g: np.ndarray, *, shift: float = 0.0,
                    panel_index: int | None = None) -> np.ndarray:
    """Upper-triangular Cholesky factor of a (symmetrized) Gram matrix.

    Raises :class:`CholeskyBreakdownError` carrying the most negative
    diagonal of the failed factorization attempt — the shifted variant
    uses it to pick a recovery shift.
    """
    g = np.asarray(g, dtype=np.float64)
    gs = 0.5 * (g + g.T)
    if shift:
        gs = gs + shift * np.eye(g.shape[0])
    try:
        return np.linalg.cholesky(gs).T
    except np.linalg.LinAlgError:
        diag_min = float(np.min(np.linalg.eigvalsh(gs)))
        raise CholeskyBreakdownError(
            f"Cholesky breakdown (min eig {diag_min:.3e}, shift {shift:.3e})",
            gram_diag_min=diag_min, panel_index=panel_index) from None


class CholQR(IntraBlockQR):
    """Single-pass Cholesky QR (Fig. 3a): 1 sync, BLAS-3."""

    name = "cholqr"

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        k = backend.n_cols(v)
        g = backend.dot(v, v)                      # sync (Gram)
        backend.host_flops(k ** 3 / 3.0)
        r = cholesky_factor(g)
        backend.trsm(v, r)
        return r


class CholQR2(IntraBlockQR):
    """Cholesky QR twice (Fig. 3b): 2 syncs; O(eps) error under (1)."""

    name = "cholqr2"

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        first = CholQR()
        r1 = first.factor(backend, v)
        t = first.factor(backend, v)
        return t @ r1


class ShiftedCholQR(IntraBlockQR):
    """Shifted Cholesky QR3 (Fukaya et al. [11]).

    Pass 1 factors ``G + sigma I`` with the stabilizing shift
    ``sigma = 11 (n k + k (k+1)) eps ||G||_2`` (their eq. for binary64),
    guaranteeing success for numerically full-rank input; two clean-up
    CholQR passes restore O(eps) orthogonality.
    """

    name = "shifted_cholqr3"

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        n = backend.n_rows_global(v)
        k = backend.n_cols(v)
        g = backend.dot(v, v)                      # sync
        backend.host_flops(k ** 3 / 3.0 + k * k)
        norm_g = float(np.linalg.norm(g, 2))
        sigma = 11.0 * (n * k + k * (k + 1)) * EPS * norm_g
        # If even the shifted factorization fails (rank-deficient beyond
        # working precision), escalate the shift geometrically.
        r1 = None
        for attempt in range(4):
            try:
                r1 = cholesky_factor(g, shift=sigma * (10.0 ** attempt))
                break
            except CholeskyBreakdownError:
                continue
        if r1 is None:
            raise CholeskyBreakdownError(
                "shifted CholQR failed after shift escalation",
                gram_diag_min=None)
        backend.trsm(v, r1)
        second = CholQR()
        t1 = second.factor(backend, v)
        t2 = second.factor(backend, v)
        return t2 @ (t1 @ r1)


class MixedPrecisionCholQR(IntraBlockQR):
    """CholQR with double-double Gram accumulation (ref. [26]).

    The Gram matrix is exact to ~1e-32 relative accuracy, so the only
    precision loss is the final rounding: breakdown is pushed from
    ``kappa ~ eps**-0.5`` to ``kappa ~ eps**-1``.  ``factor_in_dd``
    additionally runs the small Cholesky itself in dd.  With ``reorth``
    a second (plain double) pass gives O(eps) orthogonality.
    """

    name = "mixed_precision_cholqr"

    def __init__(self, reorth: bool = True, factor_in_dd: bool = True) -> None:
        self.reorth = reorth
        self.factor_in_dd = factor_in_dd

    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        k = backend.n_cols(v)
        g_hi, g_lo = backend.dot_dd(v, v)          # sync (2x payload)
        dd_pen = 16.0  # dd Cholesky flop multiplier on the host
        backend.host_flops(dd_pen * k ** 3 / 3.0)
        if self.factor_in_dd:
            r1 = cholesky_dd(g_hi, g_lo)
        else:
            r1 = cholesky_factor(dd_to_double((g_hi, g_lo)))
        backend.trsm(v, r1)
        if not self.reorth:
            return r1
        t = CholQR().factor(backend, v)
        return t @ r1
