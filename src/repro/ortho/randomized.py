"""Randomized inter-block orthogonalization schemes on :mod:`repro.sketch`.

Two schemes take the paper's Section IX pointer — random sketching to
push block orthogonalization past the CholQR stability cliff — and make
it drivable by the s-step solver (following the randomized block-GS
line of Balabanov 2022, the s-step follow-up arXiv:2503.16717, and the
backward-stability analysis of Carson & Ma arXiv:2409.03079):

* :class:`RBCGSScheme` — sketched BCGS-PIP.  Per panel, the projection
  coefficients and the panel sketch travel in ONE fused collective; the
  panel is then *whitened* with the sketch-QR factor before a single
  Cholesky pass.  No Pythagorean subtraction ``G - P.T P`` ever happens,
  so the ``kappa > eps^{-1/2}`` breakdown mode of BCGS-PIP is gone.
* :class:`SketchedTwoStageScheme` — the paper's two-stage scheme with
  every stage pass (the per-panel pre-processing *and* the big-panel
  second stage) sketch-preconditioned.  The big-panel pass in
  particular factors a panel whose width is ``bs``; whitening it first
  keeps the Cholesky well inside its comfort zone at condition numbers
  up to ``~1/eps`` — the regime ``experiments/sketch_stability.py``
  sweeps.

Both schemes derive every sketching operator deterministically from
``(seed, cycle)`` (see :mod:`repro.sketch.seeding`): repeated solves
with a reused scheme instance reproduce bit-for-bit, while distinct
restart cycles draw fresh embeddings — re-using one embedding across
adaptively generated panels would void the w.h.p. guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SEED
from repro.ortho.base import BlockOrthoScheme
from repro.ortho.bcgs_pip import _pythagorean_factor, bcgs_pip_panel
from repro.ortho.two_stage import TwoStageScheme
from repro.sketch import (
    canonical_family,
    derive_seed,
    make_operator,
    right_apply_inverse,
    sketch_qr,
    sketch_rows,
)


class RBCGSScheme(BlockOrthoScheme):
    """Sketched BCGS-PIP: fused projection+sketch, whitened normalization.

    Per panel ``V`` of ``c`` columns against the final prefix ``Q``:

    1. ``P = Q.T V`` and ``SV = S V`` in ONE fused reduction;
       ``V <- V - Q P`` locally.
    2. Host: update the residual sketch ``SV <- SV - (SQ) P`` (first
       order, no communication), QR it, and whiten ``V <- V R_s^{-1}``
       — now ``kappa(V) = O(1)`` w.h.p. regardless of the input panel.
    3. ``G = V.T V`` fused with a fresh sketch of the whitened panel
       (one reduction); Cholesky of the *benign* G, final TRSM.  The
       fresh sketch maintains ``SQ`` for later panels with no extra
       synchronization.
    4. Optionally (``reorth``, default True) one classical BCGS-PIP
       clean-up pass, which is safe precisely because the panel is
       already orthonormal — restoring BCGS2-like O(eps) orthogonality.

    3 synchronizations per panel with reorthogonalization (2 without)
    versus 2 for BCGS-PIP2 — the price of never forming the
    breakdown-prone Pythagorean Gram ``G - P.T P``.

    Parameters
    ----------
    operator:
        Sketch family (:data:`repro.sketch.OPERATOR_FAMILIES`).
    oversample:
        Optional sketch rows per basis column (defaults to the
        :func:`repro.sketch.embedding_dim` heuristic for the full
        basis width).
    seed:
        Base seed; per-cycle operator seeds are derived from it.
    reorth:
        Run the classical clean-up pass (default True).
    breakdown:
        Cholesky recovery policy for the whitened panels ("shift" by
        default — whitening makes a genuine breakdown here mean
        numerical rank deficiency of the panel itself).
    rank_tol:
        Relative tolerance for clipping near-singular sketch pivots
        (default :data:`repro.sketch.DEFAULT_RANK_TOL`).
    """

    name = "rbcgs"
    finality = "panel"

    def __init__(self, operator: str = "sparse",
                 oversample: int | None = None, seed: int = DEFAULT_SEED,
                 reorth: bool = True, breakdown: str = "shift",
                 rank_tol: float | None = None) -> None:
        super().__init__()
        self.operator_family = canonical_family(operator)
        self.oversample = oversample
        self.seed = seed
        self.reorth = reorth
        self.breakdown = breakdown
        self.rank_tol = rank_tol
        self._op = None
        self._sq: np.ndarray | None = None

    # ------------------------------------------------------------------
    def begin_cycle(self, backend, basis, r, observer=None, w=None,
                    cycle: int = 0) -> None:
        super().begin_cycle(backend, basis, r, observer=observer, w=w,
                            cycle=cycle)
        n = backend.n_rows_global(basis)
        k_total = r.shape[0]
        m = sketch_rows(k_total, n, family=self.operator_family,
                        oversample=self.oversample)
        self._op = make_operator(
            self.operator_family, n, m,
            derive_seed(self.seed, "rbcgs", self.cycle))
        self._sq = np.zeros((m, k_total))

    def panel_arrived(self, lo: int, hi: int) -> bool:
        self._check_panel(lo, hi)
        backend = self.backend
        v = backend.view(self.basis, slice(lo, hi))
        c = hi - lo
        m = self._op.m_rows
        # -- 1: fused projection + sketch (one reduction) ---------------
        if lo:
            q = backend.view(self.basis, slice(0, lo))
            (p,), sv = backend.fused_dots_sketch([(q, v)], v, self._op)
            backend.update(v, q, p)
            sv = sv - self._sq[:, :lo] @ p
            backend.host_flops(2.0 * m * lo * c)
        else:
            p = None
            sv = backend.sketch(v, self._op)
        # -- 2: whiten from the sketch ----------------------------------
        r_s, _ = sketch_qr(sv, rank_tol=self.rank_tol)
        backend.host_flops(2.0 * m * c * c)
        backend.trsm(v, r_s)
        # -- 3: benign Cholesky + fresh sketch (one reduction) ----------
        (g,), sv2 = backend.fused_dots_sketch([(v, v)], v, self._op)
        t = _pythagorean_factor(g, None, breakdown=self.breakdown,
                                panel_index=lo)
        backend.host_flops(c ** 3 / 3.0)
        backend.trsm(v, t)
        r_panel = t @ r_s
        sq_panel = right_apply_inverse(sv2, t)  # sketch of the new Q panel
        backend.host_flops(2.0 * m * c * c)
        self._emit("first", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        # -- 4: classical clean-up pass (one reduction) -----------------
        if self.reorth:
            p2, t2 = bcgs_pip_panel(backend, self.basis, lo, lo, hi,
                                    breakdown=self.breakdown, panel_index=lo)
            if p2 is not None:
                sq_panel = sq_panel - self._sq[:, :lo] @ p2
                correction = p2 @ r_panel
                p = correction if p is None else p + correction
                backend.host_flops(2.0 * lo * c * (m + c))
            sq_panel = right_apply_inverse(sq_panel, t2)
            r_panel = t2 @ r_panel
            backend.host_flops(2.0 * (m + c) * c * c)
            self._emit("second", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        self._sq[:, lo:hi] = sq_panel
        if p is not None:
            self.r[:lo, lo:hi] = p
        self.r[lo:hi, lo:hi] = r_panel
        self._pushed_cols = hi
        self._final_cols = hi
        return True

    @property
    def basis_sketch(self) -> "np.ndarray | None":
        if self._sq is None or not self._final_cols:
            return None
        return self._sq[:, : self._final_cols]


class SketchedTwoStageScheme(TwoStageScheme):
    """Two-stage scheme whose stage passes are sketch-preconditioned.

    Inherits the full two-stage state machine (big-panel accumulation,
    R fix-up, ``w`` bookkeeping, ``bs``-granular finality) and replaces
    only the factorization kernel: each pass over columns ``[lo, hi)``

    1. projects the panel against the prefix *explicitly*
       (``P = Q.T V``; one reduction) — no Pythagorean subtraction,
    2. sketches the projected panel (one reduction) and whitens it with
       the sketch-QR factor — this is the step that tames the
       ``bs``-wide big-panel pass at condition numbers up to ``~1/eps``,
    3. finishes with one Cholesky pass on the whitened panel (one
       reduction; shift recovery by default).

    3 synchronizations per pass versus 1 for the classical BCGS-PIP
    pass: the communication price of the stability headroom documented
    in ``experiments/sketch_stability.py`` (kappa up to 1e15, where the
    classical scheme's stage-1 Cholesky breaks down outright).

    With ``fused=True`` every stage pass instead travels in ONE
    collective — the projection coefficients and the panel sketch are
    fused exactly like :class:`RBCGSScheme`'s step 1, the residual
    sketch is corrected on the host from the maintained basis sketch
    (``SV - (SQ) P``, first order), and the pass finishes with the
    sketch-QR whitening alone — no l2-Cholesky, no second reduction.
    The contract changes accordingly: the factorization stays *exact*
    (``V = Q R`` to rounding) and the basis stays *numerically full
    rank* (whitening knocks the condition number down by orders of
    magnitude, keeping it far from ``1/eps`` for inputs up to
    ``kappa ~ 1e15``), but explicit l2 orthogonality is NOT maintained
    — the first-order sketch correction cancels catastrophically on
    extreme inputs, which is precisely the price of dropping the second
    collective (the fresh post-whitening sketch is what buys
    :class:`RBCGSScheme` its O(eps) orthogonality).  This is the
    randomized-GMRES (RGS) contract: pair it with
    ``sstep_gmres(..., solve_mode="sketched")``, which solves the small
    least-squares problem in sketch space and never relies on explicit
    orthogonality — the solver then reuses the maintained basis sketch
    (:attr:`basis_sketch`) at zero extra communication.  1
    synchronization per stage pass, matching the classical BCGS-PIP
    pass it replaces.
    """

    name = "sketched-two-stage"

    def __init__(self, big_step: int, breakdown: str = "shift",
                 operator: str = "sparse", oversample: int | None = None,
                 seed: int = DEFAULT_SEED,
                 rank_tol: float | None = None, fused: bool = False) -> None:
        super().__init__(big_step, breakdown=breakdown)
        self.operator_family = canonical_family(operator)
        self.oversample = oversample
        self.seed = seed
        self.rank_tol = rank_tol
        self.fused = fused
        self._op = None
        self._sq: np.ndarray | None = None

    def begin_cycle(self, backend, basis, r, observer=None, w=None,
                    cycle: int = 0) -> None:
        super().begin_cycle(backend, basis, r, observer=observer, w=w,
                            cycle=cycle)
        n = backend.n_rows_global(basis)
        k_total = r.shape[0]
        m = sketch_rows(k_total, n, family=self.operator_family,
                        oversample=self.oversample)
        self._op = make_operator(
            self.operator_family, n, m,
            derive_seed(self.seed, "sketched-two-stage", self.cycle))
        self._sq = np.zeros((m, k_total)) if self.fused else None

    def _stage_pass(self, lo: int, hi: int, *, stage: str
                    ) -> tuple[np.ndarray | None, np.ndarray]:
        if self.fused:
            return self._fused_stage_pass(lo, hi)
        backend = self.backend
        v = backend.view(self.basis, slice(lo, hi))
        c = hi - lo
        m = self._op.m_rows
        if lo:
            q = backend.view(self.basis, slice(0, lo))
            p = backend.dot(q, v)                            # sync
            backend.update(v, q, p)
        else:
            p = None
        sv = backend.sketch(v, self._op)                     # sync
        r_s, _ = sketch_qr(sv, rank_tol=self.rank_tol)
        backend.host_flops(2.0 * m * c * c)
        backend.trsm(v, r_s)
        g = backend.dot(v, v)                                # sync
        t = _pythagorean_factor(g, None, breakdown=self.breakdown,
                                panel_index=lo)
        backend.host_flops(c ** 3 / 3.0)
        backend.trsm(v, t)
        return p, t @ r_s

    def _fused_stage_pass(self, lo: int, hi: int
                          ) -> tuple[np.ndarray | None, np.ndarray]:
        """One stage pass in ONE collective (the RGS-style fusion).

        The projection ``P = Q.T V`` and the panel sketch ``S V``
        share a single allreduce; the prefix contribution is removed
        from the sketch on the host (``SV - (SQ) P`` — first order, no
        communication), and the sketch-QR factor both whitens the panel
        and *is* its triangular factor.  The maintained basis sketch is
        updated with the whitened panel's sketch ``(SV - SQ P) R_s^{-1}``
        — again host-only.
        """
        backend = self.backend
        v = backend.view(self.basis, slice(lo, hi))
        c = hi - lo
        m = self._op.m_rows
        if lo:
            q = backend.view(self.basis, slice(0, lo))
            (p,), sv = backend.fused_dots_sketch([(q, v)], v, self._op)
            backend.update(v, q, p)
            sv = sv - self._sq[:, :lo] @ p
            backend.host_flops(2.0 * m * lo * c)
        else:
            p = None
            sv = backend.sketch(v, self._op)                 # sync (the one)
        r_s, _ = sketch_qr(sv, rank_tol=self.rank_tol)
        backend.host_flops(2.0 * m * c * c)
        backend.trsm(v, r_s)
        self._sq[:, lo:hi] = right_apply_inverse(sv, r_s)
        backend.host_flops(m * c * c)
        return p, r_s

    @property
    def basis_sketch(self) -> "np.ndarray | None":
        if self._sq is None or not self._final_cols:
            return None
        return self._sq[:, : self._final_cols]
