"""String -> class registries for orthogonalization kernels and schemes.

Experiments, benchmarks, and environment-driven configuration
(``REPRO_SCHEME=...``-style knobs) select algorithms by *name* instead
of hard-coded imports::

    intra = get_intra_qr("sketched_cholqr")()          # IntraBlockQR
    scheme = get_scheme("sketched-two-stage")(big_step=60)

Names are normalized (case-insensitive, ``-``/``_`` interchangeable)
and mirror each class's ``name`` attribute; constructor arguments stay
with the caller — a registry entry is a class, not a configured
instance, because several entries need shape parameters (``big_step``)
only the call site knows.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.ortho.base import BlockOrthoScheme, IntraBlockQR
from repro.ortho.bcgs import BCGS2Scheme
from repro.ortho.bcgs_pip import BCGSPIP2Scheme, BCGSPIPScheme
from repro.ortho.cholqr import (
    CholQR,
    CholQR2,
    MixedPrecisionCholQR,
    ShiftedCholQR,
)
from repro.ortho.hhqr import HouseholderQR
from repro.ortho.randomized import RBCGSScheme, SketchedTwoStageScheme
from repro.ortho.sketched import SketchedCholQR
from repro.ortho.tsqr import TSQRFactor
from repro.ortho.two_stage import TwoStageScheme
from repro.precision.kernels import MixedPrecisionTwoStageScheme

INTRA_QR: dict[str, type[IntraBlockQR]] = {
    "hhqr": HouseholderQR,
    "tsqr": TSQRFactor,
    "cholqr": CholQR,
    "cholqr2": CholQR2,
    "shifted_cholqr3": ShiftedCholQR,
    "mixed_precision_cholqr": MixedPrecisionCholQR,
    "sketched_cholqr": SketchedCholQR,
}

SCHEMES: dict[str, type[BlockOrthoScheme]] = {
    "bcgs2": BCGS2Scheme,
    "bcgs_pip": BCGSPIPScheme,
    "bcgs_pip2": BCGSPIP2Scheme,
    "two_stage": TwoStageScheme,
    "rbcgs": RBCGSScheme,
    "sketched_two_stage": SketchedTwoStageScheme,
    "mixed_two_stage": MixedPrecisionTwoStageScheme,
}


def _normalize(name: str) -> str:
    return str(name).strip().lower().replace("-", "_")


def _lookup(registry: dict, name: str, kind: str):
    key = _normalize(name)
    try:
        return registry[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} {name!r}; expected one of "
            f"{sorted(registry)}") from None


def get_intra_qr(name: str) -> type[IntraBlockQR]:
    """Intra-block QR class for ``name`` (e.g. ``"sketched_cholqr"``)."""
    return _lookup(INTRA_QR, name, "intra-block QR kernel")


def get_scheme(name: str) -> type[BlockOrthoScheme]:
    """Inter-block scheme class for ``name`` (e.g. ``"two-stage"``)."""
    return _lookup(SCHEMES, name, "block orthogonalization scheme")


def list_intra_qr() -> list[str]:
    """Registered intra-block kernel names, sorted."""
    return sorted(INTRA_QR)


def list_schemes() -> list[str]:
    """Registered inter-block scheme names, sorted."""
    return sorted(SCHEMES)
