"""Interfaces shared by all block-orthogonalization algorithms.

Two abstractions:

* :class:`IntraBlockQR` — factorizes one tall-skinny panel in place
  (HHQR, CholQR, CholQR2, shifted/mixed-precision/sketched CholQR).
* :class:`BlockOrthoScheme` — the inter-block state machine a Krylov
  cycle drives: panels of ``s`` (+1) columns arrive one at a time inside a
  shared basis; the scheme orthogonalizes them against the prefix and
  maintains the global ``R`` factor.  ``panel_arrived`` returns whether
  the ``R`` columns written so far are *final* — the solver may only test
  convergence on final columns (this is why the paper's two-stage variant
  converges at multiples of ``bs`` while one-stage variants converge at
  multiples of ``s``; compare iteration counts in Tables III/IV).

:class:`BlockDriver` feeds a pre-generated matrix through a scheme panel
by panel — the harness for the paper's Section VI numerics, where the
blocks come from synthetic matrices instead of a matrix-powers kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ortho.backend import NumpyBackend, OrthoBackend


@dataclass(frozen=True)
class PanelInfo:
    """Event descriptor passed to observers.

    ``stage`` is one of ``"first"`` (one-stage schemes' full panel work, or
    the two-stage pre-processing), ``"second"`` (a second Gram-Schmidt
    pass), ``"big_panel"`` (two-stage second stage over ``bs`` columns).
    ``lo``/``hi`` delimit the basis columns the event finalized or
    pre-processed; ``prefix`` counts fully-final columns before ``lo``.
    """

    stage: str
    panel_index: int
    lo: int
    hi: int
    prefix: int


class OrthoObserver:
    """Callback hook for numerics experiments (condition tracking etc.).

    Subclass and override :meth:`on_event`; the default is a no-op so
    schemes can call unconditionally.
    """

    def on_event(self, info: PanelInfo, backend: OrthoBackend, basis) -> None:
        """Called after each stage transition with the live basis."""


class IntraBlockQR(ABC):
    """Factorize one tall panel in place: ``v <- Q``, return ``R``."""

    #: human-readable algorithm name (used in reports/CLI)
    name: str = "abstract"

    @abstractmethod
    def factor(self, backend: OrthoBackend, v, *, cycle: int = 0,
               panel: int = 0) -> np.ndarray:
        """Orthonormalize ``v``'s columns in place; return upper-tri R.

        ``cycle``/``panel`` identify the call site within a solve
        (restart cycle, first panel column).  Deterministic kernels
        ignore them; randomized kernels fold them into their sketch
        seeds so successive panels draw fresh, decorrelated operators
        while repeated solves stay reproducible.  Schemes that drive an
        intra-block kernel per panel must thread the context (see
        :class:`repro.ortho.bcgs.BCGS2Scheme`).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BlockOrthoScheme(ABC):
    """Inter-block orthogonalization state machine (one Krylov cycle).

    Lifecycle::

        scheme.begin_cycle(backend, basis, r)
        for each panel:
            final = scheme.panel_arrived(lo, hi)
            # if final: R[:, :hi] is usable for Hessenberg/convergence
        scheme.finish_cycle()     # flush (two-stage partial big panels)

    ``basis`` is a backend handle with at least ``hi`` columns; ``r`` is a
    caller-owned square ndarray at least ``(hi, hi)`` that the scheme
    fills in place (upper triangular).
    """

    name: str = "abstract"

    #: granularity at which R columns become final ("panel" or "big_panel")
    finality: str = "panel"

    def __init__(self) -> None:
        self.backend: Optional[OrthoBackend] = None
        self.basis = None
        self.r: Optional[np.ndarray] = None
        self.w: Optional[np.ndarray] = None
        self.observer: OrthoObserver = OrthoObserver()
        self.cycle = 0
        self._final_cols = 0
        self._pushed_cols = 0

    # ------------------------------------------------------------------
    def begin_cycle(self, backend: OrthoBackend, basis, r: np.ndarray,
                    observer: OrthoObserver | None = None,
                    w: np.ndarray | None = None, cycle: int = 0) -> None:
        """Reset per-cycle state; ``r`` is written in place.

        ``w`` is optional extra storage for schemes whose basis columns
        pass through an intermediate (pre-processed) state that a matrix
        powers kernel may consume: the scheme records in ``w[:, k]`` the
        representation of column k's *intermediate* content over the final
        orthonormal basis (used by the s-step solver's Hessenberg
        recovery; see :class:`repro.ortho.two_stage.TwoStageScheme`).

        ``cycle`` is the caller's restart-cycle index.  Randomized
        schemes fold it into their sketch-operator seeds, so repeated
        solves with a reused scheme instance are reproducible while
        distinct cycles still draw decorrelated embeddings.
        """
        if r.ndim != 2 or r.shape[0] != r.shape[1]:
            raise ConfigurationError(f"R storage must be square, got {r.shape}")
        self.backend = backend
        self.basis = basis
        self.r = r
        self.w = w
        self.observer = observer if observer is not None else OrthoObserver()
        self.cycle = int(cycle)
        self._final_cols = 0
        self._pushed_cols = 0
        r.fill(0.0)
        if w is not None:
            w.fill(0.0)

    @abstractmethod
    def panel_arrived(self, lo: int, hi: int) -> bool:
        """Columns ``[lo, hi)`` were filled; orthogonalize them.

        Returns True when ``R[:, :hi]`` is final.
        """

    def finish_cycle(self) -> bool:
        """Flush pending work; returns True if new columns became final."""
        return False

    # ------------------------------------------------------------------
    @property
    def final_cols(self) -> int:
        """Number of leading basis columns that are fully orthogonalized."""
        return self._final_cols

    @property
    def basis_sketch(self) -> "np.ndarray | None":
        """Sketch ``S Q`` of the final basis columns, or ``None``.

        Randomized schemes that already maintain a sketch of the basis
        (e.g. :class:`repro.ortho.randomized.RBCGSScheme`) expose it
        here as an ``(m, final_cols)`` array so a sketch-space solver
        (``sstep_gmres(..., solve_mode="sketched")``) can reuse it
        without charging any extra collective.  Deterministic schemes
        return ``None`` and the solver sketches finalized columns
        itself.
        """
        return None

    def _emit(self, stage: str, panel_index: int, lo: int, hi: int,
              prefix: int) -> None:
        self.observer.on_event(
            PanelInfo(stage=stage, panel_index=panel_index, lo=lo, hi=hi,
                      prefix=prefix), self.backend, self.basis)

    @property
    def pushed_cols(self) -> int:
        """Total columns pushed so far (final or pre-processed)."""
        return self._pushed_cols

    def _check_panel(self, lo: int, hi: int) -> None:
        if not 0 <= lo < hi:
            raise ConfigurationError(f"bad panel range [{lo}, {hi})")
        if lo != self._pushed_cols:
            raise ConfigurationError(
                f"panel [{lo}, {hi}) arrived out of order; expected to "
                f"start at column {self._pushed_cols}")
        if hi > self.r.shape[0]:
            raise ConfigurationError(
                f"panel end {hi} exceeds R storage {self.r.shape[0]}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class DriverResult:
    """Output of :class:`BlockDriver`: explicit factors plus history."""

    q: np.ndarray
    r: np.ndarray
    panels: int


class BlockDriver:
    """Feed a dense matrix through a scheme panel-by-panel (Section VI).

    Parameters
    ----------
    scheme:
        Any :class:`BlockOrthoScheme`.
    panel_width:
        Columns per arriving panel (the step size ``s`` in the paper).
    backend:
        Defaults to :class:`NumpyBackend`.
    """

    def __init__(self, scheme: BlockOrthoScheme, panel_width: int,
                 backend: OrthoBackend | None = None) -> None:
        if panel_width < 1:
            raise ConfigurationError(f"panel_width must be >= 1, got {panel_width}")
        self.scheme = scheme
        self.panel_width = panel_width
        self.backend = backend if backend is not None else NumpyBackend()

    def run(self, v: np.ndarray,
            observer: OrthoObserver | None = None) -> DriverResult:
        """Orthogonalize a copy of ``v``; returns Q, R with ``Q R = V``."""
        v = np.asarray(v, dtype=np.float64)
        if v.ndim != 2:
            raise ConfigurationError("driver input must be a 2-D matrix")
        n, k_total = v.shape
        if k_total % self.panel_width:
            raise ConfigurationError(
                f"column count {k_total} not a multiple of panel width "
                f"{self.panel_width}")
        q = self.backend.copy(v)
        r = np.zeros((k_total, k_total))
        self.scheme.begin_cycle(self.backend, q, r, observer=observer)
        n_panels = k_total // self.panel_width
        for j in range(n_panels):
            lo = j * self.panel_width
            self.scheme.panel_arrived(lo, lo + self.panel_width)
        self.scheme.finish_cycle()
        return DriverResult(q=q, r=r, panels=n_panels)
