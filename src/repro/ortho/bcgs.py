"""Block Classical Gram-Schmidt and BCGS2 (paper Fig. 2).

:func:`bcgs_project` is the single inter-block projection (Fig. 2a): one
fused projection GEMM + one tall update — one synchronization.

:class:`BCGS2Scheme` is BCGS *twice* with a pluggable first intra-block
factorization (Fig. 2b): the paper's "BCGS2 with HHQR" (stability
reference) and "BCGS2 with CholQR2" (the performance state of the art the
original s-step GMRES uses, 5 synchronizations per s steps).

Note on Fig. 2b line 14: the paper prints ``R := T + R``; the exact
update consistent with the factorization algebra (and with the
BCGS-PIP2 analogue, Fig. 4b line 5) is ``R := T @ R_jj + R``.  Since
``T = O(eps)`` after the first pass the two differ at O(eps) scale; we
implement the exact form.
"""

from __future__ import annotations

import numpy as np

from repro.ortho.backend import OrthoBackend
from repro.ortho.base import BlockOrthoScheme, IntraBlockQR
from repro.ortho.cholqr import CholQR, CholQR2


def bcgs_project(backend: OrthoBackend, q_prefix, v_panel) -> np.ndarray:
    """One BCGS pass: project ``v_panel`` against ``q_prefix`` (1 sync).

    Returns the projection coefficients ``R = Q.T V`` and applies the
    rank-k update ``V -= Q R`` in place.
    """
    r = backend.dot(q_prefix, v_panel)
    backend.update(v_panel, q_prefix, r)
    return r


class BCGS2Scheme(BlockOrthoScheme):
    """BCGS2 with configurable intra-block kernels (Fig. 2b).

    Parameters
    ----------
    intra_first:
        First intra-block factorization (paper options: HHQR or CholQR2).
        Defaults to CholQR2 — the configuration Tables II-IV call
        "s-step + BCGS2-CholQR2".
    intra_second:
        Second intra-block factorization; the paper fixes CholQR.
    """

    finality = "panel"

    def __init__(self, intra_first: IntraBlockQR | None = None,
                 intra_second: IntraBlockQR | None = None) -> None:
        super().__init__()
        self.intra_first = intra_first if intra_first is not None else CholQR2()
        self.intra_second = intra_second if intra_second is not None else CholQR()
        self.name = f"bcgs2+{self.intra_first.name}"

    def panel_arrived(self, lo: int, hi: int) -> bool:
        self._check_panel(lo, hi)
        backend = self.backend
        v = backend.view(self.basis, slice(lo, hi))
        # (cycle, panel) context keeps randomized intra kernels drawing a
        # fresh, reproducible sketch per panel instead of reusing one.
        ctx = {"cycle": self.cycle, "panel": lo}
        if lo > 0:
            q = backend.view(self.basis, slice(0, lo))
            r1 = bcgs_project(backend, q, v)                    # sync 1
        r_jj = self.intra_first.factor(backend, v, **ctx)        # syncs 2..3
        if lo > 0:
            t1 = bcgs_project(backend, q, v)                     # sync 4
            t_jj = self.intra_second.factor(backend, v, **ctx)   # sync 5
            backend.host_flops(2.0 * lo * (hi - lo) ** 2)
            self.r[:lo, lo:hi] = r1 + t1 @ r_jj
            self.r[lo:hi, lo:hi] = t_jj @ r_jj
        else:
            self.r[lo:hi, lo:hi] = r_jj
        self._pushed_cols = hi
        self._final_cols = hi
        self._emit("second", panel_index=lo, lo=lo, hi=hi, prefix=lo)
        return True
