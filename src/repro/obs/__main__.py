"""``python -m repro.obs`` — alias for the ``repro-trace`` CLI."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
