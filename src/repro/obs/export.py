"""Trace exporters: Chrome trace-event JSON and JSONL span streams.

The Chrome document follows the trace-event format consumed by Perfetto
and ``chrome://tracing``: every :class:`~repro.parallel.tracing.SpanEvent`
becomes one complete (``"ph": "X"``) event with microsecond timestamps.
The two timelines load as separate *processes* (pid 1 = ``modeled``,
pid 2 = ``measured``) and each process splits into lanes (*threads*):
tid 0 is the driver timeline, tid ``1 + r`` is rank ``r``'s lane (the mp
backend's per-worker SpMV sub-spans).  Process/thread ``"M"`` metadata
events carry the human-readable track names.

The JSONL form is one :meth:`SpanEvent.to_dict` object per line — the
grep/pandas-friendly twin.  :func:`load_spans` reads either format back
(sniffed by content, not extension).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.parallel.tracing import SpanEvent, Tracer

#: Trace-event process ids per stream tag (unknown streams land on 9).
STREAM_PIDS = {"modeled": 1, "measured": 2}
_PID_STREAMS = {pid: stream for stream, pid in STREAM_PIDS.items()}


def _gather_spans(sources) -> list[SpanEvent]:
    """Flatten tracers / span iterables into one span list."""
    spans: list[SpanEvent] = []
    for src in sources:
        if isinstance(src, Tracer):
            spans.extend(src.spans)
        elif isinstance(src, SpanEvent):
            spans.append(src)
        else:
            spans.extend(src)
    return spans


def _lane(rank) -> int:
    return 0 if rank is None else 1 + int(rank)


def chrome_trace_doc(*sources) -> dict:
    """Build a Chrome trace-event document from tracers or span lists.

    Each positional argument is a :class:`Tracer` (its recorded spans
    are taken) or an iterable of :class:`SpanEvent`.  Returns the
    ``{"traceEvents": [...]}`` document, metadata events first.
    """
    spans = _gather_spans(sources)
    events = []
    processes: dict[int, str] = {}
    lanes: set[tuple[int, int]] = set()
    for sp in spans:
        pid = STREAM_PIDS.get(sp.stream, 9)
        tid = _lane(sp.rank)
        processes.setdefault(pid, sp.stream)
        lanes.add((pid, tid))
        args: dict = {"phase": sp.phase}
        if sp.cycle is not None:
            args["cycle"] = sp.cycle
        if sp.payload_bytes is not None:
            args["payload_bytes"] = sp.payload_bytes
        if sp.count != 1:
            args["count"] = sp.count
        if sp.overlapped_seconds is not None:
            args["overlapped_seconds"] = sp.overlapped_seconds
        if sp.driver_side:
            args["driver_side"] = True
        events.append({
            "name": sp.name, "cat": sp.cat, "ph": "X",
            "ts": sp.t0 * 1e6, "dur": sp.duration * 1e6,
            "pid": pid, "tid": tid, "args": args,
        })
    meta = []
    for pid in sorted(processes):
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": processes[pid]}})
    for pid, tid in sorted(lanes):
        lane = "driver" if tid == 0 else f"rank {tid - 1}"
        meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                     "tid": tid, "args": {"name": lane}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def export_chrome_trace(path, *sources) -> Path:
    """Write a Chrome trace-event JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_doc(*sources)) + "\n")
    return path


def spans_to_jsonl(*sources) -> str:
    """Serialize spans as JSON Lines (one object per span, time order)."""
    spans = sorted(_gather_spans(sources), key=lambda s: (s.t0, s.t1))
    return "".join(json.dumps(s.to_dict()) + "\n" for s in spans)


def export_jsonl(path, *sources) -> Path:
    """Write a JSONL span stream; returns the path."""
    path = Path(path)
    path.write_text(spans_to_jsonl(*sources))
    return path


def _spans_from_chrome(doc: dict) -> list[SpanEvent]:
    """Invert :func:`chrome_trace_doc` (metadata events are consumed for
    stream names, unknown pids fall back to the pid table)."""
    streams = dict(_PID_STREAMS)
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            streams[ev["pid"]] = ev["args"]["name"]
    spans = []
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        t0 = float(ev["ts"]) / 1e6
        tid = int(ev.get("tid", 0))
        spans.append(SpanEvent(
            name=ev["name"], t0=t0, t1=t0 + float(ev.get("dur", 0.0)) / 1e6,
            phase=args.get("phase", "other"),
            stream=streams.get(ev.get("pid"), "modeled"),
            cat=ev.get("cat", "kernel"), count=int(args.get("count", 1)),
            payload_bytes=args.get("payload_bytes"),
            cycle=args.get("cycle"),
            rank=None if tid == 0 else tid - 1,
            overlapped_seconds=args.get("overlapped_seconds"),
            driver_side=bool(args.get("driver_side", False))))
    return spans


def load_spans(path) -> list[SpanEvent]:
    """Read spans back from a Chrome-trace or JSONL file.

    Format is sniffed from the content: a document whose top level is an
    object with ``traceEvents`` parses as Chrome trace; anything else is
    treated as JSONL (blank lines skipped).
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "traceEvents" in doc:
            return _spans_from_chrome(doc)
    return [SpanEvent.from_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]
