"""LogGP calibration: fit machine constants from measured span streams.

The mp backend emits twin span streams for one solve — the ``modeled``
stream (SimComm cost formulas on the configured
:class:`~repro.parallel.machine.MachineSpec`) and the ``measured``
stream (wall clock on the host actually running the ranks).  This
module closes the loop: least-squares fit the LogGP constants so the
model *describes the host it just ran on*, producing a calibrated
MachineSpec whose predictions earn a tight drift bound
(``experiments/calibration.py`` gates it in nightly CI).

Two independent fits over the in-order span pairing of
:func:`repro.obs.drift.pair_kernel_spans`:

**Network** (``allreduce`` / ``bcast`` pairs, ``driver_side`` spans
excluded — the TSQR tree reduction runs on the driver and would skew
the latency estimate):  each modeled duration decomposes exactly into a
latency part ``L`` (device syncs + per-hop latencies) and a wire part
``W`` (payload over per-hop bandwidths); fitting ``measured ~ lam*L +
beta*W`` rescales ``net_latency_{intra,inter}`` and
``device_sync_latency`` by ``lam`` and divides
``net_bandwidth_{intra,inter}`` by ``beta``.

**Local kernels** (everything outside
:data:`~repro.parallel.tracing.COLLECTIVE_KERNELS`): each modeled
duration splits into a fixed part ``F`` (kernel launch, plus the SpMV
fixed overhead) and a rate part ``R`` (the roofline term); fitting
``measured ~ kappa*F + gamma*R`` rescales ``kernel_latency`` /
``spmv_fixed_overhead`` by ``kappa`` and divides ``peak_flops`` /
``mem_bandwidth`` / ``host_flops`` by ``gamma``.

Both fits are guarded: non-positive or indeterminate solutions fall
back to the single-scalar ratio fit, and an empty stream returns the
base machine unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.costmodel import CostModel
from repro.parallel.machine import MachineSpec, summit
from repro.parallel.tracing import COLLECTIVE_KERNELS, SpanEvent

from repro.obs.drift import pair_kernel_spans

#: Fallback rank count when the stream carries no rank-lane spans and
#: the caller does not say (matches the :class:`Simulation` default).
DEFAULT_RANKS = 4


@dataclass(frozen=True)
class CalibrationFit:
    """One calibration: the fitted scale factors and their provenance."""

    base: MachineSpec
    machine: MachineSpec
    #: Latency scale of the network fit (syncs + per-hop latencies).
    lam_net: float
    #: Wire-time scale of the network fit (per-hop payload terms).
    beta_net: float
    #: Fixed-cost scale of the local-kernel fit (launch + SpMV overhead).
    kappa_kernel: float
    #: Rate scale of the local-kernel fit (roofline / host-flops terms).
    gamma_kernel: float
    ranks: int
    n_net_pairs: int = 0
    n_kernel_pairs: int = 0
    #: Collective pairs skipped because the charge ran driver-side.
    n_driver_excluded: int = 0
    span_mismatches: int = 0

    def to_dict(self) -> dict:
        return {
            "base_machine": self.base.name,
            "machine": self.machine.name,
            "lam_net": self.lam_net,
            "beta_net": self.beta_net,
            "kappa_kernel": self.kappa_kernel,
            "gamma_kernel": self.gamma_kernel,
            "ranks": self.ranks,
            "n_net_pairs": self.n_net_pairs,
            "n_kernel_pairs": self.n_kernel_pairs,
            "n_driver_excluded": self.n_driver_excluded,
            "span_mismatches": self.span_mismatches,
            "constants": {
                "net_latency_intra": self.machine.net_latency_intra,
                "net_latency_inter": self.machine.net_latency_inter,
                "net_bandwidth_intra": self.machine.net_bandwidth_intra,
                "net_bandwidth_inter": self.machine.net_bandwidth_inter,
                "device_sync_latency": self.machine.device_sync_latency,
                "kernel_latency": self.machine.kernel_latency,
                "spmv_fixed_overhead": self.machine.spmv_fixed_overhead,
                "peak_flops": self.machine.peak_flops,
                "mem_bandwidth": self.machine.mem_bandwidth,
                "host_flops": self.machine.host_flops,
            },
        }


def _fit_two(rows: list[tuple[float, float, float]]) -> tuple[float, float]:
    """Least squares ``z ~ a*x + b*y`` with positivity guards.

    ``rows`` holds (x, y, z) observations.  Falls back to the common
    scalar ratio ``a = b = sum(z*(x+y)) / sum((x+y)^2)`` when the 2x2
    normal system is singular (one regressor identically zero, or the
    two collinear) or produces a non-positive scale; returns (1, 1)
    when even that is degenerate.
    """
    sxx = sum(x * x for x, _, _ in rows)
    syy = sum(y * y for _, y, _ in rows)
    sxy = sum(x * y for x, y, _ in rows)
    sxz = sum(x * z for x, _, z in rows)
    syz = sum(y * z for _, y, z in rows)
    det = sxx * syy - sxy * sxy
    if det > 1e-12 * max(sxx * syy, 1e-300):
        a = (syy * sxz - sxy * syz) / det
        b = (sxx * syz - sxy * sxz) / det
        if a > 0.0 and b > 0.0 and a == a and b == b:
            return float(a), float(b)
    num = sum(z * (x + y) for x, y, z in rows)
    den = sum((x + y) ** 2 for x, y, _ in rows)
    if den > 0.0 and num > 0.0:
        s = float(num / den)
        return s, s
    return 1.0, 1.0


def _infer_ranks(spans: list[SpanEvent]) -> int | None:
    """Max rank-lane index + 1 (the mp backend's per-rank SpMV spans)."""
    ranks = [s.rank for s in spans if s.rank is not None]
    return max(ranks) + 1 if ranks else None


def _net_decomposition(span: SpanEvent, cost: CostModel,
                       ranks: int) -> tuple[float, float] | None:
    """(latency part, wire part) of one modeled collective charge.

    Mirrors :meth:`CostModel.allreduce` / :meth:`CostModel.bcast`
    exactly; halo charges return None (their per-peer decomposition is
    not recoverable from the span payload annotation alone).
    """
    if span.name not in ("allreduce", "bcast") or ranks <= 1:
        return None
    m = cost.machine
    intra, inter = cost._tree_hops(ranks)
    payload = float(span.payload_bytes or 0.0)
    syncs = 2.0 if span.name == "allreduce" else 1.0
    lat = (syncs * m.device_sync_latency + intra * m.net_latency_intra
           + inter * m.net_latency_inter)
    wire = (intra * payload / m.net_bandwidth_intra
            + inter * payload / m.net_bandwidth_inter)
    return lat, wire


def _kernel_decomposition(span: SpanEvent,
                          machine: MachineSpec) -> tuple[float, float]:
    """(fixed part, rate part) of one modeled local-kernel charge.

    The fixed part is the launch latency (plus the SpMV bookkeeping
    overhead for ``spmv_local``; zero for the pure-host kernel), capped
    at the span's duration; the rate part is the remainder (roofline
    streaming / flop time).
    """
    dur = max(span.duration, 0.0)
    if span.name == "host":
        return 0.0, dur
    fixed = machine.kernel_latency
    if span.name == "spmv_local":
        fixed += machine.spmv_fixed_overhead
    fixed = min(fixed, dur)
    return fixed, dur - fixed


def calibrate(spans, base: MachineSpec | None = None,
              ranks: int | None = None) -> CalibrationFit:
    """Fit LogGP constants from a combined (or separate) span stream.

    ``spans`` is any iterable of :class:`SpanEvent` containing BOTH
    streams of one mp run (e.g. modeled twin + measured tracer spans
    concatenated, or a file loaded via
    :func:`repro.obs.export.load_spans`).  ``base`` is the MachineSpec
    the modeled stream was charged on (default: Summit); ``ranks``
    defaults to the rank-lane inference, then :data:`DEFAULT_RANKS`.
    """
    base = base if base is not None else summit()
    spans = list(spans)
    if ranks is None:
        ranks = _infer_ranks(spans)
    if ranks is None:
        ranks = DEFAULT_RANKS
    modeled = [s for s in spans if s.stream == "modeled"]
    measured = [s for s in spans if s.stream == "measured"]
    pairs, mismatches = pair_kernel_spans(modeled, measured)
    cost = CostModel(base)

    net_rows: list[tuple[float, float, float]] = []
    kernel_rows: list[tuple[float, float, float]] = []
    n_driver = 0
    for mod, mea in pairs:
        if mod.overlapped_seconds is not None:
            continue  # exposed remainder of a posted collective:
            # duration is not the full collective formula
        if mod.name in COLLECTIVE_KERNELS:
            if mod.driver_side or mea.driver_side:
                n_driver += 1
                continue
            dec = _net_decomposition(mod, cost, ranks)
            if dec is not None and mod.duration > 0.0:
                net_rows.append((dec[0], dec[1], max(mea.duration, 0.0)))
        else:
            fixed, rate = _kernel_decomposition(mod, base)
            if fixed + rate > 0.0:
                kernel_rows.append((fixed, rate, max(mea.duration, 0.0)))

    if not net_rows and not kernel_rows:
        return CalibrationFit(
            base=base, machine=base, lam_net=1.0, beta_net=1.0,
            kappa_kernel=1.0, gamma_kernel=1.0, ranks=ranks,
            span_mismatches=mismatches)

    lam, beta = _fit_two(net_rows) if net_rows else (1.0, 1.0)
    kappa, gamma = _fit_two(kernel_rows) if kernel_rows else (1.0, 1.0)
    machine = base.with_overrides(
        name=f"{base.name}-calibrated",
        net_latency_intra=base.net_latency_intra * lam,
        net_latency_inter=base.net_latency_inter * lam,
        device_sync_latency=base.device_sync_latency * lam,
        net_bandwidth_intra=base.net_bandwidth_intra / beta,
        net_bandwidth_inter=base.net_bandwidth_inter / beta,
        kernel_latency=base.kernel_latency * kappa,
        spmv_fixed_overhead=base.spmv_fixed_overhead * kappa,
        peak_flops=base.peak_flops / gamma,
        mem_bandwidth=base.mem_bandwidth / gamma,
        host_flops=base.host_flops / gamma,
    )
    return CalibrationFit(
        base=base, machine=machine, lam_net=lam, beta_net=beta,
        kappa_kernel=kappa, gamma_kernel=gamma, ranks=ranks,
        n_net_pairs=len(net_rows), n_kernel_pairs=len(kernel_rows),
        n_driver_excluded=n_driver, span_mismatches=mismatches)


def fit_machine(spans, base: MachineSpec | None = None,
                ranks: int | None = None) -> MachineSpec:
    """Calibrated :class:`MachineSpec` from a span stream (the
    one-call form of :func:`calibrate`)."""
    return calibrate(spans, base=base, ranks=ranks).machine
