"""Observability: structured solve telemetry, trace export, drift monitoring.

This package turns the raw signals the library already produces — the
:class:`~repro.parallel.tracing.Tracer` span stream and the solvers'
per-cycle numerics monitors — into first-class artifacts:

:mod:`repro.obs.telemetry`
    :class:`CycleRecord` / :class:`SolveTelemetry` — one structured
    record per restart cycle (residual norm, residual gap, basis
    condition, embedding distortion, solve mode, resketch/IR events),
    surfaced as ``SolveResult.telemetry`` and backing the legacy
    ``diagnostics`` keys.

:mod:`repro.obs.export`
    Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``,
    modeled and measured streams as separate tracks with per-rank lanes)
    and JSONL exporters, plus the matching loaders.

:mod:`repro.obs.drift`
    The predicted-vs-measured drift monitor: pairs an
    :class:`~repro.parallel.mp_backend.MpComm` measured tracer against
    its modeled twin span-by-span and reports per-phase relative error
    and share drift — the CI-gated number in ``BENCH_measured.json``.

:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — counters / gauges / histograms fed from
    the charge sites: per-kernel flops, bytes moved (memory + network),
    arithmetic intensity and roofline utilization against the
    :class:`~repro.parallel.machine.MachineSpec` peaks; snapshots ride
    on ``SolveResult.metrics`` and export as JSON or Prometheus text.

:mod:`repro.obs.calibrate`
    LogGP calibration: least-squares fit of the machine constants from
    an mp run's measured span stream (:func:`fit_machine`), feeding the
    CI-gated prediction-error bound of ``experiments/calibration.py``.

:mod:`repro.obs.cli`
    The ``repro-trace`` command (``summarize`` / ``diff`` / ``metrics``
    / ``calibrate`` / ``export``), also reachable as
    ``python -m repro.obs.cli``.
"""

from repro.obs.calibrate import CalibrationFit, calibrate, fit_machine
from repro.obs.drift import (DEFAULT_DRIFT_BOUND, DriftReport, PhaseDrift,
                             drift_report)
from repro.obs.export import (
    chrome_trace_doc,
    export_chrome_trace,
    export_jsonl,
    load_spans,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.telemetry import CycleRecord, SolveTelemetry

__all__ = [
    "DEFAULT_DRIFT_BOUND",
    "CalibrationFit",
    "CycleRecord",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SolveTelemetry",
    "DriftReport",
    "PhaseDrift",
    "drift_report",
    "calibrate",
    "chrome_trace_doc",
    "export_chrome_trace",
    "export_jsonl",
    "fit_machine",
    "load_spans",
]
