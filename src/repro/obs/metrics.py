"""Metrics registry: counters / gauges / histograms over the charge stream.

The tracer's accumulators answer "how many seconds went where"; this
module answers the *machine-facing* questions behind the paper's cost
argument — how many flops each kernel retired, how many bytes it moved
(device memory AND network wire, split by collective kind), what its
arithmetic intensity is, and what fraction of the
:class:`~repro.parallel.machine.MachineSpec` roofline it sustained.

Feed path (two hooks, both no-ops when disabled):

1. :meth:`MetricsRegistry.record_op` — called by
   :class:`~repro.parallel.costmodel.CostModel` whenever a local-kernel
   cost is computed, with the (flops, bytes_moved) operation shape.
   Shapes queue as *pending*.
2. :meth:`MetricsRegistry.observe` — called by
   :meth:`~repro.parallel.tracing.Tracer.add` on every charge.  The
   pending shapes drain into the charge's (phase, kernel) counters, so
   flop/byte totals land exactly where the seconds land.

Collective charges carry no pending shapes; their ``payload_bytes``
feed the per-kind network-byte counters instead.  Everything snapshots
to JSON (:meth:`MetricsSnapshot.to_dict`) and Prometheus text
exposition (:meth:`MetricsSnapshot.to_prometheus`).

Enable per simulation with ``Simulation(..., metrics=True)`` (or
:meth:`Simulation.enable_metrics`); the snapshot rides on
``SolveResult.metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.machine import MachineSpec
from repro.parallel.tracing import COLLECTIVE_KERNELS, _key_str

#: Histogram bucket upper bounds for per-charge durations (seconds):
#: log-spaced x4 from 1 microsecond to ~16 s, plus +Inf implicitly.
DURATION_BUCKETS = tuple(1e-6 * 4.0 ** i for i in range(13))


@dataclass
class _Hist:
    """One log-bucketed duration histogram (cumulative on export)."""

    buckets: list[int] = field(
        default_factory=lambda: [0] * (len(DURATION_BUCKETS) + 1))
    total: float = 0.0
    count: int = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(DURATION_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style (le, cumulative_count) pairs, +Inf last."""
        out, running = [], 0
        for bound, n in zip(DURATION_BUCKETS, self.buckets):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.buckets[-1]))
        return out


class MetricsRegistry:
    """Counters / gauges / histograms fed from the charge sites.

    One registry instruments one modeled timeline: attach with
    ``tracer.attach_metrics(registry)`` plus a ``CostModel(machine,
    metrics=registry)``.  Accumulates for the tracer's lifetime;
    :meth:`snapshot` is cheap and repeatable.
    """

    def __init__(self, machine: MachineSpec, ranks: int):
        self.machine = machine
        self.ranks = int(ranks)
        self.seconds: dict[tuple[str, str], float] = {}
        self.calls: dict[tuple[str, str], int] = {}
        self.flops: dict[tuple[str, str], float] = {}
        self.mem_bytes: dict[tuple[str, str], float] = {}
        self.driver_seconds: dict[tuple[str, str], float] = {}
        self.net_bytes: dict[str, float] = dict.fromkeys(
            COLLECTIVE_KERNELS, 0.0)
        self.hist: dict[str, _Hist] = {}
        self._pending: list[tuple[float, float]] = []

    # -- feed ----------------------------------------------------------
    def record_op(self, flops: float, bytes_moved: float) -> None:
        """Queue one costed operation shape (from :class:`CostModel`)."""
        self._pending.append((float(flops), float(bytes_moved)))

    def scale_pending(self, factor: float) -> None:
        """Multiply queued shapes by ``factor``.

        ``charge_uniform`` sites evaluate the cost model once for a
        shard shape that every rank executes, so the charge fans the
        queued (flops, bytes) out by the rank count.  Keeps the
        counters the *aggregate over all costed shards* regardless of
        whether the active engine evaluated per rank (loop) or once
        per uniform stack (batched).
        """
        if self._pending and factor != 1.0:
            self._pending = [(f * factor, b * factor)
                             for f, b in self._pending]

    def observe(self, phase: str, kernel: str, seconds: float, count: int,
                payload_bytes: float | None, driver_side: bool) -> None:
        """Land one charge (from :meth:`Tracer.add`), draining pending
        operation shapes into its (phase, kernel) bucket."""
        key = (phase, kernel)
        self.seconds[key] = self.seconds.get(key, 0.0) + seconds
        self.calls[key] = self.calls.get(key, 0) + count
        if driver_side:
            self.driver_seconds[key] = (
                self.driver_seconds.get(key, 0.0) + seconds)
        if self._pending:
            f = sum(p[0] for p in self._pending)
            b = sum(p[1] for p in self._pending)
            self._pending.clear()
            self.flops[key] = self.flops.get(key, 0.0) + f
            self.mem_bytes[key] = self.mem_bytes.get(key, 0.0) + b
        if payload_bytes and kernel in self.net_bytes:
            self.net_bytes[kernel] += payload_bytes
        h = self.hist.get(kernel)
        if h is None:
            h = self.hist[kernel] = _Hist()
        h.observe(seconds)

    # -- export --------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """Derive gauges (intensity, roofline utilization) from the
        counters and freeze everything into a :class:`MetricsSnapshot`."""
        m = self.machine
        kernels: dict[tuple[str, str], dict] = {}
        for key in sorted(self.seconds):
            sec = self.seconds[key]
            f = self.flops.get(key, 0.0)
            b = self.mem_bytes.get(key, 0.0)
            row = {
                "seconds": sec,
                "calls": self.calls.get(key, 0),
                "flops": f,
                "mem_bytes": b,
                "driver_seconds": self.driver_seconds.get(key, 0.0),
            }
            if b > 0.0:
                row["arithmetic_intensity"] = f / b
            if sec > 0.0:
                # charged seconds are wall time (max over ranks); flops
                # and bytes are the aggregate of every costed shard, so
                # utilization is against the whole machine's peaks
                row["flop_utilization"] = f / (sec * self.ranks
                                               * m.peak_flops)
                row["mem_bw_utilization"] = b / (sec * self.ranks
                                                 * m.mem_bandwidth)
            kernels[key] = row
        total_sec = sum(self.seconds.values())
        total_f = sum(self.flops.values())
        total_b = sum(self.mem_bytes.values())
        totals = {
            "seconds": total_sec,
            "flops": total_f,
            "mem_bytes": total_b,
            "net_bytes": sum(self.net_bytes.values()),
        }
        if total_b > 0.0:
            totals["arithmetic_intensity"] = total_f / total_b
        if total_sec > 0.0:
            totals["flop_utilization"] = total_f / (
                total_sec * self.ranks * m.peak_flops)
            totals["mem_bw_utilization"] = total_b / (
                total_sec * self.ranks * m.mem_bandwidth)
        hists = {
            kern: {"buckets": [[le, n] for le, n in h.cumulative()],
                   "sum": h.total, "count": h.count}
            for kern, h in sorted(self.hist.items())}
        return MetricsSnapshot(
            machine=m.name, ranks=self.ranks, kernels=kernels,
            net_bytes=dict(self.net_bytes), totals=totals,
            histograms=hists)


@dataclass
class MetricsSnapshot:
    """Frozen registry state plus derived gauges, ready to export."""

    machine: str
    ranks: int
    kernels: dict[tuple[str, str], dict]
    net_bytes: dict[str, float]
    totals: dict
    histograms: dict[str, dict]

    def to_dict(self) -> dict:
        """JSON-safe document (tuple keys flattened to "phase/kernel").

        This is what rides on ``SolveResult.metrics`` and inside
        experiment artifacts.
        """
        return {
            "machine": self.machine,
            "ranks": self.ranks,
            "kernels": {_key_str(k): dict(v)
                        for k, v in self.kernels.items()},
            "net_bytes": {k: float(v) for k, v in self.net_bytes.items()},
            "totals": dict(self.totals),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the snapshot."""
        def fmt(v: float) -> str:
            return repr(float(v))

        lines: list[str] = []

        def counter(name: str, help_: str,
                    rows: list[tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} counter")
            for labels, v in rows:
                lines.append(f"{name}{{{labels}}} {fmt(v)}")

        def kl(key: tuple[str, str]) -> str:
            return f'phase="{key[0]}",kernel="{key[1]}"'

        counter("repro_kernel_seconds_total",
                "Modeled seconds charged per phase/kernel.",
                [(kl(k), v["seconds"]) for k, v in self.kernels.items()])
        counter("repro_kernel_calls_total",
                "Charge calls per phase/kernel.",
                [(kl(k), v["calls"]) for k, v in self.kernels.items()])
        counter("repro_kernel_flops_total",
                "Floating-point operations retired per phase/kernel.",
                [(kl(k), v["flops"]) for k, v in self.kernels.items()
                 if v["flops"]])
        counter("repro_kernel_mem_bytes_total",
                "Device-memory bytes moved per phase/kernel.",
                [(kl(k), v["mem_bytes"]) for k, v in self.kernels.items()
                 if v["mem_bytes"]])
        counter("repro_kernel_driver_seconds_total",
                "Seconds charged to driver-side execution.",
                [(kl(k), v["driver_seconds"])
                 for k, v in self.kernels.items() if v["driver_seconds"]])
        counter("repro_net_bytes_total",
                "Network wire bytes per collective kind.",
                [(f'kind="{k}"', v) for k, v in self.net_bytes.items()])

        def gauge(name: str, help_: str, field_: str) -> None:
            rows = [(kl(k), v[field_]) for k, v in self.kernels.items()
                    if field_ in v]
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} gauge")
            for labels, v in rows:
                lines.append(f"{name}{{{labels}}} {fmt(v)}")
            if field_ in self.totals:
                lines.append(
                    f'{name}{{phase="all",kernel="all"}} '
                    f"{fmt(self.totals[field_])}")

        gauge("repro_arithmetic_intensity",
              "Flops per device-memory byte (roofline x-axis).",
              "arithmetic_intensity")
        gauge("repro_roofline_flop_utilization",
              "Fraction of machine peak flops sustained.",
              "flop_utilization")
        gauge("repro_roofline_mem_bw_utilization",
              "Fraction of machine memory bandwidth sustained.",
              "mem_bw_utilization")

        name = "repro_kernel_duration_seconds"
        lines.append(f"# HELP {name} Per-charge duration distribution.")
        lines.append(f"# TYPE {name} histogram")
        for kern, h in self.histograms.items():
            for le, n in h["buckets"]:
                le_s = "+Inf" if le == float("inf") else repr(le)
                lines.append(
                    f'{name}_bucket{{kernel="{kern}",le="{le_s}"}} {n}')
            lines.append(f'{name}_sum{{kernel="{kern}"}} {fmt(h["sum"])}')
            lines.append(f'{name}_count{{kernel="{kern}"}} {h["count"]}')
        return "\n".join(lines) + "\n"
