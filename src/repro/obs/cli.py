"""``repro-trace``: inspect and convert exported trace files.

Subcommands over the files :mod:`repro.obs.export` writes (Chrome
trace-event JSON or JSONL, sniffed automatically):

``repro-trace summarize trace.json [--json]``
    Per-stream, per-phase totals, span counts and collective payload
    bytes — the quick "what's in this trace" view.  ``--json`` emits
    the machine-readable :func:`summarize_doc` instead (what the
    calibration experiment embeds in its artifact).

``repro-trace diff a.json [b.json]``
    Per-phase share-drift table between two traces; with a single file
    containing both streams (an mp-backend export), diffs its modeled
    track against its measured one.

``repro-trace metrics trace.json [--prometheus]``
    Replay a trace's kernel charges into a metrics registry and print
    the JSON snapshot (or Prometheus text exposition).  Flop/byte
    gauges need a live :class:`CostModel` feed, so a replay carries
    seconds / calls / network bytes only.

``repro-trace calibrate trace.json [--machine M] [--ranks N]``
    Fit LogGP machine constants from an mp run's twin span streams
    (:func:`repro.obs.calibrate.fit_machine`) and print the calibrated
    constants next to the base machine's.

``repro-trace export in.jsonl out.json``
    Convert between the JSONL and Chrome formats (target chosen by the
    output extension, or forced with ``--format``).

Installed as a console script by ``pip install``; equally runnable from
a checkout as ``PYTHONPATH=src python -m repro.obs.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

from repro.obs.drift import drift_report
from repro.obs.export import export_chrome_trace, export_jsonl, load_spans
from repro.parallel.machine import PRESETS
from repro.parallel.tracing import TraceTotals


def _accumulate(spans) -> dict[str, TraceTotals]:
    """Rebuild per-stream accumulator totals from driver kernel spans."""
    per_stream: dict[str, dict] = defaultdict(
        lambda: {"clock": 0.0, "by_phase": defaultdict(float),
                 "by_kernel": defaultdict(float), "counts": defaultdict(int),
                 "payload": defaultdict(float)})
    for s in spans:
        if s.cat != "kernel" or s.rank is not None:
            continue
        acc = per_stream[s.stream]
        acc["clock"] = max(acc["clock"], s.t1)
        acc["by_phase"][s.phase] += s.duration
        acc["by_kernel"][(s.phase, s.name)] += s.duration
        acc["counts"][(s.phase, s.name)] += s.count
        if s.payload_bytes:
            acc["payload"][(s.phase, s.name)] += s.payload_bytes
    return {stream: TraceTotals(acc["clock"], dict(acc["by_phase"]),
                                dict(acc["by_kernel"]), dict(acc["counts"]),
                                payload_bytes=dict(acc["payload"]))
            for stream, acc in per_stream.items()}


def summarize_doc(spans) -> dict:
    """Machine-readable trace summary: per-stream totals + span stats.

    The JSON form behind ``repro-trace summarize --json``; the
    calibration experiment embeds it in ``BENCH_calibration.json``.
    """
    streams = {}
    for stream, totals in sorted(_accumulate(spans).items()):
        lanes = {s.rank for s in spans
                 if s.stream == stream and s.rank is not None}
        payload = sum(s.payload_bytes for s in spans
                      if s.stream == stream and s.payload_bytes is not None
                      and s.rank is None)
        n = sum(1 for s in spans if s.stream == stream)
        streams[stream] = {
            "spans": n,
            "rank_lanes": len(lanes),
            "collective_payload_bytes": float(payload),
            "totals": totals.to_dict(),
        }
    return {"n_spans": len(spans), "streams": streams}


def _summarize(args) -> int:
    spans = load_spans(args.trace)
    if getattr(args, "json", False):
        print(json.dumps(summarize_doc(spans), indent=2, sort_keys=True))
        return 0 if spans else 1
    if not spans:
        print(f"{args.trace}: no spans")
        return 1
    print(f"{args.trace}: {len(spans)} spans")
    for stream, totals in sorted(_accumulate(spans).items()):
        lanes = {s.rank for s in spans
                 if s.stream == stream and s.rank is not None}
        payload = sum(s.payload_bytes for s in spans
                      if s.stream == stream and s.payload_bytes is not None
                      and s.rank is None)
        print(f"\n[{stream}] clock {totals.clock:.6f} s"
              + (f", {len(lanes)} rank lanes" if lanes else "")
              + f", {payload:.0f} collective payload bytes")
        for phase in sorted(totals.by_phase, key=lambda p: -totals.by_phase[p]):
            kerns = sorted(
                ((k[1], v) for k, v in totals.by_kernel.items()
                 if k[0] == phase), key=lambda kv: -kv[1])
            detail = ", ".join(
                f"{k} {v:.6f}s (x{totals.counts[(phase, k)]})"
                for k, v in kerns)
            print(f"  {phase:<12s} {totals.by_phase[phase]:.6f} s  [{detail}]")
    return 0


def _metrics(args) -> int:
    from repro.obs.metrics import MetricsRegistry

    spans = load_spans(args.trace)
    machine = PRESETS[args.machine]()
    wanted = [s for s in spans
              if s.cat == "kernel" and s.rank is None
              and s.stream == args.stream]
    if not wanted:
        print(f"{args.trace}: no driver kernel spans on stream "
              f"{args.stream!r}", file=sys.stderr)
        return 1
    ranks = args.ranks
    if ranks is None:
        lanes = {s.rank for s in spans if s.rank is not None}
        ranks = len(lanes) if lanes else 1
    reg = MetricsRegistry(machine, ranks)
    for s in wanted:
        reg.observe(s.phase, s.name, s.duration, s.count,
                    s.payload_bytes, s.driver_side)
    snap = reg.snapshot()
    if args.prometheus:
        print(snap.to_prometheus(), end="")
    else:
        print(json.dumps(snap.to_dict(), indent=2, sort_keys=True))
    return 0


def _calibrate(args) -> int:
    from repro.obs.calibrate import calibrate

    spans = load_spans(args.trace)
    base = PRESETS[args.machine]()
    fit = calibrate(spans, base=base, ranks=args.ranks)
    if args.json:
        print(json.dumps(fit.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"calibrated {base.name!r} from {fit.n_net_pairs} network + "
          f"{fit.n_kernel_pairs} kernel span pairs "
          f"({fit.n_driver_excluded} driver-side collective charges "
          f"excluded, {fit.span_mismatches} mismatches)")
    print(f"  latency scale {fit.lam_net:.3e}   wire scale "
          f"{fit.beta_net:.3e}   launch scale {fit.kappa_kernel:.3e}   "
          f"rate scale {fit.gamma_kernel:.3e}")
    rows = fit.to_dict()["constants"]
    for key, value in rows.items():
        print(f"  {key:<22s} {getattr(base, key):>12.4e} -> {value:>12.4e}")
    return 0


def _diff(args) -> int:
    spans_a = load_spans(args.a)
    if args.b is not None:
        spans_b = load_spans(args.b)
        acc_a, acc_b = _accumulate(spans_a), _accumulate(spans_b)
        if len(acc_a) != 1 or len(acc_b) != 1:
            # multi-stream files diff stream-by-stream on matching tags
            common = sorted(set(acc_a) & set(acc_b))
            if not common:
                print("no common stream between the two traces")
                return 1
            for stream in common:
                print(f"[{stream}] {args.a} vs {args.b}")
                rep = drift_report(
                    acc_a[stream], acc_b[stream],
                    modeled_spans=[s for s in spans_a if s.stream == stream],
                    measured_spans=[s for s in spans_b if s.stream == stream])
                print(rep.summary())
            return 0
        (ta,) = acc_a.values()
        (tb,) = acc_b.values()
        rep = drift_report(ta, tb, modeled_spans=spans_a,
                           measured_spans=spans_b)
        print(rep.summary())
        return 0
    acc = _accumulate(spans_a)
    if not ("modeled" in acc and "measured" in acc):
        print(f"{args.a} holds streams {sorted(acc)}; need both 'modeled' "
              f"and 'measured' to self-diff (or pass a second trace)")
        return 1
    by_stream = defaultdict(list)
    for s in spans_a:
        by_stream[s.stream].append(s)
    rep = drift_report(acc["modeled"], acc["measured"],
                       modeled_spans=by_stream["modeled"],
                       measured_spans=by_stream["measured"])
    print(rep.summary())
    return 0


def _export(args) -> int:
    spans = load_spans(args.src)
    fmt = args.format
    if fmt is None:
        fmt = "jsonl" if Path(args.dst).suffix == ".jsonl" else "chrome"
    if fmt == "jsonl":
        path = export_jsonl(args.dst, spans)
    else:
        path = export_chrome_trace(args.dst, spans)
    print(f"wrote {path} ({fmt}, {len(spans)} spans)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro-trace", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("summarize", help="per-stream/phase totals of a trace")
    s.add_argument("trace")
    s.add_argument("--json", action="store_true",
                   help="machine-readable summary document")
    s.set_defaults(func=_summarize)

    m = sub.add_parser("metrics",
                       help="replay a trace into a metrics registry")
    m.add_argument("trace")
    m.add_argument("--machine", choices=sorted(PRESETS), default="summit")
    m.add_argument("--ranks", type=int, default=None,
                   help="rank count (default: inferred from rank lanes)")
    m.add_argument("--stream", choices=("modeled", "measured"),
                   default="modeled")
    m.add_argument("--prometheus", action="store_true",
                   help="Prometheus text exposition instead of JSON")
    m.set_defaults(func=_metrics)

    c = sub.add_parser("calibrate",
                       help="fit LogGP constants from an mp-run trace")
    c.add_argument("trace")
    c.add_argument("--machine", choices=sorted(PRESETS), default="summit")
    c.add_argument("--ranks", type=int, default=None,
                   help="rank count (default: inferred from rank lanes)")
    c.add_argument("--json", action="store_true",
                   help="machine-readable fit document")
    c.set_defaults(func=_calibrate)

    d = sub.add_parser("diff", help="per-phase share drift between traces")
    d.add_argument("a")
    d.add_argument("b", nargs="?", default=None,
                   help="second trace; omit to diff one file's modeled "
                        "stream against its measured one")
    d.set_defaults(func=_diff)

    e = sub.add_parser("export", help="convert between trace formats")
    e.add_argument("src")
    e.add_argument("dst")
    e.add_argument("--format", choices=("chrome", "jsonl"), default=None,
                   help="target format (default: by output extension)")
    e.set_defaults(func=_export)
    return p


def main(argv: list | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped into head) — standard CLI exit
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
