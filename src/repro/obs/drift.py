"""Predicted-vs-measured drift monitor.

The mp backend produces twin timelines for one solve: the **measured**
tracer (wall-clock ``perf_counter`` deltas) and its **modeled** twin
(the SimComm cost formulas, bit-identical to a ``backend="sim"`` run).
This module quantifies how far the model's *shape* drifts from reality.

Raw magnitudes are incommensurable by design — modeled seconds describe
the configured machine (e.g. a V100 cluster), measured seconds are
Python processes on the CI host — so the gateable metric is the
**share drift**: for each phase, the absolute difference between the
fraction of total time the model assigns it and the fraction actually
measured (``|modeled_share - measured_share|``, in [0, 1]).  The raw
per-phase relative error *after removing the global scale factor*
(``measured_total / modeled_total``) is reported alongside for
calibration work, as is the span-by-span pairing count: when both
tracers recorded spans, every driver-side kernel charge on the modeled
twin is matched in order against its measured sibling, and any sequence
mismatch — the model charging a kernel the execution never paid for, or
vice versa — is counted in :attr:`DriftReport.span_mismatches`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.tracing import SpanEvent, Tracer, TraceTotals

#: Default gate on :attr:`DriftReport.max_share_drift` — deliberately
#: loose (the CI host's Python-process timings are nothing like the
#: modeled cluster's); tightens as LogGP calibration lands.
DEFAULT_DRIFT_BOUND = 0.95


@dataclass(frozen=True)
class PhaseDrift:
    """Model-vs-measurement comparison for one phase."""

    phase: str
    modeled_seconds: float
    measured_seconds: float
    modeled_share: float
    measured_share: float
    #: |measured - scale * modeled| / (scale * modeled): relative error
    #: after the global scale factor is removed (inf when the model
    #: assigns the phase zero time but measurement saw some).
    rel_error: float
    #: |modeled_share - measured_share|, the gated metric.
    share_drift: float
    #: Driver-side kernel spans paired in this phase (0 without spans).
    spans_paired: int = 0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "modeled_seconds": self.modeled_seconds,
            "measured_seconds": self.measured_seconds,
            "modeled_share": self.modeled_share,
            "measured_share": self.measured_share,
            "rel_error": self.rel_error,
            "share_drift": self.share_drift,
            "spans_paired": self.spans_paired,
        }


@dataclass(frozen=True)
class DriftReport:
    """Per-phase drift between a modeled and a measured timeline."""

    phases: tuple = ()
    modeled_total: float = 0.0
    measured_total: float = 0.0
    #: measured_total / modeled_total — the one number separating "the
    #: model is wrong" from "the host is not the modeled machine".
    scale: float = float("nan")
    span_mismatches: int = 0
    spans_paired: int = 0

    @property
    def max_share_drift(self) -> float:
        """Worst per-phase share drift (0.0 for an empty report)."""
        return max((p.share_drift for p in self.phases), default=0.0)

    def within(self, bound: float = DEFAULT_DRIFT_BOUND) -> bool:
        """True when every phase's share drift is below ``bound``."""
        return self.max_share_drift < bound

    def phase_drift(self, phase: str) -> "PhaseDrift | None":
        for p in self.phases:
            if p.phase == phase:
                return p
        return None

    def to_dict(self) -> dict:
        """JSON-safe document (the ``drift`` section of
        ``BENCH_measured.json``)."""
        return {
            "modeled_total": self.modeled_total,
            "measured_total": self.measured_total,
            "scale": self.scale,
            "max_share_drift": self.max_share_drift,
            "span_mismatches": self.span_mismatches,
            "spans_paired": self.spans_paired,
            "phases": [p.to_dict() for p in self.phases],
        }

    def summary(self) -> str:
        """Human-readable per-phase table."""
        lines = [f"scale (measured/modeled): {self.scale:.3e}    "
                 f"max share drift: {self.max_share_drift:.3f}    "
                 f"spans paired: {self.spans_paired} "
                 f"(mismatched: {self.span_mismatches})"]
        lines.append(f"  {'phase':<12s} {'modeled':>12s} {'measured':>12s} "
                     f"{'m.share':>8s} {'x.share':>8s} {'drift':>7s}")
        for p in sorted(self.phases, key=lambda p: -p.share_drift):
            lines.append(
                f"  {p.phase:<12s} {p.modeled_seconds:>12.6f} "
                f"{p.measured_seconds:>12.6f} {p.modeled_share:>8.1%} "
                f"{p.measured_share:>8.1%} {p.share_drift:>7.3f}")
        return "\n".join(lines)


def _kernel_spans(spans) -> list[SpanEvent]:
    """Driver-side kernel spans only — phase envelopes and per-rank lane
    spans are presentation, not charges, and must not be paired."""
    return [s for s in spans if s.cat == "kernel" and s.rank is None]


def pair_kernel_spans(modeled_spans, measured_spans
                      ) -> tuple[list[tuple[SpanEvent, SpanEvent]], int]:
    """Pair the two streams' kernel charges in order.

    Both backends funnel every charge through the same call sites, so
    the n-th modeled kernel span and the n-th measured one describe the
    same logical operation; a ``(phase, name)`` disagreement (or a
    length difference) counts as a mismatch.  Returns
    ``(pairs, mismatches)`` where pairs holds only the agreeing ones.
    """
    mod = _kernel_spans(modeled_spans)
    mea = _kernel_spans(measured_spans)
    pairs = []
    mismatches = abs(len(mod) - len(mea))
    for m, x in zip(mod, mea):
        if (m.phase, m.name) == (x.phase, x.name):
            pairs.append((m, x))
        else:
            mismatches += 1
    return pairs, mismatches


def _totals(source) -> TraceTotals:
    return source.snapshot() if isinstance(source, Tracer) else source


def drift_report(modeled, measured, *,
                 modeled_spans=None, measured_spans=None) -> DriftReport:
    """Compare a modeled timeline against a measured one.

    ``modeled`` / ``measured`` are :class:`Tracer` or
    :class:`TraceTotals` (e.g. ``tracer.since(snap)`` diffs scoped to
    one solve).  Spans are taken from the tracers when recorded, or
    passed explicitly to scope them independently of the totals.
    """
    if modeled_spans is None and isinstance(modeled, Tracer):
        modeled_spans = modeled.spans
    if measured_spans is None and isinstance(measured, Tracer):
        measured_spans = measured.spans
    mod = _totals(modeled)
    mea = _totals(measured)
    pairs, mismatches = pair_kernel_spans(modeled_spans or (),
                                          measured_spans or ())
    paired_by_phase: dict[str, int] = {}
    for m, _ in pairs:
        paired_by_phase[m.phase] = paired_by_phase.get(m.phase, 0) + 1

    mod_total = float(mod.clock)
    mea_total = float(mea.clock)
    scale = mea_total / mod_total if mod_total > 0 else float("nan")
    phases = []
    for phase in sorted(set(mod.by_phase) | set(mea.by_phase)):
        ms = float(mod.by_phase.get(phase, 0.0))
        xs = float(mea.by_phase.get(phase, 0.0))
        m_share = ms / mod_total if mod_total > 0 else 0.0
        x_share = xs / mea_total if mea_total > 0 else 0.0
        scaled = ms * scale if scale == scale else 0.0  # NaN-safe
        if scaled > 0:
            rel = abs(xs - scaled) / scaled
        else:
            rel = 0.0 if xs == 0.0 else float("inf")
        phases.append(PhaseDrift(
            phase=phase, modeled_seconds=ms, measured_seconds=xs,
            modeled_share=m_share, measured_share=x_share,
            rel_error=rel, share_drift=abs(m_share - x_share),
            spans_paired=paired_by_phase.get(phase, 0)))
    return DriftReport(phases=tuple(phases), modeled_total=mod_total,
                       measured_total=mea_total, scale=scale,
                       span_mismatches=mismatches, spans_paired=len(pairs))
