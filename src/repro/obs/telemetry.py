"""Per-cycle solve telemetry: :class:`CycleRecord` and its builder.

The s-step solvers used to smuggle their numerics monitors — the
residual-gap test of arXiv:2409.03079, the basis-condition estimate
``kappa(S V)``, the leave-one-out embedding-distortion estimate of
arXiv:2503.16717 — through an ad-hoc ``diagnostics`` dict of running
maxima.  :class:`SolveTelemetry` records the same observations as one
structured :class:`CycleRecord` per restart cycle instead, so a caller
can see *which* cycle went bad, when the adaptive driver switched modes,
and where a re-sketch was requested.  The legacy ``diagnostics`` keys
are derived from the records at the end of the solve (``max_of`` /
``count_event``), so their values are unchanged.

The builder mirrors how the solver discovers facts about a cycle:

* :meth:`SolveTelemetry.begin_cycle` opens a record when the cycle's
  basis generation starts;
* :meth:`observe` folds checkpoint measurements in as running per-cycle
  maxima (the solver applies its own validity filters first — e.g. only
  finite condition estimates count, exactly as ``diagnostics`` did);
* :meth:`end_cycle` freezes the record with the cumulative iteration
  count;
* :meth:`observe_gap` lands on the *previous* (already frozen) record,
  because the explicit residual that reveals a cycle's estimated/true
  gap is only computed at the top of the next cycle;
* :meth:`event_last` likewise attributes restart-boundary decisions
  (adaptive mode switches) to the cycle whose monitors triggered them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


#: CycleRecord measurement fields maintained as running per-cycle maxima.
MAX_FIELDS = ("basis_condition", "embedding_distortion", "residual_gap")


@dataclass(frozen=True)
class CycleRecord:
    """Everything one restart cycle reported about itself.

    ``cycle`` numbers restarts from 0; ``iterations`` is the solver's
    *cumulative* iteration count when the cycle ended.  Measurement
    fields are ``None`` when the cycle never produced the observation
    (e.g. ``basis_condition`` in a classical-mode cycle).  ``events``
    is an ordered tuple of tags such as ``"resketch_requested"``,
    ``"breakdown"``, ``"mode_switch:sketched"`` or
    ``"trigger:loosen_inner_tol"``.
    """

    cycle: int
    iterations: int
    mode: str | None = None
    residual_norm: float | None = None
    residual_gap: float | None = None
    basis_condition: float | None = None
    embedding_distortion: float | None = None
    events: tuple = ()

    def to_dict(self) -> dict:
        """JSON-safe flat dict (``events`` as a list)."""
        doc = dataclasses.asdict(self)
        doc["events"] = list(self.events)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CycleRecord":
        return cls(cycle=int(doc["cycle"]), iterations=int(doc["iterations"]),
                   mode=doc.get("mode"),
                   residual_norm=doc.get("residual_norm"),
                   residual_gap=doc.get("residual_gap"),
                   basis_condition=doc.get("basis_condition"),
                   embedding_distortion=doc.get("embedding_distortion"),
                   events=tuple(doc.get("events", ())))


class SolveTelemetry:
    """Mutable builder accumulating :class:`CycleRecord` objects.

    One instance per solve; :meth:`to_list` is what lands on
    ``SolveResult.telemetry``.  All mutators are cheap (dict updates) —
    telemetry is always on, it replaces the diagnostics bookkeeping the
    solver did anyway.
    """

    def __init__(self) -> None:
        self.records: list[CycleRecord] = []
        self._pending: dict | None = None
        self._events: list[str] = []

    # -- building -------------------------------------------------------
    def begin_cycle(self, cycle: int, mode: str | None = None) -> None:
        """Open the record for restart cycle ``cycle`` (closing any
        record left pending, defensively)."""
        if self._pending is not None:
            self.end_cycle(int(self._pending.get("iterations", 0)))
        self._pending = {"cycle": int(cycle), "iterations": 0, "mode": mode}
        self._events = []

    def observe(self, field: str, value: float) -> None:
        """Fold a checkpoint measurement into the pending record
        (running max — checkpoints repeat within a cycle)."""
        if self._pending is None or field not in MAX_FIELDS:
            return
        prev = self._pending.get(field)
        value = float(value)
        self._pending[field] = value if prev is None else max(prev, value)

    def note_residual(self, relative_residual: float) -> None:
        """Record the latest checkpoint's relative residual estimate."""
        if self._pending is not None:
            self._pending["residual_norm"] = float(relative_residual)

    def event(self, name: str) -> None:
        """Tag the pending cycle with a named event."""
        if self._pending is not None:
            self._events.append(str(name))

    def event_last(self, name: str) -> None:
        """Tag the most recently *completed* cycle — for decisions made
        at the next restart boundary from that cycle's monitors."""
        if not self.records:
            return
        last = self.records[-1]
        self.records[-1] = dataclasses.replace(
            last, events=last.events + (str(name),))

    def observe_gap(self, gap: float) -> None:
        """Attach a residual-gap measurement to the last completed cycle
        (the explicit residual exposing it is computed one restart
        later)."""
        if not self.records:
            return
        last = self.records[-1]
        prev = last.residual_gap
        gap = float(gap)
        self.records[-1] = dataclasses.replace(
            last, residual_gap=gap if prev is None else max(prev, gap))

    def end_cycle(self, iterations: int) -> CycleRecord | None:
        """Freeze the pending record with the cumulative ``iterations``
        count; no-op (returns None) when no cycle is open."""
        if self._pending is None:
            return None
        doc = self._pending
        self._pending = None
        rec = CycleRecord(
            cycle=doc["cycle"], iterations=int(iterations),
            mode=doc.get("mode"), residual_norm=doc.get("residual_norm"),
            residual_gap=doc.get("residual_gap"),
            basis_condition=doc.get("basis_condition"),
            embedding_distortion=doc.get("embedding_distortion"),
            events=tuple(self._events))
        self._events = []
        self.records.append(rec)
        return rec

    # -- reading --------------------------------------------------------
    @property
    def last(self) -> CycleRecord | None:
        """Most recently completed record (None before the first)."""
        return self.records[-1] if self.records else None

    def max_of(self, field: str, default: float | None = None):
        """Max of a measurement field across all records, skipping
        ``None`` observations; ``default`` when nothing was observed."""
        values = [getattr(r, field) for r in self.records
                  if getattr(r, field) is not None]
        if self._pending is not None and self._pending.get(field) is not None:
            values.append(self._pending[field])
        return max(values) if values else default

    def count_event(self, name: str) -> int:
        """Occurrences of event ``name`` (exact, or ``name:detail``)
        across all records and the pending cycle."""
        def match(e: str) -> bool:
            return e == name or e.startswith(name + ":")
        n = sum(1 for r in self.records for e in r.events if match(e))
        return n + sum(1 for e in self._events if match(e))

    def to_list(self) -> list[CycleRecord]:
        return list(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
