"""repro — two-stage block orthogonalization for s-step GMRES.

A from-scratch Python reproduction of

    I. Yamazaki, A. J. Higgins, E. G. Boman, D. B. Szyld,
    "Two-Stage Block Orthogonalization to Improve Performance of
    s-step GMRES", IPDPS 2024 (arXiv:2402.15033),

including the block-orthogonalization algorithms (BCGS2, BCGS-PIP,
BCGS-PIP2, the two-stage scheme), the s-step GMRES solver around them,
and an execution-driven simulator of the paper's GPU-cluster substrate
for the performance studies.

Quickstart (the curated top-level surface is all you need)::

    import numpy as np
    import repro

    a = repro.matrices.laplace2d(64)
    b = np.ones(a.shape[0])
    with repro.Simulation(a, ranks=4) as sim:   # backend="mp" for real processes
        result = repro.sstep_gmres(
            sim, b, s=5, restart=30,
            scheme=repro.get_scheme("two-stage", restart=30),
            options=repro.SolverOptions(mpk_mode="auto"))

See ``examples/quickstart.py`` and README.md.
"""

from repro._version import __version__
from repro import (config, dd, distla, matrices, obs, ortho, parallel,
                   precision, precond, sketch)
from repro.obs import CycleRecord, DriftReport, drift_report
from repro.parallel import BACKENDS, Communicator, make_comm
from repro.exceptions import (
    CholeskyBreakdownError,
    ConfigurationError,
    ConvergenceError,
    NumericalError,
    ReproError,
)
from repro.ortho import (
    BCGS2Scheme,
    BCGSPIP2Scheme,
    BCGSPIPScheme,
    CholQR,
    CholQR2,
    HouseholderQR,
    MixedPrecisionCholQR,
    MixedPrecisionTwoStageScheme,
    RBCGSScheme,
    ShiftedCholQR,
    SketchedCholQR,
    SketchedTwoStageScheme,
    TSQRFactor,
    TwoStageScheme,
    get_intra_qr,
    get_scheme,
)
from repro.precision import PrecisionPolicy, resolve_policy
from repro.krylov import (Simulation, SolverOptions, adaptive_sstep_gmres,
                          block_sstep_gmres, gmres, gmres_ir,
                          pipelined_gmres, sstep_gmres)
from repro import service

__all__ = [
    "__version__",
    "config",
    "dd",
    "distla",
    "matrices",
    "obs",
    "CycleRecord",
    "DriftReport",
    "drift_report",
    "ortho",
    "parallel",
    "precision",
    "precond",
    "sketch",
    "ReproError",
    "ConfigurationError",
    "NumericalError",
    "CholeskyBreakdownError",
    "ConvergenceError",
    "BCGS2Scheme",
    "BCGSPIPScheme",
    "BCGSPIP2Scheme",
    "TwoStageScheme",
    "RBCGSScheme",
    "SketchedTwoStageScheme",
    "MixedPrecisionTwoStageScheme",
    "PrecisionPolicy",
    "resolve_policy",
    "get_intra_qr",
    "get_scheme",
    "CholQR",
    "CholQR2",
    "ShiftedCholQR",
    "MixedPrecisionCholQR",
    "SketchedCholQR",
    "HouseholderQR",
    "TSQRFactor",
    "BACKENDS",
    "Communicator",
    "make_comm",
    "Simulation",
    "SolverOptions",
    "gmres",
    "sstep_gmres",
    "block_sstep_gmres",
    "gmres_ir",
    "adaptive_sstep_gmres",
    "pipelined_gmres",
    "service",
]
