"""Block-row distributed multivectors (sets of long column vectors).

A :class:`DistMultiVector` owns one float64 shard per rank, each of shape
``(rows_on_rank, k)``.  Column *views* share shard memory so a Krylov
solver can preallocate the full ``n x (m+1)`` basis once and hand
orthogonalization kernels zero-copy windows into it — the same pattern
Trilinos uses with Tpetra MultiVector subviews.

When the partition is *uniform* (every rank owns the same row count) the
library constructors additionally back the shards by one contiguous
``(ranks, rows, k)`` array, exposed via :attr:`DistMultiVector.stack`.
The batched execution engine (:mod:`repro.distla.engine`) runs its
kernels directly on that stack — one batched GEMM over the rank axis
instead of a Python loop — while the per-rank ``shards`` views stay valid
for loop-path code and for the simulated sparse kernels.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.parallel.communicator import SimComm
from repro.parallel.partition import Partition


class DistMultiVector:
    """``n_global x k`` dense block, rows distributed by ``partition``.

    Not a NumPy subclass on purpose: every arithmetic op must go through
    the costed BLAS layer, so the container exposes only structure
    (shards, views, gather/scatter) and no operators.
    """

    __slots__ = ("partition", "comm", "shards", "_base", "_stack")

    def __init__(self, partition: Partition, comm: SimComm,
                 shards: list[np.ndarray], _base: "DistMultiVector | None" = None,
                 _stack: np.ndarray | None = None):
        if len(shards) != partition.ranks:
            raise ShapeError(
                f"need {partition.ranks} shards, got {len(shards)}")
        k = shards[0].shape[1] if shards else 0
        for r, s in enumerate(shards):
            if s.ndim != 2 or s.shape != (partition.local_count(r), k):
                raise ShapeError(
                    f"shard {r} has shape {s.shape}, expected "
                    f"({partition.local_count(r)}, {k})")
        self.partition = partition
        self.comm = comm
        self.shards = shards
        self._base = _base  # keeps the owning vector alive for views
        # (ranks, rows, k) array aliasing the shards, or None (ragged
        # partitions, or shards supplied directly by the caller).
        self._stack = _stack

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, partition: Partition, comm: SimComm, k: int) -> "DistMultiVector":
        if partition.is_uniform:
            base = np.zeros((partition.ranks, partition.local_count(0), k))
            return cls(partition, comm, list(base), _stack=base)
        shards = [np.zeros((partition.local_count(r), k))
                  for r in range(partition.ranks)]
        return cls(partition, comm, shards)

    @classmethod
    def from_global(cls, arr: np.ndarray, partition: Partition,
                    comm: SimComm) -> "DistMultiVector":
        """Scatter a global ``(n, k)`` or ``(n,)`` array into shards (copies)."""
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, np.newaxis]
        if arr.shape[0] != partition.n_global:
            raise ShapeError(
                f"array has {arr.shape[0]} rows, partition expects "
                f"{partition.n_global}")
        if partition.is_uniform:
            base = np.array(arr, dtype=np.float64, copy=True).reshape(
                partition.ranks, partition.local_count(0), arr.shape[1])
            return cls(partition, comm, list(base), _stack=base)
        shards = [np.array(arr[partition.local_slice(r)], copy=True)
                  for r in range(partition.ranks)]
        return cls(partition, comm, shards)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_global(self) -> int:
        return self.partition.n_global

    @property
    def n_cols(self) -> int:
        return int(self.shards[0].shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_global, self.n_cols)

    @property
    def stack(self) -> np.ndarray | None:
        """``(ranks, rows, k)`` array aliasing the shards, or None.

        Present only for uniform partitions whose storage was allocated by
        the library constructors; the batched engine keys off this.
        """
        return self._stack

    def view_cols(self, cols: slice | int) -> "DistMultiVector":
        """Zero-copy view of a column range (int selects one column)."""
        if isinstance(cols, int):
            cols = slice(cols, cols + 1)
        shards = [s[:, cols] for s in self.shards]
        stack = None if self._stack is None else self._stack[:, :, cols]
        return DistMultiVector(self.partition, self.comm, shards,
                               _base=self._base or self, _stack=stack)

    def copy(self) -> "DistMultiVector":
        if self._stack is not None:
            base = self._stack.copy()  # fresh contiguous (ranks, rows, k)
            return DistMultiVector(self.partition, self.comm, list(base),
                                   _stack=base)
        shards = [np.array(s, copy=True) for s in self.shards]
        return DistMultiVector(self.partition, self.comm, shards)

    def to_global(self) -> np.ndarray:
        """Gather into one ``(n, k)`` array (simulation-side; not costed)."""
        return np.concatenate(self.shards, axis=0)

    def assign_from(self, other: "DistMultiVector") -> None:
        """Copy ``other``'s values into this vector's storage."""
        self._check_conformal(other)
        if self._stack is not None and other._stack is not None:
            self._stack[...] = other._stack
            return
        for mine, theirs in zip(self.shards, other.shards):
            mine[...] = theirs

    def fill(self, value: float) -> None:
        if self._stack is not None:
            self._stack[...] = value
            return
        for s in self.shards:
            s.fill(value)

    def _check_conformal(self, other: "DistMultiVector") -> None:
        if self.partition != other.partition:
            raise ShapeError("multivectors live on different partitions")
        if self.n_cols != other.n_cols:
            raise ShapeError(
                f"column mismatch: {self.n_cols} vs {other.n_cols}")

    def __repr__(self) -> str:
        return (f"DistMultiVector(shape={self.shape}, "
                f"ranks={self.partition.ranks})")
