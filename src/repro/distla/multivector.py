"""Block-row distributed multivectors (sets of long column vectors).

A :class:`DistMultiVector` owns one float64 shard per rank, each of shape
``(rows_on_rank, k)``.  Column *views* share shard memory so a Krylov
solver can preallocate the full ``n x (m+1)`` basis once and hand
orthogonalization kernels zero-copy windows into it — the same pattern
Trilinos uses with Tpetra MultiVector subviews.

When the partition is *uniform* (every rank owns the same row count) the
library constructors additionally back the shards by one contiguous
``(ranks, rows, k)`` array, exposed via :attr:`DistMultiVector.stack`.
The batched execution engine (:mod:`repro.distla.engine`) runs its
kernels directly on that stack — one batched GEMM over the rank axis
instead of a Python loop — while the per-rank ``shards`` views stay valid
for loop-path code and for the simulated sparse kernels.

Storage precision: every multivector carries a storage spec
(:data:`repro.precision.dtypes.STORAGE_SPECS` — ``"fp64"``/``"fp32"``/
``"bf16"``) that decides the shard container dtype and the word size the
cost model charges.  Low-precision vectors are *storage* formats only:
the kernel engines accumulate every reduction in float64 and round
results back to the storage grid on write (``"bf16"`` values ride in
float32 containers but are rounded to the bfloat16 grid and charged at
2 bytes/word).  The default ``"fp64"`` reproduces the historical
behavior bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.parallel.communicator import SimComm
from repro.parallel.partition import Partition
from repro.precision import dtypes as _pdtypes


class DistMultiVector:
    """``n_global x k`` dense block, rows distributed by ``partition``.

    Not a NumPy subclass on purpose: every arithmetic op must go through
    the costed BLAS layer, so the container exposes only structure
    (shards, views, gather/scatter) and no operators.
    """

    __slots__ = ("partition", "comm", "shards", "storage", "accumulate",
                 "_base", "_stack")

    def __init__(self, partition: Partition, comm: SimComm,
                 shards: list[np.ndarray], _base: "DistMultiVector | None" = None,
                 _stack: np.ndarray | None = None,
                 storage: str | None = None, accumulate: str = "fp64"):
        if len(shards) != partition.ranks:
            raise ShapeError(
                f"need {partition.ranks} shards, got {len(shards)}")
        k = shards[0].shape[1] if shards else 0
        for r, s in enumerate(shards):
            if s.ndim != 2 or s.shape != (partition.local_count(r), k):
                raise ShapeError(
                    f"shard {r} has shape {s.shape}, expected "
                    f"({partition.local_count(r)}, {k})")
        if storage is None:
            # Infer from the container dtype (callers constructing shards
            # directly predate the precision subsystem): float32 shards
            # are fp32 storage, everything else the fp64 default.  bf16
            # cannot be inferred — its container IS float32 — so it must
            # be requested explicitly.
            storage = ("fp32" if shards and shards[0].dtype == np.float32
                       else "fp64")
        elif shards and shards[0].dtype != _pdtypes.container_dtype(storage):
            # A mislabeled vector would silently compute in the wrong
            # precision AND mischarge bytes (the engines' fast-path and
            # word-size decisions key off `storage`).
            raise ShapeError(
                f"shards have dtype {shards[0].dtype}, but storage "
                f"{storage!r} requires "
                f"{_pdtypes.container_dtype(storage)}")
        if accumulate not in _pdtypes.ACCUMULATE_SPECS:
            raise ShapeError(
                f"unknown accumulate precision {accumulate!r}; expected "
                f"one of {_pdtypes.ACCUMULATE_SPECS}")
        self.partition = partition
        self.comm = comm
        self.shards = shards
        self.storage = _pdtypes.validate_storage(storage)
        # Precision shard-local kernels accumulate partial results in
        # before the (always-float64) reduction tree; "fp32" only takes
        # effect for low-precision storage (see repro.distla.engine).
        self.accumulate = accumulate
        self._base = _base  # keeps the owning vector alive for views
        # (ranks, rows, k) array aliasing the shards, or None (ragged
        # partitions, or shards supplied directly by the caller).
        self._stack = _stack

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, partition: Partition, comm: SimComm, k: int,
              storage: str = "fp64",
              accumulate: str = "fp64") -> "DistMultiVector":
        dtype = _pdtypes.container_dtype(storage)
        if partition.is_uniform:
            # the communicator owns stack storage: the simulator hands
            # back heap arrays, the mp backend shared-memory segments its
            # worker ranks can reach (see repro.parallel.api)
            base = comm.alloc_stack(partition.ranks, partition.local_count(0),
                                    k, dtype)
            return cls(partition, comm, list(base), _stack=base,
                       storage=storage, accumulate=accumulate)
        shards = [np.zeros((partition.local_count(r), k), dtype=dtype)
                  for r in range(partition.ranks)]
        return cls(partition, comm, shards, storage=storage,
                   accumulate=accumulate)

    @classmethod
    def from_global(cls, arr: np.ndarray, partition: Partition,
                    comm: SimComm, storage: str = "fp64",
                    accumulate: str = "fp64") -> "DistMultiVector":
        """Scatter a global ``(n, k)`` or ``(n,)`` array into shards (copies).

        Values are rounded to the ``storage`` grid on the way in.
        """
        arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[:, np.newaxis]
        if arr.shape[0] != partition.n_global:
            raise ShapeError(
                f"array has {arr.shape[0]} rows, partition expects "
                f"{partition.n_global}")
        if partition.is_uniform:
            base = comm.alloc_stack(partition.ranks, partition.local_count(0),
                                    arr.shape[1],
                                    _pdtypes.container_dtype(storage))
            base[...] = _pdtypes.quantize(arr, storage).reshape(base.shape)
            return cls(partition, comm, list(base), _stack=base,
                       storage=storage, accumulate=accumulate)
        shards = [np.array(_pdtypes.quantize(arr[partition.local_slice(r)],
                                             storage), copy=True)
                  for r in range(partition.ranks)]
        return cls(partition, comm, shards, storage=storage,
                   accumulate=accumulate)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_global(self) -> int:
        return self.partition.n_global

    @property
    def n_cols(self) -> int:
        return int(self.shards[0].shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_global, self.n_cols)

    @property
    def stack(self) -> np.ndarray | None:
        """``(ranks, rows, k)`` array aliasing the shards, or None.

        Present only for uniform partitions whose storage was allocated by
        the library constructors; the batched engine keys off this.
        """
        return self._stack

    @property
    def np_dtype(self) -> np.dtype:
        """Container dtype of the shards (bf16 rides in float32)."""
        return _pdtypes.container_dtype(self.storage)

    @property
    def word_bytes(self) -> float:
        """Bytes per stored word — what the cost model charges per element."""
        return _pdtypes.word_bytes(self.storage)

    def quantize(self, arr: np.ndarray) -> np.ndarray:
        """Round ``arr`` to this vector's storage grid (container dtype)."""
        return _pdtypes.quantize(arr, self.storage)

    def view_cols(self, cols: slice | int) -> "DistMultiVector":
        """Zero-copy view of a column range (int selects one column)."""
        if isinstance(cols, int):
            cols = slice(cols, cols + 1)
        shards = [s[:, cols] for s in self.shards]
        stack = None if self._stack is None else self._stack[:, :, cols]
        return DistMultiVector(self.partition, self.comm, shards,
                               _base=self._base or self, _stack=stack,
                               storage=self.storage,
                               accumulate=self.accumulate)

    def copy(self) -> "DistMultiVector":
        if self._stack is not None:
            base = self._stack.copy()  # fresh contiguous (ranks, rows, k)
            return DistMultiVector(self.partition, self.comm, list(base),
                                   _stack=base, storage=self.storage,
                                   accumulate=self.accumulate)
        shards = [np.array(s, copy=True) for s in self.shards]
        return DistMultiVector(self.partition, self.comm, shards,
                               storage=self.storage,
                               accumulate=self.accumulate)

    def to_global(self) -> np.ndarray:
        """Gather into one ``(n, k)`` array (simulation-side; not costed)."""
        return np.concatenate(self.shards, axis=0)

    def assign_from(self, other: "DistMultiVector") -> None:
        """Copy ``other``'s values into this vector's storage.

        Cross-precision copies round to this vector's storage grid.
        """
        self._check_conformal(other)
        same = self.storage == other.storage
        if self._stack is not None and other._stack is not None:
            self._stack[...] = (other._stack if same
                                else self.quantize(other._stack))
            return
        for mine, theirs in zip(self.shards, other.shards):
            mine[...] = theirs if same else self.quantize(theirs)

    def fill(self, value: float) -> None:
        value = self.quantize(np.asarray(value, dtype=np.float64))
        if self._stack is not None:
            self._stack[...] = value
            return
        for s in self.shards:
            s[...] = value

    def _check_conformal(self, other: "DistMultiVector") -> None:
        if self.partition != other.partition:
            raise ShapeError("multivectors live on different partitions")
        if self.n_cols != other.n_cols:
            raise ShapeError(
                f"column mismatch: {self.n_cols} vs {other.n_cols}")

    def __repr__(self) -> str:
        extra = "" if self.storage == "fp64" else f", storage={self.storage!r}"
        return (f"DistMultiVector(shape={self.shape}, "
                f"ranks={self.partition.ranks}{extra})")
