"""Kernel-execution engines behind the costed block-BLAS layer.

The :mod:`repro.distla.blas` functions describe *what* a distributed
operation computes and charges; an engine decides *how* the per-rank
NumPy work executes:

* :class:`LoopEngine` — the reference path: one Python-level BLAS call
  per simulated rank (one GEMM per shard, one cost evaluation per rank).
* :class:`BatchedEngine` — executes equal-sized shards as a single
  batched kernel over the contiguous ``(ranks, rows, k)`` stack that
  :class:`~repro.distla.multivector.DistMultiVector` keeps for uniform
  partitions: ``block_dot`` becomes one ``matmul`` over the rank axis,
  ``lincomb``/``scale`` become whole-stack streaming ops, and the
  reduction tree folds with one vectorized add per level.  Any operand
  without a stack (ragged partition, caller-supplied shards) falls back
  to the loop path op-by-op, so results and charged costs never depend
  on which constructor built the vector.

Both engines preserve the MPI-faithful pairwise reduction order (see
:class:`~repro.parallel.communicator.SimComm`) and charge identical
modeled costs: uniform partitions make the per-rank cost formula the
same on every rank, so ``max(costs)`` equals the single evaluated value.

Selection: pass ``engine="loop"|"batched"`` to a blas call or a
:class:`~repro.ortho.backend.DistBackend`, bind one per communicator
(``SimComm(..., engine=...)``), or set the process default through
:func:`repro.config.set_engine` / the ``REPRO_ENGINE`` variable.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro import config


class KernelEngine:
    """Common interface; concrete engines implement the kernel bodies."""

    name: str = "abstract"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------------
# loop engine (reference semantics)
# ---------------------------------------------------------------------------

class LoopEngine(KernelEngine):
    """One NumPy call per simulated rank — the reference execution path."""

    name = config.ENGINE_LOOP

    # -- reductions -----------------------------------------------------
    def block_dot(self, x, y) -> np.ndarray:
        comm = x.comm
        partials = [xs.T @ ys for xs, ys in zip(x.shards, y.shards)]
        costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols)
                 for xs in x.shards]
        comm.charge_local("dot", costs)
        return comm.allreduce_sum(partials)

    def block_dot_multi(self, pairs) -> list[np.ndarray]:
        comm = pairs[0][0].comm
        groups = []
        for x, y in pairs:
            groups.append([xs.T @ ys for xs, ys in zip(x.shards, y.shards)])
            costs = [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols)
                     for xs in x.shards]
            comm.charge_local("dot", costs)
        return comm.fused_allreduce_sum(groups)

    def column_norms(self, x) -> np.ndarray:
        comm = x.comm
        partials = [np.einsum("ij,ij->j", s, s) for s in x.shards]
        costs = [comm.cost.blas1(s.size, n_streams=1, writes=0)
                 for s in x.shards]
        comm.charge_local("norm", costs)
        sq = comm.allreduce_sum(partials)
        return np.sqrt(sq)

    # -- local (communication-free) updates ------------------------------
    def block_update(self, v, q, r: np.ndarray) -> None:
        comm = v.comm
        for vs, qs in zip(v.shards, q.shards):
            vs -= qs @ r
        costs = [comm.cost.gemm_tall_update(vs.shape[0], q.n_cols, v.n_cols)
                 for vs in v.shards]
        comm.charge_local("update", costs)

    def trsm_inplace(self, v, r: np.ndarray) -> None:
        comm = v.comm
        k = v.n_cols
        for vs in v.shards:
            if vs.shape[0]:
                # Solve R.T x.T = v.T  <=>  x = v R^{-1}; use the transposed
                # triangular solve to stay in C-contiguous layout.
                vs[...] = scipy.linalg.solve_triangular(
                    r, vs.T, trans="T", lower=False).T
        costs = [comm.cost.trsm(vs.shape[0], k) for vs in v.shards]
        comm.charge_local("trsm", costs)

    def scale_columns(self, v, scales: np.ndarray) -> None:
        comm = v.comm
        for vs in v.shards:
            vs *= scales[np.newaxis, :]
        costs = [comm.cost.blas1(vs.size, n_streams=1, writes=1)
                 for vs in v.shards]
        comm.charge_local("scale", costs)

    def lincomb(self, out, terms) -> None:
        comm = out.comm
        for r, outs in enumerate(out.shards):
            acc = terms[0][0] * terms[0][1].shards[r]
            for alpha, x in terms[1:]:
                acc += alpha * x.shards[r]
            outs[...] = acc
        costs = [comm.cost.blas1(s.size, n_streams=len(terms), writes=1)
                 for s in out.shards]
        comm.charge_local("axpy", costs)

    def copy_into(self, dst, src) -> None:
        comm = dst.comm
        dst.assign_from(src)
        costs = [comm.cost.blas1(s.size, n_streams=1, writes=1)
                 for s in src.shards]
        comm.charge_local("axpy", costs)

    def matvec_small(self, v, coeffs: np.ndarray, out) -> None:
        comm = v.comm
        for vs, outs in zip(v.shards, out.shards):
            outs[...] = vs @ coeffs
        costs = [comm.cost.gemm(vs.shape[0], v.n_cols, out.n_cols)
                 for vs in v.shards]
        comm.charge_local("update", costs)

    # -- sketching --------------------------------------------------------
    def _sketch_partials(self, v, op) -> list[np.ndarray]:
        """Per-rank contributions ``S[:, rows_r] @ V_r`` + local charge.

        ``op`` is duck-typed (a :class:`repro.sketch.operators`
        ``SketchOperator``): ``partial(shard, row_offset)`` produces one
        shard's contribution, ``local_cost`` its modeled seconds.
        """
        comm = v.comm
        offsets = v.partition.offsets
        partials = [op.partial(shard, int(offsets[r]))
                    for r, shard in enumerate(v.shards)]
        comm.charge_local(
            "dot", [op.local_cost(comm.cost, s.shape[0], v.n_cols)
                    for s in v.shards])
        return partials

    def sketch_apply(self, v, op) -> np.ndarray:
        """Global sketch ``S @ V``: shard-local partials, one allreduce."""
        return v.comm.allreduce_sum(self._sketch_partials(v, op))

    def fused_dot_sketch(self, pairs, v, op
                         ) -> tuple[list[np.ndarray], np.ndarray]:
        """Several ``X.T @ Y`` plus one sketch ``S @ V`` in ONE collective.

        The randomized schemes' analogue of BCGS-PIP fusion: projection
        coefficients and the panel sketch travel in a single message.
        """
        comm = v.comm
        groups = []
        for x, y in pairs:
            groups.append([xs.T @ ys for xs, ys in zip(x.shards, y.shards)])
            comm.charge_local(
                "dot", [comm.cost.gemm(xs.shape[0], x.n_cols, y.n_cols)
                        for xs in x.shards])
        groups.append(self._sketch_partials(v, op))
        results = comm.fused_allreduce_sum(groups)
        return results[:-1], results[-1]


# ---------------------------------------------------------------------------
# batched engine
# ---------------------------------------------------------------------------

class BatchedEngine(LoopEngine):
    """Single batched kernels over ``(ranks, rows, k)`` shard stacks.

    Inherits the loop implementations as the ragged/unstacked fallback;
    every override first checks that all operands carry a stack.
    """

    name = config.ENGINE_BATCHED

    #: Element cutoff (per operand stack) above which write-heavy kernels
    #: keep the per-rank loop: one rank's shard fits in cache, so the loop
    #: is effectively cache-tiled, while streaming a multi-MB stack plus
    #: its temporaries goes to DRAM.  GEMM reductions (``block_dot``) are
    #: exempt — BLAS tiles those internally, so batching never loses.
    #: Both paths are elementwise-identical, so this is purely a speed
    #: heuristic, never a semantics switch.
    stream_elems_max: int = 131_072  # 1 MiB of float64 per operand

    @staticmethod
    def _stacks(*mvs) -> list[np.ndarray] | None:
        stacks = [mv.stack for mv in mvs]
        if any(s is None for s in stacks):
            return None
        return stacks

    def _stream_stacks(self, *mvs) -> list[np.ndarray] | None:
        """Stacks for a write-heavy streaming kernel, or None to fall back
        (missing stack, or the written operand exceeds the cache cutoff)."""
        stacks = self._stacks(*mvs)
        if stacks is None or stacks[0].size > self.stream_elems_max:
            return None
        return stacks

    # -- reductions -----------------------------------------------------
    def block_dot(self, x, y) -> np.ndarray:
        stacks = self._stacks(x, y)
        if stacks is None:
            return super().block_dot(x, y)
        xs, ys = stacks
        comm = x.comm
        partials = np.matmul(xs.transpose(0, 2, 1), ys)
        comm.charge_uniform(
            "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols))
        return comm.allreduce_sum_stacked(partials)

    def block_dot_multi(self, pairs) -> list[np.ndarray]:
        stacks = []
        for x, y in pairs:
            s = self._stacks(x, y)
            if s is None:
                return super().block_dot_multi(pairs)
            stacks.append(s)
        comm = pairs[0][0].comm
        groups = []
        for (xs, ys), (x, y) in zip(stacks, pairs):
            groups.append(np.matmul(xs.transpose(0, 2, 1), ys))
            comm.charge_uniform(
                "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols))
        return comm.fused_allreduce_sum_stacked(groups)

    def column_norms(self, x) -> np.ndarray:
        stack = x.stack
        if stack is None:
            return super().column_norms(x)
        comm = x.comm
        partials = np.einsum("rij,rij->rj", stack, stack)
        comm.charge_uniform(
            "norm", comm.cost.blas1(stack[0].size, n_streams=1, writes=0))
        sq = comm.allreduce_sum_stacked(partials)
        return np.sqrt(sq)

    # -- local updates ----------------------------------------------------
    def block_update(self, v, q, r: np.ndarray) -> None:
        stacks = self._stream_stacks(v, q)
        if stacks is None:
            return super().block_update(v, q, r)
        sv, sq = stacks
        comm = v.comm
        sv -= np.matmul(sq, r)
        comm.charge_uniform(
            "update",
            comm.cost.gemm_tall_update(sv.shape[1], q.n_cols, v.n_cols))

    def trsm_inplace(self, v, r: np.ndarray) -> None:
        stack = v.stack
        if stack is None:
            return super().trsm_inplace(v, r)
        comm = v.comm
        ranks, rows, k = stack.shape
        if rows and k:
            # One triangular solve over all ranks' rows; reshape copies
            # only when the stack is a strided column view.
            flat = stack.reshape(ranks * rows, k)
            solved = scipy.linalg.solve_triangular(
                r, flat.T, trans="T", lower=False).T
            stack[...] = solved.reshape(ranks, rows, k)
        comm.charge_uniform("trsm", comm.cost.trsm(rows, k))

    def scale_columns(self, v, scales: np.ndarray) -> None:
        stacks = self._stream_stacks(v)
        if stacks is None:
            return super().scale_columns(v, scales)
        stack = stacks[0]
        comm = v.comm
        stack *= scales[np.newaxis, np.newaxis, :]
        comm.charge_uniform(
            "scale", comm.cost.blas1(stack[0].size, n_streams=1, writes=1))

    def lincomb(self, out, terms) -> None:
        stacks = self._stream_stacks(out, *[t[1] for t in terms])
        if stacks is None:
            return super().lincomb(out, terms)
        comm = out.comm
        acc = terms[0][0] * stacks[1]
        for (alpha, _), stack in zip(terms[1:], stacks[2:]):
            acc += alpha * stack
        stacks[0][...] = acc
        comm.charge_uniform(
            "axpy",
            comm.cost.blas1(stacks[0][0].size, n_streams=len(terms), writes=1))

    def copy_into(self, dst, src) -> None:
        stacks = self._stream_stacks(dst, src)
        if stacks is None:
            return super().copy_into(dst, src)
        comm = dst.comm
        stacks[0][...] = stacks[1]
        comm.charge_uniform(
            "axpy", comm.cost.blas1(stacks[1][0].size, n_streams=1, writes=1))

    def matvec_small(self, v, coeffs: np.ndarray, out) -> None:
        stacks = self._stream_stacks(out, v)
        if stacks is None:
            return super().matvec_small(v, coeffs, out)
        sout, sv = stacks
        comm = v.comm
        sout[...] = np.matmul(sv, coeffs)
        comm.charge_uniform(
            "update", comm.cost.gemm(sv.shape[1], v.n_cols, out.n_cols))

    # -- sketching --------------------------------------------------------
    def _sketch_partials_stacked(self, v, op) -> "np.ndarray | None":
        """``(ranks, m, k)`` contribution stack, or None to fall back."""
        stack = v.stack
        if stack is None:
            return None
        comm = v.comm
        partials = op.partial_stack(stack)
        comm.charge_uniform(
            "dot", op.local_cost(comm.cost, stack.shape[1], v.n_cols))
        return partials

    def sketch_apply(self, v, op) -> np.ndarray:
        partials = self._sketch_partials_stacked(v, op)
        if partials is None:
            return super().sketch_apply(v, op)
        return v.comm.allreduce_sum_stacked(partials)

    def fused_dot_sketch(self, pairs, v, op
                         ) -> tuple[list[np.ndarray], np.ndarray]:
        stacks = []
        for x, y in pairs:
            s = self._stacks(x, y)
            if s is None:
                return super().fused_dot_sketch(pairs, v, op)
            stacks.append(s)
        if v.stack is None:
            return super().fused_dot_sketch(pairs, v, op)
        comm = v.comm
        groups = []
        for (xs, ys), (x, y) in zip(stacks, pairs):
            groups.append(np.matmul(xs.transpose(0, 2, 1), ys))
            comm.charge_uniform(
                "dot", comm.cost.gemm(xs.shape[1], x.n_cols, y.n_cols))
        groups.append(self._sketch_partials_stacked(v, op))
        results = comm.fused_allreduce_sum_stacked(groups)
        return results[:-1], results[-1]


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------

_INSTANCES: dict[str, KernelEngine] = {
    config.ENGINE_LOOP: LoopEngine(),
    config.ENGINE_BATCHED: BatchedEngine(),
}

# config.validate_engine (used by SimComm/DistBackend constructors) and
# this dispatch registry must never drift apart, or a name accepted at a
# binding site would still blow up inside the first BLAS call.
assert set(_INSTANCES) == set(config.ENGINES), \
    "engine registry out of sync with repro.config.ENGINES"


def get_engine(name: str) -> KernelEngine:
    """Engine singleton for ``name`` (``"loop"`` or ``"batched"``)."""
    try:
        return _INSTANCES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of "
            f"{tuple(_INSTANCES)}") from None


def resolve(engine: "str | KernelEngine | None", comm=None) -> KernelEngine:
    """Resolve an engine: explicit arg > communicator binding > config."""
    if isinstance(engine, KernelEngine):
        return engine
    if engine is not None:
        return get_engine(engine)
    if comm is not None and getattr(comm, "engine", None) is not None:
        return get_engine(comm.engine)
    return get_engine(config.get_engine())
